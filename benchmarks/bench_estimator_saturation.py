"""Gated benchmark: estimator-vs-simulator agreement across a utilisation ramp.

The analytic :class:`SLOEstimator` ranks every candidate plan the tabu search
visits, so its honesty *at saturation* is what keeps the scheduler from
shipping overloaded deployments.  This benchmark drives the fixture fleet
(A40 prefill -> 3090Ti decode, prefill-heavy coding workload) through a
prefill-utilisation ramp — rho 0.7 / 0.85 / 0.95 of the padded-batch capacity —
plus an outright overloaded point (rho 1.3), and checks:

* per-point |estimated - simulated| E2E attainment within ``POINT_TOLERANCE``;
* mean gap across the ramp within ``MEAN_TOLERANCE``;
* the overloaded point estimates **exactly zero** attainment (the M/G/1 wait
  diverges at rho >= 1; no silent clamp may flatter the plan).

Simulated attainment at each rho is averaged over several Poisson seeds: a
near-critical queue is bursty, and a single realisation can sit far from the
steady-state mean the estimator predicts.

The default ("full") configuration uses 600 s traces and 4 seeds per point with
the agreement-harness tolerances; set ``REPRO_BENCH_REDUCED=1`` for the CI
smoke configuration (300 s, 2 seeds — noisier sim means, hence slightly looser
tolerances).  Results are written to ``BENCH_estimator_saturation.json``
(override with ``REPRO_BENCH_JSON``) and gated against a committed baseline by
``benchmarks/check_regression.py``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_estimator_saturation.py -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.types import Phase, SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests
from repro.workload.spec import CODING_WORKLOAD

REDUCED = bool(int(os.environ.get("REPRO_BENCH_REDUCED", "0")))
#: prefill utilisations of the ramp (fractions of the padded-batch capacity)
RHOS = (0.7, 0.85, 0.95)
#: overloaded operating point: demand 30% beyond prefill capacity
OVERLOAD_RHO = 1.3
#: SLO scales evaluated at every rho (multiples of the A100 reference latency)
SLO_SCALES = (4.0, 8.0, 12.0)
TRACE_DURATION_S = 300.0 if REDUCED else 600.0
SEEDS = (11, 123) if REDUCED else (11, 123, 456, 789)
#: full mode holds the agreement-harness tolerances; reduced mode averages half
#: the seeds over half the horizon, so its sim means sit further from steady
#: state and the bars are slightly looser
POINT_TOLERANCE = 0.20 if REDUCED else 0.15
MEAN_TOLERANCE = 0.10 if REDUCED else 0.08


def _fixture():
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-30b")
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    return cluster, model, solution


def _solve(cluster, model, solution, reference, rate, scale):
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model,
        workload=CODING_WORKLOAD,
        slo=reference.slo_spec(scale),
        request_rate=rate,
    )
    result = solver.solve(solution)
    assert result.feasible and result.plan is not None
    return solver, result


def test_estimator_saturation_agreement():
    cluster, model, solution = _fixture()
    reference = a100_reference_latency(model, CODING_WORKLOAD)

    # Capacity anchor: the request rate at which the single prefill replica's
    # implied utilisation (padded-batch service time) reaches 1.0.
    probe, probe_result = _solve(cluster, model, solution, reference, 1.0, 8.0)
    prefill_group = next(
        g for g in probe_result.plan.groups if g.phase is Phase.PREFILL
    )
    capacity_rps = 1.0 / probe.estimator.replica_performance(
        prefill_group
    ).prefill_service_s

    t0 = time.perf_counter()
    points = []
    for rho in RHOS:
        rate = rho * capacity_rps
        _, planned = _solve(cluster, model, solution, reference, rate, 8.0)
        runs = []
        for seed in SEEDS:
            trace = generate_requests(
                CODING_WORKLOAD, rate, duration=TRACE_DURATION_S, seed=seed
            )
            runs.append(
                ServingSimulator(
                    cluster, planned.plan, model, config=SimulatorConfig(seed=0)
                ).run(trace)
            )
        for scale in SLO_SCALES:
            slo = reference.slo_spec(scale)
            _, result = _solve(cluster, model, solution, reference, rate, scale)
            estimated = result.estimated_attainment
            simulated = float(
                np.mean([r.slo_attainment(slo, SLOType.E2E) for r in runs])
            )
            points.append(
                {
                    "rho": rho,
                    "slo_scale": scale,
                    "estimated": round(estimated, 4),
                    "simulated": round(simulated, 4),
                    "gap": round(abs(estimated - simulated), 4),
                }
            )

    # Overloaded point: the estimate must be exactly zero; the simulator still
    # serves the sliver of early arrivals before its queue diverges.
    overload_rate = OVERLOAD_RHO * capacity_rps
    _, overload_result = _solve(
        cluster, model, solution, reference, overload_rate, SLO_SCALES[0]
    )
    overload_estimated = overload_result.estimated_attainment
    overload_trace = generate_requests(
        CODING_WORKLOAD, overload_rate, duration=TRACE_DURATION_S, seed=SEEDS[0]
    )
    overload_sim = ServingSimulator(
        cluster, overload_result.plan, model, config=SimulatorConfig(seed=0)
    ).run(overload_trace)
    overload_simulated = overload_sim.slo_attainment(
        reference.slo_spec(SLO_SCALES[0]), SLOType.E2E
    )
    elapsed = time.perf_counter() - t0

    gaps = [p["gap"] for p in points]
    max_gap = float(np.max(gaps))
    mean_gap = float(np.mean(gaps))
    mode = "reduced" if REDUCED else "full"
    print(
        f"\nestimator saturation ramp ({mode}): capacity {capacity_rps:.2f} rps, "
        f"{len(points)} ramp points, {len(SEEDS)} seeds x {TRACE_DURATION_S:.0f}s\n"
        f"  max gap {max_gap:.3f} (bar {POINT_TOLERANCE})   "
        f"mean gap {mean_gap:.3f} (bar {MEAN_TOLERANCE})\n"
        f"  overload rho {OVERLOAD_RHO}: estimated {overload_estimated:.3f} "
        f"simulated {overload_simulated:.3f}   elapsed {elapsed:.1f}s"
    )
    for p in points:
        print(
            f"    rho={p['rho']:<5} scale={p['slo_scale']:<5} "
            f"est={p['estimated']:.3f} sim={p['simulated']:.3f} gap={p['gap']:.3f}"
        )

    payload = {
        "benchmark": "bench_estimator_saturation",
        "kind": "estimator_agreement",
        "mode": mode,
        "workload": CODING_WORKLOAD.name,
        "capacity_rps": round(capacity_rps, 4),
        "trace_duration_s": TRACE_DURATION_S,
        "seeds": list(SEEDS),
        "points": points,
        "max_gap": round(max_gap, 4),
        "mean_gap": round(mean_gap, 4),
        "point_tolerance": POINT_TOLERANCE,
        "mean_tolerance": MEAN_TOLERANCE,
        "overload_rho": OVERLOAD_RHO,
        "overload_estimated": overload_estimated,
        "overload_simulated": round(float(overload_simulated), 4),
        "overload_estimate_zero": overload_estimated == 0.0,
        "elapsed_s": round(elapsed, 2),
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_estimator_saturation.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {out_path}")

    assert overload_estimated == 0.0, (
        f"overloaded plan (rho {OVERLOAD_RHO}) estimated "
        f"{overload_estimated:.3f}, must be exactly 0"
    )
    assert max_gap <= POINT_TOLERANCE, (
        f"worst ramp point gap {max_gap:.3f} exceeds {POINT_TOLERANCE}"
    )
    assert mean_gap <= MEAN_TOLERANCE, (
        f"mean ramp gap {mean_gap:.3f} exceeds {MEAN_TOLERANCE}"
    )

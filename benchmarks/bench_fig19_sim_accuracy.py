"""Benchmark harness for Figure 19: estimator / alpha-beta model accuracy."""

from conftest import run_experiment

from repro.experiments import fig19_simulator_accuracy


def test_fig19_simulator_accuracy(benchmark):
    result = run_experiment(
        benchmark,
        fig19_simulator_accuracy.run,
        kwargs={"trace_duration": 15.0, "scheduler_steps": 8},
    )
    # The analytic estimator should track the discrete-event simulator within a
    # moderate margin (the paper's simulator matches real execution closely; our
    # estimator omits transient queueing, so allow a wider band), and the
    # alpha-beta KV model should be within ~1/3 of the simulated transfer times
    # (the simulated mean mixes requests routed over different replica pairs).
    assert result.extras["attainment_gap"] < 0.35
    assert result.extras["kv_latency_rel_error"] < 0.35

"""Benchmark harness for Table 5 / Figures 16-17: phase splitting vs network bandwidth."""

from conftest import run_experiment

from repro.experiments import table5_network_case


def test_table5_network_case(benchmark):
    result = run_experiment(
        benchmark,
        table5_network_case.run,
        kwargs={"trace_duration": 15.0, "scheduler_steps": 10},
    )
    gains = result.extras["gains"]
    high = gains["thunderserve (40 Gbps)"]
    low = gains["thunderserve (5 Gbps)"]
    # ThunderServe matches or beats the non-disaggregated baseline in both
    # regimes, and the fast-network case benefits at least as much as the
    # slow-network case (paper: 2.0x vs 1.4x; our roofline substrate reproduces
    # the ordering with smaller factors — see EXPERIMENTS.md).
    assert high >= 1.0
    assert low >= 0.85
    assert high >= low - 0.1

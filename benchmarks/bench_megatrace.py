"""Macro-benchmark: one million streamed requests through the fast engine.

Measures the headline claim of the streaming-core PR: the struct-of-arrays
request lifecycle plus chunked trace generation let the fast engine replay a
**1,000,000-request diurnal trace in single-digit seconds** on a laptop-class
core, in bounded memory, while staying bitwise-faithful to the per-event
reference engine.

The trace is deliberately prefill-heavy (the regime the vectorized epoch
planner targets): ~900-token median prompts, mostly single-token responses,
Poisson arrivals at 60 req/s warped through a :class:`DiurnalTimeWarp` so the
instantaneous rate swings +/- 40% over four day/night cycles.  The fixture
cluster is provisioned for ~1.5 req/s, so the peak hours run far into
overload — exactly where per-request event loops melt and coalesced epochs
shine.

Because replaying 1M requests through the per-event oracle would take hours,
full-trace bitwise comparison is replaced by a **subsampled-window spot
check**: a contiguous 2,000-request window is re-extracted from the middle of
the stream (chunked generation is chunk-size invariant, so the bytes are the
trace's bytes) and replayed as a standalone trace through both engines, which
must agree bitwise on every per-request metric.

Set ``REPRO_BENCH_REDUCED=1`` for the CI smoke configuration (50k requests,
same shape).  Results are written to ``BENCH_megatrace.json`` (override with
``REPRO_BENCH_JSON``) and gated by ``check_regression.py`` (kind
``megatrace``: the spot check and full drain gate; throughput is advisory).

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_megatrace.py -s
"""

from __future__ import annotations

import json
import os
import resource
import time

from bench_simulator_core import METRIC_FIELDS, _fixture, _metrics_identical
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import DiurnalTimeWarp, PoissonArrivalGenerator
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import RequestArrays

REDUCED = bool(int(os.environ.get("REPRO_BENCH_REDUCED", "0")))
#: full mode meets the acceptance bar (1M requests, single-digit seconds);
#: reduced mode keeps the same shape for CI smoke runs
NUM_REQUESTS = 50_000 if REDUCED else 1_000_000
#: wall-clock bar for the fast-engine replay, asserted in full mode only
#: (reduced CI runs share noisy runners, where absolute time is advisory)
WALL_BAR_S = 10.0
REQUEST_RATE = 60.0
GENERATOR_SEED = 42
SIMULATOR_SEED = 0
SPOT_WINDOW = 2_000

#: prefill-heavy workload: long prompts, overwhelmingly single-token responses
MEGATRACE_WORKLOAD = WorkloadSpec(
    name="megatrace",
    median_input_length=900,
    median_output_length=1,
    input_sigma=0.35,
    output_sigma=0.35,
    max_output_length=16,
)

__all__ = ["MEGATRACE_WORKLOAD", "make_generator", "make_warp"]


def make_generator() -> PoissonArrivalGenerator:
    """Fresh generator pinned to the benchmark's seed (streams restart)."""
    return PoissonArrivalGenerator(
        spec=MEGATRACE_WORKLOAD, request_rate=REQUEST_RATE, seed=GENERATOR_SEED
    )


def make_warp(num_requests: int) -> DiurnalTimeWarp:
    """Diurnal warp with four intensity cycles across the whole trace."""
    span = num_requests / REQUEST_RATE
    return DiurnalTimeWarp(horizon=span * 1.1, period=span / 4.0, amplitude=0.4)


def _make_simulator(cluster, model, plan) -> ServingSimulator:
    return ServingSimulator(
        cluster, plan, model, config=SimulatorConfig(seed=SIMULATOR_SEED, engine="fast")
    )


def _extract_window(start_row: int, num_rows: int, num_requests: int) -> RequestArrays:
    """Re-extract rows ``[start_row, start_row + num_rows)`` of the stream.

    Chunked generation is chunk-size invariant, so slicing a fresh stream with
    the same seed and warp reproduces the exact bytes the benchmark run saw.
    """
    warp = make_warp(num_requests)
    blocks, seen = [], 0
    for chunk in make_generator().iter_chunks(num_requests, time_warp=warp):
        lo = max(0, start_row - seen)
        hi = min(len(chunk), start_row + num_rows - seen)
        if lo < hi:
            blocks.append(chunk.slice(lo, hi))
        seen += len(chunk)
        if seen >= start_row + num_rows:
            break
    return RequestArrays.concat(blocks)


def test_megatrace_streaming():
    cluster, model, plan = _fixture()
    mode = "reduced" if REDUCED else "full"

    # -- streamed replay of the full trace -------------------------------
    # Warm-up on a small stream charges numpy/memo import costs up front.
    warm = make_generator()
    _make_simulator(cluster, model, plan).run_stream(
        warm.iter_chunks(2_000, time_warp=make_warp(2_000))
    )

    warp = make_warp(NUM_REQUESTS)
    stream = make_generator().iter_chunks(NUM_REQUESTS, time_warp=warp)
    sim = _make_simulator(cluster, model, plan)
    t0 = time.perf_counter()
    result = sim.run_stream(stream, label="megatrace")
    t_fast = time.perf_counter() - t0
    requests_per_s = NUM_REQUESTS / t_fast
    drained = result.num_finished == NUM_REQUESTS
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    # -- subsampled-window bitwise spot check vs the reference oracle ----
    start_row = NUM_REQUESTS // 2
    window = _extract_window(start_row, SPOT_WINDOW, NUM_REQUESTS).to_trace(
        name="megatrace-window"
    )
    spot_fast = _make_simulator(cluster, model, plan).run(window)
    reference = ServingSimulator(
        cluster,
        plan,
        model,
        config=SimulatorConfig(seed=SIMULATOR_SEED, engine="reference"),
    )
    t0 = time.perf_counter()
    spot_reference = reference.run(window)
    t_reference_window = time.perf_counter() - t0
    spot_identical = _metrics_identical(spot_fast, spot_reference)

    print(
        f"\nmegatrace ({mode}): {NUM_REQUESTS} requests streamed in {t_fast:.2f}s"
        f" -> {requests_per_s:,.0f} req/s\n"
        f"  finished: {result.num_finished}   makespan: {result.makespan:,.0f}s"
        f"   trace span: {result.trace_duration:,.0f}s"
        f"   peak RSS: {peak_rss_mb:.0f} MB\n"
        f"  spot window: rows [{start_row}, {start_row + SPOT_WINDOW})"
        f"   reference oracle: {t_reference_window:.2f}s"
        f"   bitwise-identical metrics: {spot_identical}"
    )

    payload = {
        "benchmark": "bench_megatrace",
        "kind": "megatrace",
        "mode": mode,
        "num_requests": NUM_REQUESTS,
        "request_rate": REQUEST_RATE,
        "t_fast_s": round(t_fast, 4),
        "requests_per_s": round(requests_per_s, 1),
        "wall_bar_s": WALL_BAR_S,
        "num_finished_fast": result.num_finished,
        "drained": drained,
        "makespan_s": round(result.makespan, 2),
        "trace_duration_s": round(result.trace_duration, 2),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "spot_window_start": start_row,
        "spot_window_size": SPOT_WINDOW,
        "spot_identical": spot_identical,
        "metric_fields": list(METRIC_FIELDS),
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_megatrace.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {out_path}")

    assert spot_identical, (
        "fast engine diverged from the reference oracle on the spot window"
    )
    assert drained, f"megatrace did not drain: {result.num_finished}/{NUM_REQUESTS}"
    if not REDUCED:
        assert t_fast < WALL_BAR_S, (
            f"1M-request replay took {t_fast:.2f}s (bar: {WALL_BAR_S:.0f}s)"
        )

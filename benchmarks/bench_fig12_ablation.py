"""Benchmark harness for Figure 12: KV compression and orchestration ablation."""

from conftest import run_experiment

from repro.experiments import fig12_ablation


def test_fig12_ablation(benchmark):
    result = run_experiment(
        benchmark,
        fig12_ablation.run,
        kwargs={"trace_duration": 15.0, "scheduler_steps": 8, "slo_scales": (3.0, 6.0, 12.0)},
    )
    totals = {}
    for workload, configuration, _scale, attainment in result.rows:
        totals.setdefault((workload, configuration), 0.0)
        totals[(workload, configuration)] += attainment
    for workload in {w for w, _ in totals}:
        full = totals[(workload, "kv_comp+orchestration")]
        no_comp = totals[(workload, "no_kv_comp+orchestration")]
        random_dispatch = totals[(workload, "no_kv_comp+random_dispatch")]
        # The full system should be at least as good as the ablations, and the
        # orchestration LP should not lose to random dispatch.
        assert full >= no_comp - 0.15, workload
        assert no_comp >= random_dispatch - 0.15, workload
    # KV compression shrinks the share of time spent transferring KV caches.
    for workload, fractions in result.extras["kv_fraction"].items():
        assert fractions["kv_comp+orchestration"] <= fractions["no_kv_comp+orchestration"] + 1e-6, workload

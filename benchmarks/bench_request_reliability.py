"""Gated benchmark: request-level fault semantics of the in-engine retry path.

This gate protects the request-outcome taxonomy rather than a wall-clock
number.  It drives the same seeded capacity storm through the serving stack
twice — once under a bounded-retry :class:`~repro.faults.RetryPolicy` and once
under :meth:`~repro.faults.RetryPolicy.drop_only` — and checks the properties
the reliability claims rest on:

* **Retry recovers what drop-only loses** — under the identical compiled
  fault timeline, the retry run completes strictly more requests (and at
  least one ``retried_then_finished`` outcome exists), while the drop-only
  run records the preempted work as ``dropped_outage``.
* **Deterministic replay** — two live runs with the same seed produce
  identical :meth:`~repro.serving.live.LiveServeReport.fault_stats` and a
  bitwise-identical per-window telemetry stream.
* **Outcome conservation at streaming scale** — a large chunked trace
  (1M requests in full mode) streamed through the fast engine under a
  kill/revive fault timeline passes
  :meth:`~repro.simulation.metrics.SimulationResult.assert_outcome_conservation`:
  every arrival maps to exactly one terminal outcome, with no request
  duplicated or lost across preemptions and retries.

Set ``REPRO_BENCH_REDUCED=1`` for the CI smoke configuration (same shape,
smaller traces).  Results are written to ``BENCH_request_reliability.json``
(override with ``REPRO_BENCH_JSON``) and gated against a committed baseline
by ``benchmarks/check_regression.py`` (kind ``request_reliability``).

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_request_reliability.py -s
"""

from __future__ import annotations

import json
import os
import time

from repro.core.types import Phase, SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ReplicaFaultEvent,
    RetryPolicy,
    timeline_from_windows,
)
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.serving.live import LiveServeConfig, LiveServer
from repro.serving.system import ThunderServe
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import PoissonArrivalGenerator, generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD, WorkloadSpec

REDUCED = bool(int(os.environ.get("REPRO_BENCH_REDUCED", "0")))
#: live-storm trace size: long enough for the fault to strike mid-stream work
NUM_LIVE = 900 if REDUCED else 3_600
LIVE_RATE = 6.0
WINDOW_S = 4.0
#: streaming-conservation trace size (the full mode meets the 1M-scale bar)
NUM_STREAM = 50_000 if REDUCED else 1_000_000
STREAM_RATE = 60.0
GENERATOR_SEED = 42
SIMULATOR_SEED = 0

#: bounded retries with deterministic seeded jitter — the policy under test
RETRY = RetryPolicy(max_retries=3, backoff_base_s=0.3, jitter=0.1)

#: prefill-heavy workload for the streaming leg: short responses keep the
#: event count per request small, so a million requests stream in seconds
STREAM_WORKLOAD = WorkloadSpec(
    name="reliability-stream",
    median_input_length=900,
    median_output_length=1,
    input_sigma=0.35,
    output_sigma=0.35,
    max_output_length=16,
)


def _fixture():
    """Four-replica llama-7b plan with uniform routing on the two-DC cluster.

    Two prefill and two decode replicas: killing one group of either phase
    leaves a survivor for the retry path to land on, and ``routing=None``
    spreads traffic uniformly so the dying replica always holds work.
    """
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-7b")
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists(
        [
            (a40[:2], Phase.PREFILL),
            (a40[2:], Phase.PREFILL),
            (ti[:2], Phase.DECODE),
            (ti[2:], Phase.DECODE),
        ]
    )
    slo = a100_reference_latency(model, CONVERSATION_WORKLOAD).slo_spec(8.0)
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model,
        workload=CONVERSATION_WORKLOAD,
        slo=slo,
        request_rate=3.0,
    )
    solved = solver.solve(solution).plan
    assert solved is not None
    plan = DeploymentPlan(
        groups=solved.groups,
        routing=None,
        model_name=solved.model_name,
        kv_transport_bits=solved.kv_transport_bits,
    )
    return cluster, model, plan, slo


def _live_storm(cluster, model, plan, slo, retry):
    """One live run under the seeded storm; returns (system, report)."""
    system = ThunderServe(cluster, model, CONVERSATION_WORKLOAD, LIVE_RATE, slo=slo)
    system.adopt_plan(plan, reason="reliability benchmark")
    span = NUM_LIVE / LIVE_RATE
    victims = tuple(plan.prefill_groups[0].gpu_ids)
    schedule = FaultSchedule.from_events(
        [
            FaultEvent(
                time=0.3 * span, kind=FaultKind.GPU_PREEMPTION, gpu_ids=victims
            ),
            FaultEvent(time=0.6 * span, kind=FaultKind.RECOVERY, gpu_ids=victims),
        ]
    )
    config = LiveServeConfig(
        window_s=WINDOW_S,
        reschedule_on_breach=False,
        reschedule_on_shift=False,
        faults=schedule,
        retry_policy=retry,
    )
    trace = generate_requests(
        CONVERSATION_WORKLOAD, LIVE_RATE, num_requests=NUM_LIVE, seed=7
    )
    report = LiveServer(system, config=config).run(trace, label="reliability")
    return system, report


def _stream_timeline(plan, span):
    """Kill/revive cycles over the stream: one group of each phase at a time."""
    prefills = [g.group_id for g in plan.prefill_groups]
    decodes = [g.group_id for g in plan.decode_groups]
    return timeline_from_windows(
        [
            ReplicaFaultEvent(time=0.15 * span, dead_prefill=(prefills[0],)),
            ReplicaFaultEvent(time=0.30 * span, revived_prefill=(prefills[0],)),
            ReplicaFaultEvent(time=0.45 * span, dead_decode=(decodes[1],)),
            ReplicaFaultEvent(time=0.60 * span, revived_decode=(decodes[1],)),
            ReplicaFaultEvent(time=0.75 * span, dead_prefill=(prefills[1],)),
            ReplicaFaultEvent(time=0.85 * span, revived_prefill=(prefills[1],)),
        ]
    )


def test_request_reliability_gate():
    t0 = time.perf_counter()
    cluster, model, plan, slo = _fixture()
    mode = "reduced" if REDUCED else "full"

    # -- retry vs drop-only under the same seeded storm ------------------
    _, retry_report = _live_storm(cluster, model, plan, slo, RETRY)
    _, drop_report = _live_storm(cluster, model, plan, slo, RetryPolicy.drop_only())
    retry_stats = retry_report.fault_stats()
    drop_stats = drop_report.fault_stats()

    def completed(stats):
        return stats["requests_finished"] + stats["requests_retried_then_finished"]

    retry_attainment = retry_report.merged.slo_attainment(slo, SLOType.E2E)
    drop_attainment = drop_report.merged.slo_attainment(slo, SLOType.E2E)

    # -- deterministic replay --------------------------------------------
    _, replay_report = _live_storm(cluster, model, plan, slo, RETRY)
    deterministic = (
        retry_report.fault_stats() == replay_report.fault_stats()
        and [w.to_dict() for w in retry_report.windows]
        == [w.to_dict() for w in replay_report.windows]
    )

    # -- outcome conservation at streaming scale -------------------------
    span = NUM_STREAM / STREAM_RATE
    generator = PoissonArrivalGenerator(
        spec=STREAM_WORKLOAD, request_rate=STREAM_RATE, seed=GENERATOR_SEED
    )
    sim = ServingSimulator(
        cluster, plan, model, config=SimulatorConfig(seed=SIMULATOR_SEED, engine="fast")
    )
    t_stream0 = time.perf_counter()
    stream_result = sim.run_stream(
        generator.iter_chunks(NUM_STREAM),
        label="reliability-stream",
        faults=_stream_timeline(plan, span),
        retry=RetryPolicy(max_retries=2, backoff_base_s=0.5, jitter=0.1, deadline_s=120.0),
    )
    t_stream = time.perf_counter() - t_stream0
    conservation_error = ""
    try:
        stream_counts = stream_result.assert_outcome_conservation(require_terminal=True)
    except Exception as exc:  # noqa: BLE001 - the gate records any break
        conservation_error = str(exc)
        stream_counts = stream_result.outcome_counts()
    elapsed = time.perf_counter() - t0

    print(
        f"\nrequest reliability gate ({mode}): storm of {NUM_LIVE} requests, "
        f"deterministic replay {deterministic}\n"
        f"  retry:     {completed(retry_stats):.0f} completed "
        f"({retry_stats['requests_retried_then_finished']:.0f} after retry), "
        f"E2E attainment {retry_attainment:.3f}\n"
        f"  drop-only: {completed(drop_stats):.0f} completed "
        f"({drop_stats['requests_dropped_outage']:.0f} dropped), "
        f"E2E attainment {drop_attainment:.3f}\n"
        f"  stream: {NUM_STREAM} requests in {t_stream:.2f}s "
        f"({NUM_STREAM / t_stream:,.0f} req/s), outcomes {stream_counts}, "
        f"conservation error {conservation_error!r}\n"
        f"  elapsed {elapsed:.1f}s"
    )

    payload = {
        "benchmark": "bench_request_reliability",
        "kind": "request_reliability",
        "mode": mode,
        "num_live_requests": NUM_LIVE,
        "retry_completed": int(completed(retry_stats)),
        "retry_recovered": int(retry_stats["requests_retried_then_finished"]),
        "retry_dropped": int(retry_stats["requests_dropped_outage"]),
        "retry_attainment": round(float(retry_attainment), 4),
        "drop_completed": int(completed(drop_stats)),
        "drop_dropped": int(drop_stats["requests_dropped_outage"]),
        "drop_attainment": round(float(drop_attainment), 4),
        "deterministic_replay": deterministic,
        "stream_num_requests": NUM_STREAM,
        "stream_outcomes": {k: int(v) for k, v in stream_counts.items()},
        "stream_conserved": conservation_error == "",
        "stream_conservation_error": conservation_error,
        "stream_t_s": round(t_stream, 3),
        "stream_requests_per_s": round(NUM_STREAM / t_stream, 1),
        "elapsed_s": round(elapsed, 2),
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_request_reliability.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {out_path}")

    assert payload["retry_recovered"] > 0, (
        "the storm preempted no work that was later retried to completion"
    )
    assert payload["drop_dropped"] > 0, (
        "the drop-only arm recorded no dropped_outage outcomes"
    )
    assert payload["retry_completed"] > payload["drop_completed"], (
        f"retry completed {payload['retry_completed']} requests, no more than "
        f"drop-only's {payload['drop_completed']} under the same storm"
    )
    assert payload["retry_attainment"] >= payload["drop_attainment"], (
        "retry attainment fell below drop-only under the identical storm"
    )
    assert deterministic, (
        "same-seed storm replay diverged: fault_stats or telemetry stream "
        "is not identical across two runs"
    )
    assert payload["stream_conserved"], (
        f"outcome conservation broke at streaming scale: {conservation_error}"
    )
    total = sum(payload["stream_outcomes"].values())
    assert total == NUM_STREAM, (
        f"stream outcomes sum to {total}, expected {NUM_STREAM}"
    )

"""Benchmark harness for Figure 1: per-request phase prices on 3090Ti vs A40."""

from conftest import run_experiment

from repro.experiments import fig1_phase_prices


def test_fig01_phase_prices(benchmark):
    result = run_experiment(benchmark, fig1_phase_prices.run, precision=6)
    # Paper's shape: A40 is the cheaper prefill GPU, 3090Ti the cheaper decode GPU.
    assert result.extras["cheapest_prefill"] == "A40"
    assert result.extras["cheapest_decode"] == "3090Ti"

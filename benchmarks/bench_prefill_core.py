"""Micro-benchmark: vectorized prefill pipeline vs. the per-event reference engine.

Measures the headline claim of the prefill-pipeline PR: on a prompt-heavy trace
(heavy inputs, short decodes — the RAG/agentic-burst regime) the fast engine
(coalesced prefill epochs priced by the memoized ``prefill_latency_grid``,
vectorized KV-transfer handoffs, coalesced ``KV_BATCH`` arrivals) beats the
retained per-event reference engine by >= 4x wall-clock while producing
**bitwise-identical** per-request metrics.

The default ("full") configuration replays >= 2k requests with >= 512 prompt
tokens each; set ``REPRO_BENCH_REDUCED=1`` for the CI smoke configuration (same
shape, ~10x smaller).  Results — speedup plus agreement stats — are written to
``BENCH_prefill.json`` (override the path with ``REPRO_BENCH_PREFILL_JSON``) so
the perf trajectory is tracked across PRs alongside ``BENCH_simcore.json``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_prefill_core.py -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.types import Phase, Request
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.spec import CONVERSATION_WORKLOAD
from repro.workload.trace import Trace

REDUCED = bool(int(os.environ.get("REPRO_BENCH_REDUCED", "0")))
#: full mode meets the acceptance bar (>= 2k requests, >= 1k prompt tokens);
#: reduced mode keeps the same shape for CI smoke runs
NUM_REQUESTS = 240 if REDUCED else 2048
#: the RAG_WORKLOAD shape (several retrieved passages per prompt): prompts are
#: ~20x longer than responses, so the trace is decisively prefill-dominated
MIN_INPUT_TOKENS = 1024
MAX_INPUT_TOKENS = 4096
MIN_OUTPUT_TOKENS = 64
MAX_OUTPUT_TOKENS = 160
#: high enough that prefill queues form and multi-request batches actually fill
REQUEST_RATE = 4.0
#: prompt bursts are served in large coalesced batches
PREFILL_BATCH_REQUESTS = 16
SPEEDUP_BAR = 2.0 if REDUCED else 4.0

METRIC_FIELDS = (
    "enqueue_time",
    "prefill_start",
    "first_token_time",
    "kv_transfer_done",
    "completion_time",
    "prefill_replica",
    "decode_replica",
    "finished",
)


def _fixture():
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-30b")
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model,
        workload=CONVERSATION_WORKLOAD,
        slo=a100_reference_latency(model, CONVERSATION_WORKLOAD).slo_spec(8.0),
        request_rate=REQUEST_RATE,
    )
    result = solver.solve(solution)
    assert result.feasible and result.plan is not None
    return cluster, model, result.plan


def _prompt_heavy_trace(num_requests: int, seed: int = 0) -> Trace:
    """Poisson arrivals with heavy prompts and short decodes (the prefill-bound regime)."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / REQUEST_RATE, size=num_requests)
    arrivals = np.cumsum(gaps)
    requests = [
        Request(
            request_id=k,
            arrival_time=float(arrivals[k]),
            input_length=int(rng.integers(MIN_INPUT_TOKENS, MAX_INPUT_TOKENS + 1)),
            output_length=int(rng.integers(MIN_OUTPUT_TOKENS, MAX_OUTPUT_TOKENS + 1)),
        )
        for k in range(num_requests)
    ]
    return Trace(requests=requests, name="prompt-heavy")


def _metrics_identical(fast, reference) -> bool:
    if len(fast.metrics) != len(reference.metrics):
        return False
    for a, b in zip(fast.metrics, reference.metrics):
        for name in METRIC_FIELDS:
            if getattr(a, name) != getattr(b, name):
                return False
    return True


def test_prefill_core_speedup():
    cluster, model, plan = _fixture()
    trace = _prompt_heavy_trace(NUM_REQUESTS)

    def run(engine: str):
        sim = ServingSimulator(
            cluster,
            plan,
            model,
            config=SimulatorConfig(
                seed=0,
                engine=engine,
                max_prefill_batch_requests=PREFILL_BATCH_REQUESTS,
            ),
        )
        t0 = time.perf_counter()
        result = sim.run(trace)
        return result, time.perf_counter() - t0

    # Warm-up run for the fast engine charges numpy import costs etc. up front;
    # a fresh simulator below starts with cold memo caches anyway.
    run("fast")
    fast, t_fast = run("fast")
    reference, t_reference = run("reference")

    identical = _metrics_identical(fast, reference)
    speedup = t_reference / t_fast
    prefill_tokens = sum(r.input_length for r in trace)
    mode = "reduced" if REDUCED else "full"
    print(
        f"\nprefill pipeline ({mode}): {len(trace)} requests, {prefill_tokens} prompt tokens, "
        f"batch cap {PREFILL_BATCH_REQUESTS}\n"
        f"  reference engine: {t_reference:.3f}s   fast engine: {t_fast:.3f}s"
        f"   -> {speedup:.1f}x\n"
        f"  finished: fast {fast.num_finished} / reference {reference.num_finished}"
        f"   bitwise-identical metrics: {identical}"
    )

    payload = {
        "benchmark": "bench_prefill_core",
        "mode": mode,
        "num_requests": len(trace),
        "prefill_tokens": int(prefill_tokens),
        "max_prefill_batch_requests": PREFILL_BATCH_REQUESTS,
        "t_fast_s": round(t_fast, 4),
        "t_reference_s": round(t_reference, 4),
        "speedup": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
        "identical_metrics": identical,
        "num_finished_fast": fast.num_finished,
        "num_finished_reference": reference.num_finished,
    }
    out_path = os.environ.get("REPRO_BENCH_PREFILL_JSON", "BENCH_prefill.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {out_path}")

    assert identical, "fast engine diverged from the reference engine"
    assert fast.num_finished == len(trace), "the prompt-heavy trace must fully drain"
    assert speedup >= SPEEDUP_BAR, (
        f"fast engine only {speedup:.2f}x faster (bar: {SPEEDUP_BAR}x)"
    )

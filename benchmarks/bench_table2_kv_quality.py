"""Benchmark harness for Tables 2 / 6 / 7: KV transport quantization quality."""

from conftest import run_experiment

from repro.experiments import table2_kv_quality


def test_table2_kv_transport_quality(benchmark):
    result = run_experiment(
        benchmark,
        table2_kv_quality.run,
        kwargs={"num_prompts": 6, "prompt_length": 48, "generate_tokens": 24},
    )
    for row in result.rows:
        _model, bits, agreement, _drop, ppl_ratio, rouge1, _r2, _rl = row
        assert 0.0 <= agreement <= 1.0
        if bits == 8:
            # 8-bit transport should be essentially lossless on the proxy model.
            assert agreement > 0.95
            assert abs(ppl_ratio - 1.0) < 0.05
        if bits == 4:
            # Paper: < 2% accuracy drop; the untrained proxy is noisier, so we
            # assert the same qualitative conclusion with a looser margin.
            assert agreement > 0.75
            assert abs(ppl_ratio - 1.0) < 0.15
            assert rouge1 > 0.5

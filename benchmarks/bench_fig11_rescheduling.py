"""Benchmark harness for Figure 11: rescheduling strategies after GPU failures."""

from conftest import run_experiment

from repro.experiments import fig11_rescheduling


def test_fig11_rescheduling(benchmark):
    result = run_experiment(
        benchmark,
        fig11_rescheduling.run,
        kwargs={"trace_duration": 15.0, "scheduler_steps": 8, "slo_scales": (3.0, 6.0, 12.0)},
    )
    # Aggregate attainment over the probed scales per strategy and workload.
    totals = {}
    for workload, strategy, _scale, attainment in result.rows:
        totals[(workload, strategy)] = totals.get((workload, strategy), 0.0) + attainment
    for workload in {w for w, _ in totals}:
        light = totals[(workload, "lightweight_rescheduling")]
        none = totals[(workload, "no_rescheduling")]
        full = totals[(workload, "full_rescheduling")]
        # Lightweight rescheduling should be comparable to full rescheduling and
        # no worse than doing nothing (paper: light ~ full > none).  Full
        # rescheduling may repartition groups, which helps more when the surviving
        # cluster is overloaded, so "comparable" is asserted as >= half of full.
        assert light >= none - 0.2, workload
        assert light >= 0.5 * full, workload

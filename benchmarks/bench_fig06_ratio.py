"""Benchmark harness for Figure 6: throughput by prefill-to-decode ratio."""

from conftest import run_experiment

from repro.experiments import fig6_ratio_throughput


def test_fig06_ratio_throughput(benchmark):
    result = run_experiment(
        benchmark,
        fig6_ratio_throughput.run,
        kwargs={"cluster_sizes": (8, 12), "trace_duration": 12.0, "saturation_rate": 24.0},
    )
    best = result.extras["best_ratio"]
    for num_gpus in (8, 12):
        coding_prefill, coding_decode = map(int, best["coding"][num_gpus].split("/"))
        conv_prefill, conv_decode = map(int, best["conversation"][num_gpus].split("/"))
        # Coding (prefill-heavy) should never prefer a smaller prefill share than
        # conversation (decode-heavy) at the same cluster size.
        coding_share = coding_prefill / (coding_prefill + coding_decode)
        conv_share = conv_prefill / (conv_prefill + conv_decode)
        assert coding_share >= conv_share

"""Gated benchmark: chaos-recovery properties of the fault-aware live loop.

This gate protects the §3.4 failure-lifecycle story rather than a wall-clock
number.  It replays the chaos-recovery experiment
(:mod:`repro.experiments.chaos_recovery`) — a seeded fault storm (node crash
with rejoin, spot preemption, WAN brownout) served by the static and the
fault-aware adaptive live loops on identical traces — and checks the
properties the robustness claims rest on:

* **Deterministic chaos replay** — two runs with the same injector seed
  produce the bitwise-identical fault schedule, per-window telemetry stream
  and fault log for both serving modes.
* **Adaptivity pays** — adaptive worst-window attainment is at least the
  static run's, with >= 1 failure-triggered and >= 1 recovery-triggered plan
  change actually installed (the shadow-validation guard must not veto the
  re-expansion).
* **Recovery recovers** — mean attainment after the rejoin replan is at
  least the attainment under failure.
* **Total loss degrades gracefully** — a scenario-sweep run whose pinned
  failure event reclaims *every* GPU completes without aborting, reports
  its post-loss windows as zero-attainment outages, and serves nothing
  after the loss.

The properties are scale-independent, so the reduced (CI) and full
configurations are identical; ``REPRO_BENCH_REDUCED=1`` only tags the report
mode for baseline matching.  Results are written to
``BENCH_chaos_recovery.json`` (override with ``REPRO_BENCH_JSON``) and gated
against a committed baseline by ``benchmarks/check_regression.py``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_chaos_recovery.py -s
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import ClassVar, Tuple

from repro.experiments import chaos_recovery
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scenarios.base import FailureEvent, Scenario
from repro.scenarios.sweep import ScenarioSweep
from repro.scheduling.robust import scenario_slo
from repro.scheduling.scheduler import SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.live import LiveServeReport
from repro.serving.system import ThunderServe
from repro.workload.generator import PoissonArrivalGenerator
from repro.workload.spec import CODING_WORKLOAD, WorkloadSpec
from repro.workload.trace import Trace

REDUCED = bool(int(os.environ.get("REPRO_BENCH_REDUCED", "0")))
#: injector seed for the storm; the CI seed-matrix smoke overrides this to
#: probe the failure lifecycle away from the committed baseline's seed
#: (non-gating — see the chaos-seed-smoke job), so only the default seed's
#: report may be compared against the committed baseline
FAULT_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "25"))
#: small attainment epsilon so a float tie never fails the ordering gates
EPSILON = 1e-9
#: absolute drift of adaptive worst-window attainment vs. the committed
#: baseline that forces a baseline regeneration (the replay is deterministic,
#: so genuine serving changes are the only thing that can move it)
WORST_DRIFT_SLACK = 0.05


@dataclass(frozen=True)
class _TotalLossScenario(Scenario):
    """Steady traffic with one pinned failure event reclaiming every GPU."""

    name: ClassVar[str] = "total-loss"
    description: ClassVar[str] = "every GPU reclaimed mid-run"

    request_rate: float = 1.0
    duration: float = 60.0
    loss_fraction: float = 0.5
    gpu_ids: Tuple[int, ...] = ()
    workload: WorkloadSpec = CODING_WORKLOAD

    def build_trace(self, seed=None) -> Trace:
        gen = PoissonArrivalGenerator(self.workload, self.request_rate, seed=seed)
        trace = gen.generate(duration=self.duration)
        return Trace(requests=trace.requests, name=self.name)

    def planning_workload(self) -> WorkloadSpec:
        return self.workload

    def failure_schedule(self) -> Tuple[FailureEvent, ...]:
        return (
            FailureEvent(
                time=self.loss_fraction * self.duration,
                gpu_ids=self.gpu_ids,
                description="provider reclaims every GPU",
            ),
        )

    def rescheduling_mode(self) -> str:
        return "none"


def _snapshot(report: LiveServeReport) -> str:
    """Canonical JSON of everything the determinism gate compares bitwise."""
    return json.dumps(
        {
            "windows": [w.to_dict() for w in report.windows],
            "fault_log": report.fault_log,
        },
        sort_keys=True,
    )


def _run_total_loss() -> Tuple[int, str, bool]:
    """Sweep the total-loss scenario; return (outage windows, error, post-loss zero)."""
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-30b")
    scenario = _TotalLossScenario(gpu_ids=tuple(cluster.gpu_ids))
    scheduler_config = SchedulerConfig(
        tabu=TabuSearchConfig(num_steps=12, num_neighbors=5, memory_size=5, patience=8),
        seed=0,
    )
    system = ThunderServe(
        cluster,
        model,
        scenario.planning_workload(),
        scenario.request_rate,
        slo=scenario_slo(scenario, model),
        scheduler_config=scheduler_config,
    )
    plan = system.deploy(seed=0)
    sweep = ScenarioSweep([scenario], seed=0, scheduler_config=scheduler_config)
    outcome = sweep.evaluate(cluster, model, plan)[scenario.name]

    loss_time = scenario.loss_fraction * scenario.duration
    post_loss = [
        m for m in outcome.result.metrics if m.request.arrival_time >= loss_time
    ]
    post_loss_zero = bool(post_loss) and all(not m.finished for m in post_loss)
    return outcome.num_outage_windows, outcome.error or "", post_loss_zero


def test_chaos_recovery_gate():
    t0 = time.perf_counter()
    first = chaos_recovery.run(fault_seed=FAULT_SEED)
    second = chaos_recovery.run(fault_seed=FAULT_SEED)

    deterministic = first.extras["fault_schedule"] == second.extras["fault_schedule"] and all(
        _snapshot(first.extras["reports"][m]) == _snapshot(second.extras["reports"][m])
        for m in ("static", "adaptive")
    )

    rows = {row[0]: row for row in first.rows}
    cols = {h: i for i, h in enumerate(first.headers)}

    def cell(mode: str, header: str):
        return rows[mode][cols[header]]

    adaptive_stats = first.extras["fault_stats"]["adaptive"]
    outage_windows, total_loss_error, post_loss_zero = _run_total_loss()
    elapsed = time.perf_counter() - t0

    mode = "reduced" if REDUCED else "full"
    print(
        f"\nchaos recovery gate ({mode}): {len(first.extras['fault_schedule'])} "
        f"fault events, deterministic replay {deterministic}\n"
        f"  worst window: static {cell('static', 'worst_window'):.3f} "
        f"adaptive {cell('adaptive', 'worst_window'):.3f}\n"
        f"  adaptive replans: {cell('adaptive', 'failure_replans')} failure / "
        f"{cell('adaptive', 'recovery_replans')} recovery\n"
        f"  adaptive attainment: {cell('adaptive', 'under_failure'):.3f} under "
        f"failure -> {cell('adaptive', 'post_recovery'):.3f} post recovery\n"
        f"  total loss: {outage_windows} outage windows, "
        f"post-loss zero {post_loss_zero}, error {total_loss_error!r}\n"
        f"  elapsed {elapsed:.1f}s"
    )

    payload = {
        "benchmark": "bench_chaos_recovery",
        "kind": "chaos_recovery",
        "mode": mode,
        "fault_seed": FAULT_SEED,
        "fault_signature": first.extras["fault_signature"],
        "num_fault_events": len(first.extras["fault_schedule"]),
        "deterministic_replay": deterministic,
        "static_worst": round(float(cell("static", "worst_window")), 4),
        "adaptive_worst": round(float(cell("adaptive", "worst_window")), 4),
        "static_merged": round(float(cell("static", "merged_attainment")), 4),
        "adaptive_merged": round(float(cell("adaptive", "merged_attainment")), 4),
        "failure_replans": int(cell("adaptive", "failure_replans")),
        "recovery_replans": int(cell("adaptive", "recovery_replans")),
        "attainment_under_failure": round(float(cell("adaptive", "under_failure")), 4),
        "post_recovery_attainment": round(float(cell("adaptive", "post_recovery")), 4),
        "static_outage_windows": int(cell("static", "outage_windows")),
        "adaptive_outage_windows": int(cell("adaptive", "outage_windows")),
        "mean_time_to_replan_s": round(adaptive_stats["mean_time_to_replan_s"], 4),
        "mean_mttr_s": round(adaptive_stats["mean_mttr_s"], 4),
        "total_loss_outage_windows": int(outage_windows),
        "total_loss_error": total_loss_error,
        "total_loss_post_attainment_zero": post_loss_zero,
        "elapsed_s": round(elapsed, 2),
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_chaos_recovery.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"  wrote {out_path}")

    assert deterministic, (
        "same-seed chaos replay diverged: fault schedule or telemetry stream "
        "is not bitwise-identical across two runs"
    )
    assert payload["adaptive_worst"] >= payload["static_worst"] - EPSILON, (
        f"adaptive worst-window attainment {payload['adaptive_worst']} fell "
        f"below static {payload['static_worst']}"
    )
    assert payload["failure_replans"] >= 1, "no failure-triggered plan change installed"
    assert payload["recovery_replans"] >= 1, "no recovery-triggered plan change installed"
    assert (
        payload["post_recovery_attainment"]
        >= payload["attainment_under_failure"] - EPSILON
    ), (
        f"attainment did not recover after rejoin: "
        f"{payload['post_recovery_attainment']} post-recovery vs "
        f"{payload['attainment_under_failure']} under failure"
    )
    assert payload["total_loss_outage_windows"] >= 1, (
        "total-loss scenario produced no outage windows"
    )
    assert payload["total_loss_error"] == "", (
        f"total-loss scenario aborted the sweep: {payload['total_loss_error']}"
    )
    assert payload["total_loss_post_attainment_zero"], (
        "requests arriving after total capacity loss were not all reported unserved"
    )

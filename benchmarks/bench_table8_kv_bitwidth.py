"""Benchmark harness for Table 8 / Figure 18: 16-bit vs 4-bit KV transport."""

from conftest import run_experiment

from repro.experiments import table8_kv_bitwidth


def test_table8_kv_bitwidth(benchmark):
    result = run_experiment(
        benchmark,
        table8_kv_bitwidth.run,
        kwargs={"trace_duration": 15.0, "scheduler_steps": 10},
    )
    table_rows = {row[1]: row for row in result.rows if row[0] == "table8"}
    # 4-bit transport spends less time in KV communication and does not reduce throughput.
    assert table_rows["4-bit"][4] <= table_rows["16-bit"][4]
    assert table_rows["4-bit"][7] >= table_rows["16-bit"][7] * 0.95
    # Figure 18: at every batched token size, KV time shrinks monotonically with bits.
    fig_rows = [row for row in result.rows if row[0] == "fig18"]
    by_tokens = {}
    for row in fig_rows:
        by_tokens.setdefault(row[2], {})[row[1]] = row[4]
    for tokens, per_bits in by_tokens.items():
        assert per_bits["4-bit"] < per_bits["8-bit"] < per_bits["16-bit"], tokens

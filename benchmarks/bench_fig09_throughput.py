"""Benchmark harness for Figure 9: saturation throughput of all four systems."""

from conftest import run_experiment

from repro.experiments import fig9_throughput


def test_fig09_throughput(benchmark):
    result = run_experiment(
        benchmark,
        fig9_throughput.run,
        kwargs={"trace_duration": 20.0, "scheduler_steps": 15},
    )
    throughput = {(row[0], row[1]): row[2] for row in result.rows}
    for workload in ("coding", "conversation"):
        ts = throughput[(workload, "thunderserve")]
        hexgen = throughput[(workload, "hexgen")]
        # ThunderServe should outperform the heterogeneous co-locating baseline on
        # the decode-heavy conversation workload (paper: 1.3x).  Coding is so
        # prefill-skewed that a static phase split gives up some raw capacity on
        # our substrate (see EXPERIMENTS.md), so we only require rough parity.
        margin = 0.8 if workload == "coding" else 1.0
        assert ts >= hexgen * margin, workload

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by invoking the
corresponding ``repro.experiments`` module once (``rounds=1`` — these are
experiment harnesses, not micro-benchmarks) and prints the resulting rows, so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's numbers on
this substrate.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


def run_experiment(
    benchmark,
    run_fn: Callable[..., Any],
    kwargs: Optional[Dict[str, Any]] = None,
    precision: int = 3,
):
    """Run one experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(run_fn, kwargs=kwargs or {}, rounds=1, iterations=1)
    table = result.to_table(precision=precision)
    print("\n" + table)
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["num_rows"] = len(result.rows)
    return result

"""Benchmark harness for Table 4: full vs lightweight rescheduling overhead."""

from conftest import run_experiment

from repro.experiments import table4_overhead


def test_table4_rescheduling_overhead(benchmark):
    result = run_experiment(benchmark, table4_overhead.run, kwargs={"scheduler_steps": 12})
    rows = {row[0]: row for row in result.rows}
    full_total = rows["full"][3]
    light_total = rows["lightweight"][3]
    # Lightweight rescheduling reloads nothing and must be much cheaper overall
    # (paper: 157s vs 13s, a ~12x gap; we require a clear multiple).
    assert rows["lightweight"][2] == 0.0
    assert full_total > 3 * light_total

"""Micro-benchmark: vectorized scheduler hot path + scenario sweep throughput.

Unlike the other benchmarks (which regenerate one paper figure each), this one
measures the two performance claims of the scenario-engine PR:

1. **Candidate scoring speedup** — the vectorized
   :meth:`~repro.scheduling.estimator.SLOEstimator.attainment_matrix` versus the
   retained pre-refactor scalar reference, over repeated tabu-style rescoring of
   a fixture fleet (the acceptance bar is >= 3x; in practice the cached
   vectorized path lands far above it).
2. **Sweep wall-clock** — the full six-scenario :class:`ScenarioSweep` against a
   scheduled plan on the paper's 32-GPU cloud cluster.

Run with:  pytest benchmarks/bench_scenario_sweep.py -s --benchmark-only
(or plainly ``PYTHONPATH=src python -m pytest benchmarks/bench_scenario_sweep.py -s``).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.types import Phase
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import make_cloud_cluster
from repro.model.architecture import get_model_config
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.scenarios import ScenarioSweep, default_scenarios
from repro.scheduling.deployment import ServingGroup
from repro.scheduling.estimator import SLOEstimator
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.workload.spec import CONVERSATION_WORKLOAD

#: tabu-style rescoring rounds of the same fleet (neighbourhoods revisit groups)
SCORING_ROUNDS = 10


def _fixture_fleet(cluster, model, workload, estimator):
    """Eight 4-GPU serving groups (4 prefill + 4 decode) over the cloud cluster."""
    ids = cluster.gpu_ids
    prefills, decodes = [], []
    for k in range(8):
        gids = list(ids[k * 4 : (k + 1) * 4])
        phase = Phase.PREFILL if k % 2 == 0 else Phase.DECODE
        plan = deduce_parallel_plan(cluster, gids, phase, model, workload)
        group = ServingGroup(group_id=k, gpu_ids=tuple(gids), phase=phase, plan=plan)
        perf = estimator.replica_performance(group)
        (prefills if phase is Phase.PREFILL else decodes).append(perf)
    return prefills, decodes


def test_candidate_scoring_speedup():
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    workload = CONVERSATION_WORKLOAD
    slo = a100_reference_latency(model, workload).slo_spec(5.0)
    estimator = SLOEstimator(cluster, model, workload, slo, request_rate=6.0)
    prefills, decodes = _fixture_fleet(cluster, model, workload, estimator)

    # One untimed round each so both paths start from comparable state (the
    # scalar reference deliberately has no cross-call cache; the vectorized
    # path's cache warm-up is charged to the timed loop by re-building it).
    estimator.attainment_matrix_reference(prefills, decodes)
    t0 = time.perf_counter()
    for _ in range(SCORING_ROUNDS):
        d_ref = estimator.attainment_matrix_reference(prefills, decodes)
    t_scalar = time.perf_counter() - t0

    cold = SLOEstimator(cluster, model, workload, slo, request_rate=6.0)
    cold_prefills, cold_decodes = _fixture_fleet(cluster, model, workload, cold)
    t0 = time.perf_counter()
    for _ in range(SCORING_ROUNDS):
        d_vec = cold.attainment_matrix(cold_prefills, cold_decodes)
    t_vector = time.perf_counter() - t0

    speedup = t_scalar / t_vector
    print(
        f"\ncandidate scoring over {SCORING_ROUNDS} rounds: "
        f"scalar {t_scalar * 1e3:.1f} ms, vectorized {t_vector * 1e3:.1f} ms "
        f"(cold caches) -> {speedup:.1f}x"
    )
    np.testing.assert_allclose(d_vec, d_ref, atol=1e-9)
    assert speedup >= 3.0, f"vectorized scoring only {speedup:.2f}x faster"


def test_scenario_sweep_wall_clock():
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    scheduler = Scheduler(
        SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=8, num_neighbors=5, memory_size=5, patience=5),
            seed=0,
        )
    )
    t0 = time.perf_counter()
    schedule = scheduler.schedule(cluster, model, CONVERSATION_WORKLOAD, request_rate=5.0)
    t_schedule = time.perf_counter() - t0

    sweep = ScenarioSweep(default_scenarios(duration=30.0), seed=0)
    t0 = time.perf_counter()
    outcomes = sweep.evaluate(cluster, model, schedule.plan)
    t_sweep = time.perf_counter() - t0

    print(f"\nschedule: {t_schedule:.2f}s ({schedule.trace.num_evaluations} evaluations)")
    print(f"sweep over {len(outcomes)} scenarios: {t_sweep:.2f}s")
    print(ScenarioSweep.to_table(outcomes))
    assert len(outcomes) >= 6
    assert all(o.num_finished > 0 for o in outcomes.values())


def test_scenario_sweep_process_pool():
    """Process-pool sweep: identical outcomes, faster wall-clock on >= 2 cores.

    The simulator is pure Python, so the thread-mode sweep serialises on the GIL
    for long traces; ``executor="process"`` runs every scenario in its own
    interpreter.  On single-core runners the speedup assert is skipped (process
    start-up cannot be amortised without parallel hardware), but outcome
    equality is always enforced.
    """
    reduced = bool(int(os.environ.get("REPRO_BENCH_REDUCED", "0")))
    duration = 60.0 if reduced else 300.0
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    scheduler = Scheduler(
        SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=8, num_neighbors=5, memory_size=5, patience=5),
            seed=0,
        )
    )
    plan = scheduler.schedule(cluster, model, CONVERSATION_WORKLOAD, request_rate=5.0).plan
    scenarios = default_scenarios(duration=duration)

    t0 = time.perf_counter()
    thread = ScenarioSweep(scenarios, seed=0, executor="thread").evaluate(cluster, model, plan)
    t_thread = time.perf_counter() - t0
    t0 = time.perf_counter()
    process = ScenarioSweep(scenarios, seed=0, executor="process").evaluate(cluster, model, plan)
    t_process = time.perf_counter() - t0

    cores = os.cpu_count() or 1
    print(
        f"\nsweep over {len(scenarios)} scenarios x {duration:.0f}s traces on {cores} cores: "
        f"thread {t_thread:.2f}s, process {t_process:.2f}s "
        f"({t_thread / t_process:.2f}x)"
    )
    for name in thread:
        a, b = thread[name], process[name]
        assert a.num_requests == b.num_requests, name
        assert a.num_finished == b.num_finished, name
        assert a.attainment_e2e == b.attainment_e2e, name
        assert a.output_token_throughput == b.output_token_throughput, name
        assert a.per_tenant_attainment == b.per_tenant_attainment, name
    if cores >= 2:
        assert t_process < t_thread, (
            f"process sweep ({t_process:.2f}s) not faster than threads "
            f"({t_thread:.2f}s) on {cores} cores"
        )

"""Benchmark harness for Figure 13: cloud vs in-house bandwidth matrices."""

from conftest import run_experiment

from repro.experiments import fig13_bandwidth


def test_fig13_bandwidth_matrices(benchmark):
    result = run_experiment(benchmark, fig13_bandwidth.run)
    cloud = next(r for r in result.rows if "cloud" in r[0])
    inhouse = next(r for r in result.rows if "in-house" in r[0])
    # The cloud matrix is strongly heterogeneous; the in-house matrix is uniform.
    assert cloud[4] > 5.0
    assert inhouse[4] == 1.0

"""Benchmark harness for Figure 7: ThunderServe vs HexGen SLO attainment on the cloud."""

from conftest import run_experiment

from repro.experiments import fig7_cloud_slo


def test_fig07_cloud_slo(benchmark):
    result = run_experiment(
        benchmark,
        fig7_cloud_slo.run,
        kwargs={
            "rates": {"coding": (9.0,), "conversation": (6.0,)},
            "trace_duration": 20.0,
            "scheduler_steps": 10,
        },
    )
    # ThunderServe should need a latency deadline no larger than HexGen's to reach
    # 90% E2E attainment (the paper reports 1.4-1.8x lower deadlines).
    for point, deadlines in result.extras["min_deadline_90"].items():
        assert deadlines["thunderserve"] <= deadlines["hexgen"] * 1.2, point

"""Benchmark harness for Table 1: GPU specifications and pricing."""

from conftest import run_experiment

from repro.experiments import table1_gpus


def test_table1_gpu_catalog(benchmark):
    result = run_experiment(benchmark, table1_gpus.run)
    assert len(result.rows) == 5


def test_table1_phase_affinity_per_dollar(benchmark):
    """A40 tops FLOPS/$ (prefill affinity); 3090Ti tops GB/s/$ (decode affinity)."""
    result = run_experiment(benchmark, table1_gpus.run)
    by_gpu = {row[0]: row for row in result.rows}
    flops_per_dollar = {gpu: row[5] for gpu, row in by_gpu.items()}
    bandwidth_per_dollar = {gpu: row[6] for gpu, row in by_gpu.items()}
    assert max(flops_per_dollar, key=flops_per_dollar.get) == "A40"
    assert max(bandwidth_per_dollar, key=bandwidth_per_dollar.get) == "3090Ti"

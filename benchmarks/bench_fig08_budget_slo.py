"""Benchmark harness for Figure 8: cloud ThunderServe vs in-house DistServe / vLLM."""

from conftest import run_experiment

from repro.experiments import fig8_budget_slo


def test_fig08_budget_slo(benchmark):
    result = run_experiment(
        benchmark,
        fig8_budget_slo.run,
        kwargs={
            "rates": {"coding": (12.0,), "conversation": (9.0,)},
            "trace_duration": 20.0,
            "scheduler_steps": 15,
        },
    )
    # At the same hourly budget, ThunderServe on the cloud should need a latency
    # deadline no larger than the in-house baselines on the decode-heavy
    # conversation workload, where the cloud GPUs' aggregate memory bandwidth per
    # dollar dominates.  The prefill-bound coding workload does not reproduce the
    # paper's win under Table-1 list prices (the A100 server has essentially the
    # same aggregate FLOPS as the 32 rented GPUs) — EXPERIMENTS.md records the
    # measured gap; here we only require that every system produced a full curve.
    for point, deadlines in result.extras["min_deadline_90"].items():
        if point.startswith("conversation"):
            assert deadlines["thunderserve(cloud)"] <= deadlines["vllm(in-house)"] * 1.2, point
    systems = {row[2] for row in result.rows}
    assert systems == {"thunderserve(cloud)", "distserve(in-house)", "vllm(in-house)"}

"""Bench regression gate: compare fresh benchmark reports against committed baselines.

The CI bench-smoke job used to run every benchmark under a blanket
``continue-on-error``, which made the whole step advisory — engine-agreement
breaks and order-of-magnitude perf regressions alike shipped silently.  This
script splits the signal from the noise:

**Gating** (non-zero exit):

* the fresh run is missing or unreadable (the benchmark crashed);
* ``identical_metrics`` is false — the fast engine diverged from the per-event
  reference engine, which is a correctness break, not a perf wobble;
* the fast-vs-reference **speedup ratio** regressed by more than
  ``--max-regression`` (default 30%) against the committed baseline.  The ratio
  is measured fast vs. reference *on the same machine in the same run*, so
  shared-runner slowness largely cancels out of it;
* the long-decode trace did not fully drain;
* the baseline and fresh run used different benchmark modes (a reduced-mode
  run must not be judged against a full-mode baseline, or vice versa).

Reports with ``"kind": "estimator_agreement"`` (the saturation-ramp benchmark)
are gated under their own rules instead of the speedup rules:

* an overloaded plan (``rho >= 1``) must estimate **exactly zero** attainment;
* the worst ramp-point gap and the mean gap must sit within the tolerances the
  report itself records;
* the mean gap must not drift more than ``GAP_DRIFT_SLACK`` above the committed
  baseline's — simulation seeds are pinned, so genuine estimator changes are
  the only thing that moves it.

Reports with ``"kind": "chaos_recovery"`` (the fault-storm benchmark) gate the
failure-lifecycle properties instead:

* same-seed chaos replay must be deterministic (bitwise-identical fault
  schedule and telemetry stream across two runs);
* the fault-aware adaptive loop must hold worst-window attainment at least at
  the static run's, with >= 1 failure-triggered and >= 1 recovery-triggered
  plan change installed, and post-recovery attainment at least the attainment
  under failure;
* the total-loss scenario must complete with >= 1 zero-attainment outage
  window instead of aborting the sweep;
* adaptive worst-window attainment must not drift more than
  ``CHAOS_DRIFT_SLACK`` from the committed baseline — the replay is
  deterministic, so only a genuine serving change can move it.

Reports with ``"kind": "request_reliability"`` (the in-engine retry benchmark)
gate the request-level fault semantics:

* the bounded-retry arm must complete strictly more requests than the
  drop-only arm under the identical seeded storm, with >= 1
  ``retried_then_finished`` outcome on the retry side and >= 1
  ``dropped_outage`` outcome on the drop-only side;
* retry-arm SLO attainment must not fall below the drop-only arm's;
* same-seed storm replay must be deterministic (identical ``fault_stats``
  and per-window telemetry across two runs);
* the streamed conservation leg must hold: every arrival maps to exactly one
  terminal outcome (``stream_conserved`` true, outcome counts summing to the
  trace size);
* retry-arm attainment must not drift more than ``RELIABILITY_DRIFT_SLACK``
  from the committed baseline — the storm is seeded end to end, so movement
  means the engine's fault disposition changed.

Reports with ``"kind": "megatrace"`` (the million-request streaming benchmark)
gate the streaming-core contract:

* the subsampled-window spot check must be bitwise-identical between the fast
  engine and the per-event reference oracle;
* the streamed trace must fully drain;
* streamed throughput (requests per second of wall clock) must not fall below
  ``1 - MEGATRACE_THROUGHPUT_SLACK`` of the committed baseline's — measured as
  a ratio, so it still moves with runner hardware, which is why the slack is
  loose (absolute wall clock stays advisory).

**Non-gating** (printed as warnings): absolute wall-clock movements.  Those are
dominated by runner hardware and CPU steal, so they stay advisory.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_simcore_reduced.json \
        --fresh BENCH_simcore.json

Several (baseline, fresh) pairs can be gated in one invocation — the CI
bench-smoke job checks the decode-core, prefill-pipeline and
estimator-saturation benchmarks together::

    python benchmarks/check_regression.py \
        --pair benchmarks/baselines/BENCH_simcore_reduced.json BENCH_simcore.json \
        --pair benchmarks/baselines/BENCH_prefill_reduced.json BENCH_prefill.json \
        --pair benchmarks/baselines/BENCH_estimator_saturation_reduced.json \
               BENCH_estimator_saturation.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: Fractional speedup loss vs. the baseline above which the gate fails.
DEFAULT_MAX_REGRESSION = 0.30

#: Fractional absolute wall-clock growth above which a (non-gating) warning is
#: printed.  Deliberately loose: shared runners routinely move 2x.
WALLCLOCK_WARN_FACTOR = 2.0

#: Absolute mean-gap growth vs. the baseline above which an estimator-agreement
#: report fails.  Seeds are pinned, so the sim side is deterministic; only an
#: estimator change can move the gap, and this much movement needs a fresh
#: baseline (i.e. a deliberate decision), not a silent pass.
GAP_DRIFT_SLACK = 0.03

#: Absolute movement of adaptive worst-window attainment vs. the committed
#: chaos baseline above which the gate fails.  The fault replay is
#: deterministic end to end, so movement means the serving or rescheduling
#: behaviour changed and the baseline needs a deliberate regeneration.
CHAOS_DRIFT_SLACK = 0.05

#: Absolute movement of retry-arm SLO attainment vs. the committed
#: request-reliability baseline above which the gate fails.  The storm is
#: seeded end to end (trace, fault instants, retry jitter), so attainment can
#: only move when the engine's fault-disposition behaviour changes — which
#: needs a deliberate baseline regeneration, not a silent pass.
RELIABILITY_DRIFT_SLACK = 0.05

#: Fractional streamed-throughput loss vs. the committed megatrace baseline
#: above which the gate fails.  Deliberately loose — throughput is an absolute
#: wall-clock quantity, so shared-runner noise moves it — but a larger drop
#: means the streaming fast path itself regressed.
MEGATRACE_THROUGHPUT_SLACK = 0.60


def load_report(path: str) -> Optional[Dict]:
    """Load a benchmark JSON report; ``None`` when missing or unparsable."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def compare_agreement(baseline: Dict, fresh: Dict) -> Tuple[List[str], List[str]]:
    """Gate an estimator-agreement report (kind ``estimator_agreement``)."""
    failures: List[str] = []
    warnings: List[str] = []

    if not fresh.get("overload_estimate_zero", False):
        failures.append(
            "overloaded plan no longer estimates exactly zero attainment "
            f"(estimated {fresh.get('overload_estimated')!r} at "
            f"rho {fresh.get('overload_rho')!r}) — the overload contract broke"
        )

    for key, bar_key in (("max_gap", "point_tolerance"), ("mean_gap", "mean_tolerance")):
        try:
            value = float(fresh[key])
            bar = float(fresh[bar_key])
        except (KeyError, TypeError, ValueError):
            failures.append(f"{key}/{bar_key} missing from the fresh report")
            continue
        if value > bar:
            failures.append(
                f"{key} {value:.3f} exceeds the report's own tolerance {bar}"
            )

    try:
        base_mean = float(baseline["mean_gap"])
        fresh_mean = float(fresh["mean_gap"])
    except (KeyError, TypeError, ValueError):
        failures.append("mean_gap missing from baseline or fresh report")
    else:
        if fresh_mean > base_mean + GAP_DRIFT_SLACK:
            failures.append(
                f"mean estimator-vs-simulator gap drifted from {base_mean:.3f} "
                f"to {fresh_mean:.3f} (> {GAP_DRIFT_SLACK} slack); if the "
                "estimator change is intentional, regenerate the baseline"
            )

    return failures, warnings


def compare_chaos(baseline: Dict, fresh: Dict) -> Tuple[List[str], List[str]]:
    """Gate a chaos-recovery report (kind ``chaos_recovery``)."""
    failures: List[str] = []
    warnings: List[str] = []

    if not fresh.get("deterministic_replay", False):
        failures.append(
            "deterministic_replay is false: the same injector seed no longer "
            "produces a bitwise-identical fault schedule and telemetry stream"
        )

    ordering_checks = (
        (
            "adaptive_worst",
            "static_worst",
            "fault-aware adaptive worst-window attainment fell below static",
        ),
        (
            "post_recovery_attainment",
            "attainment_under_failure",
            "attainment did not recover after the rejoin replan",
        ),
    )
    for high_key, low_key, message in ordering_checks:
        try:
            high = float(fresh[high_key])
            low = float(fresh[low_key])
        except (KeyError, TypeError, ValueError):
            failures.append(f"{high_key}/{low_key} missing from the fresh report")
            continue
        if high < low - 1e-9:
            failures.append(f"{message}: {high_key} {high:.3f} < {low_key} {low:.3f}")

    for key, label in (
        ("failure_replans", "failure-triggered"),
        ("recovery_replans", "recovery-triggered"),
    ):
        count = fresh.get(key)
        if not isinstance(count, int) or count < 1:
            failures.append(
                f"no {label} plan change installed ({key} is {count!r}); the "
                "failure lifecycle no longer exercises the rescheduler"
            )

    if not isinstance(fresh.get("total_loss_outage_windows"), int) or (
        fresh["total_loss_outage_windows"] < 1
    ):
        failures.append(
            "total-loss scenario produced no outage windows "
            f"({fresh.get('total_loss_outage_windows')!r})"
        )
    if fresh.get("total_loss_error"):
        failures.append(
            f"total-loss scenario aborted the sweep: {fresh['total_loss_error']}"
        )
    if not fresh.get("total_loss_post_attainment_zero", False):
        failures.append(
            "requests arriving after total capacity loss were not all "
            "reported unserved (outage attainment must be zero)"
        )

    try:
        base_worst = float(baseline["adaptive_worst"])
        fresh_worst = float(fresh["adaptive_worst"])
    except (KeyError, TypeError, ValueError):
        failures.append("adaptive_worst missing from baseline or fresh report")
    else:
        if abs(fresh_worst - base_worst) > CHAOS_DRIFT_SLACK:
            failures.append(
                f"adaptive worst-window attainment drifted from {base_worst:.3f} "
                f"to {fresh_worst:.3f} (> {CHAOS_DRIFT_SLACK} slack); the replay "
                "is deterministic, so if the serving change is intentional, "
                "regenerate the baseline"
            )

    return failures, warnings


def compare_reliability(baseline: Dict, fresh: Dict) -> Tuple[List[str], List[str]]:
    """Gate a request-reliability report (kind ``request_reliability``)."""
    failures: List[str] = []
    warnings: List[str] = []

    if not fresh.get("deterministic_replay", False):
        failures.append(
            "deterministic_replay is false: the same-seed storm no longer "
            "produces identical fault_stats and per-window telemetry"
        )

    retry_completed = fresh.get("retry_completed")
    drop_completed = fresh.get("drop_completed")
    if not isinstance(retry_completed, int) or not isinstance(drop_completed, int):
        failures.append(
            "retry_completed/drop_completed missing from the fresh report"
        )
    elif retry_completed <= drop_completed:
        failures.append(
            f"retry no longer beats drop-only: {retry_completed} vs "
            f"{drop_completed} completed under the identical storm"
        )

    for key, label in (
        ("retry_recovered", "retried_then_finished outcome on the retry arm"),
        ("drop_dropped", "dropped_outage outcome on the drop-only arm"),
    ):
        count = fresh.get(key)
        if not isinstance(count, int) or count < 1:
            failures.append(
                f"no {label} ({key} is {count!r}); the storm no longer "
                "exercises the disposition path under test"
            )

    try:
        retry_att = float(fresh["retry_attainment"])
        drop_att = float(fresh["drop_attainment"])
    except (KeyError, TypeError, ValueError):
        failures.append("retry/drop attainment missing from the fresh report")
    else:
        if retry_att < drop_att - 1e-9:
            failures.append(
                f"retry attainment {retry_att:.3f} fell below drop-only's "
                f"{drop_att:.3f} under the identical storm"
            )

    if not fresh.get("stream_conserved", False):
        failures.append(
            "outcome conservation broke at streaming scale: "
            f"{fresh.get('stream_conservation_error') or 'unknown error'}"
        )
    outcomes = fresh.get("stream_outcomes")
    total = fresh.get("stream_num_requests")
    if not isinstance(outcomes, dict) or not isinstance(total, int):
        failures.append(
            "stream_outcomes/stream_num_requests missing from the fresh report"
        )
    elif sum(outcomes.values()) != total:
        failures.append(
            f"stream outcomes sum to {sum(outcomes.values())}, expected {total}"
        )

    try:
        base_att = float(baseline["retry_attainment"])
        fresh_att = float(fresh["retry_attainment"])
    except (KeyError, TypeError, ValueError):
        failures.append("retry_attainment missing from baseline or fresh report")
    else:
        if abs(fresh_att - base_att) > RELIABILITY_DRIFT_SLACK:
            failures.append(
                f"retry-arm attainment drifted from {base_att:.3f} to "
                f"{fresh_att:.3f} (> {RELIABILITY_DRIFT_SLACK} slack); the "
                "storm is seeded, so if the disposition change is "
                "intentional, regenerate the baseline"
            )

    base_wall = baseline.get("elapsed_s")
    fresh_wall = fresh.get("elapsed_s")
    if (
        isinstance(base_wall, (int, float))
        and isinstance(fresh_wall, (int, float))
        and base_wall > 0
        and fresh_wall > WALLCLOCK_WARN_FACTOR * base_wall
    ):
        warnings.append(
            f"benchmark wall clock grew {fresh_wall / base_wall:.1f}x "
            f"({base_wall:.2f}s -> {fresh_wall:.2f}s); non-gating (runner noise)"
        )

    return failures, warnings


def compare_megatrace(baseline: Dict, fresh: Dict) -> Tuple[List[str], List[str]]:
    """Gate a million-request streaming report (kind ``megatrace``)."""
    failures: List[str] = []
    warnings: List[str] = []

    if not fresh.get("spot_identical", False):
        failures.append(
            "spot_identical is false: the fast engine diverged from the "
            "per-event reference oracle on the subsampled window "
            "(correctness break, not a perf wobble)"
        )

    finished = fresh.get("num_finished_fast")
    requests = fresh.get("num_requests")
    if not isinstance(finished, int) or not isinstance(requests, int):
        failures.append(
            "num_finished_fast/num_requests missing from the fresh report"
        )
    elif finished != requests:
        failures.append(
            f"streamed trace did not drain: {finished} of {requests} "
            "requests finished"
        )

    try:
        base_rps = float(baseline["requests_per_s"])
        fresh_rps = float(fresh["requests_per_s"])
    except (KeyError, TypeError, ValueError):
        failures.append("requests_per_s missing from baseline or fresh report")
    else:
        floor = base_rps * (1.0 - MEGATRACE_THROUGHPUT_SLACK)
        if fresh_rps < floor:
            failures.append(
                f"streamed throughput collapsed: {fresh_rps:,.0f} req/s vs "
                f"baseline {base_rps:,.0f} req/s (floor {floor:,.0f} req/s); "
                "if the engine change is intentional, regenerate the baseline"
            )

    base_wall = baseline.get("t_fast_s")
    fresh_wall = fresh.get("t_fast_s")
    if (
        isinstance(base_wall, (int, float))
        and isinstance(fresh_wall, (int, float))
        and base_wall > 0
        and fresh_wall > WALLCLOCK_WARN_FACTOR * base_wall
    ):
        warnings.append(
            f"streamed wall clock grew {fresh_wall / base_wall:.1f}x "
            f"({base_wall:.3f}s -> {fresh_wall:.3f}s); non-gating (runner noise)"
        )

    return failures, warnings


def compare(
    baseline: Dict, fresh: Dict, max_regression: float = DEFAULT_MAX_REGRESSION
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, warnings)`` for a fresh report against a baseline."""
    failures: List[str] = []
    warnings: List[str] = []

    base_mode = baseline.get("mode")
    fresh_mode = fresh.get("mode")
    if base_mode != fresh_mode:
        failures.append(
            f"benchmark mode mismatch: baseline is {base_mode!r} but the fresh "
            f"run is {fresh_mode!r}; regenerate the baseline in the same mode"
        )
        return failures, warnings

    special_kinds = {
        "estimator_agreement": compare_agreement,
        "chaos_recovery": compare_chaos,
        "megatrace": compare_megatrace,
        "request_reliability": compare_reliability,
    }
    kinds = (baseline.get("kind"), fresh.get("kind"))
    if any(kind in special_kinds for kind in kinds):
        if baseline.get("kind") != fresh.get("kind"):
            failures.append(
                f"report kind mismatch: baseline is {baseline.get('kind')!r} "
                f"but the fresh run is {fresh.get('kind')!r}"
            )
            return failures, warnings
        return special_kinds[fresh["kind"]](baseline, fresh)

    if not fresh.get("identical_metrics", False):
        failures.append(
            "identical_metrics is false: the fast engine diverged from the "
            "per-event reference engine (correctness break, not a perf wobble)"
        )

    finished = fresh.get("num_finished_fast")
    requests = fresh.get("num_requests")
    if finished is None or requests is None:
        # Guard the gate itself: a payload that stops reporting these keys must
        # not pass vacuously (None == None).
        failures.append(
            "num_finished_fast/num_requests missing from the fresh report"
        )
    elif finished != requests:
        failures.append(
            f"trace did not drain: {finished} of {requests} requests finished"
        )

    try:
        base_speedup = float(baseline["speedup"])
        fresh_speedup = float(fresh["speedup"])
    except (KeyError, TypeError, ValueError):
        failures.append("speedup missing from baseline or fresh report")
    else:
        floor = base_speedup * (1.0 - max_regression)
        if fresh_speedup < floor:
            failures.append(
                f"speedup regressed more than {max_regression:.0%}: "
                f"{fresh_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x)"
            )

    base_wall = baseline.get("t_fast_s")
    fresh_wall = fresh.get("t_fast_s")
    if (
        isinstance(base_wall, (int, float))
        and isinstance(fresh_wall, (int, float))
        and base_wall > 0
        and fresh_wall > WALLCLOCK_WARN_FACTOR * base_wall
    ):
        warnings.append(
            f"fast-engine wall clock grew {fresh_wall / base_wall:.1f}x "
            f"({base_wall:.3f}s -> {fresh_wall:.3f}s); non-gating (runner noise)"
        )

    return failures, warnings


def check_pair(baseline_path: str, fresh_path: str, max_regression: float) -> int:
    """Gate one (baseline, fresh) report pair; returns the number of failures."""
    baseline = load_report(baseline_path)
    if baseline is None:
        print(f"FAIL: baseline report {baseline_path!r} missing or unreadable")
        return 1
    fresh = load_report(fresh_path)
    if fresh is None:
        print(
            f"FAIL: fresh report {fresh_path!r} missing or unreadable — "
            "did the benchmark run crash?"
        )
        return 1

    name = fresh.get("benchmark", fresh_path)
    failures, warnings = compare(baseline, fresh, max_regression=max_regression)
    for message in warnings:
        print(f"WARN: [{name}] {message}")
    if failures:
        for message in failures:
            print(f"FAIL: [{name}] {message}")
        return len(failures)
    if fresh.get("kind") == "estimator_agreement":
        print(
            f"OK: [{name}] max gap {fresh['max_gap']} / mean gap "
            f"{fresh['mean_gap']} within tolerances "
            f"(mode {fresh.get('mode')!r}), overloaded plan estimates zero"
        )
    elif fresh.get("kind") == "megatrace":
        print(
            f"OK: [{name}] spot window bitwise-identical, "
            f"{fresh['num_finished_fast']}/{fresh['num_requests']} drained, "
            f"{fresh['requests_per_s']:,.0f} req/s "
            f"(mode {fresh.get('mode')!r})"
        )
    elif fresh.get("kind") == "request_reliability":
        print(
            f"OK: [{name}] retry completed {fresh['retry_completed']} "
            f"({fresh['retry_recovered']} after retry) vs drop-only "
            f"{fresh['drop_completed']}, deterministic replay, "
            f"{fresh['stream_num_requests']} streamed requests conserved "
            f"(mode {fresh.get('mode')!r})"
        )
    elif fresh.get("kind") == "chaos_recovery":
        print(
            f"OK: [{name}] deterministic replay, adaptive worst "
            f"{fresh['adaptive_worst']} >= static {fresh['static_worst']}, "
            f"{fresh['failure_replans']} failure / {fresh['recovery_replans']} "
            f"recovery replans, total loss degrades gracefully "
            f"(mode {fresh.get('mode')!r})"
        )
    else:
        print(
            f"OK: [{name}] speedup {fresh['speedup']}x vs baseline "
            f"{baseline['speedup']}x (mode {fresh.get('mode')!r}), "
            "metrics bitwise-identical"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/BENCH_simcore_reduced.json",
        help="committed baseline report (mode must match the fresh run)",
    )
    parser.add_argument(
        "--fresh",
        default="BENCH_simcore.json",
        help="report written by the benchmark run under test",
    )
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("BASELINE", "FRESH"),
        help="gate an additional (baseline, fresh) report pair; repeatable — "
        "when given, --baseline/--fresh are ignored",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="fractional speedup loss that fails the gate (default 0.30)",
    )
    args = parser.parse_args(argv)

    pairs = args.pair if args.pair else [(args.baseline, args.fresh)]
    total_failures = 0
    for baseline_path, fresh_path in pairs:
        total_failures += check_pair(
            baseline_path, fresh_path, max_regression=args.max_regression
        )
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark harness for Figure 2: effect of batching on prefill vs decode."""

from conftest import run_experiment

from repro.experiments import fig2_batching


def test_fig02_batching(benchmark):
    result = run_experiment(benchmark, fig2_batching.run)
    # Prefill throughput plateaus; decode throughput keeps scaling with the batch.
    assert result.extras["prefill_gain"] < 1.5
    assert result.extras["decode_gain"] > 3.0

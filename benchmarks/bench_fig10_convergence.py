"""Benchmark harness for Figure 10: scheduler convergence vs cluster size."""

from conftest import run_experiment

from repro.experiments import fig10_convergence


def test_fig10_convergence(benchmark):
    result = run_experiment(
        benchmark,
        fig10_convergence.run,
        kwargs={"num_steps": 12, "num_neighbors": 5},
    )
    times = result.extras["convergence_time_s"]
    # The search converges within seconds-to-minutes at every cluster size, and
    # the best-so-far curve is monotone for each size.
    for size, t in times.items():
        assert t < 300.0, size
    series = {}
    for size, elapsed, best in result.rows:
        series.setdefault(size, []).append((elapsed, best))
    for points in series.values():
        values = [b for _, b in sorted(points)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

"""Benchmark harness for Table 3: deployment plans discovered by the scheduler."""

from conftest import run_experiment

from repro.experiments import table3_deployment


def test_table3_deployment_plans(benchmark):
    result = run_experiment(
        benchmark,
        table3_deployment.run,
        kwargs={"scheduler_steps": 15},
    )
    ratios = result.extras["ratios"]
    coding_prefill, coding_decode = ratios["coding"]
    conv_prefill, conv_decode = ratios["conversation"]
    # Coding dedicates at least as large a replica share to prefill as conversation.
    assert coding_prefill / (coding_prefill + coding_decode) >= conv_prefill / (
        conv_prefill + conv_decode
    )
    # A40 capacity should lean towards prefill: across both workloads, at least as
    # many A40s serve prefill as decode (the paper's qualitative finding).
    a40_prefill = sum(result.extras["prefill_gpu_types"][w].get("A40", 0) for w in ratios)
    a40_decode = sum(result.extras["decode_gpu_types"][w].get("A40", 0) for w in ratios)
    assert a40_prefill >= a40_decode

"""Benchmark harness for Figure 14: SLO attainment by prefill-to-decode ratio."""

from conftest import run_experiment

from repro.experiments import fig14_ratio_slo


def test_fig14_ratio_slo(benchmark):
    result = run_experiment(
        benchmark,
        fig14_ratio_slo.run,
        kwargs={
            "ratios": ((5, 3), (4, 4), (3, 5)),
            "trace_duration": 12.0,
            "slo_scales": (1.0, 2.0, 3.0, 5.0),
        },
    )
    # Attainment is monotone in the SLO scale for every (workload, ratio) series.
    series = {}
    for workload, ratio, scale, attainment in result.rows:
        series.setdefault((workload, ratio), []).append((scale, attainment))
    for points in series.values():
        points.sort()
        values = [a for _, a in points]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

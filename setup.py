"""Setuptools shim.

All metadata (name, dependencies, the ``dev`` extra, the src/ layout) lives in
``pyproject.toml``; setuptools >= 61 reads it from there.  The shim is kept for
tooling that still drives the legacy ``setup.py`` entry points.  Note the
offline dev environment ships no ``wheel`` package, so editable installs are
unavailable there — run from the tree with ``PYTHONPATH=src`` instead (the
tier-1 recipe in ROADMAP.md); networked CI installs via ``pip install -e .[dev]``.
"""

from setuptools import setup

setup()

"""Setuptools entry point.

The offline environment ships setuptools but not the ``wheel`` package, so PEP 660
editable installs (which build a wheel) are unavailable; this classic ``setup.py``
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of ThunderServe: High-performance and Cost-efficient LLM "
        "Serving in Cloud Environments (MLSys 2025)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)

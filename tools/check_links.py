#!/usr/bin/env python3
"""Validate intra-repo markdown links.

Scans ``README.md`` and ``docs/*.md`` for markdown links and inline reference
targets, resolves every relative target against the file that contains it, and
fails (exit code 1) if any target does not exist in the working tree.  External
links (``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``)
are skipped; a relative target's ``#anchor`` suffix is stripped before the
existence check.

Run from anywhere inside the repo:

    python tools/check_links.py

Used by the CI ``docs`` job; see ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

# Inline links [text](target) — stops at the first unescaped ')'.  Images
# ![alt](target) match too via the optional leading '!'.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [label]: target
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> Path:
    """Locate the repository root (the directory containing README.md)."""
    here = Path(__file__).resolve().parent
    for candidate in (here, *here.parents):
        if (candidate / "README.md").exists():
            return candidate
    raise SystemExit("check_links: could not locate repo root (no README.md found)")


def markdown_files(root: Path) -> List[Path]:
    """The markdown files the checker covers: README.md plus docs/*.md."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def extract_targets(text: str) -> Iterable[str]:
    """Yield every link target appearing in ``text``."""
    in_code_block = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for match in _INLINE_LINK.finditer(line):
            yield match.group(1)
        for match in _REF_DEF.finditer(line):
            yield match.group(1)


def check_file(md_file: Path, root: Path) -> List[Tuple[str, str]]:
    """Return (target, reason) pairs for every broken link in ``md_file``."""
    broken: List[Tuple[str, str]] = []
    for target in extract_targets(md_file.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_PREFIXES):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure anchor after stripping
            continue
        if path_part.startswith("/"):
            resolved = root / path_part.lstrip("/")
        else:
            resolved = (md_file.parent / path_part).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            broken.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            broken.append((target, "target does not exist"))
    return broken


def main(argv: List[str]) -> int:
    """Check every covered markdown file; print failures; return exit code."""
    root = repo_root()
    files = [Path(a).resolve() for a in argv] or markdown_files(root)
    failures = 0
    for md_file in files:
        for target, reason in check_file(md_file, root):
            print(f"{md_file.relative_to(root)}: broken link {target!r} ({reason})")
            failures += 1
    if failures:
        print(f"check_links: {failures} broken link(s)")
        return 1
    print(f"check_links: OK ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

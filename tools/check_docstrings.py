#!/usr/bin/env python3
"""Offline docstring gate for the documented packages.

CI enforces pydocstyle (ruff's ``D`` rules, numpy convention) on
``repro.serving``, ``repro.scenarios``, ``repro.simulation`` and
``repro.workload`` — see ``[tool.ruff.lint]`` in ``pyproject.toml``.  This script is the dependency-free mirror of the
highest-signal subset of those rules, so the gate is runnable in offline
environments where ruff is not installed:

* coverage — public modules, classes, functions and methods must carry a
  docstring (D100-D104, with the D105/D107 exemptions from pyproject.toml);
* summary format — docstrings start with a capitalised summary line ending in
  a period (D403/D400), and multi-line docstrings put a blank line after the
  summary (D205);
* numpy sections — section underlines are dashes of exactly the section-name
  length (D407/D409).

Run:  python tools/check_docstrings.py [paths...]
Defaults to src/repro/serving, src/repro/scenarios, src/repro/simulation and
src/repro/workload.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

_SECTIONS = {
    "Parameters", "Returns", "Yields", "Raises", "Attributes",
    "Notes", "Examples", "See Also", "Warnings", "References",
}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_docstring_format(doc: str, where: str, problems: List[str]) -> None:
    lines = doc.strip().splitlines()
    if not lines:
        problems.append(f"{where}: empty docstring")
        return
    summary = lines[0].strip()
    if summary and summary[0].isalpha() and not summary[0].isupper():
        problems.append(f"{where}: summary line not capitalised (D403)")
    if not summary.endswith("."):
        problems.append(f"{where}: summary line should end with a period (D400)")
    if len(lines) > 1 and lines[1].strip():
        problems.append(f"{where}: blank line required after summary (D205)")
    for i, line in enumerate(lines[:-1]):
        name = line.strip()
        if name in _SECTIONS:
            underline = lines[i + 1].strip()
            if underline != "-" * len(name):
                problems.append(
                    f"{where}: section {name!r} underline must be "
                    f"{len(name)} dashes (D407/D409)"
                )


def _check_node(node: ast.AST, qualname: str, path: Path, problems: List[str]) -> None:
    doc = ast.get_docstring(node, clean=True)
    kind = type(node).__name__
    where = f"{path}:{getattr(node, 'lineno', 1)} {qualname or '<module>'}"
    if doc is None:
        problems.append(f"{where}: missing docstring ({kind})")
        return
    _check_docstring_format(doc, where, problems)


def check_file(path: Path, problems: List[str]) -> None:
    """Check one python file's public API docstrings, appending problems."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    _check_node(tree, "", path, problems)

    def walk(node: ast.AST, prefix: str, in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                # D105/D107 exemptions: dunders and __init__ ride on the
                # class docstring.
                if not _is_public(name):
                    continue
                # @overload bodies are signatures, not implementations.
                if any(
                    isinstance(d, ast.Name) and d.id == "overload"
                    for d in child.decorator_list
                ):
                    continue
                _check_node(child, f"{prefix}{name}", path, problems)
            elif isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue
                _check_node(child, f"{prefix}{child.name}", path, problems)
                walk(child, f"{prefix}{child.name}.", True)

    walk(tree, "", False)


def main(argv: List[str]) -> int:
    """Check the given (or default) trees; print problems; return exit code."""
    root = Path(__file__).resolve().parent.parent
    targets = [Path(a) for a in argv] or [
        root / "src" / "repro" / "serving",
        root / "src" / "repro" / "scenarios",
        root / "src" / "repro" / "simulation",
        root / "src" / "repro" / "workload",
    ]
    files: List[Path] = []
    for target in targets:
        files.extend(sorted(target.rglob("*.py")) if target.is_dir() else [target])
    problems: List[str] = []
    for path in files:
        check_file(path, problems)
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_docstrings: {len(problems)} problem(s) in {len(files)} file(s)")
        return 1
    print(f"check_docstrings: OK ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

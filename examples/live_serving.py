"""Adaptive live serving: diurnal trace replay with SLO observability.

A deployment planned for a steady conversation workload meets a day/night cycle
of prefill-heavy coding traffic.  The live serving loop replays the trace in
30-second windows on a time-warped clock, streams a telemetry record per window
(attainment, estimated rho, plan id), evaluates declarative SLO objectives with
auto-inferred realtime/degraded profiles, and — when an objective breaches or
the workload profiler detects a shift — triggers the §3.4 lightweight
rescheduler online.  Every candidate plan is shadow-validated on the window
just served before adoption, so the loop never installs a plan that
demonstrably serves the observed workload worse.

Run with:  python examples/live_serving.py
(set ``REPRO_EXAMPLE_FAST=1`` for the CI smoke configuration: shorter trace,
smaller tabu budget, same pipeline end to end)
"""

import json
import os

from repro.hardware.cluster import make_cloud_cluster
from repro.model.architecture import get_model_config
from repro.scenarios.registry import get_scenario
from repro.scheduling.robust import scenario_slo
from repro.scheduling.scheduler import SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.live import LiveServeConfig, LiveServer
from repro.serving.system import ThunderServe
from repro.utils.tables import format_table
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


FAST = bool(int(os.environ.get("REPRO_EXAMPLE_FAST", "0")))


def main() -> None:
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    scenario = get_scenario(
        "diurnal",
        duration=60.0 if FAST else 120.0,
        request_rate=4.0,
        workload=CODING_WORKLOAD,
    )
    trace = scenario.build_trace(seed=0)

    # A plan for steady conversation traffic at 3 req/s — mismatched in both
    # mix and rate against the diurnal coding cycle it is about to serve.
    system = ThunderServe(
        cluster,
        model,
        CONVERSATION_WORKLOAD,
        request_rate=3.0,
        slo=scenario_slo(scenario, model),
        scheduler_config=SchedulerConfig(
            tabu=TabuSearchConfig(
                num_steps=6 if FAST else 12, num_neighbors=5, patience=8
            ),
            seed=0,
        ),
    )
    system.deploy(seed=0)

    # Declarative SLO objectives: a realtime profile holding 90% availability
    # and a degraded fallback holding 50%, selected per window from the
    # telemetry snapshot (see repro/serving/slo_objectives.py for the schema).
    slo_config = {
        "auto": {"realtime_attainment_min": 0.75, "default_profile": "degraded"},
        "profiles": {
            "realtime": [
                {"name": "availability", "metric": "attainment_e2e", "op": ">=", "target": 0.9},
                {"name": "headroom", "metric": "estimated_rho", "op": "<=", "target": 0.95},
            ],
            "degraded": [
                {"name": "availability", "metric": "attainment_e2e", "op": ">=", "target": 0.5},
            ],
        },
    }

    server = LiveServer(
        system,
        config=LiveServeConfig(window_s=30.0, slo_config=slo_config),
        on_breach=lambda event: print(f"  !! {event.describe()}"),
    )
    report = server.run(trace, label="diurnal-live")

    rows = [
        [
            w.index,
            f"[{w.start:.0f},{w.end:.0f})",
            w.plan_id,
            w.profile,
            w.num_requests,
            w.attainment_e2e,
            w.estimated_rho,
            w.mean_queue_wait,
            "yes" if w.plan_changed else "",
        ]
        for w in report.windows
    ]
    print()
    print(
        format_table(
            ["win", "span", "plan", "profile", "reqs", "att_e2e", "rho", "queue_s", "replanned"],
            rows,
            precision=3,
            title="Per-window telemetry",
        )
    )
    print(
        f"\n{report.num_plan_changes} plan change(s), "
        f"{len(report.breaches)} breach event(s), "
        f"worst window attainment {report.worst_window_attainment():.3f}, "
        f"merged attainment {report.merged.slo_attainment(system.slo):.3f}"
    )

    # The telemetry stream is JSON-serialisable for dashboards and archives.
    print("\nFirst record as JSON:")
    print(json.dumps(report.windows[0].to_dict(), indent=2)[:400], "...")


if __name__ == "__main__":
    main()

"""Cost-efficiency: heterogeneous cloud GPUs vs an in-house 8xA100 at equal budget.

The paper's headline economic claim (Figures 8 and 9): renting many cheaper,
heterogeneous cloud GPUs and scheduling them with ThunderServe delivers better
serving throughput and latency deadlines than spending the same hourly budget on a
homogeneous in-house A100 server running vLLM or DistServe.

This example serves the same conversation trace with all four systems and prints
throughput, mean latency and the minimum SLO scale needed for 90 % attainment.

Run with:  python examples/cloud_vs_inhouse_cost.py
"""

from repro.baselines.distserve import DistServeBaseline
from repro.baselines.hexgen import HexGenBaseline
from repro.baselines.vllm import VLLMBaseline
from repro.core.types import SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import make_cloud_cluster, make_inhouse_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.simulation.engine import ServingSimulator
from repro.utils.tables import format_table
from repro.workload.generator import generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD


def main() -> None:
    model = get_model_config("llama-30b")
    workload = CONVERSATION_WORKLOAD
    rate = 9.0
    duration = 40.0

    cloud = make_cloud_cluster(seed=0)
    inhouse = make_inhouse_cluster()
    print(f"Cloud    : {cloud.describe()}  -> ${cloud.price_per_hour:.2f}/hour")
    print(f"In-house : {inhouse.describe()} -> ${inhouse.price_per_hour:.2f}/hour")

    trace = generate_requests(workload, rate, duration=duration, seed=3)
    reference = a100_reference_latency(model, workload)

    # ThunderServe on the cloud.
    scheduler = Scheduler(SchedulerConfig(tabu=TabuSearchConfig(num_steps=15, num_neighbors=6, patience=8), seed=0))
    plan = scheduler.schedule(cloud, model, workload, rate).plan
    results = {"thunderserve (cloud)": ServingSimulator(cloud, plan, model).run(trace)}

    # Baselines.
    results["hexgen (cloud)"] = HexGenBaseline(cloud, model, workload, rate).serve(trace)
    results["distserve (in-house)"] = DistServeBaseline(inhouse, model, workload, rate).serve(trace)
    results["vllm (in-house)"] = VLLMBaseline(inhouse, model, workload, rate).serve(trace)

    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.total_token_throughput,
            result.output_token_throughput,
            result.mean(SLOType.E2E),
            result.min_scale_for_attainment(0.9, reference),
        ])
    print("\n" + format_table(
        ["system", "total tokens/s", "generated tokens/s", "mean E2E latency (s)",
         "min SLO scale for 90% attainment"],
        rows,
        title=f"Equal-budget comparison ({workload.name}, {rate} req/s)",
    ))


if __name__ == "__main__":
    main()

"""Quickstart: schedule and serve LLaMA-30B on the heterogeneous cloud cluster.

This walks through the whole ThunderServe pipeline in one script:

1. build the 32-GPU heterogeneous cloud environment of the paper (§5.1),
2. run the two-level scheduling algorithm (tabu search + parallel-configuration
   deduction + orchestration LP) for the conversation workload,
3. replay a Poisson request trace against the resulting deployment plan with the
   discrete-event simulator,
4. report throughput, latency breakdown and SLO attainment, and
5. stress the same plan across the whole ``repro.scenarios`` library (diurnal
   cycles, bursts, long-context RAG, agentic mixes, multi-tenant SLO tiers and
   spot preemptions) with a concurrent :class:`ScenarioSweep`.

Run with:  python examples/quickstart.py
"""

from repro.core.types import SLOType
from repro.hardware.cluster import make_cloud_cluster
from repro.model.architecture import get_model_config
from repro.scenarios import ScenarioSweep, default_scenarios
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.system import ThunderServe
from repro.utils.tables import format_table
from repro.workload.generator import generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD


def main() -> None:
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    workload = CONVERSATION_WORKLOAD
    request_rate = 6.0  # requests per second

    print(f"Cluster : {cluster.describe()}  (${cluster.price_per_hour:.2f}/hour)")
    print(f"Model   : {model.name} ({model.num_layers} layers, hidden {model.hidden_size})")
    print(f"Workload: {workload.name} (mean prompt {workload.mean_input_length:.0f} tokens, "
          f"mean response {workload.mean_output_length:.0f} tokens) at {request_rate} req/s")

    # A small tabu budget keeps the example fast; the full Algorithm-1 budget is
    # N_step=100, N_nghb=10 (see SchedulerConfig defaults).
    system = ThunderServe(
        cluster,
        model,
        workload,
        request_rate,
        scheduler_config=SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=15, num_neighbors=6, patience=8),
            seed=0,
        ),
    )
    plan = system.deploy()

    gpu_names = {g.gpu_id: g.type_name for g in cluster.gpus}
    print("\nDeployment plan discovered by the scheduler:")
    print(plan.describe(gpu_names))

    trace = generate_requests(workload, request_rate, duration=60.0, seed=1)
    result = system.serve(trace)

    print(f"\nServed {result.num_finished}/{result.num_requests} requests "
          f"in {result.makespan:.1f}s of simulated time")
    print(f"Throughput: {result.total_token_throughput:.0f} tokens/s total, "
          f"{result.output_token_throughput:.0f} generated tokens/s")
    summary = result.summary()
    print(f"Mean latency breakdown: queue {summary['mean_queue']*1e3:.0f} ms | "
          f"prefill {summary['mean_prefill']*1e3:.0f} ms | "
          f"KV transfer {summary['mean_kv_transfer']*1e3:.0f} ms | "
          f"decode {summary['mean_decode']*1e3:.0f} ms")

    scales = [1, 2, 4, 6, 8, 12]
    rows = []
    for scale in scales:
        spec = system.reference.slo_spec(scale)
        rows.append([
            scale,
            result.slo_attainment(spec, SLOType.TTFT),
            result.slo_attainment(spec, SLOType.TPOT),
            result.slo_attainment(spec, SLOType.E2E),
        ])
    print("\n" + format_table(
        ["slo_scale", "ttft_attainment", "tpot_attainment", "e2e_attainment"], rows,
        title="SLO attainment vs SLO scale",
    ))

    # ------------------------------------------------------------- scenario sweep
    # The same plan, stressed across every named scenario in repro.scenarios.
    # Scenarios run concurrently (each on its own ThunderServe instance); the
    # spot-preemption scenario additionally exercises lightweight rescheduling.
    # For long traces, pass executor="process" to escape the GIL (outcomes are
    # identical); the simulator itself defaults to the vectorized fast engine —
    # SimulatorConfig(engine="reference") selects the per-event implementation.
    sweep = ScenarioSweep(default_scenarios(duration=30.0), seed=0)
    outcomes = sweep.evaluate(cluster, model, plan)
    print("\n" + ScenarioSweep.to_table(outcomes))
    tenants = outcomes["multi-tenant"].per_tenant_attainment
    print("Per-tenant E2E attainment at each tier's own SLO: "
          + ", ".join(f"{t}={a:.2f}" for t, a in tenants.items()))


if __name__ == "__main__":
    main()

"""KV-cache transport compression: bandwidth savings vs model quality (§4, Tables 2/8).

ThunderServe quantizes KV caches to 4 bits only while they travel from the prefill
replica to the decode replica over slow cloud links; both phases compute with the
full-precision values.  This example shows the three relevant quantities:

* the wire-size reduction and reconstruction error of the codec itself,
* the transfer-time saving over a 40 Gbps cloud link (Equation 1), and
* the end-to-end effect on a tiny transformer's outputs when its prompt KV cache
  takes the quantize → ship → dequantize path.

Run with:  python examples/kv_cache_compression.py
"""

import numpy as np

from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.kvcache.quantization import compression_ratio, dequantize_groupwise, quantize_groupwise
from repro.model.architecture import get_model_config
from repro.quality.metrics import evaluate_kv_transport_quality
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. The codec itself: compression ratio and reconstruction error.
    kv = rng.standard_normal((1024, 512)).astype(np.float32)  # e.g. keys of 1024 tokens
    rows = []
    for bits in (8, 4):
        quantized = quantize_groupwise(kv, bits=bits, group_size=64)
        restored = dequantize_groupwise(quantized)
        error = np.linalg.norm(restored - kv) / np.linalg.norm(kv)
        rows.append([f"int{bits}", compression_ratio(quantized), error])
    print(format_table(
        ["precision", "compression vs fp16", "relative L2 error"], rows,
        title="Group-wise KV quantization codec", precision=4,
    ))

    # 2. Transfer time of a real request's KV cache over a 40 Gbps cloud link.
    model = get_model_config("llama-30b")
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0)  # 40 Gbps
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    rows = []
    for bits in (16, 8, 4):
        seconds = kv_transfer_seconds(cluster.network, a40, ti, model, num_tokens=1024, bits=bits)
        rows.append([f"int{bits}", seconds * 1e3])
    print("\n" + format_table(
        ["transport precision", "KV transfer time (ms, 1024 tokens, 40 Gbps)"], rows,
        title="Equation-1 transfer cost for LLaMA-30B",
    ))

    # 3. End-to-end quality on the tiny-transformer proxy.
    rows = []
    for bits in (8, 4):
        report = evaluate_kv_transport_quality(bits=bits, num_prompts=6, prompt_length=48,
                                               generate_tokens=24, seed=0)
        rows.append([f"int{bits}", report.token_agreement, report.ppl_ratio, report.rougeL])
    print("\n" + format_table(
        ["transport precision", "greedy-token agreement", "pseudo-PPL ratio", "ROUGE-L vs fp16"],
        rows,
        title="Model quality with transport-quantized KV caches (tiny-transformer proxy)",
    ))


if __name__ == "__main__":
    main()

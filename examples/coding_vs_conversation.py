"""How the workload shapes the deployment plan (the Table 3 case study).

The coding workload (long prompts, tiny responses) is prefill-bound; the
conversation workload (long prompts, long responses) is decode-bound.  This
example schedules both on the same 32-GPU cloud cluster and prints the discovered
prefill:decode replica balance and which GPU types end up serving each phase —
the paper's finding is that compute-dense A40s gravitate to prefill and
bandwidth-dense 3090Tis to decode, with coding receiving more prefill replicas.

Run with:  python examples/coding_vs_conversation.py
"""

from collections import Counter

from repro.core.types import Phase
from repro.hardware.cluster import make_cloud_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.utils.tables import format_table
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


def main() -> None:
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    gpu_names = {g.gpu_id: g.type_name for g in cluster.gpus}

    scheduler = Scheduler(
        SchedulerConfig(tabu=TabuSearchConfig(num_steps=20, num_neighbors=6, patience=10), seed=0)
    )

    rows = []
    for workload, rate in ((CODING_WORKLOAD, 12.0), (CONVERSATION_WORKLOAD, 9.0)):
        result = scheduler.schedule(cluster, model, workload, request_rate=rate)
        plan = result.plan
        prefill, decode = plan.prefill_decode_ratio

        phase_types = {Phase.PREFILL: Counter(), Phase.DECODE: Counter()}
        for group in plan.groups:
            for gpu_id in group.gpu_ids:
                phase_types[group.phase][gpu_names[gpu_id]] += 1

        print(f"\n=== {workload.name} workload ({rate} req/s) ===")
        print(plan.describe(gpu_names))
        rows.append([
            workload.name,
            f"{prefill}/{decode}",
            dict(phase_types[Phase.PREFILL]),
            dict(phase_types[Phase.DECODE]),
            f"{result.estimated_slo_attainment:.2f}",
        ])

    print("\n" + format_table(
        ["workload", "prefill/decode replicas", "prefill GPUs by type", "decode GPUs by type",
         "estimated SLO attainment"],
        rows,
        title="Workload-driven phase designation (Table 3 analogue)",
    ))


if __name__ == "__main__":
    main()

"""Reacting to GPU failures: lightweight vs full rescheduling (Figure 11 / Table 4).

Cloud GPUs disappear without notice.  ThunderServe's lightweight rescheduler only
flips phase designations and re-solves the request orchestration — it never moves
or reloads model parameters — so the service recovers in seconds instead of
minutes.  This example knocks out one 4xA6000 instance mid-deployment and compares
serving quality and interruption cost for the three strategies the paper evaluates.

Run with:  python examples/failure_and_rescheduling.py
(set ``REPRO_EXAMPLE_FAST=1`` for the CI smoke configuration: shorter trace,
smaller tabu budget, same pipeline end to end)
"""

import os
import time

from repro.core.types import SLOType
from repro.hardware.cluster import make_cloud_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.rescheduling import ReschedulingOverheadModel
from repro.scheduling.scheduler import SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.system import ThunderServe
from repro.utils.tables import format_table
from repro.workload.generator import generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD


FAST = bool(int(os.environ.get("REPRO_EXAMPLE_FAST", "0")))


def main() -> None:
    cluster = make_cloud_cluster(seed=0)
    model = get_model_config("llama-30b")
    workload = CONVERSATION_WORKLOAD
    rate = 6.0
    duration = 15.0 if FAST else 40.0
    num_steps = 6 if FAST else 12
    trace = generate_requests(workload, rate, duration=duration, seed=7)

    def build_system():
        system = ThunderServe(
            cluster, model, workload, rate,
            scheduler_config=SchedulerConfig(
                tabu=TabuSearchConfig(num_steps=num_steps, num_neighbors=5, patience=8),
                seed=1,
            ),
        )
        system.deploy()
        return system

    baseline_system = build_system()
    before = baseline_system.serve(trace)
    victims = [g.gpu_id for g in cluster.gpus if g.type_name == "A6000"][:4]
    print(f"Failing GPUs {victims} (one 4xA6000 instance)\n")

    rows = []
    spec = baseline_system.reference.slo_spec(6.0)
    rows.append(["before failure", "-", before.slo_attainment(spec, SLOType.E2E),
                 before.output_token_throughput, 0.0])

    overhead_model = ReschedulingOverheadModel()
    for mode in ("lightweight", "full", "none"):
        system = build_system()
        start = time.perf_counter()
        system.handle_gpu_failure(victims, mode=mode)
        search_time = time.perf_counter() - start
        if mode == "full":
            interruption = search_time + overhead_model.reload_seconds(model, system.plan.num_replicas)
        elif mode == "lightweight":
            interruption = search_time
        else:
            interruption = 0.0
        after = system.serve(trace)
        rows.append([
            f"after failure ({mode})",
            f"{system.plan.prefill_decode_ratio[0]}/{system.plan.prefill_decode_ratio[1]}",
            after.slo_attainment(spec, SLOType.E2E),
            after.output_token_throughput,
            interruption,
        ])

    print(format_table(
        ["scenario", "prefill/decode", "E2E attainment @ scale 6", "generated tokens/s",
         "service interruption (s)"],
        rows,
        title="GPU failure handling (4 of 32 GPUs offline)",
    ))


if __name__ == "__main__":
    main()

"""Tests for the fault-injection subsystem and its live-serving integration.

The load-bearing contracts:

* :class:`ClusterFaultState` is idempotent under interleaved, overlapping and
  replayed fail/recover sequences — it never double-removes a GPU, never
  resurrects an id that was never lost, and never counts unknown ids towards
  the outage threshold (property-tested with hypothesis).
* A seeded :class:`FaultInjector` compiles a bitwise-identical, pre-validated
  :class:`FaultSchedule` on every run (deterministic chaos replay).
* Schedules are validated at construction boundaries: events beyond the
  scenario duration or pinning unknown GPU ids raise clear errors instead of
  silently no-opping inside a serving loop.
* The live loop serves total-loss windows as zero-attainment outages instead
  of crashing, replans when capacity returns, and streams identical telemetry
  for identical seeds.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.faults import (
    ClusterFaultState,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultProcess,
    FaultSchedule,
)
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.serving.live import LiveServeConfig, LiveServer
from repro.serving.system import ThunderServe
from repro.workload.generator import generate_requests


def _loss(time, ids):
    return FaultEvent(time=time, kind=FaultKind.GPU_PREEMPTION, gpu_ids=tuple(ids))


def _recovery(time, ids):
    return FaultEvent(time=time, kind=FaultKind.RECOVERY, gpu_ids=tuple(ids))


# --------------------------------------------------------------------------- taxonomy
class TestFaultEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="time"):
            _loss(-1.0, (0,))

    def test_duplicate_gpu_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultEvent(time=0.0, kind=FaultKind.GPU_PREEMPTION, gpu_ids=(1, 1))

    def test_capacity_loss_requires_pinned_victims(self):
        with pytest.raises(ConfigurationError, match="gpu_ids"):
            FaultEvent(time=0.0, kind=FaultKind.NODE_CRASH)

    def test_bad_link_scales_rejected(self):
        with pytest.raises(ConfigurationError, match="bandwidth_scale"):
            FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADATION, bandwidth_scale=0.0)

    def test_bad_straggler_slowdown_rejected(self):
        with pytest.raises(ConfigurationError, match="slowdown"):
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, gpu_ids=(0,), slowdown=0.0)


class TestFaultScheduleValidation:
    def test_event_at_or_after_duration_rejected(self, small_hetero_cluster):
        schedule = FaultSchedule(events=(_loss(120.0, (0,)),))
        with pytest.raises(ConfigurationError, match="duration"):
            schedule.validate(120.0, small_hetero_cluster)

    def test_unknown_gpu_id_rejected(self, small_hetero_cluster):
        schedule = FaultSchedule(events=(_loss(10.0, (99,)),))
        with pytest.raises(ConfigurationError, match="roster"):
            schedule.validate(120.0, small_hetero_cluster)

    def test_valid_schedule_chains(self, small_hetero_cluster):
        schedule = FaultSchedule(events=(_loss(10.0, (0, 1)), _recovery(20.0, (0, 1))))
        assert schedule.validate(120.0, small_hetero_cluster) is schedule

    def test_construction_sorts_and_signature_is_order_independent(self):
        events = (_recovery(20.0, (0,)), _loss(10.0, (0,)), _loss(5.0, (1,)))
        forward = FaultSchedule(events=events)
        shuffled = FaultSchedule(events=events[::-1])
        assert [e.time for e in forward] == [5.0, 10.0, 20.0]
        assert forward.to_dicts() == shuffled.to_dicts()
        assert forward.signature() == shuffled.signature()

    def test_dict_round_trip_is_exact(self):
        schedule = FaultSchedule(
            events=(
                _loss(10.0, (0, 1)),
                FaultEvent(
                    time=15.0, kind=FaultKind.LINK_DEGRADATION, bandwidth_scale=0.5
                ),
                FaultEvent(time=18.0, kind=FaultKind.STRAGGLER, gpu_ids=(2,), slowdown=1.5),
                _recovery(30.0, (0, 1)),
            )
        )
        rebuilt = FaultSchedule.from_dicts(schedule.to_dicts())
        assert rebuilt.to_dicts() == schedule.to_dicts()
        assert rebuilt.signature() == schedule.signature()


# --------------------------------------------------------------------------- state machine
@pytest.mark.slow
class TestFaultStateProperties:
    """Hypothesis: the fault state machine is safe under arbitrary interleaving."""

    @given(
        ops=st.lists(
            st.tuples(
                st.booleans(),
                st.sets(st.integers(min_value=0, max_value=11), min_size=1, max_size=5),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_never_double_removes_or_resurrects_unknown_ids(self, ops):
        cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
        roster = set(cluster.gpu_ids)
        state = ClusterFaultState(cluster)
        alive, removed = set(roster), set()
        time = 0.0
        for is_loss, ids in ops:
            time += 1.0
            event = _loss(time, sorted(ids)) if is_loss else _recovery(time, sorted(ids))
            delta = state.apply(event)
            if is_loss:
                expected = (set(ids) & roster) & alive
                assert set(delta.removed) == expected
                assert not delta.revived
                alive -= expected
                removed |= expected
            else:
                expected = set(ids) & removed
                assert set(delta.revived) == expected
                assert not delta.removed
                alive |= expected
                removed -= expected
            # Invariants: the model and the state agree; unknown ids never
            # appear anywhere; outage means exactly "no GPU left".
            assert set(state.alive_gpu_ids) == alive
            assert state.removed == removed
            assert state.removed <= roster
            assert state.outage == (not alive)
            current = state.current_cluster()
            if state.outage:
                assert current is None
            else:
                assert set(current.gpu_ids) == alive

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_compiles_bitwise_identical_schedule(self, seed):
        cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
        processes = (
            FaultProcess(kind=FaultKind.NODE_CRASH, mtbf_s=80.0, mttr_s=50.0, name="n"),
            FaultProcess(
                kind=FaultKind.GPU_PREEMPTION, mtbf_s=60.0, mttr_s=40.0, num_gpus=2, name="s"
            ),
            FaultProcess(
                kind=FaultKind.LINK_DEGRADATION,
                mtbf_s=70.0,
                mttr_s=30.0,
                bandwidth_scale=0.5,
                name="w",
            ),
            FaultProcess(
                kind=FaultKind.STRAGGLER, mtbf_s=90.0, mttr_s=45.0, slowdown=1.5, name="g"
            ),
        )
        first = FaultInjector(processes, seed=seed).compile(300.0, cluster)
        second = FaultInjector(processes, seed=seed).compile(300.0, cluster)
        assert first.to_dicts() == second.to_dicts()
        assert first.signature() == second.signature()
        # Compiled schedules are valid by construction and replay safely.
        first.validate(300.0, cluster)
        ClusterFaultState(cluster).apply_all(first)


class TestFaultStateReplay:
    def test_replaying_capacity_events_is_idempotent(self, small_hetero_cluster):
        events = (_loss(10.0, (0, 1)), _loss(12.0, (1, 2)), _recovery(20.0, (0, 1, 2)))
        state = ClusterFaultState(small_hetero_cluster)
        state.apply_all(events)
        assert not state.removed
        # A second replay of the full sequence changes nothing permanent and
        # each loss reports only newly-dead victims.
        deltas = state.apply_all(events)
        assert set(deltas[0].removed) == {0, 1}
        assert set(deltas[1].removed) == {2}
        assert not state.removed
        assert not state.degraded

    def test_link_scaling_is_absolute_not_cumulative(self, small_hetero_cluster):
        state = ClusterFaultState(small_hetero_cluster)
        half = FaultEvent(time=1.0, kind=FaultKind.LINK_DEGRADATION, bandwidth_scale=0.5)
        state.apply(half)
        state.apply(
            FaultEvent(time=2.0, kind=FaultKind.LINK_DEGRADATION, bandwidth_scale=0.5)
        )
        assert state.bandwidth_scale == 0.5  # not 0.25
        state.apply(FaultEvent(time=3.0, kind=FaultKind.LINK_RECOVERY))
        assert state.bandwidth_scale == 1.0
        assert not state.degraded


# --------------------------------------------------------------------------- live loop
@pytest.fixture()
def fault_system_factory(
    small_hetero_cluster, model_30b, conversation_workload, relaxed_slo, small_plan
):
    """Fresh deployed systems sharing one pre-built plan (no tabu search)."""

    def build():
        system = ThunderServe(
            small_hetero_cluster, model_30b, conversation_workload, 3.0, slo=relaxed_slo
        )
        system.adopt_plan(small_plan, reason="fault test")
        return system

    return build


@pytest.fixture(scope="module")
def fault_trace(conversation_workload):
    return generate_requests(conversation_workload, request_rate=4.0, duration=40.0, seed=3)


class TestLiveFaultReplay:
    def test_same_seed_reproduces_identical_telemetry(
        self, fault_system_factory, fault_trace, small_hetero_cluster
    ):
        processes = (
            FaultProcess(
                kind=FaultKind.GPU_PREEMPTION, mtbf_s=15.0, mttr_s=10.0, num_gpus=2, name="s"
            ),
            FaultProcess(
                kind=FaultKind.LINK_DEGRADATION,
                mtbf_s=20.0,
                mttr_s=10.0,
                bandwidth_scale=0.5,
                name="w",
            ),
        )
        schedule = FaultInjector(processes, seed=5).compile(40.0, small_hetero_cluster)
        assert len(schedule) > 0
        snapshots = []
        for _ in range(2):
            server = LiveServer(
                fault_system_factory(),
                config=LiveServeConfig(window_s=10.0, faults=schedule),
            )
            report = server.run(fault_trace, label="replay")
            snapshots.append(
                json.dumps(
                    {
                        "windows": [w.to_dict() for w in report.windows],
                        "fault_log": report.fault_log,
                    },
                    sort_keys=True,
                )
            )
        assert snapshots[0] == snapshots[1]

    def test_total_loss_serves_outage_windows_then_recovers(
        self, fault_system_factory, fault_trace, small_hetero_cluster
    ):
        everyone = tuple(small_hetero_cluster.gpu_ids)
        schedule = FaultSchedule(
            events=(_loss(12.0, everyone), _recovery(28.0, everyone))
        )
        server = LiveServer(
            fault_system_factory(),
            config=LiveServeConfig(window_s=10.0, faults=schedule),
        )
        report = server.run(fault_trace, label="total-loss")
        outages = [w for w in report.windows if w.outage]
        assert outages, "total loss must surface as outage windows, not a crash"
        for window in outages:
            assert window.attainment_e2e == 0.0
            assert window.num_gpus_alive == 0
            assert window.degraded
            assert window.faults
        # Capacity came back: the windows after the recovery actually serve.
        last_outage = max(w.index for w in outages)
        tail = [w for w in report.windows if w.index > last_outage and w.num_requests]
        assert tail and all(w.attainment_e2e > 0.0 for w in tail)
        stats = report.fault_stats()
        assert stats["outage_windows"] == len(outages)
        assert stats["mean_mttr_s"] == pytest.approx(16.0)

    def test_unknown_gpu_id_in_config_raises_before_serving(
        self, fault_system_factory, fault_trace
    ):
        schedule = FaultSchedule(events=(_loss(10.0, (99,)),))
        server = LiveServer(
            fault_system_factory(),
            config=LiveServeConfig(window_s=10.0, faults=schedule),
        )
        with pytest.raises(ConfigurationError, match="roster"):
            server.run(fault_trace, label="bad-schedule")

    def test_straggler_and_link_faults_sync_the_system(
        self, fault_system_factory, fault_trace
    ):
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time=5.0, kind=FaultKind.STRAGGLER, gpu_ids=(0,), slowdown=1.5
                ),
                FaultEvent(
                    time=5.0, kind=FaultKind.LINK_DEGRADATION, bandwidth_scale=0.5
                ),
            )
        )
        system = fault_system_factory()
        server = LiveServer(system, config=LiveServeConfig(window_s=10.0, faults=schedule))
        report = server.run(fault_trace, label="degradations")
        assert any(w.degraded for w in report.windows)
        # The faults were synced into the serving system, not just recorded.
        assert dict(system.simulator_config.gpu_slowdowns) == {0: 1.5}
        kinds = {e.kind for e in system.events}
        assert "cluster_changed" in kinds
        assert "slowdowns_changed" in kinds


class TestLiveFaultConfigValidation:
    def test_bad_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure_mode_order"):
            LiveServeConfig(window_s=10.0, failure_mode_order=("sideways",))

    def test_bad_recovery_mode_rejected(self):
        with pytest.raises(ValueError, match="recovery_mode"):
            LiveServeConfig(window_s=10.0, recovery_mode="sideways")

    def test_bad_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="replan_max_retries"):
            LiveServeConfig(window_s=10.0, replan_max_retries=0)

    def test_bad_degraded_admission_ceiling_rejected(self):
        with pytest.raises(ValueError, match="degraded_admission_max_rho"):
            LiveServeConfig(window_s=10.0, degraded_admission_max_rho=0.0)

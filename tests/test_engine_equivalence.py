"""Seeded equivalence of the vectorized engine and the per-event reference.

The fast engine (struct-of-arrays decode state, coalesced decode epochs,
coalesced prefill epochs with vectorized KV handoffs, memoized latency grids)
must be *indistinguishable* from the retained per-event reference
implementation: identical per-request metrics — bitwise, not approximately —
identical completion order and identical makespan, across random traces,
windowed (failure-style) serving, single-token outputs, horizon-truncated runs,
prompt-heavy traces and every supported prefill batch size (1, 4, 16).  Any
divergence here means the coalescing math drifted from the per-event semantics,
so the assertions are exact equality on raw floats.

The fault-timeline section extends the contract to in-engine preemption: under
a compiled :class:`~repro.faults.FaultTimeline` (replica deaths and revivals
mid-run) with a :class:`~repro.faults.RetryPolicy`, both engines must agree
bitwise on every timing column *and* on the typed outcome / attempt columns —
covering preemption during prefill, during decode, during KV transfer,
coincident with an arrival, fail → recover → fail cycles, total capacity loss,
drop-only policies, deadlines and horizon truncation — and every run must
conserve requests (each arrival maps to exactly one terminal outcome).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Phase, Request
from repro.costmodel.reference import a100_reference_latency
from repro.faults.retry import RetryPolicy
from repro.faults.timeline import ReplicaFaultEvent, timeline_from_windows
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ENGINES, ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD, WorkloadSpec
from repro.workload.trace import Trace

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow


CLUSTER = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
MODEL = get_model_config("llama-30b")


def _plan():
    a40 = [g.gpu_id for g in CLUSTER.gpus_of_type("A40")]
    ti = [g.gpu_id for g in CLUSTER.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=CLUSTER,
        model=MODEL,
        workload=CONVERSATION_WORKLOAD,
        slo=a100_reference_latency(MODEL, CONVERSATION_WORKLOAD).slo_spec(8.0),
        request_rate=3.0,
    )
    return solver.solve(solution).plan


PLAN = _plan()

# Multi-replica fixture for the fault-timeline suite: llama-7b fits a 4-group
# split (2 prefill, 2 decode) of the same cluster, and uniform routing (no LP
# routing attached) guarantees every replica actually carries traffic — an LP
# solution may concentrate all load on one replica, making its death vacuous.
MULTI_MODEL = get_model_config("llama-7b")


def _multi_plan():
    a40 = [g.gpu_id for g in CLUSTER.gpus_of_type("A40")]
    ti = [g.gpu_id for g in CLUSTER.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists(
        [
            (a40[: len(a40) // 2], Phase.PREFILL),
            (a40[len(a40) // 2 :], Phase.PREFILL),
            (ti[: len(ti) // 2], Phase.DECODE),
            (ti[len(ti) // 2 :], Phase.DECODE),
        ]
    )
    solver = LowerLevelSolver(
        cluster=CLUSTER,
        model=MULTI_MODEL,
        workload=CONVERSATION_WORKLOAD,
        slo=a100_reference_latency(MULTI_MODEL, CONVERSATION_WORKLOAD).slo_spec(8.0),
        request_rate=3.0,
    )
    plan = solver.solve(solution).plan
    return DeploymentPlan(
        groups=plan.groups,
        routing=None,
        model_name=plan.model_name,
        kv_transport_bits=plan.kv_transport_bits,
    )


MULTI_PLAN = _multi_plan()
MULTI_PREFILLS = tuple(g.group_id for g in MULTI_PLAN.prefill_groups)
MULTI_DECODES = tuple(g.group_id for g in MULTI_PLAN.decode_groups)

#: every timing / assignment field recorded per request
METRIC_FIELDS = (
    "enqueue_time",
    "prefill_start",
    "first_token_time",
    "kv_transfer_done",
    "completion_time",
    "prefill_replica",
    "decode_replica",
    "finished",
    "attempts",
)


#: prefill batch sizes the suite must hold at (single-request, moderate, burst)
PREFILL_BATCH_SIZES = (1, 4, 16)


def _run(
    trace, engine, seed=0, horizon=None, prefill_batch=None, plan=None,
    model=None, faults=None, retry=None,
):
    kwargs = {} if prefill_batch is None else {"max_prefill_batch_requests": prefill_batch}
    config = SimulatorConfig(seed=seed, engine=engine, max_sim_time=horizon, **kwargs)
    simulator = ServingSimulator(
        CLUSTER, plan if plan is not None else PLAN, model or MODEL, config=config
    )
    return simulator.run(trace, faults=faults, retry=retry)


def _assert_identical(fast, reference, check_makespan=True):
    assert len(fast.metrics) == len(reference.metrics)
    for a, b in zip(fast.metrics, reference.metrics):
        assert a.request.request_id == b.request.request_id
        for name in METRIC_FIELDS:
            assert getattr(a, name) == getattr(b, name), (
                f"request {a.request.request_id}: {name} "
                f"{getattr(a, name)!r} != {getattr(b, name)!r}"
            )
        assert a.resolved_outcome() == b.resolved_outcome(), (
            f"request {a.request.request_id}: outcome "
            f"{a.resolved_outcome()!r} != {b.resolved_outcome()!r}"
        )
    # Identical completion order, not just identical completion times.
    order_a = sorted(
        (m.completion_time, m.request.request_id) for m in fast.metrics if m.finished
    )
    order_b = sorted(
        (m.completion_time, m.request.request_id) for m in reference.metrics if m.finished
    )
    assert order_a == order_b
    if check_makespan:
        assert fast.makespan == reference.makespan


@given(
    median_in=st.integers(64, 1024),
    median_out=st.integers(2, 192),
    rate=st.floats(0.5, 8.0),
    seed=st.integers(0, 10_000),
    num_requests=st.integers(5, 40),
    prefill_batch=st.sampled_from(PREFILL_BATCH_SIZES),
)
@settings(max_examples=12, deadline=None)
def test_engines_identical_on_random_traces(
    median_in, median_out, rate, seed, num_requests, prefill_batch
):
    """Both engines produce bitwise-identical metrics on random workloads."""
    workload = WorkloadSpec(
        name="prop",
        median_input_length=float(median_in),
        median_output_length=float(median_out),
        input_sigma=0.3,
        output_sigma=0.5,
    )
    trace = generate_requests(workload, rate, num_requests=num_requests, seed=seed)
    _assert_identical(
        _run(trace, "fast", seed=seed, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=seed, prefill_batch=prefill_batch),
    )


@pytest.mark.parametrize("prefill_batch", PREFILL_BATCH_SIZES)
@pytest.mark.parametrize("seed", [0, 7])
def test_engines_identical_with_single_token_outputs(seed, prefill_batch):
    """Single-token requests finish at prefill; mixing them in must not diverge."""
    rng = np.random.default_rng(seed)
    requests = []
    for k in range(30):
        requests.append(
            Request(
                request_id=k,
                arrival_time=float(rng.uniform(0.0, 10.0)),
                input_length=int(rng.integers(16, 512)),
                output_length=1 if k % 3 == 0 else int(rng.integers(2, 64)),
            )
        )
    trace = Trace(requests=requests, name="single-token-mix")
    _assert_identical(
        _run(trace, "fast", seed=seed, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=seed, prefill_batch=prefill_batch),
    )


@pytest.mark.parametrize("prefill_batch", PREFILL_BATCH_SIZES)
@pytest.mark.parametrize("horizon", [0.5, 2.0, 8.0])
def test_engines_identical_under_horizon(horizon, prefill_batch):
    """Horizon-truncated runs record the same completions up to the cut."""
    trace = generate_requests(CONVERSATION_WORKLOAD, 6.0, num_requests=50, seed=11)
    fast = _run(trace, "fast", seed=1, horizon=horizon, prefill_batch=prefill_batch)
    reference = _run(trace, "reference", seed=1, horizon=horizon, prefill_batch=prefill_batch)
    _assert_identical(fast, reference)


#: prompt-heavy shape (RAG-like): inputs dominate, decodes are short
PROMPT_HEAVY_WORKLOAD = WorkloadSpec(
    name="prompt-heavy",
    median_input_length=2048.0,
    median_output_length=32.0,
    input_sigma=0.35,
    output_sigma=0.6,
)


@pytest.mark.parametrize("prefill_batch", PREFILL_BATCH_SIZES)
@pytest.mark.parametrize("seed", [0, 3, 9])
def test_engines_identical_on_prompt_heavy_traces(seed, prefill_batch):
    """Multi-request prefill batches produce bitwise-identical metrics.

    The prompt-heavy shape keeps the prefill replicas queued, so the fast
    engine's coalesced prefill epochs span several batches and the KV handoffs
    arrive as coalesced ``KV_BATCH`` cursors — all of which must be
    indistinguishable from the per-event engine.
    """
    trace = generate_requests(PROMPT_HEAVY_WORKLOAD, 8.0, num_requests=60, seed=seed)
    _assert_identical(
        _run(trace, "fast", seed=seed, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=seed, prefill_batch=prefill_batch),
    )


@pytest.mark.parametrize("prefill_batch", (4, 16))
@pytest.mark.parametrize("rate", [12.0, 30.0])
def test_arrival_truncated_prefill_epochs_identical(prefill_batch, rate):
    """Arrivals landing mid-epoch truncate the planned tail without divergence.

    High arrival rates land many requests while prefill epochs are in flight,
    exercising the truncation rule (only a not-yet-started trailing underfull
    batch may be re-formed) plus the replan at the surviving batch boundary;
    horizon cuts layered on top must also agree.
    """
    trace = generate_requests(PROMPT_HEAVY_WORKLOAD, rate, num_requests=70, seed=21)
    _assert_identical(
        _run(trace, "fast", seed=2, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=2, prefill_batch=prefill_batch),
    )
    fast = _run(trace, "fast", seed=2, prefill_batch=prefill_batch, horizon=4.0)
    reference = _run(trace, "reference", seed=2, prefill_batch=prefill_batch, horizon=4.0)
    _assert_identical(fast, reference)


def test_engines_identical_across_windows():
    """Windowed serving (the failure-scenario pattern) matches window by window.

    Also covers simulator reuse: each engine serves every window on one
    simulator instance, which must equal a freshly built simulator per window.
    """
    trace = generate_requests(CONVERSATION_WORKLOAD, 5.0, num_requests=60, seed=3)
    edges = [0.0, 4.0, 9.0, float("inf")]
    sims = {
        engine: ServingSimulator(
            CLUSTER, PLAN, MODEL, config=SimulatorConfig(seed=0, engine=engine)
        )
        for engine in ENGINES
    }
    for start, end in zip(edges[:-1], edges[1:]):
        window = trace.window(start, end)
        if window.is_empty:
            continue
        reused_fast = sims["fast"].run(window)
        reused_reference = sims["reference"].run(window)
        fresh_fast = _run(window, "fast")
        _assert_identical(reused_fast, reused_reference)
        _assert_identical(reused_fast, fresh_fast)


def test_engine_config_validated():
    assert SimulatorConfig().engine == "fast"
    with pytest.raises(ValueError):
        SimulatorConfig(engine="warp")


def test_heavy_load_blocked_admissions_identical():
    """Saturating load exercises blocked pending queues and truncated epochs."""
    workload = WorkloadSpec(
        name="heavy",
        median_input_length=1024.0,
        median_output_length=256.0,
        input_sigma=0.2,
        output_sigma=0.3,
    )
    trace = generate_requests(workload, 12.0, num_requests=60, seed=5)
    _assert_identical(_run(trace, "fast", seed=2), _run(trace, "reference", seed=2))


# --------------------------------------------------------------------------- faults
#: retry policy with non-zero jitter — zero jitter can create measure-zero ties
#: between retry times and unrelated simulation events, which the equivalence
#: contract deliberately leaves unspecified
RETRY = RetryPolicy(max_retries=3, backoff_base_s=0.3, jitter=0.1)


def _fault_trace(seed=3, rate=6.0, num_requests=60):
    return generate_requests(CONVERSATION_WORKLOAD, rate, num_requests=num_requests, seed=seed)


def _both(trace, faults, retry=RETRY, seed=0, horizon=None, require_terminal=True):
    """Run both engines under one fault timeline; assert identity + conservation."""
    fast = _run(
        trace, "fast", seed=seed, horizon=horizon,
        plan=MULTI_PLAN, model=MULTI_MODEL, faults=faults, retry=retry,
    )
    reference = _run(
        trace, "reference", seed=seed, horizon=horizon,
        plan=MULTI_PLAN, model=MULTI_MODEL, faults=faults, retry=retry,
    )
    _assert_identical(fast, reference)
    fast.assert_outcome_conservation(require_terminal=require_terminal)
    reference.assert_outcome_conservation(require_terminal=require_terminal)
    return fast


def test_fault_prefill_death_mid_run_identical():
    """A prefill replica dying mid-run preempts queued/batched work identically."""
    timeline = timeline_from_windows(
        [ReplicaFaultEvent(time=2.0, dead_prefill=(MULTI_PREFILLS[0],))]
    )
    result = _both(_fault_trace(), timeline)
    counts = result.outcome_counts()
    assert counts["retried_then_finished"] > 0  # non-vacuous: work was preempted
    assert counts["pending"] == 0


def test_fault_decode_death_mid_run_identical():
    """A decode replica dying mid-run preempts active decodes and in-flight KV.

    By the fault instant some requests have finished prefill and their KV is
    either in transfer to the dead replica or already decoding on it — both
    must restart from scratch (lost KV) on the survivor, identically.
    """
    timeline = timeline_from_windows(
        [ReplicaFaultEvent(time=2.5, dead_decode=(MULTI_DECODES[0],))]
    )
    result = _both(_fault_trace(), timeline)
    counts = result.outcome_counts()
    assert counts["retried_then_finished"] > 0
    survivors = {m.decode_replica for m in result.metrics if m.attempts > 0}
    assert survivors <= {MULTI_DECODES[1]}  # retries rerouted off the dead replica


def test_fault_coincident_with_arrival_identical():
    """A fault at the exact instant of an arrival keeps the tie rule aligned.

    Fault entries win exact-time ties in both engines: the arrival must be
    routed against the post-fault alive set (or disposed if routed dead).
    """
    trace = _fault_trace(seed=9)
    t = trace[len(trace) // 2].arrival_time
    timeline = timeline_from_windows(
        [ReplicaFaultEvent(time=t, dead_prefill=(MULTI_PREFILLS[1],))]
    )
    result = _both(trace, timeline)
    assert result.outcome_counts()["retried_then_finished"] > 0


def test_fault_fail_recover_fail_cycle_identical():
    """A replica that dies, revives fresh and dies again stays bitwise-aligned."""
    victim = MULTI_PREFILLS[0]
    timeline = timeline_from_windows(
        [
            ReplicaFaultEvent(time=1.5, dead_prefill=(victim,)),
            ReplicaFaultEvent(time=3.0, revived_prefill=(victim,)),
            ReplicaFaultEvent(time=5.0, dead_prefill=(victim,)),
        ]
    )
    result = _both(_fault_trace(num_requests=80), timeline)
    assert result.outcome_counts()["retried_then_finished"] > 0


def test_fault_total_loss_drops_everything_identically():
    """Killing every replica leaves no survivor: all in-flight work drops out."""
    timeline = timeline_from_windows(
        [
            ReplicaFaultEvent(
                time=2.0, dead_prefill=MULTI_PREFILLS, dead_decode=MULTI_DECODES
            )
        ]
    )
    result = _both(_fault_trace(), timeline)
    counts = result.outcome_counts()
    assert counts["dropped_outage"] > 0
    assert counts["retried_then_finished"] == 0  # nowhere to retry to
    assert counts["finished"] + counts["dropped_outage"] == result.num_requests


def test_fault_drop_only_policy_identical():
    """``RetryPolicy.drop_only()``: any preemption is terminal, identically."""
    timeline = timeline_from_windows(
        [ReplicaFaultEvent(time=2.0, dead_prefill=(MULTI_PREFILLS[0],))]
    )
    result = _both(_fault_trace(), timeline, retry=RetryPolicy.drop_only())
    counts = result.outcome_counts()
    assert counts["dropped_outage"] > 0
    assert counts["retried_then_finished"] == 0
    assert all(m.attempts <= 1 for m in result.metrics)


def test_fault_deadline_times_out_identically():
    """A tight per-request deadline turns late retries into ``timed_out``."""
    timeline = timeline_from_windows(
        [ReplicaFaultEvent(time=2.0, dead_prefill=(MULTI_PREFILLS[0],))]
    )
    # backoff 2.0s always exceeds a 1.5s deadline measured from arrival, so
    # every victim whose retry is scheduled must time out instead.
    policy = RetryPolicy(max_retries=3, backoff_base_s=2.0, jitter=0.1, deadline_s=1.5)
    result = _both(_fault_trace(), timeline, retry=policy)
    assert result.outcome_counts()["timed_out"] > 0


@pytest.mark.parametrize("horizon", [1.0, 3.0])
def test_fault_under_horizon_identical(horizon):
    """Horizon truncation layered over a fault timeline stays aligned."""
    timeline = timeline_from_windows(
        [ReplicaFaultEvent(time=0.8, dead_prefill=(MULTI_PREFILLS[0],))]
    )
    _both(_fault_trace(), timeline, horizon=horizon, require_terminal=False)


def _random_timeline(rng):
    """Random death/revival storm over the multi-replica plan's groups."""
    events = []
    dead_p, dead_d = set(), set()
    t = 0.0
    for _ in range(int(rng.integers(1, 4))):
        t += float(rng.uniform(0.5, 3.0))
        kill_p = [g for g in MULTI_PREFILLS if g not in dead_p and rng.random() < 0.4]
        kill_d = [g for g in MULTI_DECODES if g not in dead_d and rng.random() < 0.3]
        revive_p = [g for g in sorted(dead_p) if rng.random() < 0.5]
        revive_d = [g for g in sorted(dead_d) if rng.random() < 0.5]
        event = ReplicaFaultEvent(
            time=t,
            dead_prefill=tuple(kill_p),
            dead_decode=tuple(kill_d),
            revived_prefill=tuple(revive_p),
            revived_decode=tuple(revive_d),
        )
        if not event.noop:
            events.append(event)
            dead_p = (dead_p | set(kill_p)) - set(revive_p)
            dead_d = (dead_d | set(kill_d)) - set(revive_d)
    return timeline_from_windows(events)


@given(
    fault_seed=st.integers(0, 10_000),
    seed=st.integers(0, 1_000),
    rate=st.floats(2.0, 10.0),
    num_requests=st.integers(20, 60),
)
@settings(max_examples=12, deadline=None)
def test_request_conservation_under_random_fault_timelines(
    fault_seed, seed, rate, num_requests
):
    """Property: no arrival is duplicated or lost under random fault storms,
    both engines agree bitwise, and the same seed replays identically."""
    timeline = _random_timeline(np.random.default_rng(fault_seed))
    trace = generate_requests(
        CONVERSATION_WORKLOAD, rate, num_requests=num_requests, seed=seed
    )
    fast = _both(trace, timeline if timeline else None, seed=seed % 97)
    # Same seed => bitwise-identical outcome arrays on an independent replay.
    replay = _run(
        trace, "fast", seed=seed % 97,
        plan=MULTI_PLAN, model=MULTI_MODEL, faults=timeline if timeline else None,
        retry=RETRY,
    )
    assert fast.arrays is not None and replay.arrays is not None
    np.testing.assert_array_equal(fast.arrays.outcome, replay.arrays.outcome)
    np.testing.assert_array_equal(fast.arrays.attempts, replay.arrays.attempts)
    np.testing.assert_array_equal(
        fast.arrays.completion_time, replay.arrays.completion_time
    )

"""Seeded equivalence of the vectorized engine and the per-event reference.

The fast engine (struct-of-arrays decode state, coalesced decode epochs,
coalesced prefill epochs with vectorized KV handoffs, memoized latency grids)
must be *indistinguishable* from the retained per-event reference
implementation: identical per-request metrics — bitwise, not approximately —
identical completion order and identical makespan, across random traces,
windowed (failure-style) serving, single-token outputs, horizon-truncated runs,
prompt-heavy traces and every supported prefill batch size (1, 4, 16).  Any
divergence here means the coalescing math drifted from the per-event semantics,
so the assertions are exact equality on raw floats.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Phase, Request
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ENGINES, ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD, WorkloadSpec
from repro.workload.trace import Trace

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow


CLUSTER = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
MODEL = get_model_config("llama-30b")


def _plan():
    a40 = [g.gpu_id for g in CLUSTER.gpus_of_type("A40")]
    ti = [g.gpu_id for g in CLUSTER.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=CLUSTER,
        model=MODEL,
        workload=CONVERSATION_WORKLOAD,
        slo=a100_reference_latency(MODEL, CONVERSATION_WORKLOAD).slo_spec(8.0),
        request_rate=3.0,
    )
    return solver.solve(solution).plan


PLAN = _plan()

#: every timing / assignment field recorded per request
METRIC_FIELDS = (
    "enqueue_time",
    "prefill_start",
    "first_token_time",
    "kv_transfer_done",
    "completion_time",
    "prefill_replica",
    "decode_replica",
    "finished",
)


#: prefill batch sizes the suite must hold at (single-request, moderate, burst)
PREFILL_BATCH_SIZES = (1, 4, 16)


def _run(trace, engine, seed=0, horizon=None, prefill_batch=None):
    kwargs = {} if prefill_batch is None else {"max_prefill_batch_requests": prefill_batch}
    config = SimulatorConfig(seed=seed, engine=engine, max_sim_time=horizon, **kwargs)
    return ServingSimulator(CLUSTER, PLAN, MODEL, config=config).run(trace)


def _assert_identical(fast, reference, check_makespan=True):
    assert len(fast.metrics) == len(reference.metrics)
    for a, b in zip(fast.metrics, reference.metrics):
        assert a.request.request_id == b.request.request_id
        for name in METRIC_FIELDS:
            assert getattr(a, name) == getattr(b, name), (
                f"request {a.request.request_id}: {name} "
                f"{getattr(a, name)!r} != {getattr(b, name)!r}"
            )
    # Identical completion order, not just identical completion times.
    order_a = sorted(
        (m.completion_time, m.request.request_id) for m in fast.metrics if m.finished
    )
    order_b = sorted(
        (m.completion_time, m.request.request_id) for m in reference.metrics if m.finished
    )
    assert order_a == order_b
    if check_makespan:
        assert fast.makespan == reference.makespan


@given(
    median_in=st.integers(64, 1024),
    median_out=st.integers(2, 192),
    rate=st.floats(0.5, 8.0),
    seed=st.integers(0, 10_000),
    num_requests=st.integers(5, 40),
    prefill_batch=st.sampled_from(PREFILL_BATCH_SIZES),
)
@settings(max_examples=12, deadline=None)
def test_engines_identical_on_random_traces(
    median_in, median_out, rate, seed, num_requests, prefill_batch
):
    """Both engines produce bitwise-identical metrics on random workloads."""
    workload = WorkloadSpec(
        name="prop",
        median_input_length=float(median_in),
        median_output_length=float(median_out),
        input_sigma=0.3,
        output_sigma=0.5,
    )
    trace = generate_requests(workload, rate, num_requests=num_requests, seed=seed)
    _assert_identical(
        _run(trace, "fast", seed=seed, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=seed, prefill_batch=prefill_batch),
    )


@pytest.mark.parametrize("prefill_batch", PREFILL_BATCH_SIZES)
@pytest.mark.parametrize("seed", [0, 7])
def test_engines_identical_with_single_token_outputs(seed, prefill_batch):
    """Single-token requests finish at prefill; mixing them in must not diverge."""
    rng = np.random.default_rng(seed)
    requests = []
    for k in range(30):
        requests.append(
            Request(
                request_id=k,
                arrival_time=float(rng.uniform(0.0, 10.0)),
                input_length=int(rng.integers(16, 512)),
                output_length=1 if k % 3 == 0 else int(rng.integers(2, 64)),
            )
        )
    trace = Trace(requests=requests, name="single-token-mix")
    _assert_identical(
        _run(trace, "fast", seed=seed, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=seed, prefill_batch=prefill_batch),
    )


@pytest.mark.parametrize("prefill_batch", PREFILL_BATCH_SIZES)
@pytest.mark.parametrize("horizon", [0.5, 2.0, 8.0])
def test_engines_identical_under_horizon(horizon, prefill_batch):
    """Horizon-truncated runs record the same completions up to the cut."""
    trace = generate_requests(CONVERSATION_WORKLOAD, 6.0, num_requests=50, seed=11)
    fast = _run(trace, "fast", seed=1, horizon=horizon, prefill_batch=prefill_batch)
    reference = _run(trace, "reference", seed=1, horizon=horizon, prefill_batch=prefill_batch)
    _assert_identical(fast, reference)


#: prompt-heavy shape (RAG-like): inputs dominate, decodes are short
PROMPT_HEAVY_WORKLOAD = WorkloadSpec(
    name="prompt-heavy",
    median_input_length=2048.0,
    median_output_length=32.0,
    input_sigma=0.35,
    output_sigma=0.6,
)


@pytest.mark.parametrize("prefill_batch", PREFILL_BATCH_SIZES)
@pytest.mark.parametrize("seed", [0, 3, 9])
def test_engines_identical_on_prompt_heavy_traces(seed, prefill_batch):
    """Multi-request prefill batches produce bitwise-identical metrics.

    The prompt-heavy shape keeps the prefill replicas queued, so the fast
    engine's coalesced prefill epochs span several batches and the KV handoffs
    arrive as coalesced ``KV_BATCH`` cursors — all of which must be
    indistinguishable from the per-event engine.
    """
    trace = generate_requests(PROMPT_HEAVY_WORKLOAD, 8.0, num_requests=60, seed=seed)
    _assert_identical(
        _run(trace, "fast", seed=seed, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=seed, prefill_batch=prefill_batch),
    )


@pytest.mark.parametrize("prefill_batch", (4, 16))
@pytest.mark.parametrize("rate", [12.0, 30.0])
def test_arrival_truncated_prefill_epochs_identical(prefill_batch, rate):
    """Arrivals landing mid-epoch truncate the planned tail without divergence.

    High arrival rates land many requests while prefill epochs are in flight,
    exercising the truncation rule (only a not-yet-started trailing underfull
    batch may be re-formed) plus the replan at the surviving batch boundary;
    horizon cuts layered on top must also agree.
    """
    trace = generate_requests(PROMPT_HEAVY_WORKLOAD, rate, num_requests=70, seed=21)
    _assert_identical(
        _run(trace, "fast", seed=2, prefill_batch=prefill_batch),
        _run(trace, "reference", seed=2, prefill_batch=prefill_batch),
    )
    fast = _run(trace, "fast", seed=2, prefill_batch=prefill_batch, horizon=4.0)
    reference = _run(trace, "reference", seed=2, prefill_batch=prefill_batch, horizon=4.0)
    _assert_identical(fast, reference)


def test_engines_identical_across_windows():
    """Windowed serving (the failure-scenario pattern) matches window by window.

    Also covers simulator reuse: each engine serves every window on one
    simulator instance, which must equal a freshly built simulator per window.
    """
    trace = generate_requests(CONVERSATION_WORKLOAD, 5.0, num_requests=60, seed=3)
    edges = [0.0, 4.0, 9.0, float("inf")]
    sims = {
        engine: ServingSimulator(
            CLUSTER, PLAN, MODEL, config=SimulatorConfig(seed=0, engine=engine)
        )
        for engine in ENGINES
    }
    for start, end in zip(edges[:-1], edges[1:]):
        window = trace.window(start, end)
        if window.is_empty:
            continue
        reused_fast = sims["fast"].run(window)
        reused_reference = sims["reference"].run(window)
        fresh_fast = _run(window, "fast")
        _assert_identical(reused_fast, reused_reference)
        _assert_identical(reused_fast, fresh_fast)


def test_engine_config_validated():
    assert SimulatorConfig().engine == "fast"
    with pytest.raises(ValueError):
        SimulatorConfig(engine="warp")


def test_heavy_load_blocked_admissions_identical():
    """Saturating load exercises blocked pending queues and truncated epochs."""
    workload = WorkloadSpec(
        name="heavy",
        median_input_length=1024.0,
        median_output_length=256.0,
        input_sigma=0.2,
        output_sigma=0.3,
    )
    trace = generate_requests(workload, 12.0, num_requests=60, seed=5)
    _assert_identical(_run(trace, "fast", seed=2), _run(trace, "reference", seed=2))

"""Tests for the documentation gate: the link checker and the docstring mirror."""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(name):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_links():
    return _load("check_links")


@pytest.fixture(scope="module")
def check_docstrings():
    return _load("check_docstrings")


class TestCheckLinks:
    def test_valid_relative_links_pass(self, check_links, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "guide.md").write_text("see [readme](../README.md)\n")
        (tmp_path / "README.md").write_text("see [guide](docs/guide.md) and [web](https://x.example)\n")
        assert check_links.check_file(tmp_path / "README.md", tmp_path) == []
        assert check_links.check_file(tmp_path / "docs" / "guide.md", tmp_path) == []

    def test_broken_link_reported(self, check_links, tmp_path):
        md = tmp_path / "README.md"
        md.write_text("see [missing](docs/nope.md)\n")
        broken = check_links.check_file(md, tmp_path)
        assert [target for target, _ in broken] == ["docs/nope.md"]

    def test_anchor_suffix_stripped_before_check(self, check_links, tmp_path):
        (tmp_path / "other.md").write_text("# Section\n")
        md = tmp_path / "README.md"
        md.write_text("[ok](other.md#section) and [pure anchor](#local)\n")
        assert check_links.check_file(md, tmp_path) == []

    def test_link_escaping_the_repo_is_broken(self, check_links, tmp_path):
        md = tmp_path / "README.md"
        md.write_text("[out](../../etc/passwd)\n")
        broken = check_links.check_file(md, tmp_path)
        assert broken and broken[0][1] == "escapes the repository"

    def test_code_blocks_are_ignored(self, check_links, tmp_path):
        md = tmp_path / "README.md"
        md.write_text("```\n[not a link](missing.md)\n```\n")
        assert check_links.check_file(md, tmp_path) == []

    def test_repo_documentation_has_no_broken_links(self, check_links, capsys):
        # The real gate CI runs: README.md plus docs/*.md must all resolve.
        assert check_links.main([]) == 0
        assert "OK" in capsys.readouterr().out


class TestCheckDocstrings:
    def test_documented_packages_pass(self, check_docstrings, capsys):
        assert check_docstrings.main([]) == 0
        assert "OK" in capsys.readouterr().out

    def test_missing_docstrings_flagged(self, check_docstrings, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Module docstring."""\n\n\nclass Thing:\n    def method(self):\n        return 1\n'
        )
        problems = []
        check_docstrings.check_file(bad, problems)
        assert any("Thing" in p and "missing docstring" in p for p in problems)
        assert any("method" in p and "missing docstring" in p for p in problems)

    def test_private_names_exempt(self, check_docstrings, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text('"""Module docstring."""\n\n\ndef _helper():\n    return 1\n')
        problems = []
        check_docstrings.check_file(ok, problems)
        assert problems == []

    def test_summary_format_rules(self, check_docstrings, tmp_path):
        bad = tmp_path / "fmt.py"
        bad.write_text(
            '"""Module docstring."""\n\n\ndef f():\n    """no capital, no period"""\n    return 1\n'
        )
        problems = []
        check_docstrings.check_file(bad, problems)
        assert any("capitalised" in p for p in problems)
        assert any("period" in p for p in problems)

"""Tests for the tiny transformer and the KV-transport quality metrics."""

import numpy as np
import pytest

from repro.quality.metrics import (
    evaluate_kv_transport_quality,
    next_token_agreement,
    pseudo_perplexity,
    rouge_l,
    rouge_n,
)
from repro.quality.tiny_transformer import TinyTransformer, TinyTransformerConfig


@pytest.fixture(scope="module")
def tiny_lm():
    return TinyTransformer(TinyTransformerConfig(vocab_size=64, d_model=32, num_heads=4,
                                                 num_layers=2, d_ff=64, max_seq_len=128, seed=0))


class TestTinyTransformer:
    def test_prefill_shapes(self, tiny_lm):
        logits, cache = tiny_lm.prefill(np.arange(10) % 64)
        assert logits.shape == (64,)
        assert len(cache) == 2
        assert cache[0][0].shape == (10, 32)

    def test_decode_step_extends_cache(self, tiny_lm):
        _, cache = tiny_lm.prefill(np.arange(10) % 64)
        _, new_cache = tiny_lm.decode_step(5, 10, cache)
        assert new_cache[0][0].shape[0] == 11

    def test_incremental_decode_matches_full_prefill(self, tiny_lm):
        """KV-cache decoding must equal recomputing the full sequence from scratch."""
        tokens = (np.arange(12) * 7) % 64
        logits_full, _ = tiny_lm.prefill(tokens)
        logits_inc, cache = tiny_lm.prefill(tokens[:-1])
        logits_inc, _ = tiny_lm.decode_step(int(tokens[-1]), 11, cache)
        assert np.allclose(logits_full, logits_inc, atol=1e-4)

    def test_generate_deterministic(self, tiny_lm):
        prompt = np.arange(16) % 64
        a, _ = tiny_lm.generate(prompt, 8)
        b, _ = tiny_lm.generate(prompt, 8)
        assert np.array_equal(a, b)

    def test_exact_transport_is_identity(self, tiny_lm):
        prompt = np.arange(16) % 64
        exact, _ = tiny_lm.generate(prompt, 8, kv_transport_bits=None)
        bits16, _ = tiny_lm.generate(prompt, 8, kv_transport_bits=16)
        assert np.array_equal(exact, bits16)

    def test_prompt_too_long_rejected(self, tiny_lm):
        with pytest.raises(ValueError):
            tiny_lm.prefill(np.zeros(500, dtype=int))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TinyTransformerConfig(d_model=30, num_heads=4)

    def test_teacher_forced_predictions_length(self, tiny_lm):
        prompt = np.arange(10) % 64
        continuation = np.arange(6) % 64
        predictions = tiny_lm.teacher_forced_predictions(prompt, continuation)
        assert predictions.shape == (6,)

    def test_sequence_logprobs_are_negative(self, tiny_lm):
        prompt = np.arange(10) % 64
        continuation = np.arange(5) % 64
        logprobs = tiny_lm.sequence_logprobs(prompt, continuation)
        assert logprobs.shape == (5,)
        assert np.all(logprobs <= 0)


class TestTextMetrics:
    def test_rouge_identical(self):
        assert rouge_n([1, 2, 3, 4], [1, 2, 3, 4], 1) == 1.0
        assert rouge_n([1, 2, 3, 4], [1, 2, 3, 4], 2) == 1.0
        assert rouge_l([1, 2, 3, 4], [1, 2, 3, 4]) == 1.0

    def test_rouge_disjoint(self):
        assert rouge_n([1, 2, 3], [4, 5, 6], 1) == 0.0
        assert rouge_l([1, 2, 3], [4, 5, 6]) == 0.0

    def test_rouge_partial_overlap(self):
        assert 0.0 < rouge_n([1, 2, 3, 4], [1, 2, 9, 9], 1) < 1.0

    def test_rouge_l_subsequence(self):
        assert rouge_l([1, 2, 3, 4, 5], [1, 3, 5]) == pytest.approx(2 * 0.6 * 1.0 / 1.6)

    def test_next_token_agreement(self):
        assert next_token_agreement([1, 2, 3, 4], [1, 2, 9, 4]) == 0.75
        assert next_token_agreement([], []) == 1.0

    def test_pseudo_perplexity(self):
        assert pseudo_perplexity(np.log(np.full(10, 0.5))) == pytest.approx(2.0)
        assert np.isnan(pseudo_perplexity(np.array([])))


class TestKVQualityEvaluation:
    def test_16bit_equivalent_is_lossless(self):
        report = evaluate_kv_transport_quality(bits=8, num_prompts=2, prompt_length=24,
                                               generate_tokens=8, seed=0)
        assert report.token_agreement == pytest.approx(1.0, abs=0.05)

    def test_4bit_transport_preserves_most_decisions(self):
        report = evaluate_kv_transport_quality(bits=4, num_prompts=3, prompt_length=32,
                                               generate_tokens=12, seed=0)
        assert report.token_agreement > 0.7
        assert 0.8 < report.ppl_ratio < 1.25
        assert report.rouge1 > 0.5

    def test_report_fields_consistent(self):
        report = evaluate_kv_transport_quality(bits=4, num_prompts=2, prompt_length=24,
                                               generate_tokens=8, seed=1)
        assert report.accuracy_drop == pytest.approx(1.0 - report.token_agreement)
        assert report.bits == 4
        assert report.num_prompts == 2

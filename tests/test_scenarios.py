"""Coverage for every named scenario in ``repro.scenarios`` and the sweep runner.

Each registered scenario is checked for: determinism under a fixed seed, trace
shape invariants (arrival monotonicity and bounds, positive lengths, unique ids)
and one end-to-end ``ThunderServe.serve()`` smoke run; the sweep runner is
exercised across the whole library, including the failure-injection path.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FailureEvent,
    ScenarioSweep,
    SpotPreemptionScenario,
    default_scenarios,
    get_scenario,
    list_scenarios,
)
from repro.scenarios.library import MultiTenantSLOTiersScenario, TenantTier
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.system import ThunderServe
from repro.simulation.engine import SimulatorConfig
from repro.workload.spec import CONVERSATION_WORKLOAD

#: short trace length used throughout: long enough for dozens of requests,
#: short enough to keep the whole module in the fast tier of the suite
SMOKE_DURATION = 12.0


def smoke_scenarios():
    """One short-duration instance of every registered scenario."""
    return default_scenarios(duration=SMOKE_DURATION)


@pytest.fixture(scope="module")
def cloud_plan(cloud_cluster, model_30b):
    """A scheduler-built plan on the 32-GPU cloud cluster, shared by all smokes."""
    scheduler = Scheduler(
        SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=6, num_neighbors=4, memory_size=5, patience=4),
            seed=0,
        )
    )
    result = scheduler.schedule(
        cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=5.0
    )
    return result.plan


# --------------------------------------------------------------------- registry
def test_registry_has_at_least_six_scenarios():
    names = list_scenarios()
    assert len(names) >= 6
    assert len(set(names)) == len(names)
    for name in names:
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.description


def test_get_scenario_overrides_and_errors():
    scenario = get_scenario("long-context-rag", request_rate=3.5, duration=20.0)
    assert scenario.request_rate == 3.5
    assert scenario.duration == 20.0
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")


# ------------------------------------------------------------------ determinism
@pytest.mark.parametrize("scenario", smoke_scenarios(), ids=lambda s: s.name)
def test_trace_deterministic_under_fixed_seed(scenario):
    first = scenario.build_trace(seed=42)
    second = scenario.build_trace(seed=42)
    assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
    assert [(r.input_length, r.output_length, r.workload) for r in first] == [
        (r.input_length, r.output_length, r.workload) for r in second
    ]
    different = scenario.build_trace(seed=43)
    assert [r.arrival_time for r in first] != [r.arrival_time for r in different]


# -------------------------------------------------------------------- invariants
@pytest.mark.parametrize("scenario", smoke_scenarios(), ids=lambda s: s.name)
def test_trace_shape_invariants(scenario):
    trace = scenario.build_trace(seed=7)
    assert len(trace) > 0, "a smoke-length trace must contain requests"
    arrivals = [r.arrival_time for r in trace]
    assert arrivals == sorted(arrivals), "arrivals must be non-decreasing"
    assert all(0.0 <= t < scenario.duration for t in arrivals)
    assert all(r.input_length >= 1 and r.output_length >= 1 for r in trace)
    ids = [r.request_id for r in trace]
    assert len(set(ids)) == len(ids), "request ids must be unique"


def test_multi_tenant_trace_tags_every_tenant():
    scenario = get_scenario("multi-tenant", duration=30.0)
    trace = scenario.build_trace(seed=5)
    tags = {r.workload for r in trace}
    assert tags == {f"tenant:{t.tenant}" for t in scenario.tiers}
    assert scenario.slo_scale() == min(t.slo_scale for t in scenario.tiers)


def test_multi_tenant_rejects_bad_shares():
    with pytest.raises(ValueError):
        MultiTenantSLOTiersScenario(
            tiers=(
                TenantTier("a", CONVERSATION_WORKLOAD, share=0.5, slo_scale=5.0),
                TenantTier("b", CONVERSATION_WORKLOAD, share=0.2, slo_scale=5.0),
            )
        )


def test_spot_preemption_failure_schedule_sorted_and_bounded():
    scenario = SpotPreemptionScenario(duration=100.0, preemption_fractions=(0.7, 0.3))
    events = scenario.failure_schedule()
    assert [e.time for e in events] == [30.0, 70.0]
    assert all(isinstance(e, FailureEvent) and 0 < e.time < 100.0 for e in events)


# ------------------------------------------------------------------- e2e smokes
@pytest.mark.integration
@pytest.mark.parametrize("scenario", smoke_scenarios(), ids=lambda s: s.name)
def test_serve_smoke_per_scenario(scenario, cloud_cluster, model_30b, cloud_plan):
    """Every scenario's trace must serve end-to-end on a real deployment plan."""
    system = ThunderServe(
        cloud_cluster,
        model_30b,
        scenario.planning_workload(),
        scenario.request_rate,
    )
    system.adopt_plan(cloud_plan)
    trace = scenario.build_trace(seed=3)
    result = system.serve(trace, label=scenario.name)
    assert result.num_requests == len(trace)
    assert result.num_finished > 0
    assert result.output_token_throughput > 0


@pytest.mark.integration
def test_scenario_sweep_end_to_end(cloud_cluster, model_30b, cloud_plan):
    """The concurrent sweep covers all scenarios, including failure injection."""
    sweep = ScenarioSweep(smoke_scenarios(), seed=0)
    outcomes = sweep.evaluate(cloud_cluster, model_30b, cloud_plan)
    assert set(outcomes) == set(list_scenarios())
    for name, outcome in outcomes.items():
        assert outcome.num_requests > 0, name
        assert outcome.num_finished > 0, name
        for value in (
            outcome.attainment_e2e, outcome.attainment_ttft, outcome.attainment_tpot
        ):
            assert 0.0 <= value <= 1.0, name
    spot = outcomes["spot-preemption"]
    assert spot.num_plan_changes == len(SpotPreemptionScenario().preemption_fractions)
    tenants = outcomes["multi-tenant"].per_tenant_attainment
    assert set(tenants) == {"gold", "silver", "bronze"}
    table = ScenarioSweep.to_table(outcomes)
    assert "spot-preemption" in table


def test_sweep_is_deterministic(cloud_cluster, model_30b, cloud_plan):
    """Same seed, same outcomes — scenario seeds are derived deterministically."""
    scenarios = [get_scenario("diurnal", duration=SMOKE_DURATION)]
    first = ScenarioSweep(scenarios, seed=9).evaluate(cloud_cluster, model_30b, cloud_plan)
    second = ScenarioSweep(scenarios, seed=9).evaluate(cloud_cluster, model_30b, cloud_plan)
    a, b = first["diurnal"], second["diurnal"]
    assert a.num_requests == b.num_requests
    assert a.attainment_e2e == b.attainment_e2e
    assert a.output_token_throughput == b.output_token_throughput


def _outcomes_semantically_equal(a, b) -> bool:
    """Outcome equality up to wall-clock (elapsed_s legitimately differs)."""
    return (
        a.num_requests == b.num_requests
        and a.num_finished == b.num_finished
        and a.attainment_e2e == b.attainment_e2e
        and a.attainment_ttft == b.attainment_ttft
        and a.attainment_tpot == b.attainment_tpot
        and a.output_token_throughput == b.output_token_throughput
        and a.num_plan_changes == b.num_plan_changes
        and a.per_tenant_attainment == b.per_tenant_attainment
    )


def test_sweep_engines_agree_through_failure_windows(cloud_cluster, model_30b, cloud_plan):
    """Fast and reference simulator engines match across the sweep, including the
    windowed failure-injection path (spot preemption reschedules between windows)."""
    scenarios = [
        get_scenario("spot-preemption", duration=SMOKE_DURATION),
        get_scenario("bursty", duration=SMOKE_DURATION),
    ]
    outcomes = {}
    for engine in ("fast", "reference"):
        sweep = ScenarioSweep(
            scenarios, seed=4, simulator_config=SimulatorConfig(engine=engine)
        )
        outcomes[engine] = sweep.evaluate(cloud_cluster, model_30b, cloud_plan)
    for name in outcomes["fast"]:
        a, b = outcomes["fast"][name], outcomes["reference"][name]
        assert _outcomes_semantically_equal(a, b), name
        assert a.result is not None and b.result is not None
        for ma, mb in zip(a.result.metrics, b.result.metrics):
            assert ma.completion_time == mb.completion_time
            assert ma.first_token_time == mb.first_token_time


def test_sweep_process_executor_matches_threads(cloud_cluster, model_30b, cloud_plan):
    """executor="process" returns outcomes equal to thread mode."""
    scenarios = [
        get_scenario("diurnal", duration=SMOKE_DURATION),
        get_scenario("agentic-mix", duration=SMOKE_DURATION),
    ]
    thread = ScenarioSweep(scenarios, seed=1).evaluate(cloud_cluster, model_30b, cloud_plan)
    process = ScenarioSweep(scenarios, seed=1, executor="process", max_workers=2).evaluate(
        cloud_cluster, model_30b, cloud_plan
    )
    assert set(thread) == set(process)
    for name in thread:
        assert _outcomes_semantically_equal(thread[name], process[name]), name


def test_sweep_rejects_unknown_executor():
    with pytest.raises(ValueError):
        ScenarioSweep(executor="fiber")


def test_sweep_rejects_unknown_on_error_policy():
    with pytest.raises(ValueError):
        ScenarioSweep(on_error="ignore")


def test_sweep_on_error_zero_records_failure_as_zero_attainment(monkeypatch):
    """A scenario the plan cannot survive scores 0 instead of aborting the sweep."""
    from repro.core.exceptions import SchedulingError
    from repro.scenarios import sweep as sweep_module

    scenarios = [
        get_scenario("diurnal", duration=SMOKE_DURATION),
        get_scenario("bursty", duration=SMOKE_DURATION),
    ]
    real_run = sweep_module._run_scenario

    def failing_run(sweep, scenario, cluster, model, plan):
        if scenario.name == "bursty":
            raise SchedulingError("injected: rescheduling infeasible")
        return real_run(sweep, scenario, cluster, model, plan)

    monkeypatch.setattr(sweep_module, "_run_scenario", failing_run)

    strict = ScenarioSweep(scenarios, seed=2)
    with pytest.raises(SchedulingError):
        # Dummy cluster/model/plan are fine: the failure fires before serving.
        strict.evaluate(*_tiny_serving_context())

    lenient = ScenarioSweep(scenarios, seed=2, on_error="zero")
    outcomes = lenient.evaluate(*_tiny_serving_context())
    assert outcomes["bursty"].attainment_e2e == 0.0
    assert outcomes["bursty"].error is not None
    assert "injected" in outcomes["bursty"].error
    assert outcomes["diurnal"].error is None
    assert outcomes["diurnal"].num_requests > 0

    summary = ScenarioSweep.summarize(outcomes)
    assert summary["worst_scenario"] == "bursty"
    assert summary["worst_attainment"] == 0.0


_TINY_CONTEXT = {}


def _tiny_serving_context():
    """One shared (cluster, model, plan) for the on_error tests (built once)."""
    if not _TINY_CONTEXT:
        from repro.hardware.cluster import make_two_datacenter_cluster
        from repro.model.architecture import get_model_config

        cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
        model = get_model_config("llama-30b")
        scheduler = Scheduler(
            SchedulerConfig(
                tabu=TabuSearchConfig(num_steps=4, num_neighbors=3, memory_size=5, patience=3),
                seed=0,
            )
        )
        plan = scheduler.schedule(
            cluster, model, CONVERSATION_WORKLOAD, request_rate=3.0
        ).plan
        _TINY_CONTEXT["ctx"] = (cluster, model, plan)
    return _TINY_CONTEXT["ctx"]


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        ScenarioSweep.summarize({})


# ----------------------------------------------------------- plan-change counter
def test_plan_change_counter_zero_without_failures():
    """A scenario with no failure events reports exactly zero plan changes."""
    cluster, model, plan = _tiny_serving_context()
    scenario = get_scenario("diurnal", duration=SMOKE_DURATION)
    sweep = ScenarioSweep([scenario], seed=0)
    outcome = sweep._run_one(scenario, cluster, model, plan)
    assert outcome.num_plan_changes == 0


def test_plan_change_counter_never_negative_without_install_event(monkeypatch):
    """Counting is anchored at the adoption snapshot, not ``installs - 1``.

    A system that starts serving without a recorded ``plan_installed`` event
    (the old code subtracted a hard-coded 1 and went to -1 here) must report
    zero plan changes.
    """
    from repro.serving.coordinator import RequestCoordinator

    cluster, model, plan = _tiny_serving_context()

    def quiet_adopt(self, plan, reason="quiet"):
        # Install the plan without appending a ``plan_installed`` event,
        # emulating a pre-provisioned system that never went through
        # ``adopt_plan``/``deploy``.
        self.plan = plan
        self.coordinator = RequestCoordinator(plan)
        self._simulator = None
        self.profiler.set_reference_from_spec(self.workload, self.request_rate)
        return plan

    monkeypatch.setattr(ThunderServe, "adopt_plan", quiet_adopt)
    scenario = get_scenario("diurnal", duration=SMOKE_DURATION)
    sweep = ScenarioSweep([scenario], seed=0)
    outcome = sweep._run_one(scenario, cluster, model, plan)
    assert outcome.num_plan_changes == 0, (
        f"plan-change counter went to {outcome.num_plan_changes} on a system "
        "with no prior install event"
    )


# ------------------------------------------------------- failure-window boundary
def _boundary_trace(times):
    """A tiny trace with one conversation-shaped request per arrival time."""
    from repro.core.types import Request
    from repro.workload.trace import Trace

    requests = [
        Request(
            request_id=i,
            arrival_time=t,
            input_length=128,
            output_length=16,
            workload="conversation",
        )
        for i, t in enumerate(times)
    ]
    return Trace(requests=requests, name="boundary")


@pytest.mark.parametrize("num_events", [1, 2])
def test_request_at_failure_time_served_exactly_once(num_events):
    """A request arriving exactly at ``FailureEvent.time`` is served once.

    ``Trace.window`` is half-open ``[start, end)``: the pre-failure window
    excludes the boundary arrival and the post-failure window includes it.
    With two *coincident* failure events the middle window is empty and the
    request must still be served exactly once, after both events.
    """
    cluster, model, plan = _tiny_serving_context()
    boundary = 6.0
    trace = _boundary_trace([1.0, boundary - 0.5, boundary, boundary + 0.5, 10.0])
    system = ThunderServe(cluster, model, CONVERSATION_WORKLOAD, request_rate=1.0)
    system.adopt_plan(plan)
    # ``gpu_ids=()`` keeps the windowing machinery (and any rescheduling hooks)
    # exercised without actually killing GPUs, so the serve stays deterministic.
    events = [FailureEvent(time=boundary, gpu_ids=()) for _ in range(num_events)]
    sweep = ScenarioSweep([get_scenario("diurnal", duration=SMOKE_DURATION)], seed=0)
    result, overhead_s, num_outages = sweep._serve_with_failures(
        system, trace, events, label="boundary"
    )
    assert result.num_requests == len(trace)
    assert overhead_s == 0.0, "no GPUs died, so no replan was priced"
    assert num_outages == 0
    served_ids = sorted(m.request.request_id for m in result.metrics)
    assert served_ids == [0, 1, 2, 3, 4], "every request served exactly once"
    boundary_metrics = [m for m in result.metrics if m.request.arrival_time == boundary]
    assert len(boundary_metrics) == 1
    # The boundary request belongs to the *post*-failure window: it cannot have
    # started prefill before the failure instant.
    assert boundary_metrics[0].enqueue_time >= boundary


def test_count_based_event_can_reach_total_loss():
    """``num_gpus >= cluster size`` kills every GPU; nothing is clamped alive.

    Regression test: the random-victim path used to draw
    ``min(event.num_gpus, len(alive) - 1)`` victims, silently keeping one GPU
    alive and making total capacity loss unreachable from count-based events.
    A count asking for at least the whole cluster must now take it down —
    every arrival after the event is a zero-attainment ``dropped_outage``.
    """
    from repro.core.types import RequestOutcome

    cluster, model, plan = _tiny_serving_context()
    trace = _boundary_trace([1.0, 2.0, 6.5, 7.0])
    system = ThunderServe(cluster, model, CONVERSATION_WORKLOAD, request_rate=1.0)
    system.adopt_plan(plan)
    events = [FailureEvent(time=6.0, num_gpus=cluster.num_gpus + 5)]
    sweep = ScenarioSweep([get_scenario("diurnal", duration=SMOKE_DURATION)], seed=0)
    result, overhead_s, num_outages = sweep._serve_with_failures(
        system, trace, events, label="total-loss"
    )
    assert num_outages == 1
    assert overhead_s == 0.0, "nothing survived, so no replan was priced"
    assert result.num_requests == 4
    dropped = sorted(
        m.request.request_id
        for m in result.metrics
        if m.outcome is RequestOutcome.DROPPED_OUTAGE
    )
    assert dropped == [2, 3], "both post-outage arrivals are dropped"
    finished = sorted(m.request.request_id for m in result.metrics if m.finished)
    assert finished == [0, 1], "pre-outage arrivals still complete"

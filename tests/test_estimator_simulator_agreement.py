"""Figure-19-style golden harness: analytic estimator vs. discrete-event simulator.

The scheduler trusts the fast analytic :class:`SLOEstimator` to rank candidate
deployments; the paper validates that trust by comparing the estimator against
the discrete-event simulator (Figure 19, Appendix J).  This module turns that
one-off experiment into a permanent contract: on a small fixture fleet at a
light-load operating point, the estimated system SLO attainment must stay within
a fixed tolerance of the simulated attainment — for the TTFT, TPOT *and* E2E SLO
types, across a sweep of SLO scales.

The operating point is deliberately under capacity: the analytic model captures
steady-state service, an M/D/1 queueing correction and the KV transfer, but not
transient saturation, so the contract (like Figure 19) is about the regime the
scheduler actually plans for — replicas held below their target utilisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Phase, SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow


#: request rate of the fixture fleet (comfortably below its capacity)
REQUEST_RATE = 0.5
#: SLO scales swept by the harness (multiples of the A100 reference latency)
SLO_SCALES = (2.0, 4.0, 8.0, 16.0)
#: maximum allowed |estimated - simulated| attainment at any single scale
POINT_TOLERANCE = 0.15
#: maximum allowed mean gap across the sweep
MEAN_TOLERANCE = 0.08


@pytest.fixture(scope="module")
def fixture_fleet(small_hetero_cluster, model_30b, conversation_workload):
    """A 2-replica fleet (A40 prefill -> 3090Ti decode), its plan and a sim run."""
    cluster = small_hetero_cluster
    reference = a100_reference_latency(model_30b, conversation_workload)
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model_30b,
        workload=conversation_workload,
        slo=reference.slo_spec(8.0),
        request_rate=REQUEST_RATE,
    )
    result = solver.solve(solution)
    assert result.feasible and result.plan is not None
    trace = generate_requests(
        conversation_workload, REQUEST_RATE, duration=60.0, seed=123
    )
    sim = ServingSimulator(
        cluster, result.plan, model_30b, config=SimulatorConfig(seed=0)
    ).run(trace)
    assert sim.num_finished == sim.num_requests, "fixture run must fully drain"
    return cluster, solution, reference, sim


@pytest.mark.parametrize("slo_type", [SLOType.TTFT, SLOType.TPOT, SLOType.E2E])
def test_estimator_tracks_simulator(
    fixture_fleet, model_30b, conversation_workload, slo_type
):
    cluster, solution, reference, sim = fixture_fleet
    gaps = []
    for scale in SLO_SCALES:
        slo = reference.slo_spec(scale)
        solver = LowerLevelSolver(
            cluster=cluster,
            model=model_30b,
            workload=conversation_workload,
            slo=slo,
            request_rate=REQUEST_RATE,
            slo_type=slo_type,
        )
        estimated = solver.solve(solution).estimated_attainment
        simulated = sim.slo_attainment(slo, slo_type)
        gap = abs(estimated - simulated)
        gaps.append(gap)
        assert gap <= POINT_TOLERANCE, (
            f"{slo_type.value} at scale {scale}: estimated {estimated:.3f} vs "
            f"simulated {simulated:.3f} (gap {gap:.3f} > {POINT_TOLERANCE})"
        )
    assert float(np.mean(gaps)) <= MEAN_TOLERANCE


@pytest.mark.parametrize("slo_type", [SLOType.TTFT, SLOType.TPOT, SLOType.E2E])
def test_attainment_saturates_at_loose_slo(
    fixture_fleet, model_30b, conversation_workload, slo_type
):
    """Both estimator and simulator must reach full attainment at a loose SLO."""
    cluster, solution, reference, sim = fixture_fleet
    slo = reference.slo_spec(64.0)
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model_30b,
        workload=conversation_workload,
        slo=slo,
        request_rate=REQUEST_RATE,
        slo_type=slo_type,
    )
    assert solver.solve(solution).estimated_attainment == pytest.approx(1.0, abs=1e-6)
    assert sim.slo_attainment(slo, slo_type) == pytest.approx(1.0, abs=1e-6)

"""Figure-19-style golden harness: analytic estimator vs. discrete-event simulator.

The scheduler trusts the fast analytic :class:`SLOEstimator` to rank candidate
deployments; the paper validates that trust by comparing the estimator against
the discrete-event simulator (Figure 19, Appendix J).  This module turns that
one-off experiment into a permanent contract: the estimated system SLO
attainment must stay within a fixed tolerance of the simulated attainment — for
the TTFT, TPOT *and* E2E SLO types, across a sweep of SLO scales.

The contract covers the whole operating range, not just light load.  The
estimator models prefill congestion with a two-moment M/G/1
(Pollaczek–Khinchine) correction whose service-time moments come from the
workload grid priced at the engine's *padded* batch semantics, a Little's-law
batch co-service term, and a two-parameter exponential wait distribution — so
it tracks the simulator through saturation (``test_estimator_tracks_simulator_
near_saturation`` pins a rho ~ 0.85 prefill operating point) and collapses to
exactly zero attainment for an overloaded fleet (``rho >= 1``), where the old
M/D/1 term with its silent utilisation clamps used to flatter infeasible plans.
The ``bench_estimator_saturation`` benchmark extends this contract to a full
utilisation ramp (rho 0.7 / 0.85 / 0.95 / overload) under CI gating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Phase, SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow


#: request rate of the fixture fleet (comfortably below its capacity)
REQUEST_RATE = 0.5
#: SLO scales swept by the harness (multiples of the A100 reference latency)
SLO_SCALES = (2.0, 4.0, 8.0, 16.0)
#: maximum allowed |estimated - simulated| attainment at any single scale
POINT_TOLERANCE = 0.15
#: maximum allowed mean gap across the sweep
MEAN_TOLERANCE = 0.08


@pytest.fixture(scope="module")
def fixture_fleet(small_hetero_cluster, model_30b, conversation_workload):
    """A 2-replica fleet (A40 prefill -> 3090Ti decode), its plan and a sim run."""
    cluster = small_hetero_cluster
    reference = a100_reference_latency(model_30b, conversation_workload)
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model_30b,
        workload=conversation_workload,
        slo=reference.slo_spec(8.0),
        request_rate=REQUEST_RATE,
    )
    result = solver.solve(solution)
    assert result.feasible and result.plan is not None
    trace = generate_requests(
        conversation_workload, REQUEST_RATE, duration=60.0, seed=123
    )
    sim = ServingSimulator(
        cluster, result.plan, model_30b, config=SimulatorConfig(seed=0)
    ).run(trace)
    assert sim.num_finished == sim.num_requests, "fixture run must fully drain"
    return cluster, solution, reference, sim


@pytest.mark.parametrize("slo_type", [SLOType.TTFT, SLOType.TPOT, SLOType.E2E])
def test_estimator_tracks_simulator(
    fixture_fleet, model_30b, conversation_workload, slo_type
):
    cluster, solution, reference, sim = fixture_fleet
    gaps = []
    for scale in SLO_SCALES:
        slo = reference.slo_spec(scale)
        solver = LowerLevelSolver(
            cluster=cluster,
            model=model_30b,
            workload=conversation_workload,
            slo=slo,
            request_rate=REQUEST_RATE,
            slo_type=slo_type,
        )
        estimated = solver.solve(solution).estimated_attainment
        simulated = sim.slo_attainment(slo, slo_type)
        gap = abs(estimated - simulated)
        gaps.append(gap)
        assert gap <= POINT_TOLERANCE, (
            f"{slo_type.value} at scale {scale}: estimated {estimated:.3f} vs "
            f"simulated {simulated:.3f} (gap {gap:.3f} > {POINT_TOLERANCE})"
        )
    assert float(np.mean(gaps)) <= MEAN_TOLERANCE


@pytest.mark.parametrize("slo_type", [SLOType.TTFT, SLOType.TPOT, SLOType.E2E])
def test_attainment_saturates_at_loose_slo(
    fixture_fleet, model_30b, conversation_workload, slo_type
):
    """Both estimator and simulator must reach full attainment at a loose SLO."""
    cluster, solution, reference, sim = fixture_fleet
    slo = reference.slo_spec(64.0)
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model_30b,
        workload=conversation_workload,
        slo=slo,
        request_rate=REQUEST_RATE,
        slo_type=slo_type,
    )
    assert solver.solve(solution).estimated_attainment == pytest.approx(1.0, abs=1e-6)
    assert sim.slo_attainment(slo, slo_type) == pytest.approx(1.0, abs=1e-6)


# ------------------------------------------------------------------ saturation
@pytest.fixture(scope="module")
def coding_fleet(small_hetero_cluster, model_30b):
    """The fixture fleet under the prefill-heavy coding workload, plus its
    prefill capacity (the request rate at which the single prefill replica's
    implied utilisation reaches 1.0 under padded batching)."""
    from repro.workload.spec import CODING_WORKLOAD

    cluster = small_hetero_cluster
    reference = a100_reference_latency(model_30b, CODING_WORKLOAD)
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    probe = LowerLevelSolver(
        cluster=cluster,
        model=model_30b,
        workload=CODING_WORKLOAD,
        slo=reference.slo_spec(8.0),
        request_rate=1.0,
    )
    result = probe.solve(solution)
    assert result.feasible and result.plan is not None
    prefill_group = next(g for g in result.plan.groups if g.phase is Phase.PREFILL)
    perf = probe.estimator.replica_performance(prefill_group)
    capacity_rps = 1.0 / perf.prefill_service_s
    return cluster, solution, reference, capacity_rps


def test_estimator_tracks_simulator_near_saturation(coding_fleet, model_30b):
    """E2E attainment agreement at a saturated (rho ~ 0.85) operating point.

    This is the regime the M/D/1 correction with its silent clamps got wrong:
    queueing delay was systematically underestimated, so the estimator reported
    near-perfect attainment while the simulator queued for seconds.  The M/G/1
    model with padded service moments and the exponential wait distribution
    must stay within the harness tolerances here.
    """
    from repro.workload.spec import CODING_WORKLOAD

    cluster, solution, reference, capacity_rps = coding_fleet
    rate = 0.85 * capacity_rps
    runs = []
    for seed in (11, 123, 456):
        trace = generate_requests(CODING_WORKLOAD, rate, duration=600.0, seed=seed)
        solver = LowerLevelSolver(
            cluster=cluster,
            model=model_30b,
            workload=CODING_WORKLOAD,
            slo=reference.slo_spec(8.0),
            request_rate=rate,
        )
        plan = solver.solve(solution).plan
        runs.append(
            ServingSimulator(cluster, plan, model_30b, config=SimulatorConfig(seed=0)).run(trace)
        )
    gaps = []
    for scale in (4.0, 8.0, 12.0, 16.0):
        slo = reference.slo_spec(scale)
        solver = LowerLevelSolver(
            cluster=cluster,
            model=model_30b,
            workload=CODING_WORKLOAD,
            slo=slo,
            request_rate=rate,
        )
        estimated = solver.solve(solution).estimated_attainment
        simulated = float(np.mean([r.slo_attainment(slo, SLOType.E2E) for r in runs]))
        gap = abs(estimated - simulated)
        gaps.append(gap)
        assert gap <= POINT_TOLERANCE, (
            f"e2e at scale {scale}, rho 0.85: estimated {estimated:.3f} vs "
            f"simulated {simulated:.3f} (gap {gap:.3f} > {POINT_TOLERANCE})"
        )
    assert float(np.mean(gaps)) <= MEAN_TOLERANCE


def test_overloaded_fleet_estimates_zero(coding_fleet, model_30b):
    """Demand beyond prefill capacity: the estimate is *exactly* zero.

    The simulator still serves a sliver of the trace (early arrivals before the
    queue diverges), but the estimator must not flatter the plan with a finite
    M/D/1-style wait: ``rho >= 1`` is infeasible, full stop.
    """
    from repro.workload.spec import CODING_WORKLOAD

    cluster, solution, reference, capacity_rps = coding_fleet
    rate = 1.3 * capacity_rps
    slo = reference.slo_spec(8.0)
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model_30b,
        workload=CODING_WORKLOAD,
        slo=slo,
        request_rate=rate,
    )
    result = solver.solve(solution)
    assert result.estimated_attainment == 0.0
    trace = generate_requests(CODING_WORKLOAD, rate, duration=300.0, seed=11)
    sim = ServingSimulator(
        cluster, result.plan, model_30b, config=SimulatorConfig(seed=0)
    ).run(trace)
    assert sim.slo_attainment(slo, SLOType.E2E) <= 0.2

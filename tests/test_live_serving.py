"""Tests for the live adaptive serving loop.

The load-bearing contract here is *piecewise-static equivalence*: plan changes
only happen between windows, so replaying each window's sub-trace against its
recorded plan in independent batch simulations must reproduce the live run's
windowed metrics exactly.  README.md and docs/architecture.md both point at
this file for that guarantee.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.types import SLOType
from repro.faults import FaultEvent, FaultKind, FaultSchedule, RetryPolicy
from repro.scenarios.library import DiurnalTrafficScenario
from repro.scenarios.sweep import ScenarioSweep
from repro.serving.live import (
    LiveServeConfig,
    LiveServer,
    WindowTelemetry,
    plan_signature,
)
from repro.serving.slo_objectives import BreachEvent
from repro.serving.system import ThunderServe
from repro.workload.generator import generate_requests
from repro.workload.trace import Trace

WINDOW_S = 4.0

#: An objective no window can satisfy: forces a breach in window 0 (and, being
#: edge-triggered, *only* window 0), which in turn forces one online
#: rescheduling — so the equivalence run spans a real plan change.
IMPOSSIBLE_SLO = {
    "objectives": [
        {"name": "availability", "metric": "attainment_e2e", "op": ">=", "target": 2.0}
    ]
}


@pytest.fixture(scope="module")
def live_trace(conversation_workload):
    return generate_requests(conversation_workload, request_rate=4.0, num_requests=60, seed=7)


@pytest.fixture(scope="module")
def system_factory(small_hetero_cluster, model_30b, conversation_workload, relaxed_slo, small_plan):
    """Fresh deployed systems sharing one pre-built plan (no tabu search)."""

    def build():
        system = ThunderServe(
            small_hetero_cluster, model_30b, conversation_workload, 3.0, slo=relaxed_slo
        )
        system.adopt_plan(small_plan, reason="live-serving test")
        return system

    return build


@pytest.fixture(scope="module")
def adaptive_run(system_factory, live_trace):
    """One adaptive run with a breach-forced plan change after window 0."""
    system = system_factory()
    config = LiveServeConfig(
        window_s=WINDOW_S,
        slo_config=IMPOSSIBLE_SLO,
        reschedule_on_breach=True,
        reschedule_on_shift=False,
        # Validation would (correctly) reject a candidate that does not beat a
        # healthy incumbent; this test needs the plan change to happen so the
        # equivalence replay spans two plans.
        validate_reschedule=False,
    )
    report = LiveServer(system, config=config).run(live_trace, label="equivalence")
    return system, report


class TestPiecewiseStaticEquivalence:
    def test_windowed_metrics_match_batch_replay(
        self, adaptive_run, system_factory, live_trace
    ):
        _, report = adaptive_run
        assert len(report.windows) >= 2
        assert report.num_plan_changes >= 1

        # Walk the same window grid the live loop used and replay each window's
        # sub-trace against the plan it was served with, on a fresh system.
        window_start = live_trace[0].arrival_time
        end = live_trace[-1].arrival_time
        served = list(zip(report.windows, report.results, report.served_plans))
        while window_start <= end:
            window = live_trace.window(window_start, window_start + WINDOW_S)
            window_start += WINDOW_S
            if window.is_empty:
                continue
            telemetry, live_result, plan = served.pop(0)
            replay_system = system_factory()
            replay_system.adopt_plan(plan, reason="piecewise-static replay")
            replay = replay_system.serve(window, label="replay")
            slo = replay_system.slo
            assert replay.num_requests == telemetry.num_requests
            assert replay.num_finished == telemetry.num_finished
            assert replay.slo_attainment(slo, SLOType.E2E) == telemetry.attainment_e2e
            assert replay.slo_attainment(slo, SLOType.TTFT) == telemetry.attainment_ttft
            assert replay.slo_attainment(slo, SLOType.TPOT) == telemetry.attainment_tpot
            assert replay.completion_rate == telemetry.completion_rate
            waits = [m.queue_time for m in replay.finished]
            expected_wait = float(np.mean(waits)) if waits else 0.0
            assert telemetry.mean_queue_wait == pytest.approx(expected_wait, abs=1e-12)
            # The merged live result and the replay agree request by request.
            live_e2e = sorted((m.request.request_id, m.e2e_latency) for m in live_result.metrics)
            replay_e2e = sorted((m.request.request_id, m.e2e_latency) for m in replay.metrics)
            assert live_e2e == replay_e2e
        assert not served  # every served window was visited by the replay grid

    def test_plan_ids_track_served_plans(self, adaptive_run):
        _, report = adaptive_run
        assert report.plan_ids == [plan_signature(p) for p in report.served_plans]


class TestBreachTriggeredRescheduling:
    def test_breach_fires_once_and_changes_plan(self, adaptive_run):
        system, report = adaptive_run
        # The impossible objective fails every window, but the edge-triggered
        # tracker fires exactly once — at the first crossing.
        assert len(report.breaches) == 1
        assert report.breaches[0].window_index == 0
        assert report.breaches[0].objective == "availability"
        assert report.windows[0].breaches == (report.breaches[0],)
        assert all(w.breaches == () for w in report.windows[1:])
        # That single breach triggered exactly one online rescheduling.
        assert report.windows[0].plan_changed
        assert report.num_plan_changes == 1
        assert system.num_plan_changes == 1

    def test_validated_rescheduling_never_adopts_non_improving_plan(
        self, system_factory, live_trace
    ):
        # Same breach pressure, but with shadow validation on: the incumbent
        # serves the healthy trace fine, so no candidate can strictly beat it
        # and the loop must stand still.
        system = system_factory()
        config = LiveServeConfig(
            window_s=WINDOW_S,
            slo_config=IMPOSSIBLE_SLO,
            reschedule_on_breach=True,
            reschedule_on_shift=False,
            validate_reschedule=True,
        )
        before = system.require_plan()
        report = LiveServer(system, config=config).run(live_trace, label="validated")
        assert report.num_plan_changes == 0
        assert system.require_plan() is before
        assert len(set(report.plan_ids)) == 1


class TestAdmissionControl:
    def test_shedding_is_deterministic_and_recorded(self, system_factory, live_trace):
        def run():
            system = system_factory()
            config = LiveServeConfig(
                window_s=WINDOW_S,
                admission_max_rho=0.05,
                reschedule_on_breach=False,
                reschedule_on_shift=False,
            )
            report = LiveServer(system, config=config).run(live_trace, label="shed")
            return system, report

        system_a, report_a = run()
        _, report_b = run()
        shed_a = [w.num_shed for w in report_a.windows]
        assert sum(shed_a) > 0
        assert shed_a == [w.num_shed for w in report_b.windows]
        assert system_a.coordinator.num_shed == sum(shed_a)
        for window in report_a.windows:
            snapshot = window.snapshot()
            total = window.num_requests + window.num_shed
            assert snapshot["shed_fraction"] == pytest.approx(window.num_shed / total)

    def test_no_ceiling_admits_everything(self, adaptive_run, live_trace):
        _, report = adaptive_run
        assert sum(w.num_shed for w in report.windows) == 0
        assert sum(w.num_requests for w in report.windows) == len(live_trace)


class TestTelemetry:
    def test_window_telemetry_json_round_trip(self):
        breach = BreachEvent(
            time=8.0, window_index=1, profile="realtime", objective="availability",
            metric="attainment_e2e", op=">=", target=0.9, value=0.4, context="t",
        )
        record = WindowTelemetry(
            index=1, start=4.0, end=8.0, plan_id="deadbeef", profile="realtime",
            num_requests=17, num_shed=3, num_finished=16, request_rate=4.25,
            attainment_e2e=0.4, attainment_ttft=0.6, attainment_tpot=0.9,
            mean_queue_wait=0.12, completion_rate=0.94, estimated_rho=0.7,
            estimated_attainment=0.55, plan_changed=True, breaches=(breach,),
            per_tenant_attainment={"gold": 0.5},
            outcome_counts={"finished": 14, "retried_then_finished": 2, "timed_out": 1, "shed": 3},
        )
        restored = WindowTelemetry.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored == record

    def test_report_round_trip_through_to_dicts(self, adaptive_run):
        _, report = adaptive_run
        restored = [WindowTelemetry.from_dict(d) for d in json.loads(json.dumps(report.to_dicts()))]
        assert restored == report.windows

    def test_streaming_callbacks_and_worst_window(self, adaptive_run):
        _, report = adaptive_run
        assert report.worst_window_attainment() == min(w.attainment_e2e for w in report.windows)
        assert report.merged.num_requests == sum(w.num_requests for w in report.windows)

    def test_stream_yields_same_telemetry(self, system_factory, live_trace):
        system = system_factory()
        config = LiveServeConfig(
            window_s=WINDOW_S, reschedule_on_breach=False, reschedule_on_shift=False
        )

        async def collect():
            records = []
            async for telemetry in LiveServer(system, config=config).stream(
                live_trace, label="stream"
            ):
                records.append(telemetry)
            return records

        streamed = asyncio.run(collect())
        reference = LiveServer(system_factory(), config=config).run(live_trace, label="stream")
        assert streamed == reference.windows


class TestConfigAndEdgeCases:
    def test_window_length_validated(self):
        with pytest.raises(ValueError, match="window_s"):
            LiveServeConfig(window_s=0.0)

    def test_admission_ceiling_validated(self):
        with pytest.raises(ValueError, match="admission_max_rho"):
            LiveServeConfig(admission_max_rho=1.5)

    def test_empty_trace_yields_empty_report(self, system_factory):
        report = LiveServer(system_factory()).run(Trace(requests=[]), label="empty")
        assert report.windows == []
        assert report.worst_window_attainment() == 1.0
        assert report.num_plan_changes == 0

    def test_plan_signature_stable(self, small_plan):
        signature = plan_signature(small_plan)
        assert signature == plan_signature(small_plan)
        assert len(signature) == 8
        int(signature, 16)  # hex


class TestInEngineFaults:
    """Capacity faults inside a window are compiled into the engine run."""

    RETRY = RetryPolicy(max_retries=3, backoff_base_s=0.3, jitter=0.1)

    @pytest.fixture(scope="class")
    def multi_system_factory(self, small_hetero_cluster, model_7b, conversation_workload):
        """Systems over a four-replica llama-7b plan with uniform routing.

        Two prefill and two decode replicas, so killing one prefill group
        leaves a survivor for the retry path to land on; ``routing=None``
        spreads traffic uniformly so the dying replica always holds work.
        """
        from repro.core.types import Phase
        from repro.costmodel.reference import a100_reference_latency
        from repro.scheduling.deployment import DeploymentPlan
        from repro.scheduling.lower_level import LowerLevelSolver
        from repro.scheduling.solution import UpperLevelSolution

        a40 = [g.gpu_id for g in small_hetero_cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in small_hetero_cluster.gpus_of_type("3090Ti")]
        solution = UpperLevelSolution.from_lists(
            [
                (a40[:2], Phase.PREFILL),
                (a40[2:], Phase.PREFILL),
                (ti[:2], Phase.DECODE),
                (ti[2:], Phase.DECODE),
            ]
        )
        slo = a100_reference_latency(model_7b, conversation_workload).slo_spec(8.0)
        solver = LowerLevelSolver(
            cluster=small_hetero_cluster,
            model=model_7b,
            workload=conversation_workload,
            slo=slo,
            request_rate=3.0,
        )
        solved = solver.solve(solution).plan
        assert solved is not None
        plan = DeploymentPlan(
            groups=solved.groups,
            routing=None,
            model_name=solved.model_name,
            kv_transport_bits=solved.kv_transport_bits,
        )

        def build():
            system = ThunderServe(
                small_hetero_cluster, model_7b, conversation_workload, 3.0, slo=slo
            )
            system.adopt_plan(plan, reason="in-engine fault test")
            return system

        return build

    @pytest.fixture(scope="class")
    def fault_trace(self, conversation_workload):
        return generate_requests(
            conversation_workload, request_rate=6.0, num_requests=80, seed=3
        )

    def _run(self, factory, trace, retry):
        system = factory()
        victims = system.require_plan().prefill_groups[0].gpu_ids
        schedule = FaultSchedule.from_events(
            [FaultEvent(time=6.0, kind=FaultKind.GPU_PREEMPTION, gpu_ids=tuple(victims))]
        )
        config = LiveServeConfig(
            window_s=WINDOW_S,
            reschedule_on_breach=False,
            reschedule_on_shift=False,
            faults=schedule,
            retry_policy=retry,
        )
        report = LiveServer(system, config=config).run(trace, label="in-engine")
        return system, report

    def test_retry_recovers_attainment_drop_only_loses(
        self, multi_system_factory, fault_trace
    ):
        _, retry_report = self._run(multi_system_factory, fault_trace, self.RETRY)
        _, drop_report = self._run(
            multi_system_factory, fault_trace, RetryPolicy.drop_only()
        )
        retry_stats = retry_report.fault_stats()
        drop_stats = drop_report.fault_stats()
        # The same seeded storm preempts work either way; only the retry
        # policy decides whether that work comes back.
        assert retry_stats["requests_retried_then_finished"] > 0
        assert drop_stats["requests_retried_then_finished"] == 0
        assert drop_stats["requests_dropped_outage"] > 0
        retry_finished = (
            retry_stats["requests_finished"]
            + retry_stats["requests_retried_then_finished"]
        )
        drop_finished = (
            drop_stats["requests_finished"]
            + drop_stats["requests_retried_then_finished"]
        )
        assert retry_finished > drop_finished

    def test_fault_stats_deterministic_replay(self, multi_system_factory, fault_trace):
        _, first = self._run(multi_system_factory, fault_trace, self.RETRY)
        _, second = self._run(multi_system_factory, fault_trace, self.RETRY)
        assert first.fault_stats() == second.fault_stats()
        assert first.windows == second.windows

    def test_window_telemetry_and_ledger_consistent(
        self, multi_system_factory, fault_trace
    ):
        system, report = self._run(multi_system_factory, fault_trace, self.RETRY)
        # The fault window is flagged degraded and carries the in-engine note.
        noted = [
            w
            for w in report.windows
            if any(f.startswith("in-engine:") for f in w.faults)
        ]
        assert noted, "the mid-window fault must surface in window telemetry"
        assert all(w.degraded for w in noted)
        # Per-window outcome conservation: every admitted or shed request has
        # exactly one outcome.
        for window in report.windows:
            assert sum(window.outcome_counts.values()) == (
                window.num_requests + window.num_shed
            )
        # Run-level: the requests_* totals cover the whole trace.
        stats = report.fault_stats()
        total = sum(v for k, v in stats.items() if k.startswith("requests_"))
        assert total == len(fault_trace)
        # The coordinator's ledger agrees with the windows it actually saw:
        # adopting the post-fault plan rebuilds the coordinator (like every
        # other per-plan counter), so compare from the last plan change on.
        from collections import Counter

        start = max(
            (
                w.index
                for w in report.windows
                if w.plan_changed or w.replan_trigger in ("failure", "recovery")
            ),
            default=0,
        )
        expected = Counter()
        for window in report.windows:
            if window.index >= start:
                expected.update(window.outcome_counts)
        ledger = system.coordinator.outcome_totals
        assert {k: v for k, v in ledger.items() if v} == {
            k: int(v) for k, v in expected.items() if v
        }
        # outcome_counts survive the JSON round trip.
        restored = [
            WindowTelemetry.from_dict(d) for d in json.loads(json.dumps(report.to_dicts()))
        ]
        assert restored == report.windows


class TestAdaptiveSweep:
    @pytest.fixture(scope="class")
    def scenario(self):
        return DiurnalTrafficScenario(request_rate=2.0, duration=40.0)

    def test_adaptive_sweep_surfaces_windows_and_plan_changes(
        self, scenario, small_hetero_cluster, model_30b, small_plan
    ):
        sweep = ScenarioSweep(
            scenarios=[scenario],
            seed=0,
            adaptive=True,
            live_config=LiveServeConfig(window_s=10.0),
        )
        outcomes = sweep.evaluate(small_hetero_cluster, model_30b, small_plan)
        outcome = outcomes["diurnal"]
        assert outcome.windows, "adaptive sweep must surface the telemetry stream"
        assert all(w.plan_id for w in outcome.windows)
        assert outcome.num_plan_changes == sum(1 for w in outcome.windows if w.plan_changed)

        summary = ScenarioSweep.summarize(outcomes)
        assert summary["plan_changes"] == {"diurnal": outcome.num_plan_changes}
        assert summary["total_plan_changes"] == outcome.num_plan_changes
        assert summary["worst_scenario"] == "diurnal"

    def test_batch_sweep_has_no_window_stream(
        self, scenario, small_hetero_cluster, model_30b, small_plan
    ):
        sweep = ScenarioSweep(scenarios=[scenario], seed=0)
        outcomes = sweep.evaluate(small_hetero_cluster, model_30b, small_plan)
        assert outcomes["diurnal"].windows == []

"""Smoke tests: the documented example scripts must run end to end.

Each example is executed as a subprocess the same way a reader would run it
(``python examples/<name>.py``) with ``REPRO_EXAMPLE_FAST=1``, the CI smoke
configuration the scripts themselves document.  The assertion is deliberately
shallow — exit code zero and the expected headline in the output — because the
examples exist to demonstrate the public API, and the API itself is covered by
the unit suites.  What this tier catches is examples drifting out of sync with
the code they showcase.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )


@pytest.mark.integration
def test_failure_and_rescheduling_example_runs():
    proc = _run_example("failure_and_rescheduling.py")
    assert proc.returncode == 0, proc.stderr
    assert "GPU failure handling" in proc.stdout
    # All three Figure 11 strategies must appear in the comparison table.
    for mode in ("lightweight", "full", "none"):
        assert f"after failure ({mode})" in proc.stdout


@pytest.mark.integration
def test_live_serving_example_runs():
    proc = _run_example("live_serving.py")
    assert proc.returncode == 0, proc.stderr
    assert "Per-window telemetry" in proc.stdout
    assert "worst window attainment" in proc.stdout

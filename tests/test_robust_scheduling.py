"""Tests for robust scenario-aware scheduling and the robust_vs_static harness.

The degenerate cases pin the mode's contract: an empty scenario set is an error,
a one-scenario robust run reproduces the single-workload schedule bitwise under
the same seed, and nonsensical weight vectors are rejected at construction.
"""

import numpy as np
import pytest

from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.scenarios.registry import default_scenarios, get_scenario
from repro.scheduling.robust import RobustEvaluator, RobustObjective, scenario_slo
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig


def tiny_scheduler(seed=0):
    return Scheduler(
        SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=6, num_neighbors=4, memory_size=5, patience=4),
            seed=seed,
        )
    )


@pytest.fixture(scope="module")
def two_dc():
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-30b")
    return cluster, model


class TestRobustObjective:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown robust objective kind"):
            RobustObjective(kind="median")

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="all zero"):
            RobustObjective.weighted_mix([0.0, 0.0, 0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RobustObjective.weighted_mix([1.0, -0.5])

    def test_nan_and_inf_weights_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            RobustObjective.weighted_mix([float("nan"), 1.0])
        with pytest.raises(ValueError, match="finite"):
            RobustObjective.weighted_mix([float("inf"), 1.0])

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            RobustObjective(kind="mix", weights=())

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_cvar_alpha_bounds(self, alpha):
        with pytest.raises(ValueError, match="cvar_alpha"):
            RobustObjective.cvar(alpha)

    def test_weight_count_must_match_scenarios(self):
        objective = RobustObjective.weighted_mix([1.0, 2.0])
        with pytest.raises(ValueError, match="weights given for"):
            objective.validate_for(3)

    def test_min_aggregate(self):
        assert RobustObjective.worst_case().aggregate([0.6, 0.2, 0.9]) == 0.2

    def test_mix_aggregate_uniform_and_weighted(self):
        assert RobustObjective(kind="mix").aggregate([0.2, 0.4]) == pytest.approx(0.3)
        weighted = RobustObjective.weighted_mix([3.0, 1.0])
        assert weighted.aggregate([0.2, 0.4]) == pytest.approx(0.25)

    def test_cvar_interpolates_min_and_mean(self):
        scores = [0.1, 0.5, 0.9]
        nearly_min = RobustObjective.cvar(1e-9).aggregate(scores)
        mean = RobustObjective.cvar(1.0).aggregate(scores)
        assert nearly_min == pytest.approx(0.1)
        assert mean == pytest.approx(0.5)
        half = RobustObjective.cvar(0.5).aggregate(scores)  # worst 2 of 3
        assert half == pytest.approx(0.3)

    def test_aggregate_empty_scores_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RobustObjective.worst_case().aggregate([])


class TestScheduleRobustDegenerate:
    def test_empty_scenario_set_raises(self, two_dc):
        cluster, model = two_dc
        with pytest.raises(ValueError, match="at least one scenario"):
            tiny_scheduler().schedule_robust(cluster, model, [])

    def test_duplicate_scenario_names_raise(self, two_dc):
        cluster, model = two_dc
        scenario = get_scenario("diurnal", duration=30.0)
        with pytest.raises(ValueError, match="unique"):
            tiny_scheduler().schedule_robust(cluster, model, [scenario, scenario])

    def test_evaluator_requires_solvers(self):
        with pytest.raises(ValueError, match="at least one scenario solver"):
            RobustEvaluator([], RobustObjective.worst_case())

    def test_one_scenario_reproduces_single_workload_plan_bitwise(self, two_dc):
        cluster, model = two_dc
        scenario = get_scenario("diurnal", duration=60.0)
        slo = scenario_slo(scenario, model)
        static = tiny_scheduler(seed=7).schedule(
            cluster, model, scenario.planning_workload(), scenario.request_rate, slo=slo
        )
        robust = tiny_scheduler(seed=7).schedule_robust(cluster, model, [scenario])

        assert robust.solution.key() == static.solution.key()
        assert robust.objective == static.objective
        static_groups = [(tuple(sorted(g.gpu_ids)), g.phase, g.plan) for g in static.plan.groups]
        robust_groups = [(tuple(sorted(g.gpu_ids)), g.phase, g.plan) for g in robust.plan.groups]
        assert static_groups == robust_groups
        assert np.array_equal(static.plan.routing.x, robust.plan.routing.x)
        assert np.array_equal(static.plan.routing.y, robust.plan.routing.y)


class TestScheduleRobust:
    @pytest.fixture(scope="class")
    def robust_run(self, two_dc):
        cluster, model = two_dc
        scenarios = default_scenarios(duration=60.0)
        result = tiny_scheduler(seed=1).schedule_robust(cluster, model, scenarios)
        return scenarios, result

    def test_per_scenario_results_cover_library(self, robust_run):
        scenarios, result = robust_run
        assert set(result.per_scenario) == {s.name for s in scenarios}
        for lower in result.per_scenario.values():
            assert lower.feasible and lower.plan is not None

    def test_worst_scenario_is_the_minimum(self, robust_run):
        _, result = robust_run
        attainment = result.per_scenario_attainment
        assert result.worst_scenario == min(attainment, key=attainment.get)
        assert result.worst_case_attainment == pytest.approx(min(attainment.values()))
        assert result.mean_attainment >= result.worst_case_attainment

    def test_plan_is_solved_under_binding_scenario(self, robust_run):
        _, result = robust_run
        binding = result.per_scenario[result.worst_scenario]
        assert binding.plan is not None
        assert result.plan.routing is not None
        assert np.array_equal(result.plan.routing.x, binding.plan.routing.x)

    def test_warm_start_guarantees_no_worse_objective(self, two_dc):
        cluster, model = two_dc
        scenarios = default_scenarios(duration=60.0)
        cold = tiny_scheduler(seed=2).schedule_robust(cluster, model, scenarios)
        warm = tiny_scheduler(seed=2).schedule_robust(
            cluster, model, scenarios, initial_solution=cold.solution
        )
        assert warm.objective >= cold.objective - 1e-12

    def test_scenario_order_does_not_change_the_result(self, two_dc):
        """The shared plan cache is keyed by planning shape, so whichever
        scenario scores a group first cannot poison the others' deductions."""
        cluster, model = two_dc
        scenarios = list(default_scenarios(duration=60.0))
        assert len({s.planning_workload().mean_input_length for s in scenarios}) > 1
        fwd = tiny_scheduler(seed=3).schedule_robust(cluster, model, scenarios)
        rev = tiny_scheduler(seed=3).schedule_robust(
            cluster, model, list(reversed(scenarios))
        )
        assert fwd.solution.key() == rev.solution.key()
        assert fwd.objective == rev.objective
        assert fwd.per_scenario_attainment == rev.per_scenario_attainment

    def test_mix_weights_change_the_objective_scale(self, two_dc):
        cluster, model = two_dc
        scenarios = default_scenarios(duration=60.0)
        worst = tiny_scheduler(seed=1).schedule_robust(cluster, model, scenarios)
        mean = tiny_scheduler(seed=1).schedule_robust(
            cluster, model, scenarios, robust=RobustObjective(kind="mix")
        )
        # The mean over scenarios always dominates the min over scenarios.
        assert mean.objective >= worst.objective


class TestDeployRobust:
    def test_deploy_robust_installs_binding_plan(self, two_dc):
        from repro.serving.system import ThunderServe
        from repro.workload.spec import CONVERSATION_WORKLOAD

        cluster, model = two_dc
        scenarios = default_scenarios(duration=60.0)
        system = ThunderServe(
            cluster,
            model,
            CONVERSATION_WORKLOAD,
            request_rate=3.0,
            scheduler_config=tiny_scheduler(seed=1).config,
        )
        plan = system.deploy_robust(scenarios)
        assert system.plan is plan
        assert system.robust_result is not None
        # A robust deployment supersedes any single-workload schedule result.
        assert system.schedule_result is None
        assert system.robust_result.worst_scenario in {s.name for s in scenarios}
        events = [e for e in system.events if e.kind == "plan_installed"]
        assert any("robust deployment" in e.detail for e in events)


@pytest.mark.integration
def test_robust_vs_static_experiment_worst_case_not_worse():
    """Acceptance: the robust plan's worst case >= the static plan's worst case."""
    from repro.experiments.robust_vs_static import run

    result = run(cluster_name="cloud", num_steps=12, num_neighbors=5, seed=0)
    aggregates = result.extras["aggregates"]
    assert aggregates["robust_worst"] >= aggregates["static_worst"] - 1e-12
    # Structural invariant, seed-independent: the warm-started robust search
    # always evaluates the static solution, so its aggregate objective wins.
    assert (
        aggregates["robust_objective"] >= aggregates["static_robust_objective"] - 1e-12
    )

    # One row per registered scenario plus the WORST-CASE and MEAN aggregates.
    from repro.scenarios import list_scenarios

    assert len(result.rows) == len(list_scenarios()) + 2
    names = [row[0] for row in result.rows]
    assert names[-2:] == ["WORST-CASE", "MEAN"]
    worst_row = result.rows[-2]
    assert worst_row[1] == pytest.approx(aggregates["static_worst"])
    assert worst_row[2] == pytest.approx(aggregates["robust_worst"])

"""Unit tests for the roofline cost model, alpha-beta model, KV transfer and prices."""

import math

import pytest

from repro.core.types import Phase
from repro.costmodel.alpha_beta import AlphaBetaModel, transfer_seconds
from repro.costmodel.kv_transfer import kv_transfer_bytes, kv_transfer_fraction, kv_transfer_seconds
from repro.costmodel.latency import CostModelParams, ReplicaCostModel, single_gpu_phase_latency
from repro.costmodel.price import cheapest_gpu_for_phase, phase_price_per_request, phase_price_table
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.gpu import get_gpu_spec
from repro.model.memory import kv_cache_bytes_per_token
from repro.parallelism.config import ReplicaPlan


class TestAlphaBeta:
    def test_transfer_seconds_formula(self):
        assert transfer_seconds(1e-3, 1e9, 1e9) == pytest.approx(1.001)

    def test_zero_bytes_is_free(self):
        assert transfer_seconds(1e-3, 1e9, 0) == 0.0

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            transfer_seconds(0.0, 0.0, 10)

    def test_allreduce_degenerate_world(self):
        link = AlphaBetaModel(alpha_s=1e-5, beta_bytes_per_s=1e10)
        assert link.allreduce_seconds(1e6, 1) == 0.0

    def test_allreduce_grows_with_world_size(self):
        link = AlphaBetaModel(alpha_s=1e-5, beta_bytes_per_s=1e10)
        assert link.allreduce_seconds(1e6, 4) > link.allreduce_seconds(1e6, 2)


class TestSingleGPULatency:
    def test_prefill_faster_on_a40_than_3090ti(self, model_30b):
        a40 = single_gpu_phase_latency(get_gpu_spec("A40"), model_30b, Phase.PREFILL, 512)
        ti = single_gpu_phase_latency(get_gpu_spec("3090Ti"), model_30b, Phase.PREFILL, 512)
        assert a40 < ti

    def test_decode_faster_on_3090ti_than_a40(self, model_30b):
        a40 = single_gpu_phase_latency(get_gpu_spec("A40"), model_30b, Phase.DECODE, 512, 16)
        ti = single_gpu_phase_latency(get_gpu_spec("3090Ti"), model_30b, Phase.DECODE, 512, 16)
        assert ti < a40

    def test_prefill_latency_grows_with_prompt(self, model_7b):
        spec = get_gpu_spec("A100")
        assert single_gpu_phase_latency(spec, model_7b, Phase.PREFILL, 2048) > single_gpu_phase_latency(
            spec, model_7b, Phase.PREFILL, 256
        )

    def test_decode_latency_grows_with_output(self, model_7b):
        spec = get_gpu_spec("A100")
        assert single_gpu_phase_latency(
            spec, model_7b, Phase.DECODE, 512, output_length=64
        ) > single_gpu_phase_latency(spec, model_7b, Phase.DECODE, 512, output_length=8)

    def test_invalid_lengths_rejected(self, model_7b):
        with pytest.raises(ValueError):
            single_gpu_phase_latency(get_gpu_spec("A100"), model_7b, Phase.PREFILL, 0)

    def test_reasonable_magnitude(self, model_7b):
        # LLaMA-7B prefill of 1024 tokens on an A100 should be tens of milliseconds.
        latency = single_gpu_phase_latency(get_gpu_spec("A100"), model_7b, Phase.PREFILL, 1024)
        assert 0.01 < latency < 1.0


class TestCostModelParams:
    def test_prefill_mfu_saturates(self):
        params = CostModelParams()
        assert params.prefill_mfu(64) < params.prefill_mfu(2048)
        assert params.prefill_mfu(100000) <= params.prefill_mfu_max

    def test_tp_efficiency_decreases(self):
        params = CostModelParams()
        assert params.tp_efficiency(1) == 1.0
        assert params.tp_efficiency(8) < params.tp_efficiency(2)


@pytest.fixture(scope="module")
def a40_pair_cost(small_hetero_cluster_module, model_30b_module):
    cluster, model = small_hetero_cluster_module, model_30b_module
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")][:4]
    plan = ReplicaPlan.from_stage_lists([a40], [model.num_layers])
    return ReplicaCostModel(cluster, plan, model)


@pytest.fixture(scope="module")
def small_hetero_cluster_module():
    from repro.hardware.cluster import make_two_datacenter_cluster

    return make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)


@pytest.fixture(scope="module")
def model_30b_module():
    from repro.model.architecture import get_model_config

    return get_model_config("llama-30b")


class TestReplicaCostModel:
    def test_layer_count_must_match(self, small_hetero_cluster_module, model_30b_module):
        gpu_ids = small_hetero_cluster_module.gpu_ids[:4]
        plan = ReplicaPlan.from_stage_lists([gpu_ids], [10])
        with pytest.raises(Exception):
            ReplicaCostModel(small_hetero_cluster_module, plan, model_30b_module)

    def test_prefill_latency_monotone_in_tokens(self, a40_pair_cost):
        assert a40_pair_cost.prefill_latency(2048) > a40_pair_cost.prefill_latency(512)

    def test_decode_step_latency_monotone_in_batch(self, a40_pair_cost):
        assert a40_pair_cost.decode_step_latency(32, 1024) > a40_pair_cost.decode_step_latency(1, 1024)

    def test_decode_throughput_improves_with_batch(self, a40_pair_cost):
        t1 = a40_pair_cost.decode_throughput(1024, batch_size=1)
        t16 = a40_pair_cost.decode_throughput(1024, batch_size=16)
        assert t16 > t1

    def test_max_decode_batch_positive_and_bounded(self, a40_pair_cost):
        batch = a40_pair_cost.max_decode_batch(1024)
        assert 0 < batch <= CostModelParams().max_decode_batch

    def test_max_decode_batch_shrinks_with_context(self, a40_pair_cost):
        assert a40_pair_cost.max_decode_batch(4096) <= a40_pair_cost.max_decode_batch(512)

    def test_kv_token_capacity_positive(self, a40_pair_cost):
        assert a40_pair_cost.kv_token_capacity() > 0

    def test_fits_in_memory(self, a40_pair_cost):
        assert a40_pair_cost.fits_in_memory()

    def test_decode_latency_scales_with_tokens(self, a40_pair_cost):
        assert a40_pair_cost.decode_latency(4, 1024, 64) > a40_pair_cost.decode_latency(4, 1024, 16)

    def test_pipeline_plan_adds_communication(self, small_hetero_cluster_module, model_30b_module):
        cluster, model = small_hetero_cluster_module, model_30b_module
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        tp4 = ReplicaPlan.from_stage_lists([a40], [model.num_layers])
        half = model.num_layers // 2
        pp2 = ReplicaPlan.from_stage_lists([a40[:2], a40[2:]], [half, model.num_layers - half])
        cost_tp = ReplicaCostModel(cluster, tp4, model)
        cost_pp = ReplicaCostModel(cluster, pp2, model)
        # Both are positive and finite; the PP plan pays an extra activation hop.
        assert cost_pp.prefill_latency(1024) > 0
        assert cost_tp.prefill_latency(1024) > 0

    @pytest.mark.parametrize("pipelined", [False, True])
    def test_decode_step_latency_array_matches_scalar_bitwise(
        self, small_hetero_cluster_module, model_30b_module, pipelined
    ):
        """The vectorized decode-step kernel is the scalar model, element for
        element — raw float equality, since the fast simulator engine's claim of
        bitwise-identical metrics rests on it."""
        import numpy as np

        cluster, model = small_hetero_cluster_module, model_30b_module
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        if pipelined:
            half = model.num_layers // 2
            plan = ReplicaPlan.from_stage_lists([a40[:2], a40[2:]], [half, model.num_layers - half])
        else:
            plan = ReplicaPlan.from_stage_lists([a40], [model.num_layers])
        cost = ReplicaCostModel(cluster, plan, model)
        rng = np.random.default_rng(3)
        batches = rng.integers(1, 257, size=300)
        contexts = rng.integers(1, 4096, size=300)
        vectorized = cost.decode_step_latency_array(batches, contexts)
        scalar = np.array(
            [cost.decode_step_latency(int(b), int(c)) for b, c in zip(batches, contexts)]
        )
        assert np.all(vectorized == scalar)
        # The memo grid returns the same values, cold and warm.
        assert np.all(cost.decode_step_grid(batches, contexts) == scalar)
        assert np.all(cost.decode_step_grid(batches, contexts) == scalar)

    def test_decode_step_latency_array_validates(self, a40_pair_cost):
        import numpy as np

        with pytest.raises(ValueError):
            a40_pair_cost.decode_step_latency_array([1, 2], [0, 5])
        with pytest.raises(ValueError):
            a40_pair_cost.decode_step_latency_array([1, 2, 3], [1, 2])
        assert a40_pair_cost.decode_step_latency_array([], []).size == 0

    @pytest.mark.parametrize("pipelined", [False, True])
    def test_prefill_latency_array_matches_scalar_bitwise(
        self, small_hetero_cluster_module, model_30b_module, pipelined
    ):
        """The vectorized prefill kernel is the scalar model, element for
        element — raw float equality, since the fast simulator engine's coalesced
        prefill epochs (and their bitwise-identical metrics) rest on it."""
        import numpy as np

        cluster, model = small_hetero_cluster_module, model_30b_module
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        if pipelined:
            half = model.num_layers // 2
            plan = ReplicaPlan.from_stage_lists([a40[:2], a40[2:]], [half, model.num_layers - half])
        else:
            plan = ReplicaPlan.from_stage_lists([a40], [model.num_layers])
        cost = ReplicaCostModel(cluster, plan, model)
        rng = np.random.default_rng(7)
        inputs = rng.integers(1, 8192, size=300)
        batches = rng.integers(1, 33, size=300)
        vectorized = cost.prefill_latency_array(inputs, batches)
        scalar = np.array(
            [cost.prefill_latency(int(s), int(b)) for s, b in zip(inputs, batches)]
        )
        assert np.all(vectorized == scalar)
        # The memo grid returns the same values, cold and warm.
        assert np.all(cost.prefill_latency_grid(inputs, batches) == scalar)
        assert np.all(cost.prefill_latency_grid(inputs, batches) == scalar)

    def test_prefill_latency_array_validates(self, a40_pair_cost):
        with pytest.raises(ValueError):
            a40_pair_cost.prefill_latency_array([1, 2], [0, 5])
        with pytest.raises(ValueError):
            a40_pair_cost.prefill_latency_array([0, 2], [1, 5])
        with pytest.raises(ValueError):
            a40_pair_cost.prefill_latency_array([1, 2, 3], [1, 2])
        assert a40_pair_cost.prefill_latency_array([], []).size == 0


class TestKVTransfer:
    def test_bytes_scale_with_tokens_and_bits(self, model_30b):
        full = kv_transfer_bytes(model_30b, 1024, bits=16)
        quarter = kv_transfer_bytes(model_30b, 1024, bits=4)
        assert quarter == pytest.approx(full / 4)
        assert kv_transfer_bytes(model_30b, 2048, bits=16) == pytest.approx(2 * full)

    def test_transfer_time_positive_across_groups(self, small_hetero_cluster_module, model_30b):
        cluster = small_hetero_cluster_module
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        t = kv_transfer_seconds(cluster.network, a40, ti, model_30b, num_tokens=1024)
        assert t > 0

    def test_compression_reduces_transfer_time(self, small_hetero_cluster_module, model_30b):
        cluster = small_hetero_cluster_module
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        full = kv_transfer_seconds(cluster.network, a40, ti, model_30b, 1024, bits=16)
        compressed = kv_transfer_seconds(cluster.network, a40, ti, model_30b, 1024, bits=4)
        assert compressed < full / 2

    def test_overlapping_groups_transfer_free(self, small_hetero_cluster_module, model_30b):
        cluster = small_hetero_cluster_module
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        assert kv_transfer_seconds(cluster.network, a40, a40, model_30b, 1024) == 0.0

    def test_fraction(self):
        assert kv_transfer_fraction(1.0, 2.0, 7.0) == pytest.approx(0.1)
        assert kv_transfer_fraction(0.0, 0.0, 0.0) == 0.0


class TestPrices:
    def test_figure1_shape(self, model_30b):
        assert cheapest_gpu_for_phase(model_30b, Phase.PREFILL, ["3090Ti", "A40"]) == "A40"
        assert cheapest_gpu_for_phase(model_30b, Phase.DECODE, ["3090Ti", "A40"]) == "3090Ti"

    def test_price_table_structure(self, model_30b):
        table = phase_price_table(model_30b)
        assert set(table) == {"prefill", "decode"}
        assert set(table["prefill"]) == {"3090Ti", "A40"}

    def test_prices_positive(self, model_30b):
        assert phase_price_per_request("A5000", model_30b, Phase.PREFILL) > 0


class TestReference:
    def test_reference_latency_positive(self, model_30b, conversation_workload):
        ref = a100_reference_latency(model_30b, conversation_workload)
        assert ref.ttft > 0 and ref.tpot > 0

    def test_slo_spec_scales(self, model_30b, conversation_workload):
        ref = a100_reference_latency(model_30b, conversation_workload)
        assert ref.slo_spec(4.0).e2e == pytest.approx(2 * ref.slo_spec(2.0).e2e)

    def test_more_reference_gpus_lower_latency(self, model_30b, conversation_workload):
        two = a100_reference_latency(model_30b, conversation_workload, num_reference_gpus=2)
        eight = a100_reference_latency(model_30b, conversation_workload, num_reference_gpus=8)
        assert eight.ttft < two.ttft

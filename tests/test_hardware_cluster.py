"""Unit tests for cluster construction and the paper's hardware environments."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.cluster import (
    Cluster,
    make_cloud_cluster,
    make_homogeneous_cluster,
    make_inhouse_cluster,
    make_two_datacenter_cluster,
)
from repro.hardware.pricing import cluster_price_per_hour, price_parity_ratio


class TestCloudCluster:
    def test_total_gpu_count(self, cloud_cluster):
        assert cloud_cluster.num_gpus == 32

    def test_type_counts_match_paper(self, cloud_cluster):
        counts = cloud_cluster.type_counts()
        assert counts == {"A6000": 8, "A5000": 8, "A40": 8, "3090Ti": 8}

    def test_node_count(self, cloud_cluster):
        assert len(cloud_cluster.nodes) == 7

    def test_price_close_to_paper_budget(self, cloud_cluster):
        # Table-1 prices give $11.33/hour for the 32 rented GPUs; the paper quotes
        # $13.54/hour for the same instances (actual Vast.ai rates are higher than
        # the per-GPU list prices).  Either way it stays below the in-house budget.
        assert 10.0 < cloud_cluster.price_per_hour < 14.5

    def test_deterministic_given_seed(self):
        a = make_cloud_cluster(seed=5)
        b = make_cloud_cluster(seed=5)
        assert a.network.bandwidth_matrix_gbps() == pytest.approx(b.network.bandwidth_matrix_gbps())

    def test_gpu_lookup(self, cloud_cluster):
        gpu = cloud_cluster.gpu(0)
        assert gpu.gpu_id == 0

    def test_unknown_gpu_lookup_raises(self, cloud_cluster):
        with pytest.raises(KeyError):
            cloud_cluster.gpu(999)


class TestInhouseCluster:
    def test_eight_a100(self, inhouse_cluster):
        assert inhouse_cluster.type_counts() == {"A100": 8}

    def test_price_matches_paper(self, inhouse_cluster):
        assert inhouse_cluster.price_per_hour == pytest.approx(14.024)

    def test_uniform_fast_interconnect(self, inhouse_cluster):
        ids = inhouse_cluster.gpu_ids
        assert inhouse_cluster.network.min_bandwidth_within(ids) >= 200.0

    def test_budget_parity_with_cloud(self, cloud_cluster, inhouse_cluster):
        ratio = price_parity_ratio(cloud_cluster, inhouse_cluster)
        assert 0.7 < ratio < 1.1

    def test_cluster_price_helper(self, inhouse_cluster):
        assert cluster_price_per_hour(inhouse_cluster) == pytest.approx(inhouse_cluster.price_per_hour)


class TestHomogeneousCluster:
    def test_size_and_type(self):
        cluster = make_homogeneous_cluster("A5000", num_gpus=12, gpus_per_node=4)
        assert cluster.num_gpus == 12
        assert cluster.type_counts() == {"A5000": 12}
        assert len(cluster.nodes) == 3

    def test_partial_last_node(self):
        cluster = make_homogeneous_cluster("A5000", num_gpus=6, gpus_per_node=4)
        assert cluster.num_gpus == 6
        assert len(cluster.nodes) == 2

    def test_invalid_gpu_type_rejected(self):
        with pytest.raises(KeyError):
            make_homogeneous_cluster("NotAGPU", num_gpus=4)

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_homogeneous_cluster("A5000", num_gpus=0)


class TestTwoDatacenterCluster:
    def test_composition(self, small_hetero_cluster):
        assert small_hetero_cluster.type_counts() == {"A40": 4, "3090Ti": 4}

    def test_inter_dc_bandwidth_configurable(self):
        slow = make_two_datacenter_cluster(inter_dc_gbps=0.625)
        a40 = [g.gpu_id for g in slow.gpus_of_type("A40")]
        ti = [g.gpu_id for g in slow.gpus_of_type("3090Ti")]
        assert slow.network.mean_bandwidth_between(a40, ti) == pytest.approx(0.625)


class TestClusterMutation:
    def test_without_gpus_preserves_ids(self, cloud_cluster):
        removed = cloud_cluster.gpu_ids[:4]
        smaller = cloud_cluster.without_gpus(removed)
        assert smaller.num_gpus == 28
        assert set(removed) & set(smaller.gpu_ids) == set()
        # Remaining ids are unchanged (stable addressing for deployment plans).
        assert set(smaller.gpu_ids) <= set(cloud_cluster.gpu_ids)

    def test_without_unknown_gpu_raises(self, cloud_cluster):
        with pytest.raises(KeyError):
            cloud_cluster.without_gpus([1234])

    def test_cannot_empty_cluster(self, small_hetero_cluster):
        with pytest.raises(ConfigurationError):
            small_hetero_cluster.without_gpus(small_hetero_cluster.gpu_ids)

    def test_with_gpus_restores_removed_capacity(self, cloud_cluster):
        removed = cloud_cluster.gpu_ids[:4]
        smaller = cloud_cluster.without_gpus(removed)
        restored = smaller.with_gpus(removed)
        assert restored.num_gpus == cloud_cluster.num_gpus
        assert restored.gpu_ids == cloud_cluster.gpu_ids
        # Revived GPUs come back from the roster with their original identity.
        for gpu_id in removed:
            assert restored.gpu(gpu_id).type_name == cloud_cluster.gpu(gpu_id).type_name
            assert restored.gpu(gpu_id).node_id == cloud_cluster.gpu(gpu_id).node_id

    def test_with_gpus_partial_rejoin(self, cloud_cluster):
        removed = cloud_cluster.gpu_ids[:4]
        smaller = cloud_cluster.without_gpus(removed)
        partial = smaller.with_gpus(removed[:2])
        assert partial.num_gpus == cloud_cluster.num_gpus - 2
        assert set(removed[:2]) <= set(partial.gpu_ids)
        assert set(removed[2:]) & set(partial.gpu_ids) == set()

    def test_with_gpus_unknown_id_raises(self, cloud_cluster):
        smaller = cloud_cluster.without_gpus(cloud_cluster.gpu_ids[:2])
        with pytest.raises(KeyError):
            smaller.with_gpus([1234])

    def test_with_gpus_already_alive_raises(self, cloud_cluster):
        with pytest.raises(ConfigurationError):
            cloud_cluster.with_gpus(cloud_cluster.gpu_ids[:1])

    def test_restricted_to(self, cloud_cluster):
        subset = cloud_cluster.gpu_ids[:16]
        restricted = cloud_cluster.restricted_to(subset)
        assert restricted.num_gpus == 16
        assert set(restricted.gpu_ids) == set(subset)

    def test_duplicate_gpu_ids_rejected(self, cloud_cluster):
        gpus = list(cloud_cluster.gpus[:2]) + [cloud_cluster.gpus[0]]
        with pytest.raises(ConfigurationError):
            Cluster(nodes=cloud_cluster.nodes, gpus=gpus, network=cloud_cluster.network)

    def test_describe_mentions_types(self, cloud_cluster):
        description = cloud_cluster.describe()
        for gpu_type in ("A40", "A6000", "A5000", "3090Ti"):
            assert gpu_type in description

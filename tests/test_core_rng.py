"""Unit tests for the deterministic RNG helpers."""

import numpy as np
import pytest

from repro.core.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_same_seed_same_stream(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(ensure_rng(0), 3)
        assert len(children) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rng(ensure_rng(7), 4)]
        b = [g.random() for g in spawn_rng(ensure_rng(7), 4)]
        assert np.allclose(a, b)

    def test_spawn_children_independent(self):
        children = spawn_rng(ensure_rng(0), 2)
        assert children[0].random() != pytest.approx(children[1].random())

    def test_spawn_requires_positive_count(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), 0)

"""Unit tests for workload specs, generators, traces and the online profiler."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.types import Request
from repro.workload.generator import PoissonArrivalGenerator, generate_requests
from repro.workload.profiler import WorkloadProfiler
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD, WorkloadSpec, get_workload
from repro.workload.trace import Trace, merge_traces


class TestWorkloadSpec:
    def test_coding_is_prefill_heavy(self):
        assert CODING_WORKLOAD.prefill_decode_token_ratio > 10

    def test_conversation_is_decode_heavier_than_coding(self):
        assert (
            CONVERSATION_WORKLOAD.prefill_decode_token_ratio
            < CODING_WORKLOAD.prefill_decode_token_ratio
        )

    def test_paper_medians(self):
        assert CODING_WORKLOAD.median_output_length == pytest.approx(13.0)
        assert CONVERSATION_WORKLOAD.median_output_length == pytest.approx(129.0)
        assert CODING_WORKLOAD.median_input_length > 1000
        assert CONVERSATION_WORKLOAD.median_input_length > 1000

    def test_sample_lengths_within_bounds(self):
        lengths = CODING_WORKLOAD.sample_input_lengths(500, rng=0)
        assert lengths.min() >= CODING_WORKLOAD.min_input_length
        assert lengths.max() <= CODING_WORKLOAD.max_input_length

    def test_sampling_deterministic_for_seed(self):
        a = CONVERSATION_WORKLOAD.sample_output_lengths(50, rng=3)
        b = CONVERSATION_WORKLOAD.sample_output_lengths(50, rng=3)
        assert np.array_equal(a, b)

    def test_zero_sigma_gives_constant_lengths(self):
        spec = WorkloadSpec(name="fixed", median_input_length=100, median_output_length=10,
                            input_sigma=0.0, output_sigma=0.0)
        assert set(spec.sample_input_lengths(10, rng=0).tolist()) == {100}

    def test_get_workload(self):
        assert get_workload("coding") is CODING_WORKLOAD
        with pytest.raises(KeyError):
            get_workload("gaming")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", median_input_length=0, median_output_length=10)


class TestGenerator:
    def test_request_count_mode(self):
        trace = generate_requests(CODING_WORKLOAD, request_rate=5.0, num_requests=100, seed=1)
        assert len(trace) == 100

    def test_duration_mode_respects_window(self):
        trace = generate_requests(CODING_WORKLOAD, request_rate=10.0, duration=20.0, seed=1)
        assert trace[-1].arrival_time < 20.0
        # Poisson with rate 10 over 20s should produce roughly 200 arrivals.
        assert 120 < len(trace) < 300

    def test_empirical_rate_close_to_nominal(self):
        trace = generate_requests(CONVERSATION_WORKLOAD, request_rate=8.0, num_requests=800, seed=2)
        assert trace.request_rate == pytest.approx(8.0, rel=0.2)

    def test_deterministic_given_seed(self):
        a = generate_requests(CODING_WORKLOAD, 5.0, num_requests=20, seed=9)
        b = generate_requests(CODING_WORKLOAD, 5.0, num_requests=20, seed=9)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert [r.input_length for r in a] == [r.input_length for r in b]

    def test_requires_exactly_one_mode(self):
        generator = PoissonArrivalGenerator(CODING_WORKLOAD, request_rate=1.0, seed=0)
        with pytest.raises(ValueError):
            generator.generate()
        with pytest.raises(ValueError):
            generator.generate(duration=1.0, num_requests=5)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivalGenerator(CODING_WORKLOAD, request_rate=0.0)

    def test_workload_tag_propagated(self):
        trace = generate_requests(CODING_WORKLOAD, 5.0, num_requests=5, seed=0)
        assert all(r.workload == "coding" for r in trace)


class TestTrace:
    def test_sorted_by_arrival(self):
        requests = [
            Request(request_id=0, arrival_time=3.0, input_length=10, output_length=2),
            Request(request_id=1, arrival_time=1.0, input_length=10, output_length=2),
        ]
        trace = Trace(requests=requests)
        assert trace[0].arrival_time <= trace[1].arrival_time

    def test_window_selects_half_open_interval(self):
        trace = generate_requests(CODING_WORKLOAD, 10.0, duration=10.0, seed=4)
        window = trace.window(2.0, 5.0)
        assert all(2.0 <= r.arrival_time < 5.0 for r in window)

    def test_statistics_on_empty_trace(self):
        empty = Trace(requests=[])
        assert empty.is_empty
        assert empty.request_rate == 0.0
        assert empty.mean_input_length == 0.0

    def test_total_tokens(self):
        trace = generate_requests(CODING_WORKLOAD, 5.0, num_requests=10, seed=0)
        assert trace.total_tokens == trace.total_input_tokens + trace.total_output_tokens

    def test_merge_traces_renumbers(self):
        a = generate_requests(CODING_WORKLOAD, 5.0, num_requests=5, seed=0)
        b = generate_requests(CONVERSATION_WORKLOAD, 5.0, num_requests=5, seed=1).shifted(100.0)
        merged = merge_traces([a, b])
        assert len(merged) == 10
        assert [r.request_id for r in merged] == list(range(10))
        assert merged[-1].arrival_time >= 100.0

    def test_head(self):
        trace = generate_requests(CODING_WORKLOAD, 5.0, num_requests=10, seed=0)
        assert len(trace.head(3)) == 3


class TestProfiler:
    def _requests(self, n, input_len, output_len, rate=10.0, start=0.0):
        return [
            Request(request_id=i, arrival_time=start + i / rate,
                    input_length=input_len, output_length=output_len)
            for i in range(n)
        ]

    def test_current_stats(self):
        profiler = WorkloadProfiler(window_size=100)
        profiler.observe_many(self._requests(50, 1000, 20))
        stats = profiler.current_stats()
        assert stats.mean_input_length == pytest.approx(1000)
        assert stats.mean_output_length == pytest.approx(20)
        assert stats.request_rate == pytest.approx(10.0, rel=0.1)

    def test_no_shift_when_workload_stable(self):
        profiler = WorkloadProfiler(window_size=64, min_requests=16)
        profiler.observe_many(self._requests(64, 1000, 20))
        profiler.set_reference()
        profiler.observe_many(self._requests(64, 1005, 21, start=10.0))
        assert profiler.detect_shift() is None

    def test_shift_detected_on_output_length_change(self):
        profiler = WorkloadProfiler(window_size=64, min_requests=16, shift_threshold=0.5)
        profiler.observe_many(self._requests(64, 1000, 13))
        profiler.set_reference()
        profiler.observe_many(self._requests(64, 1000, 129, start=10.0))
        shift = profiler.detect_shift()
        assert shift is not None
        assert shift.output_ratio > 1.5

    def test_no_shift_before_min_requests(self):
        profiler = WorkloadProfiler(window_size=64, min_requests=32)
        profiler.observe_many(self._requests(8, 1000, 13))
        profiler.set_reference()
        profiler.observe_many(self._requests(8, 1000, 300, start=5.0))
        assert profiler.detect_shift() is None

    def test_reference_from_spec(self):
        profiler = WorkloadProfiler()
        stats = profiler.set_reference_from_spec(CODING_WORKLOAD, request_rate=9.0)
        assert stats.request_rate == 9.0
        assert profiler.reference is stats

    def test_observed_stats_convert_to_spec(self):
        profiler = WorkloadProfiler()
        profiler.observe_many(self._requests(32, 800, 50))
        spec = profiler.current_stats().as_spec()
        assert spec.median_input_length == pytest.approx(800)
        assert spec.median_output_length == pytest.approx(50)

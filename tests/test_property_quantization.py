"""Property-based tests (hypothesis) for the KV quantization codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.kvcache.quantization import (
    compression_ratio,
    dequantize_groupwise,
    quantize_groupwise,
)

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow


float_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=48),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32),
)


@given(arr=float_arrays, bits=st.sampled_from([4, 8]), group_size=st.sampled_from([8, 32, 64]))
@settings(max_examples=60, deadline=None)
def test_roundtrip_preserves_shape(arr, bits, group_size):
    qt = quantize_groupwise(arr, bits=bits, group_size=group_size)
    restored = dequantize_groupwise(qt)
    assert restored.shape == arr.shape


@given(arr=float_arrays, bits=st.sampled_from([4, 8]), group_size=st.sampled_from([8, 32]))
@settings(max_examples=60, deadline=None)
def test_roundtrip_error_bounded_by_group_range(arr, bits, group_size):
    """Every reconstructed element stays within one quantization step of the original."""
    qt = quantize_groupwise(arr, bits=bits, group_size=group_size)
    restored = dequantize_groupwise(qt)
    flat = arr.reshape(-1)
    padded = np.zeros(-(-flat.size // group_size) * group_size, dtype=np.float32)
    padded[: flat.size] = flat
    groups = padded.reshape(-1, group_size)
    step = (groups.max(axis=1) - groups.min(axis=1)) / (2**bits - 1)
    tolerance = np.repeat(step, group_size)[: flat.size] + 1e-5
    assert np.all(np.abs(restored.reshape(-1) - flat) <= tolerance)


@given(arr=float_arrays)
@settings(max_examples=40, deadline=None)
def test_values_stay_within_original_range(arr):
    qt = quantize_groupwise(arr, bits=4, group_size=16)
    restored = dequantize_groupwise(qt)
    assert restored.min() >= arr.min() - 1e-4
    assert restored.max() <= arr.max() + 1e-4


@given(
    n=st.integers(min_value=256, max_value=8192),
    bits=st.sampled_from([4, 8]),
)
@settings(max_examples=30, deadline=None)
def test_compression_ratio_scales_with_bits(n, bits):
    arr = np.linspace(-1.0, 1.0, n, dtype=np.float32)
    qt = quantize_groupwise(arr, bits=bits, group_size=128)
    ratio = compression_ratio(qt, source_dtype_bytes=2)
    # 16/bits is the ideal ratio; metadata overhead keeps it below that but it
    # should stay above half the ideal for reasonably long tensors.
    assert ratio > (16 / bits) * 0.5
    assert ratio <= 16 / bits + 1e-6


@given(value=st.floats(min_value=-50, max_value=50, allow_nan=False), n=st.integers(1, 500))
@settings(max_examples=40, deadline=None)
def test_constant_tensors_are_exact(value, n):
    arr = np.full(n, value, dtype=np.float32)
    restored = dequantize_groupwise(quantize_groupwise(arr, bits=4, group_size=32))
    assert np.allclose(restored, arr, atol=1e-5)

"""Unit tests for tabu search, the SLO estimator, orchestration and the lower level."""

import numpy as np
import pytest

from repro.core.types import Phase, SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy, ServingGroup
from repro.scheduling.estimator import SLOEstimator
from repro.scheduling.lower_level import INFEASIBLE_OBJECTIVE, LowerLevelSolver
from repro.scheduling.orchestration import random_orchestration, solve_orchestration
from repro.scheduling.solution import UpperLevelSolution
from repro.scheduling.tabu import TabuSearch, TabuSearchConfig


class TestTabuSearch:
    def test_finds_maximum_of_simple_function(self):
        # Solutions are integers; objective peaks at 42.
        def objective(x):
            return -abs(x - 42)

        def neighbors(x, count):
            return [x - 2, x - 1, x + 1, x + 2][:count]

        search = TabuSearch(objective, neighbors, config=TabuSearchConfig(num_steps=60, num_neighbors=4))
        result = search.run(0)
        assert result.best_solution == 42
        assert result.best_objective == 0

    def test_trace_monotone_nondecreasing(self):
        def objective(x):
            return -abs(x - 10)

        def neighbors(x, count):
            return [x - 1, x + 1]

        result = TabuSearch(objective, neighbors, config=TabuSearchConfig(num_steps=20, num_neighbors=2)).run(0)
        bests = [b for _, b in result.trace.history]
        assert all(b2 >= b1 for b1, b2 in zip(bests, bests[1:]))

    def test_tabu_list_is_bounded(self):
        seen = []

        def objective(x):
            seen.append(x)
            return float(-(x % 7))

        def neighbors(x, count):
            return [x + 1, x + 2]

        config = TabuSearchConfig(num_steps=15, num_neighbors=2, memory_size=3)
        TabuSearch(objective, neighbors, config=config).run(0)
        assert len(seen) > 0

    def test_patience_stops_early(self):
        calls = {"count": 0}

        def objective(x):
            calls["count"] += 1
            return 0.0  # flat landscape: never improves

        def neighbors(x, count):
            return [x + 1]

        config = TabuSearchConfig(num_steps=100, num_neighbors=1, patience=3)
        TabuSearch(objective, neighbors, config=config).run(0)
        assert calls["count"] < 20

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TabuSearchConfig(num_steps=0)


class TestOrchestration:
    def test_uncapacitated_routes_everything_to_best_pair(self):
        d = np.array([[0.2, 0.9], [0.5, 0.4]])
        result = solve_orchestration(d)
        assert result.served_fraction == pytest.approx(1.0)
        assert result.objective == pytest.approx(0.9)
        assert result.z[0, 1] == pytest.approx(1.0)

    def test_capacity_constraints_spread_load(self):
        d = np.array([[0.9, 0.8], [0.7, 0.6]])
        result = solve_orchestration(d, prefill_capacity=[0.5, 0.5], decode_capacity=[0.5, 0.5])
        assert result.served_fraction == pytest.approx(1.0)
        assert result.z.sum(axis=1).max() <= 0.5 + 1e-6
        assert result.z.sum(axis=0).max() <= 0.5 + 1e-6

    def test_insufficient_capacity_serves_partially(self):
        d = np.ones((1, 1))
        result = solve_orchestration(d, prefill_capacity=[0.4], decode_capacity=[1.0])
        assert result.served_fraction == pytest.approx(0.4)
        assert result.objective == pytest.approx(0.4)

    def test_x_sums_to_one_and_rows_normalised(self):
        d = np.array([[0.3, 0.6, 0.1], [0.2, 0.2, 0.9]])
        result = solve_orchestration(d, prefill_capacity=[0.6, 0.6], decode_capacity=[0.5, 0.5, 0.5])
        assert result.x.sum() == pytest.approx(1.0)
        for row in result.y:
            assert row.sum() == pytest.approx(1.0)

    def test_objective_prefers_higher_attainment_pairs(self):
        d = np.array([[0.1, 0.1], [0.1, 1.0]])
        result = solve_orchestration(d, prefill_capacity=[1.0, 1.0], decode_capacity=[1.0, 1.0])
        assert result.z[1, 1] > 0.9

    def test_random_orchestration_valid_distribution(self):
        result = random_orchestration(3, 2, np.random.default_rng(0))
        assert result.x.sum() == pytest.approx(1.0)
        assert np.allclose(result.y.sum(axis=1), 1.0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(Exception):
            solve_orchestration(np.zeros((0, 0)))


@pytest.fixture(scope="module")
def estimator_setup(small_hetero_cluster_mod, model_30b_mod, conversation_mod):
    cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
    slo = a100_reference_latency(model, workload).slo_spec(6.0)
    estimator = SLOEstimator(cluster, model, workload, slo, request_rate=3.0)
    return cluster, model, workload, estimator


@pytest.fixture(scope="module")
def small_hetero_cluster_mod():
    from repro.hardware.cluster import make_two_datacenter_cluster

    return make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)


@pytest.fixture(scope="module")
def model_30b_mod():
    from repro.model.architecture import get_model_config

    return get_model_config("llama-30b")


@pytest.fixture(scope="module")
def conversation_mod():
    from repro.workload.spec import CONVERSATION_WORKLOAD

    return CONVERSATION_WORKLOAD


def _group(cluster, model, workload, gpu_type, phase, group_id):
    from repro.parallelism.enumeration import deduce_parallel_plan

    gpu_ids = [g.gpu_id for g in cluster.gpus_of_type(gpu_type)]
    plan = deduce_parallel_plan(cluster, gpu_ids, phase, model, workload)
    return ServingGroup(group_id=group_id, gpu_ids=tuple(sorted(gpu_ids)), phase=phase, plan=plan)


class TestSLOEstimator:
    def test_replica_performance_fields(self, estimator_setup):
        cluster, model, workload, estimator = estimator_setup
        group = _group(cluster, model, workload, "A40", Phase.PREFILL, 0)
        perf = estimator.replica_performance(group)
        assert perf.prefill_service_s > 0
        assert perf.prefill_capacity_rps > 0
        assert perf.decode_max_batch > 0
        assert perf.decode_token_capacity > 0

    def test_attainment_matrix_in_unit_interval(self, estimator_setup):
        cluster, model, workload, estimator = estimator_setup
        prefill = estimator.replica_performance(_group(cluster, model, workload, "A40", Phase.PREFILL, 0))
        decode = estimator.replica_performance(_group(cluster, model, workload, "3090Ti", Phase.DECODE, 1))
        d = estimator.attainment_matrix([prefill], [decode])
        assert d.shape == (1, 1)
        assert 0.0 <= d[0, 0] <= 1.0

    def test_looser_slo_never_reduces_attainment(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        ref = a100_reference_latency(model, workload)
        values = []
        for scale in (2.0, 8.0):
            estimator = SLOEstimator(cluster, model, workload, ref.slo_spec(scale), request_rate=3.0)
            prefill = estimator.replica_performance(_group(cluster, model, workload, "A40", Phase.PREFILL, 0))
            decode = estimator.replica_performance(_group(cluster, model, workload, "3090Ti", Phase.DECODE, 1))
            values.append(estimator.attainment_matrix([prefill], [decode])[0, 0])
        assert values[1] >= values[0]

    def test_higher_prefill_utilization_hurts(self, estimator_setup):
        cluster, model, workload, estimator = estimator_setup
        prefill = estimator.replica_performance(_group(cluster, model, workload, "A40", Phase.PREFILL, 0))
        decode = estimator.replica_performance(_group(cluster, model, workload, "3090Ti", Phase.DECODE, 1))
        low = estimator.pair_estimate(prefill, decode, prefill_utilization=0.1)
        high = estimator.pair_estimate(prefill, decode, prefill_utilization=0.9)
        assert high.ttft > low.ttft

    def test_decode_operating_batch_monotone_in_rate(self, estimator_setup):
        cluster, model, workload, estimator = estimator_setup
        decode = estimator.replica_performance(_group(cluster, model, workload, "3090Ti", Phase.DECODE, 1))
        low = decode.decode_operating_batch(50.0, 1100)
        high = decode.decode_operating_batch(500.0, 1100)
        assert high >= low

    def test_capacity_fractions_bounded(self, estimator_setup):
        cluster, model, workload, estimator = estimator_setup
        prefill = estimator.replica_performance(_group(cluster, model, workload, "A40", Phase.PREFILL, 0))
        decode = estimator.replica_performance(_group(cluster, model, workload, "3090Ti", Phase.DECODE, 1))
        assert 0.0 <= estimator.prefill_capacity_fraction(prefill) <= 1.0
        assert 0.0 <= estimator.decode_capacity_fraction(decode) <= 1.0


class TestLowerLevelSolver:
    def _solver(self, cluster, model, workload, rate=3.0, scale=6.0, **kwargs):
        slo = a100_reference_latency(model, workload).slo_spec(scale)
        return LowerLevelSolver(cluster=cluster, model=model, workload=workload, slo=slo,
                                request_rate=rate, **kwargs)

    def test_feasible_solution_produces_full_plan(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
        result = self._solver(cluster, model, workload).solve(solution)
        assert result.feasible
        assert result.plan is not None
        assert result.plan.routing is not None
        assert 0.0 <= result.estimated_attainment <= 1.0
        # The search objective adds at most the served-capacity bonus on top.
        assert result.estimated_attainment <= result.objective <= result.estimated_attainment + 0.05 + 1e-9
        assert result.attainment_matrix.shape == (1, 1)

    def test_single_phase_solution_infeasible(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.PREFILL)])
        result = self._solver(cluster, model, workload).solve(solution)
        assert not result.feasible
        assert result.objective == INFEASIBLE_OBJECTIVE

    def test_undersized_group_infeasible(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        solution = UpperLevelSolution.from_lists(
            [(a40, Phase.PREFILL), (ti[:1], Phase.DECODE), (ti[1:], Phase.DECODE)]
        )
        result = self._solver(cluster, model, workload).solve(solution)
        assert not result.feasible

    def test_fixed_plans_are_respected(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        a40 = tuple(sorted(g.gpu_id for g in cluster.gpus_of_type("A40")))
        ti = tuple(sorted(g.gpu_id for g in cluster.gpus_of_type("3090Ti")))
        from repro.parallelism.enumeration import deduce_parallel_plan

        fixed = {a40: deduce_parallel_plan(cluster, list(a40), Phase.PREFILL, model, workload)}
        solver = self._solver(cluster, model, workload, fixed_plans=fixed)
        solution = UpperLevelSolution.from_lists([(a40, Phase.DECODE), (ti, Phase.PREFILL)])
        result = solver.solve(solution)
        assert result.feasible
        decode_group = result.plan.decode_groups[0]
        assert decode_group.plan == fixed[a40]

    def test_overcapacity_demand_scores_near_zero(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        """Demand beyond fleet prefill capacity must not be flattered.

        The old ``min(0.95, ...)`` clamp in ``_operating_points`` (plus the
        LP's capacity-clipped routed mass) made an overloaded fleet look like a
        95%-utilised one, scoring ~0.9 attainment.  With the clamp gone and the
        routed shares normalised to the full offered rate, the implied
        ``rho >= 1`` reaches the estimator and the plan scores near zero.
        """
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
        result = self._solver(cluster, model, workload, rate=50.0).solve(solution)
        assert result.feasible, "the plan is structurally valid, just overloaded"
        assert result.estimated_attainment <= 0.01, (
            f"overloaded plan scored {result.estimated_attainment:.3f}"
        )
        # Only the (bounded) served-capacity bonus may remain in the objective.
        assert result.objective <= 0.05 + 1e-9

    def test_lp_orchestration_at_least_as_good_as_random(self, small_hetero_cluster_mod, model_30b_mod, conversation_mod):
        cluster, model, workload = small_hetero_cluster_mod, model_30b_mod, conversation_mod
        a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
        ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
        solution = UpperLevelSolution.from_lists(
            [(a40[:2], Phase.PREFILL), (a40[2:], Phase.PREFILL), (ti, Phase.DECODE)]
        )
        lp = self._solver(cluster, model, workload, orchestration_mode="lp").solve(solution)
        rnd = self._solver(cluster, model, workload, orchestration_mode="random").solve(solution)
        assert lp.objective >= rnd.objective - 1e-6


class TestRoutingPolicy:
    def test_uniform_routing(self):
        routing = RoutingPolicy.uniform([0, 1], [2, 3, 4])
        assert routing.x.sum() == pytest.approx(1.0)
        assert routing.joint.sum() == pytest.approx(1.0)

    def test_invalid_weights_rejected(self):
        with pytest.raises(Exception):
            RoutingPolicy(prefill_group_ids=(0,), decode_group_ids=(1,),
                          prefill_weights=(0.5,), dispatch=((1.0,),))

    def test_pair_share(self):
        routing = RoutingPolicy.uniform([0, 1], [2, 3])
        assert routing.pair_share(0, 2) == pytest.approx(0.25)


class TestDeploymentPlan:
    def test_prefill_decode_split(self, small_plan):
        prefill, decode = small_plan.prefill_decode_ratio
        assert prefill == 1 and decode == 1

    def test_gpu_exclusivity_enforced(self, small_plan):
        groups = list(small_plan.groups)
        overlapping = ServingGroup(group_id=99, gpu_ids=groups[0].gpu_ids, phase=Phase.DECODE)
        with pytest.raises(Exception):
            DeploymentPlan(groups=tuple(groups + [overlapping]))

    def test_describe_mentions_phases(self, small_plan, small_hetero_cluster):
        names = {g.gpu_id: g.type_name for g in small_hetero_cluster.gpus}
        text = small_plan.describe(names)
        assert "prefill" in text and "decode" in text

    def test_group_lookup(self, small_plan):
        gid = small_plan.groups[0].group_id
        assert small_plan.group(gid).group_id == gid
        with pytest.raises(KeyError):
            small_plan.group(1234)

    def test_invalid_kv_bits_rejected(self, small_plan):
        with pytest.raises(Exception):
            DeploymentPlan(groups=small_plan.groups, kv_transport_bits=5)

"""Unit tests for the CI bench regression gate (benchmarks/check_regression.py).

The acceptance criterion for the gate is that it *demonstrably fails* on an
injected regression — these tests inject each failure mode (speedup collapse,
engine divergence, undrained trace, mode mismatch, missing report) and assert a
non-zero exit, plus the healthy path returning zero.
"""

import json
import sys
from pathlib import Path

import pytest

# The benchmarks directory is not a package; import the script by path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
import check_regression  # noqa: E402


def report(**overrides):
    payload = {
        "benchmark": "bench_simulator_core",
        "mode": "reduced",
        "num_requests": 240,
        "decode_tokens": 27073,
        "t_fast_s": 0.05,
        "t_reference_s": 0.2,
        "speedup": 4.0,
        "speedup_bar": 2.0,
        "identical_metrics": True,
        "num_finished_fast": 240,
        "num_finished_reference": 240,
    }
    payload.update(overrides)
    return payload


def agreement_report(**overrides):
    payload = {
        "benchmark": "bench_estimator_saturation",
        "kind": "estimator_agreement",
        "mode": "reduced",
        "max_gap": 0.14,
        "mean_gap": 0.07,
        "point_tolerance": 0.20,
        "mean_tolerance": 0.10,
        "overload_rho": 1.3,
        "overload_estimated": 0.0,
        "overload_estimate_zero": True,
    }
    payload.update(overrides)
    return payload


def write(path: Path, payload) -> str:
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_healthy_run_passes(self):
        failures, warnings = check_regression.compare(report(), report(speedup=3.9))
        assert failures == []
        assert warnings == []

    def test_injected_speedup_regression_fails(self):
        # >30% below the baseline: 4.0x -> 2.0x must trip the gate.
        failures, _ = check_regression.compare(report(), report(speedup=2.0))
        assert any("regressed" in f for f in failures)

    def test_regression_at_exactly_the_floor_passes(self):
        failures, _ = check_regression.compare(report(), report(speedup=2.8))
        assert failures == []

    def test_divergent_metrics_fail(self):
        failures, _ = check_regression.compare(report(), report(identical_metrics=False))
        assert any("identical_metrics" in f for f in failures)

    def test_undrained_trace_fails(self):
        failures, _ = check_regression.compare(report(), report(num_finished_fast=239))
        assert any("did not drain" in f for f in failures)

    def test_mode_mismatch_fails(self):
        failures, _ = check_regression.compare(report(mode="full"), report())
        assert any("mode mismatch" in f for f in failures)

    def test_wallclock_growth_warns_but_does_not_fail(self):
        failures, warnings = check_regression.compare(report(), report(t_fast_s=0.5))
        assert failures == []
        assert any("non-gating" in w for w in warnings)

    def test_missing_drain_counters_fail_instead_of_passing_vacuously(self):
        fresh = report()
        del fresh["num_finished_fast"]
        del fresh["num_requests"]
        failures, _ = check_regression.compare(report(), fresh)
        assert any("missing from the fresh report" in f for f in failures)

    def test_missing_speedup_fails(self):
        fresh = report()
        del fresh["speedup"]
        failures, _ = check_regression.compare(report(), fresh)
        assert any("speedup missing" in f for f in failures)


class TestCompareAgreement:
    """The estimator-agreement kind is gated by gaps, not speedups."""

    def test_healthy_agreement_report_passes(self):
        failures, warnings = check_regression.compare(
            agreement_report(), agreement_report(mean_gap=0.08)
        )
        assert failures == []
        assert warnings == []

    def test_broken_overload_contract_fails(self):
        failures, _ = check_regression.compare(
            agreement_report(),
            agreement_report(overload_estimated=0.42, overload_estimate_zero=False),
        )
        assert any("overload contract" in f for f in failures)

    def test_gap_beyond_own_tolerance_fails(self):
        failures, _ = check_regression.compare(
            agreement_report(), agreement_report(max_gap=0.25)
        )
        assert any("exceeds the report's own tolerance" in f for f in failures)

    def test_mean_gap_drift_beyond_slack_fails(self):
        # Within tolerance (0.07 -> 0.10 <= 0.10) but > 0.03 above the baseline.
        failures, _ = check_regression.compare(
            agreement_report(), agreement_report(mean_gap=0.101)
        )
        assert any("drifted" in f for f in failures)

    def test_missing_gap_keys_fail_instead_of_passing_vacuously(self):
        fresh = agreement_report()
        del fresh["max_gap"]
        failures, _ = check_regression.compare(agreement_report(), fresh)
        assert any("max_gap" in f for f in failures)

    def test_kind_mismatch_fails(self):
        failures, _ = check_regression.compare(agreement_report(), report())
        assert any("kind mismatch" in f for f in failures)

    def test_speedup_rules_not_applied_to_agreement_reports(self):
        # An agreement report has no speedup/drain keys; the speedup rules
        # must not fire spuriously.
        failures, _ = check_regression.compare(agreement_report(), agreement_report())
        assert failures == []


def chaos_report(**overrides):
    payload = {
        "benchmark": "bench_chaos_recovery",
        "kind": "chaos_recovery",
        "mode": "reduced",
        "deterministic_replay": True,
        "static_worst": 0.0,
        "adaptive_worst": 0.3,
        "failure_replans": 2,
        "recovery_replans": 2,
        "attainment_under_failure": 0.42,
        "post_recovery_attainment": 0.8,
        "total_loss_outage_windows": 1,
        "total_loss_error": "",
        "total_loss_post_attainment_zero": True,
    }
    payload.update(overrides)
    return payload


class TestCompareChaos:
    """The chaos gate fails on every injected lifecycle break."""

    def test_healthy_chaos_report_passes(self):
        failures, warnings = check_regression.compare(chaos_report(), chaos_report())
        assert failures == []
        assert warnings == []

    def test_nondeterministic_replay_fails(self):
        failures, _ = check_regression.compare(
            chaos_report(), chaos_report(deterministic_replay=False)
        )
        assert any("deterministic_replay" in f for f in failures)

    def test_adaptive_below_static_fails(self):
        failures, _ = check_regression.compare(
            chaos_report(),
            chaos_report(adaptive_worst=0.1, static_worst=0.3),
        )
        assert any("fell below static" in f for f in failures)

    def test_missing_replans_fail(self):
        failures, _ = check_regression.compare(
            chaos_report(), chaos_report(failure_replans=0, recovery_replans=0)
        )
        assert any("failure-triggered" in f for f in failures)
        assert any("recovery-triggered" in f for f in failures)

    def test_no_recovery_after_rejoin_fails(self):
        failures, _ = check_regression.compare(
            chaos_report(),
            chaos_report(post_recovery_attainment=0.2, attainment_under_failure=0.42),
        )
        assert any("recover after the rejoin" in f for f in failures)

    def test_total_loss_break_fails(self):
        failures, _ = check_regression.compare(
            chaos_report(),
            chaos_report(
                total_loss_outage_windows=0,
                total_loss_error="SchedulingError: boom",
                total_loss_post_attainment_zero=False,
            ),
        )
        assert any("outage windows" in f for f in failures)
        assert any("aborted the sweep" in f for f in failures)
        assert any("unserved" in f for f in failures)

    def test_worst_window_drift_beyond_slack_fails(self):
        drift = check_regression.CHAOS_DRIFT_SLACK + 0.01
        failures, _ = check_regression.compare(
            chaos_report(), chaos_report(adaptive_worst=0.3 + drift)
        )
        assert any("drifted" in f for f in failures)

    def test_missing_keys_fail_instead_of_passing_vacuously(self):
        broken = chaos_report()
        for key in ("adaptive_worst", "failure_replans", "total_loss_outage_windows"):
            broken.pop(key)
        failures, _ = check_regression.compare(chaos_report(), broken)
        assert failures

    def test_mode_mismatch_fails(self):
        failures, _ = check_regression.compare(
            chaos_report(), chaos_report(mode="full")
        )
        assert any("mode mismatch" in f for f in failures)

    def test_kind_mismatch_fails(self):
        failures, _ = check_regression.compare(chaos_report(), agreement_report())
        assert any("kind mismatch" in f for f in failures)


def reliability_report(**overrides):
    payload = {
        "benchmark": "bench_request_reliability",
        "kind": "request_reliability",
        "mode": "reduced",
        "num_live_requests": 900,
        "retry_completed": 900,
        "retry_recovered": 4,
        "retry_dropped": 0,
        "retry_attainment": 0.84,
        "drop_completed": 896,
        "drop_dropped": 4,
        "drop_attainment": 0.83,
        "deterministic_replay": True,
        "stream_num_requests": 50_000,
        "stream_outcomes": {
            "pending": 0,
            "finished": 30_000,
            "retried_then_finished": 12_000,
            "timed_out": 8_000,
            "dropped_outage": 0,
            "shed": 0,
        },
        "stream_conserved": True,
        "stream_conservation_error": "",
        "elapsed_s": 8.0,
    }
    payload.update(overrides)
    return payload


class TestCompareReliability:
    """The reliability gate fails on every injected fault-semantics break."""

    def test_healthy_reliability_report_passes(self):
        failures, warnings = check_regression.compare(
            reliability_report(), reliability_report()
        )
        assert failures == []
        assert warnings == []

    def test_nondeterministic_replay_fails(self):
        failures, _ = check_regression.compare(
            reliability_report(), reliability_report(deterministic_replay=False)
        )
        assert any("deterministic_replay" in f for f in failures)

    def test_retry_not_beating_drop_only_fails(self):
        failures, _ = check_regression.compare(
            reliability_report(),
            reliability_report(retry_completed=896, drop_completed=896),
        )
        assert any("no longer beats drop-only" in f for f in failures)

    def test_storm_without_dispositions_fails(self):
        failures, _ = check_regression.compare(
            reliability_report(),
            reliability_report(retry_recovered=0, drop_dropped=0),
        )
        assert any("retried_then_finished" in f for f in failures)
        assert any("dropped_outage" in f for f in failures)

    def test_retry_attainment_below_drop_only_fails(self):
        failures, _ = check_regression.compare(
            reliability_report(),
            reliability_report(retry_attainment=0.70, drop_attainment=0.83),
        )
        assert any("fell below drop-only" in f for f in failures)

    def test_conservation_break_fails(self):
        failures, _ = check_regression.compare(
            reliability_report(),
            reliability_report(
                stream_conserved=False,
                stream_conservation_error="outcome counts sum to 49999",
            ),
        )
        assert any("conservation broke" in f for f in failures)

    def test_outcome_sum_mismatch_fails(self):
        bad = reliability_report()
        bad["stream_outcomes"] = dict(bad["stream_outcomes"], finished=29_999)
        failures, _ = check_regression.compare(reliability_report(), bad)
        assert any("sum to" in f for f in failures)

    def test_attainment_drift_beyond_slack_fails(self):
        drift = check_regression.RELIABILITY_DRIFT_SLACK + 0.01
        failures, _ = check_regression.compare(
            reliability_report(),
            reliability_report(
                retry_attainment=0.84 + drift, drop_attainment=0.83
            ),
        )
        assert any("drifted" in f for f in failures)

    def test_missing_keys_fail_instead_of_passing_vacuously(self):
        broken = reliability_report()
        for key in ("retry_completed", "retry_attainment", "stream_outcomes"):
            broken.pop(key)
        failures, _ = check_regression.compare(reliability_report(), broken)
        assert failures

    def test_wallclock_growth_warns_but_does_not_fail(self):
        failures, warnings = check_regression.compare(
            reliability_report(), reliability_report(elapsed_s=40.0)
        )
        assert failures == []
        assert any("non-gating" in w for w in warnings)

    def test_mode_mismatch_fails(self):
        failures, _ = check_regression.compare(
            reliability_report(), reliability_report(mode="full")
        )
        assert any("mode mismatch" in f for f in failures)

    def test_kind_mismatch_fails(self):
        failures, _ = check_regression.compare(reliability_report(), chaos_report())
        assert any("kind mismatch" in f for f in failures)


class TestMain:
    def test_healthy_exit_zero(self, tmp_path, capsys):
        base = write(tmp_path / "base.json", report())
        fresh = write(tmp_path / "fresh.json", report(speedup=3.8))
        assert check_regression.main(["--baseline", base, "--fresh", fresh]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_injected_regression_exit_nonzero(self, tmp_path, capsys):
        base = write(tmp_path / "base.json", report())
        fresh = write(tmp_path / "fresh.json", report(speedup=1.5))
        assert check_regression.main(["--baseline", base, "--fresh", fresh]) == 1
        assert "FAIL:" in capsys.readouterr().out

    def test_missing_fresh_report_exit_nonzero(self, tmp_path):
        base = write(tmp_path / "base.json", report())
        missing = str(tmp_path / "does-not-exist.json")
        assert check_regression.main(["--baseline", base, "--fresh", missing]) == 1

    def test_unparsable_fresh_report_exit_nonzero(self, tmp_path):
        base = write(tmp_path / "base.json", report())
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert check_regression.main(["--baseline", base, "--fresh", str(broken)]) == 1

    def test_custom_tolerance_respected(self, tmp_path):
        base = write(tmp_path / "base.json", report())
        fresh = write(tmp_path / "fresh.json", report(speedup=2.5))
        # 2.5x is a 37.5% regression: fails at the default 30% tolerance...
        assert check_regression.main(["--baseline", base, "--fresh", fresh]) == 1
        # ...but passes when the operator loosens the gate to 50%.
        assert (
            check_regression.main(
                ["--baseline", base, "--fresh", fresh, "--max-regression", "0.5"]
            )
            == 0
        )

    @pytest.mark.parametrize(
        "name",
        [
            "BENCH_simcore_reduced.json",
            "BENCH_prefill_reduced.json",
            "BENCH_estimator_saturation_reduced.json",
            "BENCH_chaos_recovery_reduced.json",
            "BENCH_request_reliability_reduced.json",
        ],
    )
    def test_gates_against_the_committed_baseline(self, name):
        """Every committed reduced-mode baseline is readable and self-consistent."""
        committed = Path(__file__).resolve().parent.parent / "benchmarks/baselines" / name
        baseline = check_regression.load_report(str(committed))
        assert baseline is not None
        assert baseline["mode"] == "reduced"
        # A fresh run identical to the baseline must pass its own gate.
        failures, _ = check_regression.compare(baseline, baseline)
        assert failures == []

    def test_multiple_pairs_all_gated(self, tmp_path, capsys):
        """--pair checks every (baseline, fresh) pair; any failure fails the run."""
        sim_base = write(tmp_path / "sim_base.json", report())
        sim_fresh = write(tmp_path / "sim_fresh.json", report(speedup=3.8))
        pre_base = write(
            tmp_path / "pre_base.json",
            report(benchmark="bench_prefill_core", speedup=4.5),
        )
        pre_fresh = write(
            tmp_path / "pre_fresh.json",
            report(benchmark="bench_prefill_core", speedup=4.2),
        )
        argv = ["--pair", sim_base, sim_fresh, "--pair", pre_base, pre_fresh]
        assert check_regression.main(argv) == 0
        out = capsys.readouterr().out
        assert "[bench_simulator_core]" in out and "[bench_prefill_core]" in out
        # One regressed pair fails the whole gate, and names the culprit.
        pre_bad = write(
            tmp_path / "pre_bad.json",
            report(benchmark="bench_prefill_core", speedup=1.0),
        )
        assert check_regression.main(["--pair", sim_base, sim_fresh, "--pair", pre_base, pre_bad]) == 1
        assert "FAIL: [bench_prefill_core]" in capsys.readouterr().out

"""Chunked trace generation: chunk-size invariance, stream isolation, bounded memory.

The streaming generator's contract is that chunking is an implementation
detail: for any chunk size — including 1 and larger-than-the-trace — the
concatenated chunks reproduce the eager struct-of-arrays realization
**bitwise**, with or without a diurnal time warp, and without perturbing the
frozen legacy ``generate`` stream.  Memory use must be bounded by the chunk
size, not the trace length.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.workload.generator import (
    DiurnalTimeWarp,
    PoissonArrivalGenerator,
)
from repro.workload.spec import CODING_WORKLOAD
from repro.workload.trace import RequestArrays

N = 200
RATE = 5.0
SEED = 7

#: chunk sizes covering the degenerate and boundary cases: one row per chunk,
#: a size that does not divide the trace, a typical size, exactly the trace,
#: and larger than the trace (single chunk)
CHUNK_SIZES = (1, 7, 64, N, 3 * N)


def _generator(seed: int = SEED) -> PoissonArrivalGenerator:
    return PoissonArrivalGenerator(spec=CODING_WORKLOAD, request_rate=RATE, seed=seed)


def _warp() -> DiurnalTimeWarp:
    return DiurnalTimeWarp(horizon=N / RATE * 1.5, period=N / RATE / 3.0, amplitude=0.4)


def _assert_bitwise_equal(a: RequestArrays, b: RequestArrays) -> None:
    assert a.workload == b.workload
    assert a.request_id.tobytes() == b.request_id.tobytes()
    assert a.arrival_time.tobytes() == b.arrival_time.tobytes()
    assert a.input_length.tobytes() == b.input_length.tobytes()
    assert a.output_length.tobytes() == b.output_length.tobytes()


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_concat_matches_eager_bitwise(self, chunk_size):
        eager = _generator().generate_arrays(N)
        chunks = list(_generator().iter_chunks(N, chunk_size=chunk_size))
        _assert_bitwise_equal(RequestArrays.concat(chunks), eager)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_concat_matches_eager_bitwise_with_warp(self, chunk_size):
        eager = _generator().generate_arrays(N, time_warp=_warp())
        chunks = list(
            _generator().iter_chunks(N, chunk_size=chunk_size, time_warp=_warp())
        )
        _assert_bitwise_equal(RequestArrays.concat(chunks), eager)

    def test_chunk_shapes_and_id_continuity(self):
        chunks = list(_generator().iter_chunks(N, chunk_size=64, first_request_id=10))
        assert [len(c) for c in chunks] == [64, 64, 64, 8]
        ids = np.concatenate([c.request_id for c in chunks])
        assert ids.tolist() == list(range(10, 10 + N))
        assert all(c.workload == CODING_WORKLOAD.name for c in chunks)

    def test_start_time_offsets_first_arrival(self):
        base = _generator().generate_arrays(N)
        shifted = _generator().generate_arrays(N, start_time=100.0)
        np.testing.assert_allclose(
            shifted.arrival_time, base.arrival_time + 100.0, rtol=0, atol=1e-9
        )

    def test_arrivals_strictly_ordered_under_warp(self):
        arrays = _generator().generate_arrays(N, time_warp=_warp())
        assert np.all(np.diff(arrays.arrival_time) >= 0.0)


class TestStreamIsolation:
    def test_streaming_does_not_perturb_legacy_generate(self):
        fresh = _generator().generate(num_requests=N)
        gen = _generator()
        list(gen.iter_chunks(N, chunk_size=32))
        after = gen.generate(num_requests=N)
        for a, b in zip(fresh.requests, after.requests):
            assert a.arrival_time == b.arrival_time
            assert a.input_length == b.input_length
            assert a.output_length == b.output_length

    def test_legacy_generate_does_not_perturb_streaming(self):
        fresh = _generator().generate_arrays(N)
        gen = _generator()
        gen.generate(num_requests=N)
        _assert_bitwise_equal(gen.generate_arrays(N), fresh)

    def test_repeated_streams_restart_identically(self):
        gen = _generator()
        first = RequestArrays.concat(list(gen.iter_chunks(N, chunk_size=16)))
        second = RequestArrays.concat(list(gen.iter_chunks(N, chunk_size=16)))
        _assert_bitwise_equal(first, second)


class TestValidation:
    def test_negative_num_requests_rejected(self):
        with pytest.raises(ValueError, match="num_requests"):
            list(_generator().iter_chunks(-1))

    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(_generator().iter_chunks(N, chunk_size=0))

    def test_warp_amplitude_bounds(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalTimeWarp(horizon=10.0, amplitude=1.0)

    def test_warp_rejects_times_beyond_horizon(self):
        warp = DiurnalTimeWarp(horizon=10.0, period=5.0, amplitude=0.3)
        with pytest.raises(ValueError, match="horizon"):
            warp(np.array([10.0 / (1.0 - 0.3) + 5.0 + 1.0]))


class TestBoundedMemory:
    def test_streaming_peak_is_bounded_by_chunk_size(self):
        """Consuming a 200k-request stream must not allocate the whole trace.

        The eager realization holds four 200k-row columns (~6.4 MB); streamed
        at 4096 rows per chunk the generator may only ever hold a few chunks'
        worth of buffers, so the traced allocation peak must stay an order of
        magnitude below the eager footprint.
        """
        total, chunk_size = 200_000, 4_096
        gen = _generator()
        consumed = 0
        tracemalloc.start()
        try:
            for chunk in gen.iter_chunks(total, chunk_size=chunk_size):
                consumed += len(chunk)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert consumed == total
        eager_bytes = total * 4 * 8
        assert peak < eager_bytes / 10, (
            f"streamed peak {peak} bytes is not an order of magnitude below "
            f"the eager footprint {eager_bytes} bytes"
        )

"""Tests for the serving runtime: coordinator, heartbeat monitor and the ThunderServe facade."""

import numpy as np
import pytest

from repro.core.types import Request
from repro.scheduling.scheduler import SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.coordinator import RequestCoordinator
from repro.serving.monitor import HeartbeatMonitor
from repro.serving.system import ThunderServe
from repro.workload.generator import generate_requests
from repro.workload.spec import CONVERSATION_WORKLOAD


def _request(i):
    return Request(request_id=i, arrival_time=float(i), input_length=100, output_length=10)


class TestCoordinator:
    def test_realised_shares_follow_routing(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        counts = {}
        for i in range(200):
            prefill_id, _ = coordinator.assign(_request(i))
            counts[prefill_id] = counts.get(prefill_id, 0) + 1
        routing = small_plan.routing
        for gid, planned in zip(routing.prefill_group_ids, routing.x):
            realised = counts.get(gid, 0) / 200
            assert realised == pytest.approx(planned, abs=0.05)

    def test_decode_targets_valid(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        decode_ids = {g.group_id for g in small_plan.decode_groups}
        for i in range(20):
            _, decode_id = coordinator.assign(_request(i))
            assert decode_id in decode_ids

    def test_complete_releases_outstanding(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        prefill_id, _ = coordinator.assign(_request(0))
        assert coordinator.outstanding(prefill_id) == 1
        coordinator.complete(0)
        assert coordinator.outstanding(prefill_id) == 0

    def test_complete_unknown_raises(self, small_plan):
        with pytest.raises(KeyError):
            RequestCoordinator(small_plan).complete(123)

    def test_update_routing_resets_deficits(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        for i in range(10):
            coordinator.assign(_request(i))
        coordinator.update_routing(small_plan.routing)
        assert coordinator.num_dispatched == 10


class TestHeartbeatMonitor:
    def test_no_failure_when_heartbeats_flow(self):
        monitor = HeartbeatMonitor([0, 1, 2], timeout_s=10.0)
        monitor.heartbeat_all(5.0)
        assert monitor.check(12.0) is None

    def test_failure_detected_after_timeout(self):
        monitor = HeartbeatMonitor([0, 1, 2], timeout_s=10.0)
        monitor.heartbeat_all(5.0, except_ids=[2])
        failure = monitor.check(12.0)
        assert failure is not None
        assert failure.gpu_ids == frozenset({2})
        assert monitor.failed_gpu_ids == [2]

    def test_failure_reported_once(self):
        monitor = HeartbeatMonitor([0, 1], timeout_s=1.0)
        assert monitor.check(5.0) is not None
        assert monitor.check(6.0) is None

    def test_recovery_on_new_heartbeat(self):
        monitor = HeartbeatMonitor([0], timeout_s=1.0)
        assert monitor.check(5.0) is not None
        monitor.heartbeat(0, 6.0)
        assert monitor.failed_gpu_ids == []

    def test_unknown_gpu_rejected(self):
        with pytest.raises(KeyError):
            HeartbeatMonitor([0]).heartbeat(5, 1.0)


class TestHeartbeatRecoveryCycle:
    def test_heartbeat_from_failed_gpu_queues_recovery(self):
        monitor = HeartbeatMonitor([0, 1], timeout_s=1.0)
        assert monitor.check(5.0) is not None
        monitor.heartbeat(0, 6.0)
        recovery = monitor.check_recovered(6.0)
        assert recovery is not None
        assert recovery.gpu_ids == frozenset({0})
        assert recovery.detected_at == 6.0
        # The signal drains exactly once.
        assert monitor.check_recovered(7.0) is None

    def test_mark_failed_registers_unmonitored_gpu(self):
        monitor = HeartbeatMonitor([0], timeout_s=1.0)
        monitor.mark_failed([7], now=3.0)
        assert monitor.failed_gpu_ids == [7]
        # mark_failed added GPU 7 to the watch set, so its comeback heartbeat
        # is accepted and surfaces as an explicit recovery.
        monitor.heartbeat(7, 4.0)
        recovery = monitor.check_recovered(4.0)
        assert recovery is not None
        assert recovery.gpu_ids == frozenset({7})

    def test_fail_recover_fail_cycle(self):
        monitor = HeartbeatMonitor([0], timeout_s=1.0)
        assert monitor.check(5.0).gpu_ids == frozenset({0})
        monitor.heartbeat(0, 6.0)
        assert monitor.check_recovered(6.0).gpu_ids == frozenset({0})
        # The second outage fires a fresh failure event for the same GPU.
        failure = monitor.check(20.0)
        assert failure is not None
        assert failure.gpu_ids == frozenset({0})
        assert monitor.failed_gpu_ids == [0]

    def test_refail_before_drain_cancels_pending_recovery(self):
        monitor = HeartbeatMonitor([0], timeout_s=1.0)
        assert monitor.check(5.0) is not None
        monitor.heartbeat(0, 6.0)
        # The GPU dies again before anyone drained the recovery signal: the
        # stale comeback must not be reported.
        monitor.mark_failed([0], now=7.0)
        assert monitor.check_recovered(8.0) is None
        assert monitor.failed_gpu_ids == [0]


class TestCoordinatorOutcomeLedger:
    def test_engine_outcomes_fold_into_totals(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        coordinator.record_outcomes(
            {"finished": 5, "retried_then_finished": 2, "timed_out": 1}
        )
        totals = coordinator.outcome_totals
        assert totals["finished"] == 5
        assert totals["retried_then_finished"] == 2
        assert totals["timed_out"] == 1
        assert totals["shed"] == 0
        coordinator.record_outcomes({"finished": 3})
        assert coordinator.outcome_totals["finished"] == 8

    def test_shed_and_outage_drops_enter_ledger_once(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        coordinator.record_shed(_request(0))
        coordinator.record_outage_drop(_request(1))
        totals = coordinator.outcome_totals
        assert totals["shed"] == 1
        assert totals["dropped_outage"] == 1

    def test_unknown_outcome_name_rejected(self, small_plan):
        with pytest.raises(KeyError):
            RequestCoordinator(small_plan).record_outcomes({"exploded": 1})

    def test_totals_copy_is_isolated(self, small_plan):
        coordinator = RequestCoordinator(small_plan)
        totals = coordinator.outcome_totals
        totals["finished"] = 99
        assert coordinator.outcome_totals["finished"] == 0


@pytest.fixture(scope="module")
def deployed_system():
    from repro.hardware.cluster import make_two_datacenter_cluster
    from repro.model.architecture import get_model_config

    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-30b")
    system = ThunderServe(
        cluster,
        model,
        CONVERSATION_WORKLOAD,
        request_rate=3.0,
        scheduler_config=SchedulerConfig(
            # Enough budget for the search to converge to the multi-group plan
            # regardless of the RNG stream: the facade tests (failure handling,
            # rescheduling) need a plan with spare replicas, not scheduler luck.
            tabu=TabuSearchConfig(num_steps=12, num_neighbors=4, patience=8), seed=2
        ),
    )
    system.deploy()
    return system


class TestThunderServeFacade:
    def test_deploy_installs_plan(self, deployed_system):
        assert deployed_system.plan is not None
        assert deployed_system.coordinator is not None

    def test_serve_before_deploy_raises(self):
        from repro.hardware.cluster import make_two_datacenter_cluster
        from repro.model.architecture import get_model_config

        system = ThunderServe(
            make_two_datacenter_cluster(seed=0),
            get_model_config("llama-30b"),
            CONVERSATION_WORKLOAD,
            request_rate=1.0,
        )
        with pytest.raises(Exception):
            system.require_plan()

    def test_serve_trace(self, deployed_system):
        trace = generate_requests(CONVERSATION_WORKLOAD, 2.0, num_requests=20, seed=5)
        result = deployed_system.serve(trace)
        assert result.num_finished == 20

    def test_attainment_curve_monotone(self, deployed_system):
        trace = generate_requests(CONVERSATION_WORKLOAD, 2.0, num_requests=20, seed=6)
        result = deployed_system.serve(trace)
        curve = deployed_system.attainment_curve(result, [1, 4, 16, 64])
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_gpu_failure_lightweight(self, deployed_system):
        victim_group = deployed_system.plan.groups[-1]
        victims = list(victim_group.gpu_ids)[:1]
        plan = deployed_system.handle_gpu_failure(victims, mode="lightweight")
        assert all(v not in plan.used_gpu_ids for v in victims)
        # The system can still serve traffic afterwards.
        trace = generate_requests(CONVERSATION_WORKLOAD, 2.0, num_requests=10, seed=7)
        result = deployed_system.serve(trace)
        assert result.num_finished == 10

    def test_invalid_failure_mode_rejected(self, deployed_system):
        with pytest.raises(ValueError):
            deployed_system.handle_gpu_failure([0], mode="teleport")


@pytest.fixture()
def cycle_system():
    """A fresh deployment per test: the cycle below degrades and restores it."""
    from repro.hardware.cluster import make_two_datacenter_cluster
    from repro.model.architecture import get_model_config

    system = ThunderServe(
        make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0),
        get_model_config("llama-30b"),
        CONVERSATION_WORKLOAD,
        request_rate=3.0,
        scheduler_config=SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=12, num_neighbors=4, patience=8), seed=2
        ),
    )
    system.deploy()
    return system


class TestProcessHeartbeats:
    """The monitor-driven fail -> recover -> fail loop through the facade."""

    def test_fail_recover_fail_cycle_through_facade(self, cycle_system):
        system = cycle_system
        timeout = system.monitor.timeout_s
        victims = sorted(system.require_plan().groups[-1].gpu_ids)[:1]

        # --- first failure: the victims stop heartbeating (their last-seen
        # stays at the monitor's epoch) while everyone else stays fresh.
        t1 = 10.0 * timeout
        system.monitor.heartbeat_all(t1, except_ids=victims)
        failure, recovery = system.process_heartbeats(t1 + 1.0)
        assert recovery is None
        assert failure is not None
        assert set(victims) <= set(failure.gpu_ids)
        assert all(v not in system.require_plan().used_gpu_ids for v in victims)
        # The rebuilt monitor keeps watching the dead GPUs as failed, so
        # their comeback can be observed without external bookkeeping.
        assert set(victims) <= set(system.monitor.failed_gpu_ids)

        # --- recovery: heartbeats resume on the failed GPUs.
        t2 = t1 + 10.0
        system.monitor.heartbeat_all(t2)
        failure2, recovery2 = system.process_heartbeats(t2 + 1.0)
        assert failure2 is None
        assert recovery2 is not None
        assert set(recovery2.gpu_ids) == set(victims)
        assert set(victims) <= set(system.cluster.gpu_ids)

        # --- second failure of the same GPUs: the cycle round-trips.  The
        # poll lands past the victims' timeout but inside everyone else's.
        t3 = t2 + 10.0
        system.monitor.heartbeat_all(t3, except_ids=victims)
        failure3, recovery3 = system.process_heartbeats(t2 + 1.0 + timeout + 1.0)
        assert recovery3 is None
        assert failure3 is not None
        assert set(victims) <= set(failure3.gpu_ids)
        assert all(v not in system.require_plan().used_gpu_ids for v in victims)

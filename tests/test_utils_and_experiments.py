"""Tests for table formatting and the lightweight experiment modules."""

import numpy as np
import pytest

from repro.experiments import fig1_phase_prices, fig2_batching, fig13_bandwidth, table1_gpus, table2_kv_quality
from repro.experiments.common import ExperimentResult, fixed_ratio_plan
from repro.utils.tables import format_table, format_value


class TestTables:
    def test_format_value_floats(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"

    def test_format_value_passthrough(self):
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"

    def test_format_table_alignment(self):
        table = format_table(["a", "long_header"], [[1, 2.5], [300, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all rows padded equally

    def test_format_table_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestExperimentResult:
    def test_to_table_and_column(self):
        result = ExperimentResult(name="demo", headers=["x", "y"], rows=[[1, 2], [3, 4]])
        assert "demo" in result.to_table()
        assert result.column("y") == [2, 4]

    def test_unknown_column_raises(self):
        result = ExperimentResult(name="demo", headers=["x"], rows=[[1]])
        with pytest.raises(ValueError):
            result.column("z")


class TestLightExperiments:
    def test_table1_lists_all_gpus(self):
        result = table1_gpus.run()
        assert len(result.rows) == 5
        assert "A40" in result.column("gpu")

    def test_fig1_reproduces_phase_affinity(self):
        result = fig1_phase_prices.run()
        assert result.extras["cheapest_prefill"] == "A40"
        assert result.extras["cheapest_decode"] == "3090Ti"

    def test_fig2_batching_shape(self):
        result = fig2_batching.run()
        # Prefill plateaus (small gain), decode keeps scaling (large gain).
        assert result.extras["prefill_gain"] < 1.5
        assert result.extras["decode_gain"] > 3.0

    def test_fig13_cloud_more_heterogeneous_than_inhouse(self):
        result = fig13_bandwidth.run()
        cloud_row = next(r for r in result.rows if "cloud" in r[0])
        inhouse_row = next(r for r in result.rows if "in-house" in r[0])
        assert cloud_row[4] > 5.0      # max/min heterogeneity
        assert inhouse_row[4] == pytest.approx(1.0)
        assert result.extras["cloud_matrix"].shape == (32, 32)

    def test_table2_quality_degrades_gracefully(self):
        result = table2_kv_quality.run(num_prompts=2, prompt_length=24, generate_tokens=8)
        agreements = {(row[0], row[1]): row[2] for row in result.rows}
        for (model_name, bits), agreement in agreements.items():
            assert 0.0 <= agreement <= 1.0
            if bits == 8:
                assert agreement > 0.9


class TestFixedRatioPlan:
    def test_ratio_reflected_in_plan(self, model_13b):
        from repro.hardware.cluster import make_homogeneous_cluster
        from repro.workload.spec import CONVERSATION_WORKLOAD

        cluster = make_homogeneous_cluster("A5000", num_gpus=8, gpus_per_node=4)
        plan, result = fixed_ratio_plan(
            cluster, model_13b, CONVERSATION_WORKLOAD, request_rate=4.0,
            num_prefill=1, num_decode=3, gpus_per_replica=2,
        )
        assert plan.prefill_decode_ratio == (1, 3)
        assert result.feasible

    def test_oversized_ratio_rejected(self, model_13b):
        from repro.hardware.cluster import make_homogeneous_cluster
        from repro.workload.spec import CODING_WORKLOAD

        cluster = make_homogeneous_cluster("A5000", num_gpus=8, gpus_per_node=4)
        with pytest.raises(ValueError):
            fixed_ratio_plan(cluster, model_13b, CODING_WORKLOAD, 4.0, 4, 4, 2)

"""Tests for the vLLM-like, DistServe-like and HexGen-like baseline systems."""

import pytest

from repro.baselines.distserve import DistServeBaseline
from repro.baselines.hexgen import HexGenBaseline
from repro.baselines.vllm import VLLMBaseline
from repro.workload.generator import generate_requests
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


@pytest.fixture(scope="module")
def short_trace():
    return generate_requests(CONVERSATION_WORKLOAD, request_rate=3.0, num_requests=30, seed=21)


class TestVLLMBaseline:
    def test_builds_four_replicas_on_inhouse(self, inhouse_cluster, model_30b):
        baseline = VLLMBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        # LLaMA-30B needs two A100s per replica -> 4 replicas on 8 GPUs (paper §5.3).
        assert baseline.num_replicas == 4

    def test_serves_trace(self, inhouse_cluster, model_30b, short_trace):
        baseline = VLLMBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        result = baseline.serve(short_trace)
        assert result.num_finished == len(short_trace)
        assert result.label == "vllm"

    def test_explicit_group_size(self, inhouse_cluster, model_30b, short_trace):
        baseline = VLLMBaseline(
            inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0, gpus_per_replica=4
        )
        assert baseline.num_replicas == 2

    def test_invalid_rate_rejected(self, inhouse_cluster, model_30b):
        with pytest.raises(ValueError):
            VLLMBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=0.0)


class TestDistServeBaseline:
    def test_split_has_both_phases(self, inhouse_cluster, model_30b):
        baseline = DistServeBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        prefill, decode = baseline.prefill_decode_ratio
        assert prefill >= 1 and decode >= 1
        assert prefill + decode == 4

    def test_serves_trace(self, inhouse_cluster, model_30b, short_trace):
        baseline = DistServeBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        result = baseline.serve(short_trace)
        assert result.num_finished == len(short_trace)

    def test_uses_uncompressed_kv_transport(self, inhouse_cluster, model_30b):
        baseline = DistServeBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        baseline.ensure_built()
        assert baseline.plan.kv_transport_bits == 16

    def test_coding_gets_no_fewer_prefill_than_conversation(self, inhouse_cluster, model_30b):
        coding = DistServeBaseline(inhouse_cluster, model_30b, CODING_WORKLOAD, request_rate=6.0)
        conversation = DistServeBaseline(inhouse_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=6.0)
        assert coding.prefill_decode_ratio[0] >= conversation.prefill_decode_ratio[0]


class TestHexGenBaseline:
    def test_builds_multiple_replicas_on_cloud(self, cloud_cluster, model_30b):
        baseline = HexGenBaseline(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        assert baseline.num_replicas >= 4

    def test_replicas_cover_disjoint_gpus(self, cloud_cluster, model_30b):
        baseline = HexGenBaseline(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        baseline.ensure_built()
        seen = set()
        for group in baseline.replica_gpu_groups:
            assert not (seen & set(group))
            seen.update(group)

    def test_serves_trace(self, cloud_cluster, model_30b, short_trace):
        baseline = HexGenBaseline(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        result = baseline.serve(short_trace)
        assert result.num_finished == len(short_trace)
        assert result.label == "hexgen"

    def test_no_kv_transfer_in_colocated_serving(self, cloud_cluster, model_30b, short_trace):
        baseline = HexGenBaseline(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=3.0)
        result = baseline.serve(short_trace)
        assert result.summary()["mean_kv_transfer"] == pytest.approx(0.0)

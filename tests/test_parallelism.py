"""Unit tests for parallel configuration, pipeline partitioning, routing and Algorithm 2."""

import pytest

from repro.core.exceptions import ConfigurationError, InsufficientMemoryError, InvalidPlanError
from repro.core.types import Phase
from repro.parallelism.config import ParallelConfig, PipelineStage, ReplicaPlan
from repro.parallelism.enumeration import (
    candidate_stage_groups,
    deduce_parallel_plan,
    enumerate_parallel_plans,
)
from repro.parallelism.partition import group_can_hold_model, partition_layers, stage_max_layers
from repro.parallelism.routing import bottleneck_bandwidth, optimal_stage_order
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


class TestParallelConfig:
    def test_num_gpus(self):
        assert ParallelConfig(tp=2, pp=3).num_gpus == 6

    def test_invalid_degrees_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(tp=0, pp=1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(tp=1, pp=0)

    def test_str_matches_paper_notation(self):
        assert str(ParallelConfig(tp=2, pp=2)) == "(TP=2, PP=2)"


class TestReplicaPlan:
    def test_from_stage_lists(self):
        plan = ReplicaPlan.from_stage_lists([[0, 1], [2, 3]], [30, 30])
        assert plan.tp == 2 and plan.pp == 2
        assert plan.total_layers == 60
        assert plan.gpu_ids == [0, 1, 2, 3]

    def test_duplicate_gpu_rejected(self):
        with pytest.raises(InvalidPlanError):
            ReplicaPlan.from_stage_lists([[0, 1], [1, 2]], [30, 30])

    def test_empty_stage_rejected(self):
        with pytest.raises(InvalidPlanError):
            PipelineStage(gpu_ids=(), num_layers=10)

    def test_zero_layer_stage_rejected(self):
        with pytest.raises(InvalidPlanError):
            PipelineStage(gpu_ids=(0,), num_layers=0)

    def test_mismatched_lists_rejected(self):
        with pytest.raises(InvalidPlanError):
            ReplicaPlan.from_stage_lists([[0], [1]], [30])


class TestPartition:
    def test_partition_sums_to_model_layers(self, cloud_cluster, model_30b):
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")]
        split = partition_layers(cloud_cluster, [a40[:4], a40[4:]], model_30b, Phase.PREFILL)
        assert sum(split) == model_30b.num_layers
        assert all(s >= 1 for s in split)

    def test_heterogeneous_stages_get_unequal_layers(self, cloud_cluster, model_30b):
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")][:2]
        a5000 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A5000")][:2]
        split = partition_layers(cloud_cluster, [a40, a5000], model_30b, Phase.PREFILL)
        # The A40 stage (far more FLOPS) should host more layers than the A5000 stage.
        assert split[0] > split[1]

    def test_memory_cap_respected(self, cloud_cluster, model_30b):
        ti = [g.gpu_id for g in cloud_cluster.gpus_of_type("3090Ti")][:1]
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")][:4]
        split = partition_layers(cloud_cluster, [ti, a40], model_30b, Phase.DECODE)
        cap = stage_max_layers(cloud_cluster, ti, model_30b)
        assert split[0] <= cap

    def test_too_small_group_raises(self, cloud_cluster, model_30b):
        single = [cloud_cluster.gpus_of_type("A5000")[0].gpu_id]
        with pytest.raises(InsufficientMemoryError):
            partition_layers(cloud_cluster, [single], model_30b, Phase.PREFILL)

    def test_more_stages_than_layers_raises(self, cloud_cluster, tiny_model):
        stages = [[g] for g in cloud_cluster.gpu_ids[: tiny_model.num_layers + 1]]
        with pytest.raises(InsufficientMemoryError):
            partition_layers(cloud_cluster, stages, tiny_model, Phase.PREFILL)

    def test_group_can_hold_model(self, cloud_cluster, model_30b, tiny_model):
        single_a5000 = [cloud_cluster.gpus_of_type("A5000")[0].gpu_id]
        assert not group_can_hold_model(cloud_cluster, single_a5000, model_30b)
        assert group_can_hold_model(cloud_cluster, single_a5000, tiny_model)


class TestRouting:
    def test_single_stage_order(self, cloud_cluster):
        assert optimal_stage_order(cloud_cluster.network, [[0]]) == [0]

    def test_order_is_permutation(self, cloud_cluster):
        stages = [[0, 1], [4, 5], [8, 9], [16, 17]]
        order = optimal_stage_order(cloud_cluster.network, stages)
        assert sorted(order) == list(range(len(stages)))

    def test_optimal_order_at_least_as_good_as_identity(self, cloud_cluster):
        stages = [[0], [8], [16], [24], [4]]
        order = optimal_stage_order(cloud_cluster.network, stages)
        ordered = [stages[i] for i in order]
        identity = bottleneck_bandwidth(cloud_cluster.network, stages)
        optimised = bottleneck_bandwidth(cloud_cluster.network, ordered)
        assert optimised >= identity - 1e-9

    def test_greedy_fallback_for_many_stages(self, cloud_cluster):
        stages = [[g] for g in cloud_cluster.gpu_ids[:16]]
        order = optimal_stage_order(cloud_cluster.network, stages)
        assert sorted(order) == list(range(16))


class TestStageGroups:
    def test_tp1_gives_singleton_stages(self, cloud_cluster):
        groups = candidate_stage_groups(cloud_cluster, [0, 1, 2], tp=1)
        assert groups == [[0], [1], [2]]

    def test_tp_must_divide_group(self, cloud_cluster):
        assert candidate_stage_groups(cloud_cluster, [0, 1, 2], tp=2) is None

    def test_stages_do_not_mix_types(self, cloud_cluster):
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")][:2]
        ti = [g.gpu_id for g in cloud_cluster.gpus_of_type("3090Ti")][:2]
        groups = candidate_stage_groups(cloud_cluster, a40 + ti, tp=2)
        assert groups is not None
        for stage in groups:
            types = {cloud_cluster.gpu(g).type_name for g in stage}
            assert len(types) == 1


class TestAlgorithm2:
    def test_prefill_plan_uses_all_gpus(self, cloud_cluster, model_30b):
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")]
        plan = deduce_parallel_plan(cloud_cluster, a40, Phase.PREFILL, model_30b, CODING_WORKLOAD)
        assert sorted(plan.gpu_ids) == sorted(a40)
        assert plan.total_layers == model_30b.num_layers

    def test_tp_divides_head_count(self, cloud_cluster, model_30b):
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")]
        for candidate in enumerate_parallel_plans(cloud_cluster, a40, Phase.PREFILL, model_30b, CODING_WORKLOAD):
            assert model_30b.num_heads % candidate.plan.tp == 0

    def test_infeasible_group_raises(self, cloud_cluster, model_30b):
        single = [cloud_cluster.gpus_of_type("A5000")[0].gpu_id]
        with pytest.raises(InsufficientMemoryError):
            deduce_parallel_plan(cloud_cluster, single, Phase.PREFILL, model_30b, CODING_WORKLOAD)

    def test_prefill_picks_latency_optimal(self, cloud_cluster, model_30b):
        a40 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A40")]
        candidates = enumerate_parallel_plans(cloud_cluster, a40, Phase.PREFILL, model_30b, CODING_WORKLOAD)
        best = deduce_parallel_plan(cloud_cluster, a40, Phase.PREFILL, model_30b, CODING_WORKLOAD)
        best_latency = min(c.prefill_latency for c in candidates)
        chosen = next(c for c in candidates if c.plan == best)
        assert chosen.prefill_latency == pytest.approx(best_latency)

    def test_decode_picks_throughput_optimal(self, cloud_cluster, model_30b):
        ti = [g.gpu_id for g in cloud_cluster.gpus_of_type("3090Ti")]
        candidates = enumerate_parallel_plans(cloud_cluster, ti, Phase.DECODE, model_30b, CONVERSATION_WORKLOAD)
        best = deduce_parallel_plan(cloud_cluster, ti, Phase.DECODE, model_30b, CONVERSATION_WORKLOAD)
        best_throughput = max(c.decode_throughput for c in candidates)
        chosen = next(c for c in candidates if c.plan == best)
        assert chosen.decode_throughput == pytest.approx(best_throughput)

    def test_cross_node_group_avoids_cross_node_tp(self, cloud_cluster, model_30b):
        # Two A5000s from one node + two 3090Ti from another: TP stages must stay
        # within a node, so TP=4 is not allowed.
        a5000 = [g.gpu_id for g in cloud_cluster.gpus_of_type("A5000")][:2]
        ti = [g.gpu_id for g in cloud_cluster.gpus_of_type("3090Ti")][:2]
        for candidate in enumerate_parallel_plans(
            cloud_cluster, a5000 + ti, Phase.DECODE, model_30b, CONVERSATION_WORKLOAD
        ):
            for stage in candidate.plan.stages:
                nodes = {cloud_cluster.gpu(g).node_id for g in stage.gpu_ids}
                if stage.tp > 1:
                    assert len(nodes) == 1

"""Unit tests for the paged KV cache and the transport quantization codec."""

import numpy as np
import pytest

from repro.kvcache.paged import BlockAllocationError, PagedKVCache
from repro.kvcache.quantization import (
    compression_ratio,
    dequantize_groupwise,
    dequantize_kv_pair,
    quantization_error,
    quantize_groupwise,
    quantize_kv_pair,
)


class TestPagedKVCache:
    def test_blocks_needed_ceil(self):
        cache = PagedKVCache(num_blocks=10, block_size=16)
        assert cache.blocks_needed(1) == 1
        assert cache.blocks_needed(16) == 1
        assert cache.blocks_needed(17) == 2

    def test_allocate_and_free(self):
        cache = PagedKVCache(num_blocks=10, block_size=16)
        blocks = cache.allocate(seq_id=1, num_tokens=40)
        assert blocks == 3
        assert cache.used_blocks == 3
        assert cache.free(1) == 3
        assert cache.used_blocks == 0

    def test_double_allocate_rejected(self):
        cache = PagedKVCache(num_blocks=10)
        cache.allocate(1, 10)
        with pytest.raises(BlockAllocationError):
            cache.allocate(1, 10)

    def test_capacity_enforced(self):
        cache = PagedKVCache(num_blocks=2, block_size=16)
        assert not cache.can_allocate(64)
        with pytest.raises(BlockAllocationError):
            cache.allocate(1, 64)

    def test_append_token_allocates_new_block_on_boundary(self):
        cache = PagedKVCache(num_blocks=10, block_size=4)
        cache.allocate(1, 4)
        assert cache.append_token(1) is True   # 5 tokens -> 2 blocks
        assert cache.append_token(1) is False  # 6 tokens, still 2 blocks
        assert cache.used_blocks == 2

    def test_append_token_when_full_raises_and_rolls_back(self):
        cache = PagedKVCache(num_blocks=1, block_size=4)
        cache.allocate(1, 4)
        with pytest.raises(BlockAllocationError):
            cache.append_token(1)
        assert cache.tokens_of(1) == 4

    def test_free_unknown_sequence_raises(self):
        cache = PagedKVCache(num_blocks=2)
        with pytest.raises(BlockAllocationError):
            cache.free(99)

    def test_utilization(self):
        cache = PagedKVCache(num_blocks=4, block_size=16)
        cache.allocate(1, 32)
        assert cache.utilization == pytest.approx(0.5)

    def test_reset(self):
        cache = PagedKVCache(num_blocks=4, block_size=16)
        cache.allocate(1, 32)
        cache.reset()
        assert cache.used_blocks == 0
        assert cache.num_sequences == 0


class TestQuantization:
    def test_roundtrip_preserves_shape_and_dtype(self):
        arr = np.random.default_rng(0).standard_normal((12, 17)).astype(np.float32)
        qt = quantize_groupwise(arr, bits=4)
        restored = dequantize_groupwise(qt)
        assert restored.shape == arr.shape
        assert restored.dtype == np.float32

    def test_roundtrip_error_small_int8(self):
        arr = np.random.default_rng(1).standard_normal(4096).astype(np.float32)
        assert quantization_error(arr, bits=8) < 0.01

    def test_roundtrip_error_moderate_int4(self):
        arr = np.random.default_rng(2).standard_normal(4096).astype(np.float32)
        assert quantization_error(arr, bits=4) < 0.1

    def test_int8_more_accurate_than_int4(self):
        arr = np.random.default_rng(3).standard_normal(2048).astype(np.float32)
        assert quantization_error(arr, bits=8) < quantization_error(arr, bits=4)

    def test_constant_tensor_exact(self):
        arr = np.full(256, 3.25, dtype=np.float32)
        restored = dequantize_groupwise(quantize_groupwise(arr, bits=4))
        assert np.allclose(restored, arr)

    def test_extremes_preserved_per_group(self):
        rng = np.random.default_rng(4)
        arr = rng.standard_normal(64).astype(np.float32)
        qt = quantize_groupwise(arr, bits=4, group_size=64)
        restored = dequantize_groupwise(qt)
        assert restored.min() == pytest.approx(arr.min(), abs=1e-5)
        assert restored.max() == pytest.approx(arr.max(), abs=1e-5)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_groupwise(np.zeros(8), bits=5)

    def test_payload_bytes_packing_4bit(self):
        arr = np.random.default_rng(5).standard_normal(1024).astype(np.float32)
        q4 = quantize_groupwise(arr, bits=4, group_size=64)
        q8 = quantize_groupwise(arr, bits=8, group_size=64)
        assert q4.packed.nbytes == pytest.approx(q8.packed.nbytes / 2)

    def test_compression_ratio_above_3x_for_4bit(self):
        arr = np.random.default_rng(6).standard_normal(8192).astype(np.float32)
        qt = quantize_groupwise(arr, bits=4, group_size=128)
        assert compression_ratio(qt, source_dtype_bytes=2) > 3.0

    def test_kv_pair_helpers(self):
        rng = np.random.default_rng(7)
        keys = rng.standard_normal((32, 64)).astype(np.float32)
        values = rng.standard_normal((32, 64)).astype(np.float32)
        qk, qv = quantize_kv_pair(keys, values, bits=4)
        restored_k, restored_v = dequantize_kv_pair(qk, qv)
        assert np.linalg.norm(restored_k - keys) / np.linalg.norm(keys) < 0.1
        assert np.linalg.norm(restored_v - values) / np.linalg.norm(values) < 0.1

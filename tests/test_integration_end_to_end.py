"""Integration tests: schedule → simulate → metrics across modules.

These tests run the whole pipeline at reduced scale and assert the *qualitative*
results the paper reports: phase splitting beats co-location on heterogeneous
clusters, KV compression shortens transfers, the workload drives the
prefill:decode balance, and lightweight rescheduling restores service after
failures.
"""

import pytest

from repro.baselines.hexgen import HexGenBaseline
from repro.core.types import Phase, SLOType
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.system import ThunderServe
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


def _scheduler(seed=0):
    return SchedulerConfig(
        tabu=TabuSearchConfig(num_steps=8, num_neighbors=4, memory_size=5, patience=5), seed=seed
    )


@pytest.mark.integration
class TestEndToEnd:
    def test_schedule_then_simulate_on_cloud(self, cloud_cluster, model_30b):
        scheduler = Scheduler(_scheduler(seed=4))
        result = scheduler.schedule(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=6.0)
        trace = generate_requests(CONVERSATION_WORKLOAD, 6.0, duration=15.0, seed=31)
        sim = ServingSimulator(cloud_cluster, result.plan, model_30b, config=SimulatorConfig(seed=0))
        run = sim.run(trace)
        assert run.num_finished == len(trace)
        assert run.output_token_throughput > 0

    def test_thunderserve_beats_hexgen_on_cloud(self, cloud_cluster, model_30b):
        """Phase splitting + orchestration should beat co-located HexGen-style serving."""
        rate = 8.0
        trace = generate_requests(CONVERSATION_WORKLOAD, rate, duration=20.0, seed=37)
        system = ThunderServe(
            cloud_cluster, model_30b, CONVERSATION_WORKLOAD, rate, scheduler_config=_scheduler(seed=5)
        )
        system.deploy()
        ts_run = system.serve(trace)
        hexgen = HexGenBaseline(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, rate, seed=0)
        hex_run = hexgen.serve(trace)
        # Compare mean E2E latency at equal offered load (lower is better).
        assert ts_run.mean(SLOType.E2E) < hex_run.mean(SLOType.E2E) * 1.1
        # And ThunderServe reaches 90% attainment at a deadline no larger than HexGen's.
        ts_deadline = ts_run.min_scale_for_attainment(0.9, system.reference)
        hex_deadline = hex_run.min_scale_for_attainment(0.9, system.reference)
        assert ts_deadline <= hex_deadline * 1.25

    def test_workload_drives_phase_balance(self, cloud_cluster, model_30b):
        coding = Scheduler(_scheduler(seed=7)).schedule(cloud_cluster, model_30b, CODING_WORKLOAD, 9.0)
        conv = Scheduler(_scheduler(seed=7)).schedule(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, 9.0)
        coding_prefill_share = coding.plan.prefill_decode_ratio[0] / coding.plan.num_replicas
        conv_prefill_share = conv.plan.prefill_decode_ratio[0] / conv.plan.num_replicas
        assert coding_prefill_share >= conv_prefill_share

    def test_failure_recovery_via_lightweight_rescheduling(self, cloud_cluster, model_30b):
        rate = 6.0
        system = ThunderServe(
            cloud_cluster, model_30b, CONVERSATION_WORKLOAD, rate, scheduler_config=_scheduler(seed=9)
        )
        system.deploy()
        trace = generate_requests(CONVERSATION_WORKLOAD, rate, duration=10.0, seed=41)
        before = system.serve(trace)
        victim_group = system.plan.decode_groups[0] if system.plan.decode_groups else system.plan.groups[0]
        system.handle_gpu_failure(list(victim_group.gpu_ids), mode="lightweight")
        after = system.serve(trace)
        # Service continues after the failure, with both phases still present.
        assert after.num_finished == len(trace)
        prefill, decode = system.plan.prefill_decode_ratio
        assert prefill >= 1 and decode >= 1
        assert before.num_finished == len(trace)

    def test_kv_compression_reduces_transfer_share(self, cloud_cluster, model_30b):
        from dataclasses import replace

        rate = 6.0
        scheduler = Scheduler(_scheduler(seed=11))
        plan4 = scheduler.schedule(cloud_cluster, model_30b, CONVERSATION_WORKLOAD, rate).plan
        plan16 = replace(plan4, kv_transport_bits=16)
        trace = generate_requests(CONVERSATION_WORKLOAD, rate, duration=10.0, seed=43)
        run4 = ServingSimulator(cloud_cluster, plan4, model_30b).run(trace)
        run16 = ServingSimulator(cloud_cluster, plan16, model_30b).run(trace)
        assert run4.summary()["mean_kv_transfer"] < run16.summary()["mean_kv_transfer"] / 2

    def test_adaptive_serving_reschedules_on_shift(self, small_hetero_cluster, model_30b):
        from repro.workload.trace import merge_traces

        rate = 3.0
        system = ThunderServe(
            small_hetero_cluster, model_30b, CODING_WORKLOAD, rate, scheduler_config=_scheduler(seed=13)
        )
        system.deploy()
        coding = generate_requests(CODING_WORKLOAD, rate, duration=30.0, seed=45)
        conversation = generate_requests(CONVERSATION_WORKLOAD, rate, duration=30.0, seed=46).shifted(30.0)
        trace = merge_traces([coding, conversation])
        results = system.serve_adaptive(trace, window_s=15.0)
        assert len(results) >= 3
        assert sum(r.num_finished for r in results) == len(trace)
        # At least one plan re-installation beyond the initial deployment happened.
        assert len([e for e in system.events if e.kind == "plan_installed"]) >= 2

"""Tests for the full Scheduler facade and the lightweight rescheduler.

These are slower tests (each runs a small tabu search), so budgets are kept tiny;
the behavioural assertions target the paper's qualitative claims rather than
absolute numbers.
"""

import pytest

from repro.core.types import Phase
from repro.scheduling.rescheduling import (
    LightweightRescheduler,
    ReschedulingOverheadModel,
)
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


def tiny_scheduler(seed=0, **kwargs):
    return Scheduler(
        SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=6, num_neighbors=4, memory_size=5, patience=4),
            seed=seed,
            **kwargs,
        )
    )


@pytest.fixture(scope="module")
def small_schedule(request):
    from repro.hardware.cluster import make_two_datacenter_cluster
    from repro.model.architecture import get_model_config

    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
    model = get_model_config("llama-30b")
    scheduler = tiny_scheduler(seed=1)
    result = scheduler.schedule(cluster, model, CONVERSATION_WORKLOAD, request_rate=3.0)
    return cluster, model, scheduler, result


class TestScheduler:
    def test_plan_covers_only_cluster_gpus(self, small_schedule):
        cluster, _, _, result = small_schedule
        assert set(result.plan.used_gpu_ids) <= set(cluster.gpu_ids)

    def test_plan_has_both_phases(self, small_schedule):
        _, _, _, result = small_schedule
        prefill, decode = result.plan.prefill_decode_ratio
        assert prefill >= 1 and decode >= 1

    def test_every_group_has_parallel_plan(self, small_schedule):
        _, _, _, result = small_schedule
        for group in result.plan.groups:
            assert group.plan is not None
            assert group.plan.total_layers == 60

    def test_routing_present_and_valid(self, small_schedule):
        _, _, _, result = small_schedule
        routing = result.plan.routing
        assert routing is not None
        assert routing.x.sum() == pytest.approx(1.0)

    def test_objective_in_unit_interval(self, small_schedule):
        _, _, _, result = small_schedule
        assert 0.0 <= result.estimated_slo_attainment <= 1.0
        assert 0.0 <= result.objective <= 1.05 + 1e-9

    def test_trace_recorded(self, small_schedule):
        _, _, _, result = small_schedule
        assert result.trace.num_evaluations >= 1
        assert len(result.trace.history) >= 1
        assert result.elapsed_s > 0

    def test_default_slo_positive(self, small_schedule):
        _, model, scheduler, _ = small_schedule
        slo = scheduler.default_slo(model, CODING_WORKLOAD, scale=3.0)
        assert slo.ttft > 0 and slo.tpot > 0 and slo.e2e > 0

    def test_coding_gets_no_fewer_prefill_replicas_than_conversation(self, cloud_cluster, model_30b):
        scheduler = tiny_scheduler(seed=3)
        coding = scheduler.schedule(cloud_cluster, model_30b, CODING_WORKLOAD, request_rate=9.0)
        conversation = tiny_scheduler(seed=3).schedule(
            cloud_cluster, model_30b, CONVERSATION_WORKLOAD, request_rate=9.0
        )
        coding_prefill, coding_decode = coding.plan.prefill_decode_ratio
        conv_prefill, conv_decode = conversation.plan.prefill_decode_ratio
        # The prefill-heavy coding workload should dedicate at least as large a
        # share of replicas to prefill as the decode-heavy conversation workload.
        coding_share = coding_prefill / (coding_prefill + coding_decode)
        conv_share = conv_prefill / (conv_prefill + conv_decode)
        assert coding_share >= conv_share


class TestLightweightRescheduler:
    def test_keeps_parallel_plans(self, small_schedule):
        cluster, model, scheduler, result = small_schedule
        slo = scheduler.default_slo(model, CODING_WORKLOAD)
        rescheduled = LightweightRescheduler(seed=0).reschedule(
            result.plan, cluster, model, CODING_WORKLOAD, request_rate=3.0, slo=slo
        )
        original_plans = {tuple(sorted(g.gpu_ids)): g.plan for g in result.plan.groups}
        for group in rescheduled.plan.groups:
            assert group.plan == original_plans[tuple(sorted(group.gpu_ids))]

    def test_drops_groups_with_failed_gpus(self, small_schedule):
        cluster, model, scheduler, result = small_schedule
        victim_group = result.plan.groups[0]
        degraded = cluster.without_gpus(list(victim_group.gpu_ids)[:1])
        slo = scheduler.default_slo(model, CONVERSATION_WORKLOAD)
        rescheduled = LightweightRescheduler(seed=0).reschedule(
            result.plan, degraded, model, CONVERSATION_WORKLOAD, request_rate=3.0, slo=slo
        )
        for group in rescheduled.plan.groups:
            assert not (set(group.gpu_ids) & set(list(victim_group.gpu_ids)[:1]))

    def test_runs_fast(self, small_schedule):
        cluster, model, scheduler, result = small_schedule
        slo = scheduler.default_slo(model, CONVERSATION_WORKLOAD)
        rescheduled = LightweightRescheduler(seed=0).reschedule(
            result.plan, cluster, model, CONVERSATION_WORKLOAD, request_rate=3.0, slo=slo
        )
        assert rescheduled.elapsed_s < 30.0

    def test_raises_when_nothing_survives(self, small_schedule):
        cluster, model, scheduler, result = small_schedule
        # Remove one GPU from every group so no group survives intact.
        victims = [list(g.gpu_ids)[0] for g in result.plan.groups]
        degraded = cluster.without_gpus(victims)
        slo = scheduler.default_slo(model, CONVERSATION_WORKLOAD)
        with pytest.raises(Exception):
            LightweightRescheduler(seed=0).reschedule(
                result.plan, degraded, model, CONVERSATION_WORKLOAD, request_rate=3.0, slo=slo
            )


class TestOverheadModel:
    def test_lightweight_much_cheaper_than_full(self, model_30b):
        model_overhead = ReschedulingOverheadModel()
        full = model_overhead.full_overhead_seconds(model_30b, num_gpus=32, num_replicas=12)
        light = model_overhead.lightweight_overhead_seconds()
        assert full > 5 * light

    def test_reload_scales_with_replicas(self, model_30b):
        overhead = ReschedulingOverheadModel()
        assert overhead.reload_seconds(model_30b, 12) > overhead.reload_seconds(model_30b, 4)

    def test_reload_zero_for_zero_replicas(self, model_30b):
        assert ReschedulingOverheadModel().reload_seconds(model_30b, 0) == 0.0

    def test_reload_time_matches_disk_bandwidth(self, model_30b):
        from repro.model.memory import parameter_bytes

        overhead = ReschedulingOverheadModel(disk_bandwidth_bytes=1.2e9)
        one_copy = overhead.reload_seconds(model_30b, 1)
        assert one_copy == pytest.approx(parameter_bytes(model_30b) / 1.2e9)

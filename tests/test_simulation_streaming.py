"""Streamed simulation: ``run_stream`` vs ``run`` vs the per-event reference.

``run_stream`` feeds the fast engine fixed-size struct-of-arrays chunks
instead of a materialized trace.  The contract is strict: for any chunk size,
the streamed run produces **bitwise-identical** per-request metrics, workload
tags, makespan and trace span to the eager ``run`` on the concatenated trace —
which in turn is bitwise-identical to the per-event reference oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import DiurnalTimeWarp, PoissonArrivalGenerator
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD
from repro.workload.trace import RequestArrays

N = 120
RATE = 3.0
CHUNK_SIZES = (1, 17, 64, 3 * N)

METRIC_FIELDS = (
    "enqueue_time",
    "prefill_start",
    "first_token_time",
    "kv_transfer_done",
    "completion_time",
    "prefill_replica",
    "decode_replica",
    "finished",
)


def _generator(seed: int = 3) -> PoissonArrivalGenerator:
    return PoissonArrivalGenerator(
        spec=CONVERSATION_WORKLOAD, request_rate=RATE, seed=seed
    )


def _simulator(cluster, plan, model, engine="fast", horizon=None) -> ServingSimulator:
    config = SimulatorConfig(seed=0, engine=engine, max_sim_time=horizon)
    return ServingSimulator(cluster, plan, model, config=config)


def _assert_identical(a, b, check_workload=False):
    assert len(a.metrics) == len(b.metrics)
    for ma, mb in zip(a.metrics, b.metrics):
        assert ma.request.request_id == mb.request.request_id
        for name in METRIC_FIELDS:
            assert getattr(ma, name) == getattr(mb, name), (
                f"request {ma.request.request_id}: {name} "
                f"{getattr(ma, name)!r} != {getattr(mb, name)!r}"
            )
        if check_workload:
            assert ma.request.workload == mb.request.workload
    assert a.makespan == b.makespan


@pytest.fixture(scope="module")
def arrays() -> RequestArrays:
    return _generator().generate_arrays(N)


class TestStreamedEqualsEager:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_run_stream_matches_run_bitwise(
        self, small_hetero_cluster, small_plan, model_30b, arrays, chunk_size
    ):
        eager = _simulator(small_hetero_cluster, small_plan, model_30b).run(
            arrays.to_trace()
        )
        chunks = [
            arrays.slice(lo, min(lo + chunk_size, N))
            for lo in range(0, N, chunk_size)
        ]
        streamed = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            chunks
        )
        _assert_identical(streamed, eager, check_workload=True)
        assert streamed.trace_duration == eager.trace_duration

    def test_generator_chunks_match_reference_oracle(
        self, small_hetero_cluster, small_plan, model_30b
    ):
        warp = DiurnalTimeWarp(horizon=N / RATE * 1.5, period=N / RATE / 2, amplitude=0.4)
        streamed = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            _generator().iter_chunks(N, chunk_size=32, time_warp=warp)
        )
        trace = _generator().generate_arrays(N, time_warp=warp).to_trace()
        reference = _simulator(
            small_hetero_cluster, small_plan, model_30b, engine="reference"
        ).run(trace)
        _assert_identical(streamed, reference)

    def test_empty_chunks_are_skipped(
        self, small_hetero_cluster, small_plan, model_30b, arrays
    ):
        eager = _simulator(small_hetero_cluster, small_plan, model_30b).run(
            arrays.to_trace()
        )
        half = N // 2
        chunks = [
            arrays.slice(0, 0),
            arrays.slice(0, half),
            arrays.slice(half, half),
            arrays.slice(half, N),
        ]
        streamed = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            chunks
        )
        _assert_identical(streamed, eager)

    def test_label_propagates(self, small_hetero_cluster, small_plan, model_30b, arrays):
        result = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            [arrays], label="streamed"
        )
        assert result.label == "streamed"


class TestMultiWorkloadStream:
    def test_workload_tags_survive_spec_changes_mid_stream(
        self, small_hetero_cluster, small_plan, model_30b
    ):
        first = _generator().generate_arrays(N // 2)
        tail_gen = PoissonArrivalGenerator(
            spec=CODING_WORKLOAD, request_rate=RATE, seed=5
        )
        second = tail_gen.generate_arrays(
            N // 2,
            start_time=float(first.arrival_time[-1]),
            first_request_id=N // 2,
        )
        streamed = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            [first, second]
        )
        from repro.workload.trace import Trace

        eager_trace = Trace(
            requests=first.to_trace().requests + second.to_trace().requests,
            name="mixed",
        )
        eager = _simulator(small_hetero_cluster, small_plan, model_30b).run(eager_trace)
        _assert_identical(streamed, eager, check_workload=True)
        tags = [m.request.workload for m in streamed.metrics]
        assert tags[: N // 2] == [CONVERSATION_WORKLOAD.name] * (N // 2)
        assert tags[N // 2 :] == [CODING_WORKLOAD.name] * (N // 2)


class TestHorizonTruncation:
    def test_streamed_horizon_matches_eager_and_reference(
        self, small_hetero_cluster, small_plan, model_30b, arrays
    ):
        horizon = float(arrays.arrival_time[N // 2])
        chunks = [arrays.slice(lo, min(lo + 16, N)) for lo in range(0, N, 16)]
        streamed = _simulator(
            small_hetero_cluster, small_plan, model_30b, horizon=horizon
        ).run_stream(chunks)
        eager = _simulator(
            small_hetero_cluster, small_plan, model_30b, horizon=horizon
        ).run(arrays.to_trace())
        reference = _simulator(
            small_hetero_cluster,
            small_plan,
            model_30b,
            engine="reference",
            horizon=horizon,
        ).run(arrays.to_trace())
        _assert_identical(streamed, eager)
        _assert_identical(streamed, reference)
        assert len(streamed.metrics) < N


class TestValidation:
    def test_out_of_order_chunks_rejected(
        self, small_hetero_cluster, small_plan, model_30b, arrays
    ):
        sim = _simulator(small_hetero_cluster, small_plan, model_30b)
        with pytest.raises(SimulationError, match="time-ordered"):
            sim.run_stream([arrays.slice(N // 2, N), arrays.slice(0, N // 2)])

    def test_run_stream_reference_engine_falls_back_to_eager(
        self, small_hetero_cluster, small_plan, model_30b, arrays
    ):
        chunks = [arrays.slice(0, N // 2), arrays.slice(N // 2, N)]
        reference = _simulator(
            small_hetero_cluster, small_plan, model_30b, engine="reference"
        ).run_stream(chunks)
        fast = _simulator(small_hetero_cluster, small_plan, model_30b).run(
            arrays.to_trace()
        )
        _assert_identical(fast, reference)


class TestResultArrays:
    def test_streamed_result_metrics_sorted_by_request_id(
        self, small_hetero_cluster, small_plan, model_30b, arrays
    ):
        result = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            [arrays]
        )
        ids = [m.request.request_id for m in result.metrics]
        assert ids == sorted(ids)

    def test_streamed_summary_matches_eager_summary(
        self, small_hetero_cluster, small_plan, model_30b, arrays
    ):
        streamed = _simulator(small_hetero_cluster, small_plan, model_30b).run_stream(
            [arrays]
        )
        eager = _simulator(small_hetero_cluster, small_plan, model_30b).run(
            arrays.to_trace()
        )
        s, e = streamed.summary(), eager.summary()
        assert set(s) == set(e)
        for key in s:
            assert s[key] == pytest.approx(e[key], rel=0, abs=0), key

"""Property tests for the vectorized estimator fast path.

Two contracts guard the scheduler's hot loop:

1. **Deadline monotonicity** — tightening any SLO deadline can never increase
   estimated attainment (attainment is the measure of grid mass under the
   deadline, so it must be monotone non-increasing as the deadline shrinks).
2. **Vectorized == scalar reference** — the numpy fast path must match the
   retained pre-refactor scalar implementation to 1e-9 on randomized workloads,
   for every SLO type.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Phase, SLOSpec, SLOType
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.scheduling.deployment import ServingGroup
from repro.scheduling.estimator import SLOEstimator
from repro.workload.spec import WorkloadSpec

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow



workload_specs = st.builds(
    WorkloadSpec,
    name=st.just("random"),
    median_input_length=st.floats(min_value=64.0, max_value=2048.0),
    median_output_length=st.floats(min_value=8.0, max_value=256.0),
    input_sigma=st.floats(min_value=0.0, max_value=0.8),
    output_sigma=st.floats(min_value=0.0, max_value=0.8),
)


def _fleet(cluster, model, workload, estimator):
    """One A40 prefill replica and one 3090Ti decode replica."""
    a40 = [g.gpu_id for g in cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in cluster.gpus_of_type("3090Ti")]
    prefill_plan = deduce_parallel_plan(cluster, a40, Phase.PREFILL, model, workload)
    decode_plan = deduce_parallel_plan(cluster, ti, Phase.DECODE, model, workload)
    prefill = estimator.replica_performance(
        ServingGroup(group_id=0, gpu_ids=tuple(a40), phase=Phase.PREFILL, plan=prefill_plan)
    )
    decode = estimator.replica_performance(
        ServingGroup(group_id=1, gpu_ids=tuple(ti), phase=Phase.DECODE, plan=decode_plan)
    )
    return [prefill], [decode]


@pytest.fixture(scope="module")
def hetero_cluster(small_hetero_cluster):
    return small_hetero_cluster


@settings(max_examples=20, deadline=None)
@given(workload=workload_specs, data=st.data())
def test_attainment_monotone_in_deadline(hetero_cluster, model_13b, workload, data):
    """Attainment is monotone non-increasing as the SLO deadline tightens."""
    slo_type = data.draw(st.sampled_from(list(SLOType)))
    base = data.draw(st.floats(min_value=1e-3, max_value=60.0))
    estimator = SLOEstimator(
        hetero_cluster,
        model_13b,
        workload,
        SLOSpec(ttft=base, tpot=base, e2e=base),
        request_rate=2.0,
    )
    prefills, decodes = _fleet(hetero_cluster, model_13b, workload, estimator)
    # Sweep the deadline downward; attainment must never increase.
    deadlines = sorted(
        data.draw(
            st.lists(st.floats(min_value=1e-4, max_value=120.0), min_size=3, max_size=6)
        ),
        reverse=True,
    )
    previous = None
    for deadline in deadlines:
        estimator.slo = SLOSpec(ttft=deadline, tpot=deadline, e2e=deadline)
        attainment = estimator.attainment_matrix(prefills, decodes, slo_type=slo_type)[0, 0]
        assert 0.0 <= attainment <= 1.0
        if previous is not None:
            assert attainment <= previous + 1e-12, (
                f"attainment rose from {previous:.6f} to {attainment:.6f} "
                f"as the {slo_type.value} deadline tightened to {deadline:g}s"
            )
        previous = attainment


@settings(max_examples=20, deadline=None)
@given(workload=workload_specs, slo_scale=st.floats(min_value=0.5, max_value=20.0))
def test_vectorized_matches_scalar_reference(hetero_cluster, model_13b, workload, slo_scale):
    """The numpy fast path reproduces the pre-refactor scalar estimator to 1e-9."""
    from repro.costmodel.reference import a100_reference_latency

    slo = a100_reference_latency(model_13b, workload).slo_spec(slo_scale)
    estimator = SLOEstimator(hetero_cluster, model_13b, workload, slo, request_rate=2.0)
    prefills, decodes = _fleet(hetero_cluster, model_13b, workload, estimator)
    # Exercise the whole operating range: light load, deep saturation (the
    # M/G/1 wait at rho = 0.97 is ~30x the service time), outright overload
    # (rho >= 1 collapses the row to zero) and a KV-infeasible decode batch.
    for utilizations, batches in [
        ([0.3], [4]),
        ([0.97], [4]),
        ([1.0], [4]),
        ([1.3], [4]),
        ([0.5], [0]),
    ]:
        for slo_type in SLOType:
            fast = estimator.attainment_matrix(
                prefills, decodes,
                prefill_utilizations=utilizations,
                decode_batches=batches,
                slo_type=slo_type,
            )
            reference = estimator.attainment_matrix_reference(
                prefills, decodes,
                prefill_utilizations=utilizations,
                decode_batches=batches,
                slo_type=slo_type,
            )
            np.testing.assert_allclose(fast, reference, atol=1e-9, rtol=0.0)


@settings(max_examples=30, deadline=None)
@given(
    token_rate=st.floats(min_value=0.0, max_value=5e4),
    max_batch=st.integers(min_value=0, max_value=64),
    context=st.integers(min_value=64, max_value=4096),
)
def test_decode_operating_batch_sustains_rate(
    hetero_cluster, model_13b, conversation_workload, token_rate, max_batch, context
):
    """The returned batch sustains the requested token rate whenever any batch can.

    A KV-infeasible replica (``decode_max_batch == 0``) must return 0 instead of
    silently running at batch 1; otherwise the scan must return a batch whose
    throughput covers ``token_rate`` whenever *any* feasible batch's does.
    """
    from dataclasses import replace

    from repro.costmodel.reference import a100_reference_latency

    slo = a100_reference_latency(model_13b, conversation_workload).slo_spec(5.0)
    estimator = SLOEstimator(
        hetero_cluster, model_13b, conversation_workload, slo, request_rate=2.0
    )
    _, decodes = _fleet(hetero_cluster, model_13b, conversation_workload, estimator)
    perf = replace(decodes[0], decode_max_batch=max_batch)
    batch = perf.decode_operating_batch(token_rate, context)
    if max_batch == 0:
        assert batch == 0, "a KV-infeasible replica must not pretend to serve"
        return
    assert 1 <= batch <= max_batch
    throughputs = [
        b / perf.cost.decode_step_latency(b, context) for b in range(1, max_batch + 1)
    ]
    if any(t >= token_rate for t in throughputs):
        assert batch / perf.cost.decode_step_latency(batch, context) >= token_rate, (
            f"batch {batch} cannot sustain {token_rate:.1f} tok/s although some "
            f"batch in 1..{max_batch} can"
        )


def test_overload_zeroes_attainment_in_both_paths(
    hetero_cluster, model_13b, conversation_workload
):
    """``rho >= 1`` yields exactly zero attainment for every SLO type and path."""
    from repro.costmodel.reference import a100_reference_latency

    slo = a100_reference_latency(model_13b, conversation_workload).slo_spec(50.0)
    estimator = SLOEstimator(
        hetero_cluster, model_13b, conversation_workload, slo, request_rate=2.0
    )
    prefills, decodes = _fleet(hetero_cluster, model_13b, conversation_workload, estimator)
    for rho in (1.0, 1.5, 10.0):
        for slo_type in SLOType:
            for method in (
                estimator.attainment_matrix,
                estimator.attainment_matrix_reference,
            ):
                d = method(
                    prefills, decodes,
                    prefill_utilizations=[rho],
                    slo_type=slo_type,
                )
                assert np.all(d == 0.0), (
                    f"{method.__name__} flattered an overloaded replica: "
                    f"rho={rho}, {slo_type.value}, d={d}"
                )
    # The generous SLO attains near-perfectly just below saturation: zeroing at
    # rho >= 1 is a discontinuity of the overload contract, not SLO tightness.
    ok = estimator.attainment_matrix(prefills, decodes, prefill_utilizations=[0.5])
    assert ok[0, 0] > 0.9


def test_replica_performance_memoized_across_group_ids(
    hetero_cluster, model_13b, conversation_workload
):
    """Groups with the same structure share cached figures despite differing ids."""
    from repro.costmodel.reference import a100_reference_latency

    slo = a100_reference_latency(model_13b, conversation_workload).slo_spec(5.0)
    estimator = SLOEstimator(
        hetero_cluster, model_13b, conversation_workload, slo, request_rate=2.0
    )
    a40 = [g.gpu_id for g in hetero_cluster.gpus_of_type("A40")]
    plan = deduce_parallel_plan(
        hetero_cluster, a40, Phase.PREFILL, model_13b, conversation_workload
    )
    first = estimator.replica_performance(
        ServingGroup(group_id=0, gpu_ids=tuple(a40), phase=Phase.PREFILL, plan=plan)
    )
    second = estimator.replica_performance(
        ServingGroup(group_id=7, gpu_ids=tuple(a40), phase=Phase.PREFILL, plan=plan)
    )
    assert second.cost is first.cost, "cost model should be shared, not rebuilt"
    assert second.group.group_id == 7, "the requesting group's identity is preserved"
    assert second.prefill_service_s == first.prefill_service_s

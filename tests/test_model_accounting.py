"""Unit tests for model architecture configs, memory and FLOPs accounting."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.model.architecture import MODEL_CATALOG, ModelConfig, get_model_config
from repro.model.flops import (
    attention_flops,
    decode_flops_per_token,
    decode_memory_bytes_per_token,
    mlp_flops,
    prefill_flops,
    prefill_memory_bytes,
)
from repro.model.memory import (
    kv_cache_bytes,
    kv_cache_bytes_per_token,
    max_kv_tokens,
    parameter_bytes,
    parameter_count,
    weight_bytes_per_layer,
)


class TestArchitecture:
    def test_catalog_contains_llama_family(self):
        for name in ("llama-7b", "llama-13b", "llama-30b"):
            assert name in MODEL_CATALOG

    def test_lookup_case_insensitive(self):
        assert get_model_config("LLaMA-30B") is MODEL_CATALOG["llama-30b"]

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model_config("gpt-5")

    def test_head_dim(self, model_30b):
        assert model_30b.head_dim == model_30b.hidden_size // model_30b.num_heads

    def test_invalid_head_split_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(name="bad", num_layers=2, hidden_size=100, num_heads=3,
                        num_kv_heads=3, ffn_size=10)

    def test_gqa_requires_divisible_heads(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(name="bad", num_layers=2, hidden_size=128, num_heads=8,
                        num_kv_heads=3, ffn_size=10)


class TestParameterAccounting:
    def test_7b_parameter_count_in_range(self, model_7b):
        count = parameter_count(model_7b)
        assert 6e9 < count < 8e9

    def test_30b_parameter_count_in_range(self, model_30b):
        count = parameter_count(model_30b)
        assert 30e9 < count < 36e9

    def test_parameter_bytes_fp16(self, model_7b):
        assert parameter_bytes(model_7b) == pytest.approx(2 * parameter_count(model_7b))

    def test_larger_models_have_more_parameters(self, model_7b, model_13b, model_30b):
        assert parameter_count(model_7b) < parameter_count(model_13b) < parameter_count(model_30b)

    def test_weight_bytes_per_layer_sums_close_to_total(self, model_30b):
        per_layer_total = weight_bytes_per_layer(model_30b) * model_30b.num_layers
        # Embeddings/LM head are excluded from the per-layer figure.
        assert per_layer_total < parameter_bytes(model_30b)
        assert per_layer_total > 0.85 * parameter_bytes(model_30b)


class TestKVCacheAccounting:
    def test_kv_bytes_per_token_formula(self, model_7b):
        expected = 2 * model_7b.num_layers * model_7b.kv_hidden_size * 2
        assert kv_cache_bytes_per_token(model_7b) == pytest.approx(expected)

    def test_quantized_kv_is_quarter_of_fp16(self, model_7b):
        full = kv_cache_bytes_per_token(model_7b, bits=16)
        quant = kv_cache_bytes_per_token(model_7b, bits=4)
        assert quant == pytest.approx(full / 4)

    def test_invalid_bits_rejected(self, model_7b):
        with pytest.raises(ValueError):
            kv_cache_bytes_per_token(model_7b, bits=3)

    def test_kv_cache_bytes_scales_with_batch(self, model_7b):
        one = kv_cache_bytes(model_7b, num_tokens=100, batch_size=1)
        four = kv_cache_bytes(model_7b, num_tokens=100, batch_size=4)
        assert four == pytest.approx(4 * one)

    def test_max_kv_tokens_zero_for_no_memory(self, model_7b):
        assert max_kv_tokens(model_7b, 0.0) == 0

    def test_max_kv_tokens_monotone_in_memory(self, model_7b):
        assert max_kv_tokens(model_7b, 2e9) <= max_kv_tokens(model_7b, 4e9)


class TestFlopsAccounting:
    def test_prefill_flops_superlinear_in_length(self, model_7b):
        # Attention is quadratic, so doubling the prompt more than doubles FLOPs.
        assert prefill_flops(model_7b, 2048) > 2 * prefill_flops(model_7b, 1024)

    def test_prefill_flops_roughly_2_params_tokens(self, model_7b):
        tokens = 512
        flops = prefill_flops(model_7b, tokens)
        approx = 2 * parameter_count(model_7b) * tokens
        assert 0.5 * approx < flops < 2.0 * approx

    def test_decode_flops_grow_with_context(self, model_7b):
        assert decode_flops_per_token(model_7b, 2048) > decode_flops_per_token(model_7b, 128)

    def test_layer_subset_scales_flops(self, model_7b):
        full = mlp_flops(model_7b, 128)
        half = mlp_flops(model_7b, 128, num_layers=model_7b.num_layers // 2)
        assert half == pytest.approx(full / 2)

    def test_attention_flops_zero_for_zero_tokens(self, model_7b):
        assert attention_flops(model_7b, 0, 0) == 0.0

    def test_negative_length_rejected(self, model_7b):
        with pytest.raises(ValueError):
            prefill_flops(model_7b, -1)

    def test_decode_memory_dominated_by_weights_at_small_context(self, model_7b):
        bytes_moved = decode_memory_bytes_per_token(model_7b, context_length=1, batch_size=1)
        assert bytes_moved == pytest.approx(parameter_bytes(model_7b), rel=0.01)

    def test_prefill_memory_includes_kv_write(self, model_7b):
        small = prefill_memory_bytes(model_7b, 128)
        large = prefill_memory_bytes(model_7b, 1024)
        assert large > small

"""Unit tests for the network (alpha-beta) model."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.network import LinkClass, NetworkConfig, NetworkModel
from repro.hardware.node import Node


@pytest.fixture(scope="module")
def two_node_network():
    nodes = [
        Node(node_id=0, gpu_type="A40", num_gpus=2, intra_bandwidth_gbps=28.0),
        Node(node_id=1, gpu_type="3090Ti", num_gpus=2, intra_bandwidth_gbps=22.0, datacenter=1),
    ]
    return NetworkModel.from_nodes(nodes, seed=0), nodes


class TestNetworkConstruction:
    def test_num_gpus(self, two_node_network):
        network, _ = two_node_network
        assert network.num_gpus == 4

    def test_intra_node_bandwidth(self, two_node_network):
        network, _ = two_node_network
        assert network.bandwidth_gbps(0, 1) == pytest.approx(28.0)
        assert network.link_class(0, 1) is LinkClass.INTRA_NODE

    def test_cross_datacenter_links_are_slowest(self, two_node_network):
        network, _ = two_node_network
        assert network.link_class(0, 2) is LinkClass.INTER_DATACENTER
        assert network.bandwidth_gbps(0, 2) < network.bandwidth_gbps(0, 1)

    def test_matrix_symmetry(self, two_node_network):
        network, _ = two_node_network
        matrix = network.bandwidth_matrix_gbps()
        assert np.allclose(matrix, matrix.T)

    def test_self_link(self, two_node_network):
        network, _ = two_node_network
        assert network.link_class(3, 3) is LinkClass.SELF
        assert network.latency_s(3, 3) == 0.0

    def test_asymmetric_matrix_rejected(self):
        bandwidth = np.array([[1e6, 2.0], [3.0, 1e6]])
        latency = np.zeros((2, 2))
        link = np.full((2, 2), LinkClass.INTRA_NODE, dtype=object)
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth, latency, link)

    def test_zero_bandwidth_rejected(self):
        bandwidth = np.array([[1e6, 0.0], [0.0, 1e6]])
        latency = np.zeros((2, 2))
        link = np.full((2, 2), LinkClass.INTRA_NODE, dtype=object)
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth, latency, link)


class TestTransfer:
    def test_transfer_time_alpha_beta(self, two_node_network):
        network, _ = two_node_network
        expected = network.latency_s(0, 2) + 1e9 / network.bandwidth_bytes(0, 2)
        assert network.transfer_time(0, 2, 1e9) == pytest.approx(expected)

    def test_transfer_to_self_is_free(self, two_node_network):
        network, _ = two_node_network
        assert network.transfer_time(1, 1, 1e12) == 0.0

    def test_transfer_negative_bytes_rejected(self, two_node_network):
        network, _ = two_node_network
        with pytest.raises(ValueError):
            network.transfer_time(0, 1, -1.0)

    def test_more_bytes_take_longer(self, two_node_network):
        network, _ = two_node_network
        assert network.transfer_time(0, 2, 2e9) > network.transfer_time(0, 2, 1e9)


class TestAggregates:
    def test_min_bandwidth_within_single_gpu_is_infinite(self, two_node_network):
        network, _ = two_node_network
        assert network.min_bandwidth_within([0]) == float("inf")

    def test_min_bandwidth_within_node(self, two_node_network):
        network, _ = two_node_network
        assert network.min_bandwidth_within([0, 1]) == pytest.approx(28.0)

    def test_min_bandwidth_across_datacenters(self, two_node_network):
        network, _ = two_node_network
        assert network.min_bandwidth_within([0, 2]) < 1.0

    def test_best_link_between(self, two_node_network):
        network, _ = two_node_network
        i, j, bandwidth = network.best_link_between([0, 1], [2, 3])
        assert i in (0, 1) and j in (2, 3)
        assert bandwidth == pytest.approx(network.bandwidth_gbps(i, j))

    def test_mean_bandwidth_requires_nonempty(self, two_node_network):
        network, _ = two_node_network
        with pytest.raises(ValueError):
            network.mean_bandwidth_between([], [1])

    def test_distance_matrix_inverse_of_bandwidth(self, two_node_network):
        network, _ = two_node_network
        dist = network.distance_matrix()
        assert dist[0, 2] == pytest.approx(1.0 / network.bandwidth_gbps(0, 2))
        assert np.all(np.diag(dist) == 0)


class TestNetworkConfig:
    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(inter_node_min_gbps=5.0, inter_node_max_gbps=1.0)

    def test_deterministic_given_seed(self):
        nodes = [
            Node(node_id=0, gpu_type="A40", num_gpus=2),
            Node(node_id=1, gpu_type="A40", num_gpus=2),
        ]
        a = NetworkModel.from_nodes(nodes, seed=3).bandwidth_matrix_gbps()
        b = NetworkModel.from_nodes(nodes, seed=3).bandwidth_matrix_gbps()
        assert np.allclose(a, b)

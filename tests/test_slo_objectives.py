"""Tests for declarative SLO objectives, profile inference and breach tracking."""

import json

import pytest

from repro.serving.monitor import SLOBreachTracker
from repro.serving.slo_objectives import (
    DEFAULT_PROFILE,
    BreachEvent,
    SLOObjective,
    auto_slo_config,
    evaluate_slo_objectives,
    infer_slo_profile,
    resolve_slo_objectives,
)


def _objective(name="availability", metric="attainment_e2e", op=">=", target=0.9):
    return SLOObjective(name=name, metric=metric, op=op, target=target)


class TestSLOObjective:
    def test_geq_and_leq_semantics(self):
        geq = _objective(op=">=", target=0.9)
        assert geq.is_met(0.9) and geq.is_met(1.0)
        assert not geq.is_met(0.89)
        leq = _objective(metric="estimated_rho", op="<=", target=0.95)
        assert leq.is_met(0.95) and leq.is_met(0.1)
        assert not leq.is_met(0.96)

    def test_missing_and_nan_never_satisfy(self):
        obj = _objective()
        assert not obj.is_met(None)
        assert not obj.is_met(float("nan"))

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            _objective(op="==")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            _objective(name="")

    def test_dict_round_trip(self):
        obj = _objective()
        assert SLOObjective.from_dict(obj.to_dict()) == obj


class TestEvaluate:
    def test_report_pass_and_fail(self):
        snapshot = {"attainment_e2e": 0.95, "estimated_rho": 0.99}
        report = evaluate_slo_objectives(
            snapshot,
            [
                _objective(),
                _objective(name="headroom", metric="estimated_rho", op="<=", target=0.95),
            ],
        )
        assert not report.passed
        assert report.failed == ["headroom"]
        assert report.profile == DEFAULT_PROFILE
        assert [o.passed for o in report.outcomes] == [True, False]

    def test_missing_metric_fails_its_objective(self):
        report = evaluate_slo_objectives({}, [_objective()])
        assert report.failed == ["availability"]
        assert report.outcomes[0].value is None

    def test_accepts_dict_form_objectives(self):
        report = evaluate_slo_objectives(
            {"attainment_e2e": 1.0},
            [{"name": "availability", "metric": "attainment_e2e", "op": ">=", "target": 0.9}],
        )
        assert report.passed

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            evaluate_slo_objectives({}, [_objective(), _objective()])

    def test_report_to_dict_is_json_serialisable(self):
        report = evaluate_slo_objectives({"attainment_e2e": 0.5}, [_objective()])
        data = json.loads(json.dumps(report.to_dict()))
        assert data["passed"] is False
        assert data["failed"] == ["availability"]


class TestProfileInference:
    def test_realtime_when_healthy(self):
        snapshot = {"attainment_e2e": 0.9, "estimated_rho": 0.5}
        assert infer_slo_profile(snapshot) == "realtime"

    def test_degraded_on_low_attainment(self):
        assert infer_slo_profile({"attainment_e2e": 0.4, "estimated_rho": 0.5}) == "degraded"

    def test_degraded_on_overload(self):
        assert infer_slo_profile({"attainment_e2e": 0.95, "estimated_rho": 0.99}) == "degraded"

    def test_missing_attainment_falls_back_deterministically(self):
        # Partial telemetry must resolve the same profile every time.
        snapshots = [{}, {"estimated_rho": 0.1}, {"attainment_e2e": float("nan")}]
        for snapshot in snapshots:
            assert infer_slo_profile(snapshot) == "degraded"
            assert infer_slo_profile(snapshot, default_profile="fallback") == "fallback"


class TestResolve:
    def test_flat_form_resolves_to_default_profile(self):
        profile, objectives = resolve_slo_objectives(
            {"objectives": [_objective().to_dict()]}, {"attainment_e2e": 1.0}
        )
        assert profile == DEFAULT_PROFILE
        assert [o.name for o in objectives] == ["availability"]

    def test_profile_form_switches_on_snapshot(self):
        config = auto_slo_config()
        healthy, _ = resolve_slo_objectives(
            config, {"attainment_e2e": 0.9, "estimated_rho": 0.5}
        )
        degraded, objectives = resolve_slo_objectives(
            config, {"attainment_e2e": 0.2, "estimated_rho": 0.5}
        )
        assert healthy == "realtime"
        assert degraded == "degraded"
        assert [o.name for o in objectives] == ["availability"]

    def test_unconfigured_inferred_profile_falls_back(self):
        config = {
            "auto": {"default_profile": "degraded"},
            # No realtime profile configured: a healthy snapshot must still
            # resolve deterministically to the fallback.
            "profiles": {"degraded": [_objective(target=0.5).to_dict()]},
        }
        profile, _ = resolve_slo_objectives(config, {"attainment_e2e": 1.0})
        assert profile == "degraded"

    def test_missing_fallback_profile_rejected(self):
        config = {"auto": {"default_profile": "absent"}, "profiles": {"realtime": []}}
        with pytest.raises(ValueError, match="absent"):
            resolve_slo_objectives(config, {})

    def test_config_without_objectives_or_profiles_rejected(self):
        with pytest.raises(ValueError, match="objectives"):
            resolve_slo_objectives({}, {})

    def test_auto_config_floor_ordering_validated(self):
        with pytest.raises(ValueError):
            auto_slo_config(realtime_attainment=0.4, degraded_attainment=0.6)


class TestBreachTracker:
    def _report(self, value):
        return evaluate_slo_objectives(
            {"attainment_e2e": value}, [_objective(target=0.9)], profile="realtime"
        )

    def test_breach_fires_exactly_once_per_crossing(self):
        tracker = SLOBreachTracker()
        # pass -> fail fires; staying failed stays silent.
        assert tracker.update(self._report(1.0), time=1.0) == []
        first = tracker.update(self._report(0.5), time=2.0, window_index=1)
        assert len(first) == 1
        assert tracker.update(self._report(0.4), time=3.0, window_index=2) == []
        assert tracker.update(self._report(0.3), time=4.0, window_index=3) == []
        assert tracker.breached_objectives == ["availability"]
        # Recovery re-arms; the next crossing fires a fresh event.
        assert tracker.update(self._report(0.95), time=5.0) == []
        assert tracker.breached_objectives == []
        second = tracker.update(self._report(0.2), time=6.0, window_index=5)
        assert len(second) == 1
        assert second[0].window_index == 5

    def test_initial_failure_fires_immediately(self):
        tracker = SLOBreachTracker()
        events = tracker.update(self._report(0.0), time=0.0, context="trace-a")
        assert len(events) == 1
        event = events[0]
        assert event.objective == "availability"
        assert event.profile == "realtime"
        assert event.context == "trace-a"
        assert event.value == 0.0

    def test_reset_rearms_everything(self):
        tracker = SLOBreachTracker()
        tracker.update(self._report(0.0), time=0.0)
        tracker.reset()
        assert tracker.breached_objectives == []
        assert len(tracker.update(self._report(0.0), time=1.0)) == 1


class TestBreachEventSerialisation:
    def test_json_round_trip(self):
        event = BreachEvent(
            time=42.0,
            window_index=3,
            profile="realtime",
            objective="availability",
            metric="attainment_e2e",
            op=">=",
            target=0.9,
            value=0.55,
            context="diurnal",
        )
        restored = BreachEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert restored == event

    def test_round_trip_preserves_missing_value(self):
        event = BreachEvent(
            time=1.0, window_index=0, profile="degraded", objective="availability",
            metric="attainment_e2e", op=">=", target=0.5, value=None,
        )
        restored = BreachEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert restored == event
        assert "n/a" in restored.describe()

"""Property-based tests for simulator conservation laws and workload generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import SLOType
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests
from repro.workload.spec import WorkloadSpec

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow



CLUSTER = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)
MODEL = get_model_config("llama-30b")


def _plan():
    from repro.core.types import Phase
    from repro.costmodel.reference import a100_reference_latency
    from repro.scheduling.lower_level import LowerLevelSolver
    from repro.scheduling.solution import UpperLevelSolution
    from repro.workload.spec import CONVERSATION_WORKLOAD

    a40 = [g.gpu_id for g in CLUSTER.gpus_of_type("A40")]
    ti = [g.gpu_id for g in CLUSTER.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=CLUSTER,
        model=MODEL,
        workload=CONVERSATION_WORKLOAD,
        slo=a100_reference_latency(MODEL, CONVERSATION_WORKLOAD).slo_spec(8.0),
        request_rate=3.0,
    )
    return solver.solve(solution).plan


PLAN = _plan()


@given(
    median_in=st.integers(64, 1024),
    median_out=st.integers(2, 128),
    rate=st.floats(0.5, 6.0),
    seed=st.integers(0, 10_000),
    num_requests=st.integers(5, 25),
)
@settings(max_examples=15, deadline=None)
def test_simulator_conservation_laws(median_in, median_out, rate, seed, num_requests):
    """Every admitted request finishes exactly once with causally-ordered timestamps."""
    workload = WorkloadSpec(
        name="prop",
        median_input_length=float(median_in),
        median_output_length=float(median_out),
        input_sigma=0.3,
        output_sigma=0.4,
    )
    trace = generate_requests(workload, rate, num_requests=num_requests, seed=seed)
    result = ServingSimulator(CLUSTER, PLAN, MODEL, config=SimulatorConfig(seed=seed)).run(trace)
    # Conservation: every request completes exactly once within the (unbounded) horizon.
    assert result.num_finished == num_requests
    ids = [m.request.request_id for m in result.metrics]
    assert len(set(ids)) == num_requests
    for metrics in result.metrics:
        assert metrics.prefill_start + 1e-9 >= metrics.request.arrival_time
        assert metrics.first_token_time >= metrics.prefill_start
        assert metrics.completion_time + 1e-9 >= metrics.first_token_time
        assert metrics.ttft >= 0 and metrics.tpot >= 0
        assert metrics.ttft <= metrics.e2e_latency + 1e-9
    assert result.makespan >= trace.duration - 1e-9


@given(
    rate=st.floats(0.5, 20.0),
    seed=st.integers(0, 10_000),
    duration=st.floats(5.0, 60.0),
)
@settings(max_examples=25, deadline=None)
def test_poisson_trace_statistics(rate, seed, duration):
    """Generated traces have sorted arrivals inside the window and roughly the nominal rate."""
    from repro.workload.spec import CODING_WORKLOAD

    trace = generate_requests(CODING_WORKLOAD, rate, duration=duration, seed=seed)
    arrivals = [r.arrival_time for r in trace]
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= t < duration for t in arrivals)
    expected = rate * duration
    if expected >= 30:
        # A 5-sigma window keeps the per-example false-failure probability
        # below ~1e-6 (a fixed multiplicative band is eventually falsified by
        # ordinary Poisson tails once hypothesis explores enough seeds).
        slack = 5.0 * expected**0.5
        assert expected - slack < len(trace) < expected + slack


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_attainment_monotone_in_slo_scale(seed):
    """Looser SLOs never reduce measured attainment."""
    from repro.costmodel.reference import a100_reference_latency
    from repro.workload.spec import CONVERSATION_WORKLOAD

    trace = generate_requests(CONVERSATION_WORKLOAD, 3.0, num_requests=20, seed=seed)
    result = ServingSimulator(CLUSTER, PLAN, MODEL, config=SimulatorConfig(seed=seed)).run(trace)
    reference = a100_reference_latency(MODEL, CONVERSATION_WORKLOAD)
    scales = [0.5, 1, 2, 4, 8, 16, 32]
    curve = [result.slo_attainment(reference.slo_spec(s), SLOType.E2E) for s in scales]
    assert all(b >= a for a, b in zip(curve, curve[1:]))
    assert all(0.0 <= v <= 1.0 for v in curve)


@given(
    seed=st.integers(0, 10_000),
    size=st.integers(1, 64),
    max_input=st.integers(1, 8192),
    max_batch=st.integers(1, 64),
)
@settings(max_examples=20, deadline=None)
def test_prefill_grid_scalar_parity(seed, size, max_input, max_batch):
    """prefill_latency_array / prefill_latency_grid are the scalar model bitwise.

    Mirrors the decode-grid parity suite: the fast engine's coalesced prefill
    epochs price whole queues through these kernels, so any ULP of drift here
    breaks the engines' bitwise-identical-metrics contract.
    """
    from repro.costmodel.latency import ReplicaCostModel
    from repro.parallelism.config import ReplicaPlan

    a40 = [g.gpu_id for g in CLUSTER.gpus_of_type("A40")]
    plan = ReplicaPlan.from_stage_lists([a40], [MODEL.num_layers])
    cost = ReplicaCostModel(CLUSTER, plan, MODEL)
    rng = np.random.default_rng(seed)
    inputs = rng.integers(1, max_input + 1, size=size)
    batches = rng.integers(1, max_batch + 1, size=size)
    scalar = np.array(
        [cost.prefill_latency(int(s), int(b)) for s, b in zip(inputs, batches)]
    )
    assert np.all(cost.prefill_latency_array(inputs, batches) == scalar)
    assert np.all(cost.prefill_latency_grid(inputs, batches) == scalar)
    # Warm-memo pass returns the same bits.
    assert np.all(cost.prefill_latency_grid(inputs, batches) == scalar)

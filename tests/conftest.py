"""Shared fixtures for the test suite.

Heavier objects (clusters, deployment plans) are session-scoped: they are
immutable value objects in this codebase, so sharing them across tests is safe and
keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.types import Phase, SLOSpec
from repro.hardware.cluster import (
    make_cloud_cluster,
    make_homogeneous_cluster,
    make_inhouse_cluster,
    make_two_datacenter_cluster,
)
from repro.model.architecture import ModelConfig, get_model_config
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.workload.generator import generate_requests
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


# --------------------------------------------------------------------------- models
@pytest.fixture(scope="session")
def model_7b() -> ModelConfig:
    """LLaMA-7B architecture."""
    return get_model_config("llama-7b")


@pytest.fixture(scope="session")
def model_13b() -> ModelConfig:
    """LLaMA-13B architecture."""
    return get_model_config("llama-13b")


@pytest.fixture(scope="session")
def model_30b() -> ModelConfig:
    """LLaMA-30B architecture (the paper's evaluation model)."""
    return get_model_config("llama-30b")


@pytest.fixture(scope="session")
def tiny_model() -> ModelConfig:
    """A deliberately small architecture so single GPUs can hold many replicas."""
    return ModelConfig(
        name="tiny-1b",
        num_layers=8,
        hidden_size=1024,
        num_heads=8,
        num_kv_heads=8,
        ffn_size=2816,
        vocab_size=32000,
    )


# --------------------------------------------------------------------------- clusters
@pytest.fixture(scope="session")
def cloud_cluster():
    """The paper's 32-GPU heterogeneous cloud environment."""
    return make_cloud_cluster(seed=0)


@pytest.fixture(scope="session")
def inhouse_cluster():
    """The paper's 8xA100 in-house environment."""
    return make_inhouse_cluster()


@pytest.fixture(scope="session")
def small_hetero_cluster():
    """A small heterogeneous cluster (4xA40 + 4x3090Ti) for fast scheduling tests."""
    return make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=0)


@pytest.fixture(scope="session")
def a5000_cluster():
    """8 homogeneous A5000 GPUs across two nodes."""
    return make_homogeneous_cluster("A5000", num_gpus=8, gpus_per_node=4, seed=0)


# --------------------------------------------------------------------------- workloads
@pytest.fixture(scope="session")
def coding_workload():
    """The coding workload spec."""
    return CODING_WORKLOAD


@pytest.fixture(scope="session")
def conversation_workload():
    """The conversation workload spec."""
    return CONVERSATION_WORKLOAD


@pytest.fixture(scope="session")
def small_trace(conversation_workload):
    """A short conversation trace for simulator tests."""
    return generate_requests(conversation_workload, request_rate=4.0, num_requests=40, seed=11)


# --------------------------------------------------------------------------- plans
@pytest.fixture(scope="session")
def relaxed_slo(model_30b, conversation_workload):
    """A generous SLO so plans built in fixtures are comfortably feasible."""
    from repro.costmodel.reference import a100_reference_latency

    return a100_reference_latency(model_30b, conversation_workload).slo_spec(8.0)


@pytest.fixture(scope="session")
def small_plan(small_hetero_cluster, model_30b, conversation_workload, relaxed_slo):
    """A concrete two-replica deployment plan (A40 prefill -> 3090Ti decode)."""
    a40 = [g.gpu_id for g in small_hetero_cluster.gpus_of_type("A40")]
    ti = [g.gpu_id for g in small_hetero_cluster.gpus_of_type("3090Ti")]
    solution = UpperLevelSolution.from_lists([(a40, Phase.PREFILL), (ti, Phase.DECODE)])
    solver = LowerLevelSolver(
        cluster=small_hetero_cluster,
        model=model_30b,
        workload=conversation_workload,
        slo=relaxed_slo,
        request_rate=3.0,
    )
    result = solver.solve(solution)
    assert result.feasible and result.plan is not None
    return result.plan

"""Unit tests for upper-level solutions, clustering init and neighbourhood moves."""

import pytest

from repro.core.exceptions import InvalidPlanError
from repro.core.types import Phase
from repro.scheduling.clustering import initial_groups_by_clustering, minimum_group_size
from repro.scheduling.neighbors import (
    construct_neighbors,
    flip_phase,
    merge_groups,
    move_gpus,
    split_group,
)
from repro.scheduling.solution import GroupAssignment, UpperLevelSolution


@pytest.fixture()
def simple_solution(cloud_cluster):
    ids = cloud_cluster.gpu_ids
    return UpperLevelSolution.from_lists(
        [
            (ids[0:4], Phase.PREFILL),
            (ids[4:8], Phase.DECODE),
            (ids[8:16], Phase.PREFILL),
        ]
    )


class TestSolution:
    def test_counts(self, simple_solution):
        assert simple_solution.num_groups == 3
        assert simple_solution.num_prefill == 2
        assert simple_solution.num_decode == 1

    def test_overlapping_groups_rejected(self):
        with pytest.raises(InvalidPlanError):
            UpperLevelSolution.from_lists([([0, 1], Phase.PREFILL), ([1, 2], Phase.DECODE)])

    def test_key_is_order_invariant(self):
        a = UpperLevelSolution.from_lists([([0, 1], Phase.PREFILL), ([2, 3], Phase.DECODE)])
        b = UpperLevelSolution.from_lists([([2, 3], Phase.DECODE), ([0, 1], Phase.PREFILL)])
        assert a.key() == b.key()

    def test_key_sensitive_to_phase(self):
        a = UpperLevelSolution.from_lists([([0, 1], Phase.PREFILL), ([2, 3], Phase.DECODE)])
        b = UpperLevelSolution.from_lists([([0, 1], Phase.DECODE), ([2, 3], Phase.DECODE)])
        assert a.key() != b.key()

    def test_replace_group_removal(self, simple_solution):
        smaller = simple_solution.replace_group(0)
        assert smaller.num_groups == 2

    def test_empty_group_rejected(self):
        with pytest.raises(InvalidPlanError):
            GroupAssignment(gpu_ids=frozenset(), phase=Phase.PREFILL)


class TestClusteringInit:
    def test_initial_solution_partitions_cluster(self, cloud_cluster, model_30b):
        solution = initial_groups_by_clustering(cloud_cluster, model_30b, seed=0)
        assert solution.all_gpu_ids == frozenset(cloud_cluster.gpu_ids)

    def test_every_group_can_hold_model(self, cloud_cluster, model_30b):
        from repro.parallelism.partition import group_can_hold_model

        solution = initial_groups_by_clustering(cloud_cluster, model_30b, seed=0)
        for group in solution.groups:
            assert group_can_hold_model(cloud_cluster, group.gpu_ids, model_30b)

    def test_both_phases_present(self, cloud_cluster, model_30b):
        solution = initial_groups_by_clustering(cloud_cluster, model_30b, seed=1)
        assert solution.num_prefill >= 1
        assert solution.num_decode >= 1

    def test_groups_avoid_cross_datacenter_links(self, model_30b):
        from repro.hardware.cluster import make_two_datacenter_cluster

        cluster = make_two_datacenter_cluster(inter_dc_gbps=0.625, seed=0)
        solution = initial_groups_by_clustering(cluster, model_30b, seed=0, target_num_groups=2)
        for group in solution.groups:
            datacenters = {cluster.gpu(g).datacenter for g in group.gpu_ids}
            assert len(datacenters) == 1

    def test_minimum_group_size_reasonable(self, cloud_cluster, model_30b, tiny_model):
        assert minimum_group_size(cloud_cluster, model_30b) >= 3
        assert minimum_group_size(cloud_cluster, tiny_model) == 1

    def test_deterministic_for_seed(self, cloud_cluster, model_30b):
        a = initial_groups_by_clustering(cloud_cluster, model_30b, seed=3)
        b = initial_groups_by_clustering(cloud_cluster, model_30b, seed=3)
        assert a.key() == b.key()


class TestNeighborMoves:
    def test_flip_changes_exactly_one_phase(self, simple_solution):
        flipped = flip_phase(simple_solution, rng=0)
        differences = 0
        for a, b in zip(simple_solution.canonical().groups, flipped.canonical().groups):
            assert a.gpu_ids == b.gpu_ids
            if a.phase is not b.phase:
                differences += 1
        assert differences == 1

    def test_split_increases_group_count(self, simple_solution):
        split = split_group(simple_solution, rng=0)
        assert split is not None
        assert split.num_groups == simple_solution.num_groups + 1
        assert split.all_gpu_ids == simple_solution.all_gpu_ids

    def test_merge_decreases_group_count(self, simple_solution):
        merged = merge_groups(simple_solution, rng=0)
        assert merged is not None
        assert merged.num_groups == simple_solution.num_groups - 1
        assert merged.all_gpu_ids == simple_solution.all_gpu_ids

    def test_move_preserves_gpu_set(self, simple_solution, cloud_cluster):
        moved = move_gpus(simple_solution, cloud_cluster, rng=0)
        assert moved is not None
        assert moved.all_gpu_ids == simple_solution.all_gpu_ids
        assert moved.num_groups == simple_solution.num_groups

    def test_move_samples_the_moved_subset(self, cloud_cluster):
        """The moved GPU set varies across seeds for a fixed move shape.

        With one donor group of a single GPU type and a one-GPU destination, the
        only degrees of freedom are the move count and *which* GPUs move; a
        sorted-prefix implementation pins the subset per count, so every count
        must show at least two distinct subsets across seeds.
        """
        type_name = cloud_cluster.gpus[0].type_name
        donor = [g.gpu_id for g in cloud_cluster.gpus_of_type(type_name)][:8]
        other = [g for g in cloud_cluster.gpu_ids if g not in donor][:1]
        solution = UpperLevelSolution.from_lists(
            [(donor, Phase.DECODE), (other, Phase.PREFILL)]
        )
        subsets_by_count: dict = {}
        for seed in range(60):
            moved = move_gpus(solution, cloud_cluster, rng=seed)
            if moved is None:
                continue
            dst = next(g for g in moved.groups if set(other) <= set(g.gpu_ids))
            subset = frozenset(dst.gpu_ids) - frozenset(other)
            subsets_by_count.setdefault(len(subset), set()).add(subset)
        assert any(len(subsets) > 1 for subsets in subsets_by_count.values()), (
            "every move count always produced the same GPU subset: "
            "the moved set is not being sampled"
        )

    def test_split_none_for_singleton_groups(self):
        solution = UpperLevelSolution.from_lists([([0], Phase.PREFILL), ([1], Phase.DECODE)])
        assert split_group(solution, rng=0) is None

    def test_merge_none_for_single_group(self):
        solution = UpperLevelSolution.from_lists([([0, 1], Phase.PREFILL)])
        assert merge_groups(solution, rng=0) is None


class TestConstructNeighbors:
    def test_neighbors_are_feasible_and_distinct(self, cloud_cluster, model_30b, simple_solution):
        from repro.parallelism.partition import group_can_hold_model

        neighbors = construct_neighbors(simple_solution, cloud_cluster, model_30b, num_neighbors=8, rng=0)
        assert 1 <= len(neighbors) <= 8
        keys = {n.key() for n in neighbors}
        assert len(keys) == len(neighbors)
        assert simple_solution.key() not in keys
        for neighbor in neighbors:
            for group in neighbor.groups:
                assert group_can_hold_model(cloud_cluster, group.gpu_ids, model_30b)

    def test_flip_only_mode_keeps_group_structure(self, cloud_cluster, model_30b, simple_solution):
        neighbors = construct_neighbors(
            simple_solution, cloud_cluster, model_30b, num_neighbors=5, rng=0, moves=["flip"]
        )
        original_groups = {g.gpu_ids for g in simple_solution.groups}
        for neighbor in neighbors:
            assert {g.gpu_ids for g in neighbor.groups} == original_groups

    def test_unknown_move_rejected(self, cloud_cluster, model_30b, simple_solution):
        with pytest.raises(ValueError):
            construct_neighbors(simple_solution, cloud_cluster, model_30b, 3, moves=["teleport"])

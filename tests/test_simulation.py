"""Tests for the discrete-event simulators (phase-splitting and co-located)."""

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.core.types import Phase, SLOType
from repro.costmodel.reference import a100_reference_latency
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.simulation.colocated import ColocatedSimulator
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import SimulationResult, summarize_requests
from repro.workload.generator import generate_requests


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(time=2.0, kind=EventKind.ARRIVAL))
        queue.push(Event(time=1.0, kind=EventKind.ARRIVAL))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_fifo_for_ties(self):
        queue = EventQueue()
        first = Event(time=1.0, kind=EventKind.ARRIVAL, request_id=1)
        second = Event(time=1.0, kind=EventKind.ARRIVAL, request_id=2)
        queue.push(first)
        queue.push(second)
        assert queue.pop().request_id == 1
        assert queue.pop().request_id == 2

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(time=-1.0, kind=EventKind.ARRIVAL))

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(Event(time=0.0, kind=EventKind.ARRIVAL))
        assert len(queue) == 1 and queue


class TestServingSimulator:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_all_requests_finish(self, small_hetero_cluster, small_plan, model_30b, small_trace, engine):
        config = SimulatorConfig(engine=engine)
        simulator = ServingSimulator(small_hetero_cluster, small_plan, model_30b, config=config)
        result = simulator.run(small_trace)
        assert result.num_requests == len(small_trace)
        assert result.num_finished == len(small_trace)

    def test_every_request_finishes_exactly_once(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        ids = [m.request.request_id for m in result.metrics]
        assert len(ids) == len(set(ids))

    def test_timestamps_are_causally_ordered(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        for metrics in result.finished:
            assert metrics.prefill_start >= metrics.request.arrival_time - 1e-9
            assert metrics.first_token_time >= metrics.prefill_start
            assert metrics.kv_transfer_done >= metrics.first_token_time
            assert metrics.completion_time >= metrics.kv_transfer_done - 1e-9
            assert metrics.ttft <= metrics.e2e_latency + 1e-9

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_deterministic_given_seed(self, small_hetero_cluster, small_plan, model_30b, small_trace, engine):
        a = ServingSimulator(small_hetero_cluster, small_plan, model_30b,
                             config=SimulatorConfig(seed=5, engine=engine)).run(small_trace)
        b = ServingSimulator(small_hetero_cluster, small_plan, model_30b,
                             config=SimulatorConfig(seed=5, engine=engine)).run(small_trace)
        assert [m.completion_time for m in a.metrics] == [m.completion_time for m in b.metrics]

    def test_repeated_runs_on_one_instance_are_identical(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        """run() resets all state (including the routing RNG), so a simulator can
        be reused across traces — the basis of ThunderServe's simulator cache."""
        simulator = ServingSimulator(small_hetero_cluster, small_plan, model_30b,
                                     config=SimulatorConfig(seed=5))
        a = simulator.run(small_trace)
        b = simulator.run(small_trace)
        assert [m.completion_time for m in a.metrics] == [m.completion_time for m in b.metrics]
        assert a.makespan == b.makespan

    def test_replica_assignment_matches_plan_groups(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        prefill_ids = {g.group_id for g in small_plan.prefill_groups}
        decode_ids = {g.group_id for g in small_plan.decode_groups}
        for metrics in result.metrics:
            assert metrics.prefill_replica in prefill_ids
            assert metrics.decode_replica in decode_ids

    def test_makespan_at_least_trace_duration(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        assert result.makespan >= small_trace.duration

    def test_higher_rate_increases_latency(self, small_hetero_cluster, small_plan, model_30b, conversation_workload):
        light = generate_requests(conversation_workload, 1.0, num_requests=30, seed=1)
        heavy = generate_requests(conversation_workload, 12.0, num_requests=30, seed=1)
        sim = lambda t: ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(t)
        assert sim(heavy).mean(SLOType.E2E) > sim(light).mean(SLOType.E2E)

    def test_compressed_kv_transport_is_faster(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        from dataclasses import replace

        plan16 = replace(small_plan, kv_transport_bits=16)
        r4 = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        r16 = ServingSimulator(small_hetero_cluster, plan16, model_30b).run(small_trace)
        assert r4.summary()["mean_kv_transfer"] < r16.summary()["mean_kv_transfer"]

    def test_plan_without_decode_rejected(self, small_hetero_cluster, small_plan, model_30b):
        from repro.scheduling.deployment import DeploymentPlan

        prefill_only = DeploymentPlan(groups=tuple(small_plan.prefill_groups), model_name="x")
        with pytest.raises(SimulationError):
            ServingSimulator(small_hetero_cluster, prefill_only, model_30b)

    def test_max_sim_time_truncates(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        config = SimulatorConfig(max_sim_time=1.0)
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b, config=config).run(small_trace)
        assert result.num_finished < len(small_trace)


class TestColocatedSimulator:
    @pytest.fixture(scope="class")
    def colocated(self, inhouse_cluster, model_30b, conversation_workload):
        groups = [inhouse_cluster.gpu_ids[i : i + 2] for i in range(0, 8, 2)]
        plans = [
            deduce_parallel_plan(inhouse_cluster, g, Phase.DECODE, model_30b, conversation_workload)
            for g in groups
        ]
        return ColocatedSimulator(inhouse_cluster, plans, model_30b, seed=0)

    def test_all_requests_finish(self, colocated, small_trace):
        result = colocated.run(small_trace)
        assert result.num_finished == len(small_trace)

    def test_no_kv_transfer_time(self, colocated, small_trace):
        result = colocated.run(small_trace)
        assert result.summary()["mean_kv_transfer"] == pytest.approx(0.0)

    def test_same_replica_serves_both_phases(self, colocated, small_trace):
        result = colocated.run(small_trace)
        for metrics in result.metrics:
            assert metrics.prefill_replica == metrics.decode_replica

    def test_causality(self, colocated, small_trace):
        result = colocated.run(small_trace)
        for metrics in result.finished:
            assert metrics.first_token_time >= metrics.prefill_start
            assert metrics.completion_time >= metrics.first_token_time

    def test_requires_at_least_one_replica(self, inhouse_cluster, model_30b):
        with pytest.raises(SimulationError):
            ColocatedSimulator(inhouse_cluster, [], model_30b)

    def test_prefill_batching_honored(self, inhouse_cluster, model_30b, conversation_workload):
        """Regression: the co-located work loop batches prefills up to the cap.

        It used to hardcode one prefill per step boundary regardless of
        ``max_prefill_batch_requests``; under a prompt burst, batching must now
        shorten the makespan, and a cap of 1 must keep the legacy per-request
        behaviour exactly.
        """
        from repro.workload.spec import WorkloadSpec

        groups = [inhouse_cluster.gpu_ids[i : i + 2] for i in range(0, 8, 2)]
        plans = [
            deduce_parallel_plan(inhouse_cluster, g, Phase.DECODE, model_30b, conversation_workload)
            for g in groups
        ]
        # Short prompts sit below prefill's compute-saturation point, where
        # batching amortises the per-batch weight streaming (Figure 2): the
        # regime in which batched prefill measurably beats one-at-a-time.
        prompt_burst = WorkloadSpec(
            name="burst",
            median_input_length=128.0,
            median_output_length=16.0,
            input_sigma=0.3,
            output_sigma=0.4,
        )
        trace = generate_requests(prompt_burst, 30.0, num_requests=60, seed=4)

        def run(cap):
            sim = ColocatedSimulator(
                inhouse_cluster, plans, model_30b, seed=0, max_prefill_batch_requests=cap
            )
            return sim.run(trace)

        single = run(1)
        batched = run(8)
        assert single.num_finished == batched.num_finished == len(trace)
        # Batched prefill amortises the weight streaming over the burst.
        assert batched.makespan < single.makespan
        # cap=1 reproduces the legacy one-prefill-per-step behaviour bitwise.
        repeat = run(1)
        assert [m.completion_time for m in repeat.metrics] == [
            m.completion_time for m in single.metrics
        ]
        with pytest.raises(SimulationError):
            ColocatedSimulator(
                inhouse_cluster, plans, model_30b, max_prefill_batch_requests=0
            )

    def test_interference_penalty_slows_mixed_load(self, inhouse_cluster, model_30b, conversation_workload, small_trace):
        groups = [inhouse_cluster.gpu_ids[i : i + 2] for i in range(0, 8, 2)]
        plans = [
            deduce_parallel_plan(inhouse_cluster, g, Phase.DECODE, model_30b, conversation_workload)
            for g in groups
        ]
        no_penalty = ColocatedSimulator(inhouse_cluster, plans, model_30b, seed=0, interference_penalty=0.0)
        with_penalty = ColocatedSimulator(inhouse_cluster, plans, model_30b, seed=0, interference_penalty=0.5)
        fast = no_penalty.run(small_trace)
        slow = with_penalty.run(small_trace)
        assert slow.mean(SLOType.E2E) >= fast.mean(SLOType.E2E)

    def test_negative_interference_penalty_rejected(self, inhouse_cluster, model_30b, conversation_workload):
        groups = [inhouse_cluster.gpu_ids[:2]]
        plans = [deduce_parallel_plan(inhouse_cluster, groups[0], Phase.DECODE, model_30b, conversation_workload)]
        with pytest.raises(SimulationError):
            ColocatedSimulator(inhouse_cluster, plans, model_30b, interference_penalty=-0.1)

    def test_invalid_routing_weights_rejected(self, inhouse_cluster, model_30b, conversation_workload):
        groups = [inhouse_cluster.gpu_ids[:2]]
        plans = [deduce_parallel_plan(inhouse_cluster, groups[0], Phase.DECODE, model_30b, conversation_workload)]
        with pytest.raises(SimulationError):
            ColocatedSimulator(inhouse_cluster, plans, model_30b, routing_weights=[0.5, 0.5])


class TestSimulationResult:
    def test_slo_attainment_bounds(self, small_hetero_cluster, small_plan, model_30b, small_trace, conversation_workload):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        reference = a100_reference_latency(model_30b, conversation_workload)
        tight = result.slo_attainment(reference.slo_spec(0.1))
        loose = result.slo_attainment(reference.slo_spec(100.0))
        assert 0.0 <= tight <= loose <= 1.0

    def test_attainment_curve_monotone(self, small_hetero_cluster, small_plan, model_30b, small_trace, conversation_workload):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        reference = a100_reference_latency(model_30b, conversation_workload)
        curve = result.attainment_curve([1, 2, 4, 8, 16, 64], reference)
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_min_scale_for_attainment(self, small_hetero_cluster, small_plan, model_30b, small_trace, conversation_workload):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        reference = a100_reference_latency(model_30b, conversation_workload)
        scale = result.min_scale_for_attainment(0.5, reference)
        assert scale < float("inf")
        assert result.slo_attainment(reference.slo_spec(scale)) >= 0.5

    def test_throughput_positive(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        assert result.output_token_throughput > 0
        assert result.total_token_throughput > result.output_token_throughput
        assert result.request_throughput > 0

    def test_summary_on_empty_metrics(self):
        assert summarize_requests([])["num_finished"] == 0.0

    def test_percentiles_ordered(self, small_hetero_cluster, small_plan, model_30b, small_trace):
        result = ServingSimulator(small_hetero_cluster, small_plan, model_30b).run(small_trace)
        assert result.percentile(SLOType.E2E, 50) <= result.percentile(SLOType.E2E, 99)

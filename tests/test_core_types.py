"""Unit tests for the core value types (Phase, Request, RequestMetrics, SLOSpec)."""

import pytest

from repro.core.types import Phase, Request, RequestMetrics, SLOSpec, SLOType, iter_finished


class TestPhase:
    def test_other_flips_prefill_to_decode(self):
        assert Phase.PREFILL.other() is Phase.DECODE

    def test_other_flips_decode_to_prefill(self):
        assert Phase.DECODE.other() is Phase.PREFILL

    def test_phase_values_are_strings(self):
        assert Phase.PREFILL.value == "prefill"
        assert Phase.DECODE.value == "decode"

    def test_phase_constructible_from_string(self):
        assert Phase("prefill") is Phase.PREFILL


class TestRequest:
    def test_total_tokens(self):
        request = Request(request_id=0, arrival_time=0.0, input_length=100, output_length=20)
        assert request.total_tokens == 120

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=-1.0, input_length=10, output_length=1)

    def test_zero_input_rejected(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=0.0, input_length=0, output_length=1)

    def test_zero_output_rejected(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=0.0, input_length=1, output_length=0)

    def test_with_arrival_returns_shifted_copy(self):
        request = Request(request_id=3, arrival_time=1.0, input_length=10, output_length=2)
        shifted = request.with_arrival(5.0)
        assert shifted.arrival_time == 5.0
        assert shifted.request_id == 3
        assert request.arrival_time == 1.0

    def test_fresh_id_monotone(self):
        first = Request.fresh_id()
        second = Request.fresh_id()
        assert second > first


def _make_metrics(**overrides):
    request = Request(request_id=1, arrival_time=10.0, input_length=100, output_length=5)
    metrics = RequestMetrics(
        request=request,
        enqueue_time=10.0,
        prefill_start=10.5,
        first_token_time=11.0,
        kv_transfer_done=11.2,
        completion_time=12.0,
        finished=True,
    )
    for key, value in overrides.items():
        setattr(metrics, key, value)
    return metrics


class TestRequestMetrics:
    def test_ttft(self):
        assert _make_metrics().ttft == pytest.approx(1.0)

    def test_queue_time(self):
        assert _make_metrics().queue_time == pytest.approx(0.5)

    def test_prefill_time(self):
        assert _make_metrics().prefill_time == pytest.approx(0.5)

    def test_kv_transfer_time(self):
        assert _make_metrics().kv_transfer_time == pytest.approx(0.2)

    def test_decode_time(self):
        assert _make_metrics().decode_time == pytest.approx(0.8)

    def test_e2e_latency(self):
        assert _make_metrics().e2e_latency == pytest.approx(2.0)

    def test_tpot_averages_over_remaining_tokens(self):
        # 5 output tokens -> 4 decode-generated tokens over 1 second.
        assert _make_metrics().tpot == pytest.approx(0.25)

    def test_tpot_zero_for_single_token_output(self):
        request = Request(request_id=2, arrival_time=0.0, input_length=10, output_length=1)
        metrics = RequestMetrics(request=request, first_token_time=1.0, completion_time=1.0, finished=True)
        assert metrics.tpot == 0.0

    def test_value_for_dispatches_by_slo_type(self):
        metrics = _make_metrics()
        assert metrics.value_for(SLOType.TTFT) == metrics.ttft
        assert metrics.value_for(SLOType.TPOT) == metrics.tpot
        assert metrics.value_for(SLOType.E2E) == metrics.e2e_latency

    def test_ttft_never_exceeds_e2e(self):
        metrics = _make_metrics()
        assert metrics.ttft <= metrics.e2e_latency


class TestSLOSpec:
    def test_rejects_non_positive_deadlines(self):
        with pytest.raises(ValueError):
            SLOSpec(ttft=0.0, tpot=0.1, e2e=1.0)

    def test_from_scale_scales_linearly(self):
        small = SLOSpec.from_scale(1.0, reference_ttft=0.5, reference_tpot=0.05, mean_output_length=10)
        large = SLOSpec.from_scale(2.0, reference_ttft=0.5, reference_tpot=0.05, mean_output_length=10)
        assert large.ttft == pytest.approx(2 * small.ttft)
        assert large.tpot == pytest.approx(2 * small.tpot)
        assert large.e2e == pytest.approx(2 * small.e2e)

    def test_from_scale_e2e_covers_prefill_plus_decode(self):
        spec = SLOSpec.from_scale(1.0, reference_ttft=0.5, reference_tpot=0.05, mean_output_length=10)
        assert spec.e2e == pytest.approx(0.5 + 0.05 * 10)

    def test_scaled_factor_must_be_positive(self):
        spec = SLOSpec(ttft=1.0, tpot=0.1, e2e=2.0)
        with pytest.raises(ValueError):
            spec.scaled(0.0)

    def test_deadline_for(self):
        spec = SLOSpec(ttft=1.0, tpot=0.1, e2e=2.0)
        assert spec.deadline_for(SLOType.TTFT) == 1.0
        assert spec.deadline_for(SLOType.TPOT) == 0.1
        assert spec.deadline_for(SLOType.E2E) == 2.0

    def test_is_met_requires_finished(self):
        spec = SLOSpec(ttft=10.0, tpot=10.0, e2e=10.0)
        metrics = _make_metrics(finished=False)
        assert not spec.is_met(metrics, SLOType.E2E)

    def test_is_met_true_when_under_deadline(self):
        spec = SLOSpec(ttft=10.0, tpot=10.0, e2e=10.0)
        assert spec.is_met(_make_metrics(), SLOType.E2E)

    def test_is_met_false_when_over_deadline(self):
        spec = SLOSpec(ttft=0.1, tpot=0.001, e2e=0.1)
        assert not spec.is_met(_make_metrics(), SLOType.TTFT)


class TestIterFinished:
    def test_filters_unfinished(self):
        done = _make_metrics()
        pending = _make_metrics(finished=False)
        assert list(iter_finished([done, pending])) == [done]

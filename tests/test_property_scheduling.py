"""Property-based tests for scheduling invariants (partitions, moves, orchestration, paging)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Phase
from repro.hardware.cluster import make_cloud_cluster
from repro.kvcache.paged import BlockAllocationError, PagedKVCache
from repro.model.architecture import get_model_config
from repro.parallelism.partition import partition_layers, stage_max_layers
from repro.scheduling.neighbors import construct_neighbors
from repro.scheduling.orchestration import solve_orchestration
from repro.scheduling.solution import UpperLevelSolution

# Property/equivalence suites are exhaustive by design; CI runs them in the
# dedicated slow job (-m "slow or integration") to keep the fast matrix quick.
pytestmark = pytest.mark.slow



CLUSTER = make_cloud_cluster(seed=0)
MODEL_30B = get_model_config("llama-30b")
MODEL_13B = get_model_config("llama-13b")


# --------------------------------------------------------------------------- partitions
@given(
    num_a40=st.integers(min_value=1, max_value=4),
    num_a6000=st.integers(min_value=1, max_value=4),
    phase=st.sampled_from([Phase.PREFILL, Phase.DECODE]),
)
@settings(max_examples=40, deadline=None)
def test_partition_layers_invariants(num_a40, num_a6000, phase):
    """Layer splits always sum to the model layer count and respect memory caps."""
    a40 = [g.gpu_id for g in CLUSTER.gpus_of_type("A40")][:num_a40]
    a6000 = [g.gpu_id for g in CLUSTER.gpus_of_type("A6000")][:num_a6000]
    stages = [a40, a6000]
    caps = [stage_max_layers(CLUSTER, s, MODEL_13B) for s in stages]
    if sum(caps) < MODEL_13B.num_layers or min(caps) < 1:
        return  # infeasible group; partitioning is expected to raise elsewhere
    split = partition_layers(CLUSTER, stages, MODEL_13B, phase)
    assert sum(split) == MODEL_13B.num_layers
    assert all(1 <= s <= cap for s, cap in zip(split, caps))


# --------------------------------------------------------------------------- neighbour moves
@st.composite
def solutions(draw):
    """Random feasible-ish partitions of the 32 cloud GPUs into 4-GPU groups."""
    ids = list(CLUSTER.gpu_ids)
    num_groups = draw(st.sampled_from([4, 8]))
    group_size = len(ids) // num_groups
    phases = [draw(st.sampled_from([Phase.PREFILL, Phase.DECODE])) for _ in range(num_groups)]
    groups = [
        (ids[i * group_size : (i + 1) * group_size], phases[i]) for i in range(num_groups)
    ]
    return UpperLevelSolution.from_lists(groups)


@given(solution=solutions(), seed=st.integers(0, 1000), count=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_neighbors_preserve_gpu_partition(solution, seed, count):
    """Every neighbourhood move keeps the GPU set partitioned (no loss, no overlap)."""
    neighbors = construct_neighbors(solution, CLUSTER, MODEL_30B, num_neighbors=count, rng=seed)
    for neighbor in neighbors:
        all_ids = [g for group in neighbor.groups for g in group.gpu_ids]
        assert len(all_ids) == len(set(all_ids))
        assert set(all_ids) == set(solution.all_gpu_ids)


# --------------------------------------------------------------------------- orchestration
@given(
    m=st.integers(1, 5),
    n=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=50, deadline=None)
def test_orchestration_lp_produces_valid_routing(m, n, seed):
    rng = np.random.default_rng(seed)
    d = rng.uniform(0.0, 1.0, size=(m, n))
    prefill_caps = rng.uniform(0.1, 1.0, size=m)
    decode_caps = rng.uniform(0.1, 1.0, size=n)
    result = solve_orchestration(d, prefill_caps, decode_caps)
    # Routed mass respects capacities and never exceeds 1.
    assert result.z.min() >= -1e-9
    assert result.served_fraction <= 1.0 + 1e-6
    assert np.all(result.z.sum(axis=1) <= prefill_caps + 1e-6)
    assert np.all(result.z.sum(axis=0) <= decode_caps + 1e-6)
    # The recovered (X, Y) form proper distributions.
    assert result.x.sum() == pytest.approx(1.0)
    assert np.allclose(result.y.sum(axis=1), 1.0)
    # Objective is consistent and bounded by the served mass.
    assert result.objective == pytest.approx(float((result.z * d).sum()), abs=1e-9)
    assert result.objective <= result.served_fraction + 1e-9


@given(m=st.integers(1, 4), n=st.integers(1, 4), seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_orchestration_objective_never_below_uniform(m, n, seed):
    """The LP should never do worse than uniform routing under the same capacities."""
    rng = np.random.default_rng(seed)
    d = rng.uniform(0.0, 1.0, size=(m, n))
    result = solve_orchestration(d, [1.0] * m, [1.0] * n)
    uniform_objective = float((np.full((m, n), 1.0 / (m * n)) * d).sum())
    assert result.objective >= uniform_objective - 1e-9


# --------------------------------------------------------------------------- paged KV cache
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free", "append"]), st.integers(0, 5), st.integers(1, 200)),
        min_size=1,
        max_size=60,
    ),
    num_blocks=st.integers(1, 64),
    block_size=st.sampled_from([4, 16, 32]),
)
@settings(max_examples=50, deadline=None)
def test_paged_cache_accounting_invariants(ops, num_blocks, block_size):
    """Used blocks never exceed capacity or go negative under arbitrary operation mixes."""
    cache = PagedKVCache(num_blocks=num_blocks, block_size=block_size)
    live = set()
    for op, seq_id, tokens in ops:
        try:
            if op == "alloc" and seq_id not in live:
                cache.allocate(seq_id, tokens)
                live.add(seq_id)
            elif op == "free" and seq_id in live:
                cache.free(seq_id)
                live.discard(seq_id)
            elif op == "append" and seq_id in live:
                cache.append_token(seq_id)
        except BlockAllocationError:
            pass
        assert 0 <= cache.used_blocks <= cache.num_blocks
        assert cache.num_sequences == len(live)
    for seq_id in list(live):
        cache.free(seq_id)
    assert cache.used_blocks == 0

"""Unit tests for GPU specifications and the Table 1 catalog."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.gpu import GPU, GPU_CATALOG, GPUSpec, get_gpu_spec


class TestCatalog:
    def test_contains_all_paper_gpus(self):
        for name in ("A100", "A6000", "A5000", "A40", "3090Ti"):
            assert name in GPU_CATALOG

    def test_table1_values_a100(self):
        spec = GPU_CATALOG["A100"]
        assert spec.peak_fp16_tflops == 312.0
        assert spec.memory_bandwidth_gbps == 2000.0
        assert spec.memory_gb == 80.0
        assert spec.price_per_hour == pytest.approx(1.753)

    def test_table1_values_a40(self):
        spec = GPU_CATALOG["A40"]
        assert spec.peak_fp16_tflops == pytest.approx(149.7)
        assert spec.memory_gb == 48.0

    def test_table1_values_3090ti(self):
        spec = GPU_CATALOG["3090Ti"]
        assert spec.memory_bandwidth_gbps == pytest.approx(1008.0)
        assert spec.price_per_hour == pytest.approx(0.307)

    def test_lookup_case_insensitive(self):
        assert get_gpu_spec("a40") is GPU_CATALOG["A40"]

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_gpu_spec("H200")

    def test_a40_has_best_flops_per_dollar(self):
        best = max(GPU_CATALOG.values(), key=lambda s: s.flops_per_dollar)
        assert best.name == "A40"

    def test_3090ti_has_best_bandwidth_per_dollar(self):
        best = max(GPU_CATALOG.values(), key=lambda s: s.bandwidth_per_dollar)
        assert best.name == "3090Ti"


class TestGPUSpec:
    def test_unit_conversions(self):
        spec = GPU_CATALOG["A100"]
        assert spec.peak_fp16_flops == pytest.approx(312e12)
        assert spec.memory_bandwidth_bytes == pytest.approx(2000e9)
        assert spec.memory_bytes == pytest.approx(80e9)

    def test_ridge_point_positive(self):
        for spec in GPU_CATALOG.values():
            assert spec.ridge_point > 0

    def test_a40_more_compute_bound_friendly_than_3090ti(self):
        # Higher ridge point = needs more FLOPs per byte to saturate compute.
        assert GPU_CATALOG["A40"].ridge_point > GPU_CATALOG["3090Ti"].ridge_point

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(name="bad", peak_fp16_tflops=0, memory_bandwidth_gbps=1, memory_gb=1, price_per_hour=1)

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(name="bad", peak_fp16_tflops=1, memory_bandwidth_gbps=1, memory_gb=1, price_per_hour=-1)


class TestGPU:
    def test_type_name(self):
        gpu = GPU(gpu_id=0, spec=GPU_CATALOG["A40"], node_id=2)
        assert gpu.type_name == "A40"
        assert gpu.node_id == 2
        assert gpu.datacenter == 0

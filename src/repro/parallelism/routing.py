"""Pipeline communication routing (Appendix B, step 2).

When a serving group spans multiple nodes, consecutive pipeline stages exchange
activations over whatever link connects them, and in cloud environments those links
vary wildly.  The paper orders the pipeline stages with a bitmask dynamic program
that finds the stage ordering maximising the available bandwidth along the
pipeline path (equivalently, minimising the cross-stage communication cost).

We implement the DP as a Held-Karp-style path search over stage subsets that
maximises the *bottleneck* bandwidth of the path (the slowest hop dominates
pipeline communication cost) and breaks ties by the larger sum of hop bandwidths.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.hardware.network import NetworkModel


def stage_link_bandwidth(
    network: NetworkModel, stage_a: Sequence[int], stage_b: Sequence[int]
) -> float:
    """Effective bandwidth (GB/s) between two stages.

    Activations move point-to-point between the corresponding tensor-parallel
    ranks, so the effective inter-stage bandwidth is the mean of the best pairwise
    links — we use the mean bandwidth between the two GPU sets, which is exact for
    equal TP degrees on symmetric topologies and a good proxy otherwise.
    """
    return network.mean_bandwidth_between(stage_a, stage_b)


def bottleneck_bandwidth(
    network: NetworkModel, ordered_stages: Sequence[Sequence[int]]
) -> float:
    """Bandwidth of the slowest hop along an ordered pipeline (GB/s).

    A single-stage pipeline has no hops and returns ``inf``.
    """
    if len(ordered_stages) <= 1:
        return float("inf")
    hops = [
        stage_link_bandwidth(network, ordered_stages[i], ordered_stages[i + 1])
        for i in range(len(ordered_stages) - 1)
    ]
    return float(min(hops))


def optimal_stage_order(
    network: NetworkModel, stages: Sequence[Sequence[int]]
) -> List[int]:
    """Order pipeline stages to maximise the bottleneck inter-stage bandwidth.

    Parameters
    ----------
    network:
        The cluster network model.
    stages:
        Unordered list of stage GPU-id groups.

    Returns
    -------
    A permutation of ``range(len(stages))`` giving the optimal visiting order.
    For up to ~12 stages the exact bitmask DP is used; this is far beyond the
    pipeline depths that arise in practice (PP <= 8 in the paper).
    """
    n = len(stages)
    if n <= 1:
        return list(range(n))
    if n > 12:
        # The exact DP is exponential in the stage count; beyond 12 stages fall
        # back to a greedy nearest-neighbour ordering (such deep pipelines only
        # appear as transient tabu-search candidates, never in final plans).
        return _greedy_stage_order(network, stages)

    # Pairwise stage bandwidths.
    bw = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            b = stage_link_bandwidth(network, stages[i], stages[j])
            bw[i, j] = bw[j, i] = b

    # dp[(mask, last)] = (bottleneck, total) of the best path visiting `mask`,
    # ending at `last`.  We maximise bottleneck first, then total bandwidth.
    NEG = (-1.0, -1.0)
    size = 1 << n
    best: dict[tuple[int, int], tuple[float, float]] = {}
    parent: dict[tuple[int, int], int] = {}
    for i in range(n):
        best[(1 << i, i)] = (float("inf"), 0.0)

    for mask in range(size):
        for last in range(n):
            key = (mask, last)
            if key not in best:
                continue
            bottleneck, total = best[key]
            for nxt in range(n):
                if mask & (1 << nxt):
                    continue
                hop = bw[last, nxt]
                new_val = (min(bottleneck, hop), total + hop)
                new_key = (mask | (1 << nxt), nxt)
                if new_val > best.get(new_key, NEG):
                    best[new_key] = new_val
                    parent[new_key] = last

    full = size - 1
    end = max(range(n), key=lambda i: best.get((full, i), NEG))
    # Reconstruct the path.
    order = [end]
    mask = full
    while len(order) < n:
        prev = parent[(mask, order[-1])]
        mask ^= 1 << order[-1]
        order.append(prev)
    order.reverse()
    return order


def _greedy_stage_order(
    network: NetworkModel, stages: Sequence[Sequence[int]]
) -> List[int]:
    """Nearest-neighbour heuristic ordering used for very deep pipelines."""
    n = len(stages)
    remaining = set(range(1, n))
    order = [0]
    while remaining:
        last = order[-1]
        nxt = max(
            remaining,
            key=lambda j: stage_link_bandwidth(network, stages[last], stages[j]),
        )
        order.append(nxt)
        remaining.discard(nxt)
    return order


__all__ = ["stage_link_bandwidth", "bottleneck_bandwidth", "optimal_stage_order"]

"""Model-parallel configuration: TP/PP degrees, pipeline partitioning and routing.

* :mod:`repro.parallelism.config` — :class:`ParallelConfig` (TP × PP degrees),
  :class:`PipelineStage` and :class:`ReplicaPlan` (the concrete mapping of pipeline
  stages to GPU sets and layer ranges).
* :mod:`repro.parallelism.partition` — non-uniform pipeline layer partitioning that
  respects per-GPU memory limits and balances stage work across heterogeneous GPUs.
* :mod:`repro.parallelism.routing` — the bitmask dynamic program of Appendix B that
  orders pipeline stages to maximise the bottleneck inter-stage bandwidth.
* :mod:`repro.parallelism.enumeration` — Algorithm 2: enumerate (TP, PP) candidates
  for a serving group and pick the latency-optimal (prefill) or throughput-optimal
  (decode) plan.
"""

from repro.parallelism.config import ParallelConfig, PipelineStage, ReplicaPlan
from repro.parallelism.partition import partition_layers, stage_weight
from repro.parallelism.routing import optimal_stage_order, bottleneck_bandwidth
from repro.parallelism.enumeration import (
    enumerate_parallel_plans,
    deduce_parallel_plan,
    candidate_stage_groups,
)

__all__ = [
    "ParallelConfig",
    "PipelineStage",
    "ReplicaPlan",
    "partition_layers",
    "stage_weight",
    "optimal_stage_order",
    "bottleneck_bandwidth",
    "enumerate_parallel_plans",
    "deduce_parallel_plan",
    "candidate_stage_groups",
]

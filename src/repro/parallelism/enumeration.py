"""Algorithm 2: deduce the optimal parallel configuration for a serving group.

Given a serving group (a set of GPUs), the designated phase, the model and the
workload shape, Algorithm 2 of the paper enumerates candidate (TP, PP)
configurations under cloud-specific heuristics and keeps the best one:

1. *Tensor parallelism only within single-type GPUs* (and, in our substrate,
   within a single node) — cross-node links are far too slow for per-layer
   all-reduces.
2. *Pipeline communication routing* — stages are ordered by the bitmask DP of
   :mod:`repro.parallelism.routing` to maximise the bottleneck inter-stage
   bandwidth.
3. *Non-uniform pipeline layer partitioning* — layers are split in proportion to
   stage capacity subject to memory limits
   (:mod:`repro.parallelism.partition`).
4. *Phase-specific objective* — latency-optimal plans for prefill groups,
   throughput-optimal plans for decode groups.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import InsufficientMemoryError
from repro.core.types import Phase
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS, ReplicaCostModel
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.parallelism.config import ReplicaPlan
from repro.parallelism.partition import group_can_hold_model, partition_layers
from repro.parallelism.routing import optimal_stage_order
from repro.workload.spec import WorkloadSpec


#: Deepest pipeline the enumeration will consider.  Deeper pipelines only hurt
#: (every extra stage adds activation hand-offs over slow cloud links) and the
#: paper's discovered plans never exceed PP=4.
MAX_PIPELINE_STAGES = 8


@dataclass(frozen=True)
class PlanCandidate:
    """One evaluated parallel-configuration candidate."""

    plan: ReplicaPlan
    #: prefill latency (seconds) of the workload's mean prompt, batch size 1
    prefill_latency: float
    #: decode throughput (tokens/s) at the maximum feasible batch
    decode_throughput: float

    def objective(self, phase: Phase) -> float:
        """Scalar objective (always *maximise*): negative latency or raw throughput."""
        if phase is Phase.PREFILL:
            return -self.prefill_latency
        return self.decode_throughput


def candidate_stage_groups(
    cluster: Cluster, gpu_ids: Sequence[int], tp: int
) -> Optional[List[List[int]]]:
    """Partition a group into tensor-parallel stages of size ``tp``.

    Stages must be homogeneous in GPU type and contained in a single node when
    ``tp > 1`` (heuristic 1).  Returns ``None`` when no such partition uses every
    GPU of the group exactly once.
    """
    ids = list(gpu_ids)
    if tp < 1:
        raise ValueError("tp must be >= 1")
    if len(ids) % tp != 0:
        return None
    if tp == 1:
        return [[g] for g in ids]
    buckets: Dict[Tuple[int, str], List[int]] = defaultdict(list)
    for g in ids:
        gpu = cluster.gpu(g)
        buckets[(gpu.node_id, gpu.type_name)].append(g)
    stages: List[List[int]] = []
    for bucket in buckets.values():
        if len(bucket) % tp != 0:
            return None
        bucket = sorted(bucket)
        for i in range(0, len(bucket), tp):
            stages.append(bucket[i : i + tp])
    return stages


def _max_tp(cluster: Cluster, gpu_ids: Sequence[int]) -> int:
    """Largest TP degree allowed by heuristic 1 for this group."""
    buckets: Dict[Tuple[int, str], int] = defaultdict(int)
    for g in gpu_ids:
        gpu = cluster.gpu(g)
        buckets[(gpu.node_id, gpu.type_name)] += 1
    return min(buckets.values())


def enumerate_parallel_plans(
    cluster: Cluster,
    gpu_ids: Sequence[int],
    phase: Phase,
    model: ModelConfig,
    workload: WorkloadSpec,
    params: CostModelParams = DEFAULT_PARAMS,
) -> List[PlanCandidate]:
    """Enumerate and evaluate all feasible (TP, PP) plans for a serving group."""
    ids = sorted(gpu_ids)
    if not ids:
        raise ValueError("gpu_ids must be non-empty")
    candidates: List[PlanCandidate] = []
    if not group_can_hold_model(cluster, ids, model, kv_reserve_fraction=params.kv_reserve_fraction):
        return candidates

    input_length = max(1, int(round(workload.mean_input_length)))
    output_length = max(1, int(round(workload.mean_output_length)))
    context_length = input_length + output_length

    n = len(ids)
    max_tp = min(_max_tp(cluster, ids), n)
    for tp in range(1, max_tp + 1):
        if n % tp != 0:
            continue
        # Tensor parallelism shards attention heads, so the degree must divide the
        # head count (the same restriction Megatron-LM imposes).
        if model.num_heads % tp != 0:
            continue
        stages = candidate_stage_groups(cluster, ids, tp)
        if stages is None:
            continue
        pp = len(stages)
        if pp > model.num_layers or pp > MAX_PIPELINE_STAGES:
            continue
        # Route pipeline communication over the best stage order (heuristic 2).
        order = optimal_stage_order(cluster.network, stages)
        ordered = [stages[i] for i in order]
        try:
            layer_split = partition_layers(
                cluster, ordered, model, phase, kv_reserve_fraction=params.kv_reserve_fraction
            )
        except InsufficientMemoryError:
            continue
        plan = ReplicaPlan.from_stage_lists(ordered, layer_split)
        cost = ReplicaCostModel(cluster, plan, model, params)
        if not cost.fits_in_memory():
            continue
        prefill_latency = cost.prefill_latency(input_length, batch_size=1)
        decode_throughput = cost.decode_throughput(context_length)
        candidates.append(
            PlanCandidate(
                plan=plan,
                prefill_latency=prefill_latency,
                decode_throughput=decode_throughput,
            )
        )
    return candidates


def deduce_parallel_plan(
    cluster: Cluster,
    gpu_ids: Sequence[int],
    phase: Phase,
    model: ModelConfig,
    workload: WorkloadSpec,
    params: CostModelParams = DEFAULT_PARAMS,
) -> ReplicaPlan:
    """Pick the phase-optimal parallel plan for a serving group (Algorithm 2).

    Prefill groups receive the latency-optimal plan; decode groups receive the
    throughput-optimal plan.  Raises :class:`InsufficientMemoryError` when the
    group cannot hold the model under any enumerated configuration.
    """
    candidates = enumerate_parallel_plans(cluster, gpu_ids, phase, model, workload, params)
    if not candidates:
        raise InsufficientMemoryError(
            f"group {sorted(gpu_ids)} cannot serve {model.name} under any parallel configuration"
        )
    best = max(candidates, key=lambda c: c.objective(phase))
    return best.plan


__all__ = [
    "PlanCandidate",
    "candidate_stage_groups",
    "enumerate_parallel_plans",
    "deduce_parallel_plan",
]

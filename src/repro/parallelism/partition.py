"""Non-uniform pipeline layer partitioning.

Cloud serving groups can mix GPU types across pipeline stages (e.g. a stage of two
A5000s feeding a stage of two 3090Tis).  Splitting the transformer layers evenly
would leave the weaker stage as the pipeline bottleneck or overflow its memory, so
the paper partitions layers *in proportion to each stage's capacity while never
exceeding any stage's memory limit* (Appendix B, step 3).  This module implements
that partitioner.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.exceptions import InsufficientMemoryError
from repro.core.types import Phase
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.model.memory import parameter_bytes, weight_bytes_per_layer


def stage_weight(cluster: Cluster, gpu_ids: Sequence[int], phase: Phase) -> float:
    """Capacity weight of a tensor-parallel stage for the given phase.

    Prefill stages are compute bound, so their weight is the summed peak FLOPS of
    the stage's GPUs; decode stages are memory-bandwidth bound, so their weight is
    the summed memory bandwidth.  A small geometric blend of the other resource
    keeps the weights smooth when a stage is unusually unbalanced.
    """
    flops = sum(cluster.gpu(g).spec.peak_fp16_flops for g in gpu_ids)
    bandwidth = sum(cluster.gpu(g).spec.memory_bandwidth_bytes for g in gpu_ids)
    if phase is Phase.PREFILL:
        primary, secondary = flops, bandwidth
    else:
        primary, secondary = bandwidth, flops
    return float(primary ** 0.8 * secondary ** 0.2)


def stage_max_layers(
    cluster: Cluster,
    gpu_ids: Sequence[int],
    model: ModelConfig,
    kv_reserve_fraction: float = 0.3,
) -> int:
    """Maximum number of layers a stage can host without exhausting its memory.

    The stage must hold its shard of the layer weights plus a KV-cache /
    activation reserve of ``kv_reserve_fraction`` of the stage memory.  Embedding
    and LM-head parameters are charged to the first/last stages by the caller via
    the overall feasibility check; per-layer accounting is sufficient here.
    """
    if not 0 <= kv_reserve_fraction < 1:
        raise ValueError("kv_reserve_fraction must be in [0, 1)")
    total_memory = sum(cluster.gpu(g).spec.memory_bytes for g in gpu_ids)
    usable = total_memory * (1.0 - kv_reserve_fraction)
    per_layer = weight_bytes_per_layer(model)
    return int(usable // per_layer)


def partition_layers(
    cluster: Cluster,
    stage_gpu_ids: Sequence[Sequence[int]],
    model: ModelConfig,
    phase: Phase,
    kv_reserve_fraction: float = 0.3,
) -> List[int]:
    """Split ``model.num_layers`` layers across stages proportionally to capacity.

    Returns a per-stage layer count summing exactly to the model's layer count,
    with every stage hosting at least one layer and no stage exceeding its memory
    capacity.  Raises :class:`InsufficientMemoryError` when no such split exists.
    """
    num_stages = len(stage_gpu_ids)
    if num_stages < 1:
        raise ValueError("at least one stage is required")
    num_layers = model.num_layers
    if num_stages > num_layers:
        raise InsufficientMemoryError(
            f"cannot split {num_layers} layers across {num_stages} stages"
        )

    caps = np.array(
        [stage_max_layers(cluster, gpus, model, kv_reserve_fraction) for gpus in stage_gpu_ids],
        dtype=int,
    )
    if np.any(caps < 1):
        raise InsufficientMemoryError("a pipeline stage cannot hold even a single layer")
    if int(caps.sum()) < num_layers:
        raise InsufficientMemoryError(
            f"group cannot hold the model: capacity {int(caps.sum())} layers "
            f"< required {num_layers} layers"
        )

    weights = np.array(
        [stage_weight(cluster, gpus, phase) for gpus in stage_gpu_ids], dtype=float
    )
    weights = np.maximum(weights, 1e-12)
    # Proportional allocation, then round while keeping the exact total using the
    # largest-remainder method.
    raw = weights / weights.sum() * num_layers
    split = np.floor(raw).astype(int)
    split = np.maximum(split, 1)
    # Fix the total: add remaining layers to the stages with the largest remainder
    # (or remove from the smallest-remainder stages if we overshot the minimum of 1).
    remainder = raw - np.floor(raw)
    while split.sum() < num_layers:
        order = np.argsort(-remainder)
        for idx in order:
            if split[idx] < caps[idx]:
                split[idx] += 1
                break
        else:  # pragma: no cover - guarded by the capacity pre-check
            raise InsufficientMemoryError("unable to place all layers within stage capacities")
        remainder[idx] = -1.0
        if np.all(remainder < 0):
            remainder = raw - np.floor(raw)
    while split.sum() > num_layers:
        order = np.argsort(remainder)
        for idx in order:
            if split[idx] > 1:
                split[idx] -= 1
                break
        else:  # pragma: no cover - cannot happen when num_stages <= num_layers
            raise InsufficientMemoryError("unable to reduce layer split to the model size")

    # Enforce per-stage memory caps by shifting overflow to stages with slack.
    split = _enforce_caps(split, caps, num_layers)
    return [int(x) for x in split]


def _enforce_caps(split: np.ndarray, caps: np.ndarray, num_layers: int) -> np.ndarray:
    """Move layers from over-capacity stages to stages with slack."""
    split = split.copy()
    for _ in range(10 * len(split)):
        over = np.where(split > caps)[0]
        if len(over) == 0:
            break
        src = over[0]
        slack = np.where(split < caps)[0]
        slack = [s for s in slack if s != src]
        if not slack:
            raise InsufficientMemoryError("no stage has slack to absorb overflow layers")
        # Prefer the stage with the most remaining capacity.
        dst = max(slack, key=lambda s: caps[s] - split[s])
        move = min(split[src] - caps[src], caps[dst] - split[dst])
        move = max(1, int(move))
        split[src] -= move
        split[dst] += move
    if split.sum() != num_layers or np.any(split > caps) or np.any(split < 1):
        raise InsufficientMemoryError("failed to find a feasible pipeline layer partition")
    return split


def group_can_hold_model(
    cluster: Cluster,
    gpu_ids: Sequence[int],
    model: ModelConfig,
    kv_reserve_fraction: float = 0.3,
) -> bool:
    """Early feasibility check used by the tabu search (§3.2).

    True when the *total* memory of the group (minus the KV/activation reserve)
    can hold one full copy of the model parameters.
    """
    total_memory = sum(cluster.gpu(g).spec.memory_bytes for g in gpu_ids)
    usable = total_memory * (1.0 - kv_reserve_fraction)
    return usable >= parameter_bytes(model)


__all__ = [
    "stage_weight",
    "stage_max_layers",
    "partition_layers",
    "group_can_hold_model",
]

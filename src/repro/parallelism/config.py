"""Parallel configuration types.

A *parallel configuration* is the pair (TP, PP) of tensor- and pipeline-parallel
degrees (the notation the paper uses in Table 3, e.g. ``TP=2, PP=2``).  A concrete
deployment additionally needs to know which GPUs form each pipeline stage and how
many transformer layers each stage hosts; that is a :class:`ReplicaPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.exceptions import ConfigurationError, InvalidPlanError


@dataclass(frozen=True)
class ParallelConfig:
    """Tensor-parallel × pipeline-parallel degrees for one model replica."""

    tp: int
    pp: int

    def __post_init__(self) -> None:
        if self.tp < 1:
            raise ConfigurationError(f"tp must be >= 1, got {self.tp}")
        if self.pp < 1:
            raise ConfigurationError(f"pp must be >= 1, got {self.pp}")

    @property
    def num_gpus(self) -> int:
        """Total GPUs used by the replica (``tp * pp``)."""
        return self.tp * self.pp

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(TP={self.tp}, PP={self.pp})"


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a tensor-parallel group of GPUs hosting some layers.

    Attributes
    ----------
    gpu_ids:
        Global ids of the GPUs forming the stage's tensor-parallel group.
    num_layers:
        Number of transformer layers assigned to the stage (non-uniform
        partitioning assigns more layers to more capable stages).
    """

    gpu_ids: tuple[int, ...]
    num_layers: int

    def __post_init__(self) -> None:
        if not self.gpu_ids:
            raise InvalidPlanError("a pipeline stage must contain at least one GPU")
        if len(set(self.gpu_ids)) != len(self.gpu_ids):
            raise InvalidPlanError("a pipeline stage must not repeat GPUs")
        if self.num_layers < 1:
            raise InvalidPlanError(f"a pipeline stage must host >= 1 layer, got {self.num_layers}")

    @property
    def tp(self) -> int:
        """Tensor-parallel degree of the stage."""
        return len(self.gpu_ids)


@dataclass(frozen=True)
class ReplicaPlan:
    """Concrete parallel execution plan of one model replica.

    Stages are listed in pipeline order; every stage uses the same tensor-parallel
    degree (as produced by Algorithm 2), although the class itself only requires a
    consistent total layer count.
    """

    stages: tuple[PipelineStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise InvalidPlanError("a replica plan must contain at least one stage")
        all_gpus = [g for stage in self.stages for g in stage.gpu_ids]
        if len(set(all_gpus)) != len(all_gpus):
            raise InvalidPlanError("a GPU appears in more than one pipeline stage")

    @classmethod
    def from_stage_lists(
        cls, stage_gpu_ids: Sequence[Sequence[int]], layer_split: Sequence[int]
    ) -> "ReplicaPlan":
        """Build a plan from parallel lists of stage GPU ids and layer counts."""
        if len(stage_gpu_ids) != len(layer_split):
            raise InvalidPlanError("stage_gpu_ids and layer_split must have equal length")
        stages = tuple(
            PipelineStage(gpu_ids=tuple(gpus), num_layers=int(layers))
            for gpus, layers in zip(stage_gpu_ids, layer_split)
        )
        return cls(stages=stages)

    # ------------------------------------------------------------------ accessors
    @property
    def pp(self) -> int:
        """Pipeline-parallel degree (number of stages)."""
        return len(self.stages)

    @property
    def tp(self) -> int:
        """Tensor-parallel degree (of the first stage; uniform in generated plans)."""
        return self.stages[0].tp

    @property
    def parallel_config(self) -> ParallelConfig:
        """The (TP, PP) summary of this plan."""
        return ParallelConfig(tp=self.tp, pp=self.pp)

    @property
    def gpu_ids(self) -> List[int]:
        """All GPU ids used by the replica, in stage order."""
        return [g for stage in self.stages for g in stage.gpu_ids]

    @property
    def num_gpus(self) -> int:
        """Total number of GPUs used by the replica."""
        return len(self.gpu_ids)

    @property
    def total_layers(self) -> int:
        """Total number of transformer layers across stages."""
        return sum(stage.num_layers for stage in self.stages)

    @property
    def layer_split(self) -> List[int]:
        """Per-stage layer counts."""
        return [stage.num_layers for stage in self.stages]

    def describe(self) -> str:
        """Short human-readable description, e.g. ``TP=2, PP=2, layers=[30, 30]``."""
        return f"TP={self.tp}, PP={self.pp}, layers={self.layer_split}"


__all__ = ["ParallelConfig", "PipelineStage", "ReplicaPlan"]

"""Cluster fault state: fold fault events into a degraded cluster view.

:class:`ClusterFaultState` is the pure state machine between a fault schedule
and the serving system.  It holds the *pristine* cluster (full roster, healthy
network) and tracks three orthogonal degradations:

* the set of removed GPU ids (capacity loss / recovery),
* the current link scaling (absolute multipliers vs. the pristine network),
* per-GPU straggler slowdowns.

Applying an event is always safe: capacity loss only removes GPUs that are
currently alive, recovery only revives GPUs that are currently removed, and
the delta that actually took effect is reported back as an
:class:`AppliedFault` — so interleaved or overlapping fail/recover sequences
(two fault processes striking the same GPU, a replayed schedule applied
twice) can never double-remove a GPU or resurrect one that was never lost.
Removing the last alive GPU does not raise: the state enters *outage*
(:attr:`ClusterFaultState.outage` true, :meth:`ClusterFaultState.current_cluster`
returns ``None``) and leaves it when capacity recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hardware.cluster import Cluster
from repro.faults.taxonomy import CAPACITY_LOSS_KINDS, FaultEvent, FaultKind


@dataclass(frozen=True)
class AppliedFault:
    """What one fault event actually changed when folded into the state."""

    event: FaultEvent
    #: GPU ids this application newly removed (alive -> removed)
    removed: Tuple[int, ...] = ()
    #: GPU ids this application newly revived (removed -> alive)
    revived: Tuple[int, ...] = ()
    #: whether the network scaling changed
    network_changed: bool = False
    #: whether any straggler slowdown changed
    slowdown_changed: bool = False

    @property
    def noop(self) -> bool:
        """True when the event changed nothing (e.g. victims already gone)."""
        return (
            not self.removed
            and not self.revived
            and not self.network_changed
            and not self.slowdown_changed
        )


class ClusterFaultState:
    """Tracks the degraded view of a cluster under an applied fault sequence.

    Parameters
    ----------
    cluster:
        The pristine cluster (full capacity, healthy network).  Never mutated;
        degraded views are derived from it on demand so repeated degradation
        and repair can never accumulate float drift.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.pristine = cluster
        self.removed: Set[int] = set()
        self.bandwidth_scale: float = 1.0
        self.latency_scale: float = 1.0
        self.slowdowns: Dict[int, float] = {}
        self.applied: List[AppliedFault] = []

    # ------------------------------------------------------------------ views
    @property
    def alive_gpu_ids(self) -> List[int]:
        """Sorted ids of GPUs currently alive under the applied faults."""
        return sorted(set(self.pristine.gpu_ids) - self.removed)

    @property
    def outage(self) -> bool:
        """True when every GPU is removed (total loss — nothing can serve)."""
        return len(self.removed) >= self.pristine.num_gpus

    @property
    def degraded(self) -> bool:
        """True when any fault is currently active."""
        return (
            bool(self.removed)
            or bool(self.slowdowns)
            or self.bandwidth_scale != 1.0
            or self.latency_scale != 1.0
        )

    def active_slowdowns(self) -> Dict[int, float]:
        """Slowdowns of currently-alive GPUs (removed stragglers are moot)."""
        alive = set(self.alive_gpu_ids)
        return {g: s for g, s in self.slowdowns.items() if g in alive}

    def current_cluster(self) -> Optional[Cluster]:
        """Return the degraded cluster view, or ``None`` during a total outage."""
        if self.outage:
            return None
        cluster = self.pristine
        if self.removed:
            cluster = cluster.without_gpus(sorted(self.removed))
        if self.bandwidth_scale != 1.0 or self.latency_scale != 1.0:
            degraded_net = self.pristine.network.scaled(
                bandwidth_scale=self.bandwidth_scale,
                latency_scale=self.latency_scale,
            )
            cluster = cluster.with_network(degraded_net)
        return cluster

    # ------------------------------------------------------------------ apply
    def apply(self, event: FaultEvent) -> AppliedFault:
        """Fold one event into the state and return the delta that took effect."""
        kind = event.kind
        roster = set(self.pristine.gpu_ids)
        if kind in CAPACITY_LOSS_KINDS:
            # Intersect with the roster first: an id that was never part of
            # the cluster must not count towards the outage threshold (and
            # must never become revivable later).
            victims = tuple(sorted((set(event.gpu_ids) & roster) - self.removed))
            self.removed.update(victims)
            applied = AppliedFault(event=event, removed=victims)
        elif kind is FaultKind.RECOVERY:
            revived = tuple(sorted(set(event.gpu_ids) & self.removed))
            self.removed.difference_update(revived)
            applied = AppliedFault(event=event, revived=revived)
        elif kind is FaultKind.LINK_DEGRADATION:
            changed = (
                event.bandwidth_scale != self.bandwidth_scale
                or event.latency_scale != self.latency_scale
            )
            self.bandwidth_scale = event.bandwidth_scale
            self.latency_scale = event.latency_scale
            applied = AppliedFault(event=event, network_changed=changed)
        elif kind is FaultKind.LINK_RECOVERY:
            changed = self.bandwidth_scale != 1.0 or self.latency_scale != 1.0
            self.bandwidth_scale = 1.0
            self.latency_scale = 1.0
            applied = AppliedFault(event=event, network_changed=changed)
        elif kind is FaultKind.STRAGGLER:
            changed = False
            for g in sorted(set(event.gpu_ids) & roster):
                if self.slowdowns.get(g) != event.slowdown:
                    self.slowdowns[g] = event.slowdown
                    changed = True
            applied = AppliedFault(event=event, slowdown_changed=changed)
        elif kind is FaultKind.STRAGGLER_RECOVERY:
            targets = event.gpu_ids or tuple(self.slowdowns)
            recovered = [g for g in targets if g in self.slowdowns]
            for g in recovered:
                del self.slowdowns[g]
            applied = AppliedFault(event=event, slowdown_changed=bool(recovered))
        else:  # pragma: no cover - FaultKind is closed
            raise ValueError(f"unknown fault kind {kind!r}")
        self.applied.append(applied)
        return applied

    def apply_all(self, events) -> List[AppliedFault]:
        """Apply a sequence of events in order; return the per-event deltas."""
        return [self.apply(e) for e in events]


__all__ = ["ClusterFaultState", "AppliedFault"]

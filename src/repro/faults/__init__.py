"""Fault injection: typed fault taxonomy, seeded injector, cluster fault state.

The paper's robustness story (Fig. 11, Table 4) is about the full failure
lifecycle — degrade, detect, replan, recover — not just one-way GPU loss.
This package models that lifecycle:

* :mod:`repro.faults.taxonomy` — the typed fault vocabulary
  (:class:`FaultKind`, :class:`FaultEvent`, :class:`FaultSchedule`):
  GPU/spot preemption, whole-node crash, capacity recovery/rejoin,
  network-link degradation and per-replica straggler slowdown, with
  construction-time validation against a scenario duration and a cluster.
* :mod:`repro.faults.injector` — :class:`FaultProcess` /
  :class:`FaultInjector`: seeded stochastic fault processes (per-class
  MTBF/MTTR alternating renewal) compiled into deterministic, replayable
  :class:`FaultSchedule` objects.
* :mod:`repro.faults.state` — :class:`ClusterFaultState`: the pure state
  machine that folds fault events into a degraded cluster view (removed GPU
  set, link scaling, straggler slowdowns, total-loss outage detection)
  without ever double-removing or resurrecting unknown GPUs.

The live serving loop (:class:`~repro.serving.live.LiveServer`) applies
compiled schedules between windows; see ``docs/architecture.md`` for the
end-to-end wiring.
"""

from repro.faults.injector import FaultInjector, FaultProcess
from repro.faults.state import AppliedFault, ClusterFaultState
from repro.faults.taxonomy import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "FaultProcess",
    "FaultInjector",
    "ClusterFaultState",
    "AppliedFault",
]

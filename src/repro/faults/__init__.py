"""Fault injection: typed fault taxonomy, seeded injector, cluster fault state.

The paper's robustness story (Fig. 11, Table 4) is about the full failure
lifecycle — degrade, detect, replan, recover — not just one-way GPU loss.
This package models that lifecycle:

* :mod:`repro.faults.taxonomy` — the typed fault vocabulary
  (:class:`FaultKind`, :class:`FaultEvent`, :class:`FaultSchedule`):
  GPU/spot preemption, whole-node crash, capacity recovery/rejoin,
  network-link degradation and per-replica straggler slowdown, with
  construction-time validation against a scenario duration and a cluster.
* :mod:`repro.faults.injector` — :class:`FaultProcess` /
  :class:`FaultInjector`: seeded stochastic fault processes (per-class
  MTBF/MTTR alternating renewal) compiled into deterministic, replayable
  :class:`FaultSchedule` objects.
* :mod:`repro.faults.state` — :class:`ClusterFaultState`: the pure state
  machine that folds fault events into a degraded cluster view (removed GPU
  set, link scaling, straggler slowdowns, total-loss outage detection)
  without ever double-removing or resurrecting unknown GPUs.
* :mod:`repro.faults.timeline` — :class:`ReplicaFaultEvent` /
  :class:`FaultTimeline` / :func:`compile_fault_timeline`: GPU-level capacity
  events compiled into replica-level death/revival timelines the simulation
  engines apply *inside* a run, at the exact fault instant.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`: bounded attempts,
  exponential backoff with deterministic per-request jitter, and optional
  per-request deadlines governing the typed disposition of in-flight work.

The live serving loop (:class:`~repro.serving.live.LiveServer`) compiles the
intra-window slice of its schedule into a timeline handed to the engine and
keeps folding cluster-level state (links, stragglers, replanning) between
windows; see ``docs/architecture.md`` for the end-to-end wiring.
"""

from repro.faults.injector import FaultInjector, FaultProcess
from repro.faults.retry import RetryPolicy, fault_uniform
from repro.faults.state import AppliedFault, ClusterFaultState
from repro.faults.taxonomy import FaultEvent, FaultKind, FaultSchedule
from repro.faults.timeline import (
    FaultTimeline,
    ReplicaFaultEvent,
    compile_fault_timeline,
    timeline_from_windows,
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "FaultProcess",
    "FaultInjector",
    "ClusterFaultState",
    "AppliedFault",
    "RetryPolicy",
    "fault_uniform",
    "FaultTimeline",
    "ReplicaFaultEvent",
    "compile_fault_timeline",
    "timeline_from_windows",
]

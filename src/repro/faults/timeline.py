"""Compiled replica-level fault timelines consumed by the simulation engines.

A :class:`~repro.faults.taxonomy.FaultSchedule` speaks in GPU ids; the
simulator speaks in serving-group (replica) ids.  :func:`compile_fault_timeline`
folds the capacity events of a schedule against a
:class:`~repro.scheduling.deployment.DeploymentPlan` and emits a
:class:`FaultTimeline` — the replica deaths and revivals the engines apply
*inside* a run, at the exact fault instant, instead of slicing the trace into
windows around it:

* a serving group **dies** the moment any of its GPUs is removed (tensor/
  pipeline shards are not independently useful), and every in-flight request
  on it gets a typed disposition under the run's
  :class:`~repro.faults.retry.RetryPolicy`;
* it **revives** fresh (empty queues, reset KV cache) once all of its GPUs are
  back — partial recoveries keep it dead.

Link-degradation and straggler events have no replica-death semantics and are
ignored here; the serving layer continues to price them through cluster and
slowdown state between windows.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.types import Phase
from repro.faults.taxonomy import CAPACITY_LOSS_KINDS, FaultKind, FaultSchedule
from repro.scheduling.deployment import DeploymentPlan


@dataclass(frozen=True)
class ReplicaFaultEvent:
    """Replica deaths and revivals taking effect at one simulation instant.

    Group ids are sorted tuples; the same group never appears in both the dead
    and revived list of one event.  At the instant ``time`` the engines apply
    deaths first (disposing every in-flight request on a dead replica), then
    revivals — an event is allowed to carry both.
    """

    time: float
    dead_prefill: Tuple[int, ...] = ()
    dead_decode: Tuple[int, ...] = ()
    revived_prefill: Tuple[int, ...] = ()
    revived_decode: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        for name in ("dead_prefill", "dead_decode", "revived_prefill", "revived_decode"):
            ids = getattr(self, name)
            object.__setattr__(self, name, tuple(sorted(int(g) for g in ids)))
        if set(self.dead_prefill) & set(self.revived_prefill) or set(
            self.dead_decode
        ) & set(self.revived_decode):
            raise ValueError("a replica cannot die and revive in the same event")

    @property
    def noop(self) -> bool:
        """Whether the event changes nothing (no deaths, no revivals)."""
        return not (
            self.dead_prefill
            or self.dead_decode
            or self.revived_prefill
            or self.revived_decode
        )


@dataclass(frozen=True)
class FaultTimeline:
    """Time-ordered replica fault events for one simulation run.

    The engines treat the timeline as ground truth: at each event's instant —
    fault events win exact-time ties against simulation events — the listed
    replicas die or revive and in-flight work is disposed.  Events are sorted
    by time at construction; no-op events are dropped.
    """

    events: Tuple[ReplicaFaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        kept = tuple(
            sorted((e for e in self.events if not e.noop), key=lambda e: e.time)
        )
        times = [e.time for e in kept]
        if len(set(times)) != len(times):
            raise ValueError("fault timeline events must have distinct times")
        object.__setattr__(self, "events", kept)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def signature(self) -> int:
        """CRC-32 fingerprint for replay verification and telemetry."""
        parts = []
        for e in self.events:
            parts.append(
                f"{e.time!r}|{e.dead_prefill}|{e.dead_decode}"
                f"|{e.revived_prefill}|{e.revived_decode}"
            )
        return zlib.crc32(";".join(parts).encode()) & 0xFFFFFFFF


def _group_phases(plan: DeploymentPlan) -> Dict[int, Phase]:
    phases: Dict[int, Phase] = {}
    for group in plan.prefill_groups:
        phases[group.group_id] = Phase.PREFILL
    for group in plan.decode_groups:
        phases[group.group_id] = Phase.DECODE
    return phases


def compile_fault_timeline(
    schedule: FaultSchedule, plan: DeploymentPlan
) -> FaultTimeline:
    """Compile a GPU-level fault schedule into a replica-level timeline.

    Folds the schedule's capacity events (preemptions, node crashes,
    recoveries) over the plan's serving groups and records, per fault instant,
    which groups transition dead or alive.  Non-capacity kinds (link
    degradation, stragglers) are skipped.  Same-time events fold together
    into a single :class:`ReplicaFaultEvent`.
    """
    phases = _group_phases(plan)
    gpu_sets: Dict[int, FrozenSet[int]] = {
        g.group_id: frozenset(g.gpu_ids) for g in plan.groups
    }
    removed: set = set()
    dead: set = set()
    events: List[ReplicaFaultEvent] = []
    schedule_events = [
        e
        for e in schedule.events
        if e.kind in CAPACITY_LOSS_KINDS or e.kind is FaultKind.RECOVERY
    ]
    i = 0
    while i < len(schedule_events):
        t = schedule_events[i].time
        while i < len(schedule_events) and schedule_events[i].time == t:
            event = schedule_events[i]
            if event.kind is FaultKind.RECOVERY:
                removed -= set(event.gpu_ids)
            else:
                removed |= set(event.gpu_ids)
            i += 1
        now_dead = {gid for gid, gpus in gpu_sets.items() if gpus & removed}
        died = sorted(now_dead - dead)
        revived = sorted(dead - now_dead)
        dead = now_dead
        if not died and not revived:
            continue
        events.append(
            ReplicaFaultEvent(
                time=float(t),
                dead_prefill=tuple(g for g in died if phases[g] is Phase.PREFILL),
                dead_decode=tuple(g for g in died if phases[g] is Phase.DECODE),
                revived_prefill=tuple(g for g in revived if phases[g] is Phase.PREFILL),
                revived_decode=tuple(g for g in revived if phases[g] is Phase.DECODE),
            )
        )
    return FaultTimeline(events=tuple(events))


def timeline_from_windows(
    events: Sequence[ReplicaFaultEvent],
) -> FaultTimeline:
    """Build a timeline directly from replica events (tests, hand-built storms)."""
    return FaultTimeline(events=tuple(events))


__all__ = [
    "ReplicaFaultEvent",
    "FaultTimeline",
    "compile_fault_timeline",
    "timeline_from_windows",
]

"""Seeded fault injector: stochastic fault processes compiled to schedules.

A :class:`FaultProcess` describes one class of recurring fault as an
alternating renewal process — exponential time-between-failures (MTBF) and
exponential time-to-repair (MTTR).  :class:`FaultInjector` compiles a set of
processes against a concrete cluster and horizon into a deterministic
:class:`~repro.faults.taxonomy.FaultSchedule`:

* every process draws from its own child RNG, derived from the injector seed
  and the process identity via a stable CRC — so adding or re-ordering
  processes never perturbs another process's stream, and the same seed always
  yields a bitwise-identical schedule;
* capacity faults pin their victim GPUs at compile time (drawn from the
  process's own alive-view of the cluster), so replaying the schedule is pure
  bookkeeping with no sampling left at serve time;
* each failure is paired with a recovery event at ``t + MTTR`` draw when the
  repair lands inside the horizon; otherwise the fault persists to the end
  (a preemption that outlives the trace).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.core.exceptions import ConfigurationError
from repro.core.rng import ensure_rng
from repro.hardware.cluster import Cluster
from repro.faults.taxonomy import FaultEvent, FaultKind, FaultSchedule

#: fault kinds a process may emit (recovery kinds are generated automatically)
PROCESS_KINDS = (
    FaultKind.GPU_PREEMPTION,
    FaultKind.NODE_CRASH,
    FaultKind.LINK_DEGRADATION,
    FaultKind.STRAGGLER,
)

#: the recovery kind paired with each failure kind
RECOVERY_OF = {
    FaultKind.GPU_PREEMPTION: FaultKind.RECOVERY,
    FaultKind.NODE_CRASH: FaultKind.RECOVERY,
    FaultKind.LINK_DEGRADATION: FaultKind.LINK_RECOVERY,
    FaultKind.STRAGGLER: FaultKind.STRAGGLER_RECOVERY,
}


@dataclass(frozen=True)
class FaultProcess:
    """One recurring fault class: an MTBF/MTTR alternating renewal process.

    Parameters
    ----------
    kind:
        Failure kind the process emits (one of :data:`PROCESS_KINDS`); the
        paired recovery kind is implied.
    mtbf_s:
        Mean time between failures (seconds) — the exponential mean of the
        healthy interval before each failure.
    mttr_s:
        Mean time to repair (seconds) — the exponential mean of the degraded
        interval.  ``0`` disables recovery: each failure persists forever
        (one-way spot preemption).
    num_gpus:
        Victims per :attr:`~repro.faults.taxonomy.FaultKind.GPU_PREEMPTION` /
        stragglers per :attr:`~repro.faults.taxonomy.FaultKind.STRAGGLER`
        event; ignored for node crashes (the whole node goes) and link
        degradation (no victims).
    bandwidth_scale, latency_scale:
        Link multipliers emitted by a link-degradation process.
    slowdown:
        Latency multiplier emitted by a straggler process.
    name:
        Stable identity salt; lets two processes of the same kind draw from
        distinct RNG streams.
    """

    kind: FaultKind
    mtbf_s: float
    mttr_s: float = 0.0
    num_gpus: int = 1
    bandwidth_scale: float = 0.5
    latency_scale: float = 1.0
    slowdown: float = 1.5
    name: str = ""

    def __post_init__(self) -> None:
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if kind not in PROCESS_KINDS:
            raise ConfigurationError(
                f"process kind must be one of {[k.value for k in PROCESS_KINDS]}, "
                f"got {kind.value!r}"
            )
        if self.mtbf_s <= 0:
            raise ConfigurationError("mtbf_s must be positive")
        if self.mttr_s < 0:
            raise ConfigurationError("mttr_s must be non-negative")
        if self.num_gpus < 1:
            raise ConfigurationError("num_gpus must be >= 1")
        if self.bandwidth_scale <= 0:
            raise ConfigurationError("bandwidth_scale must be positive")
        if self.latency_scale < 0:
            raise ConfigurationError("latency_scale must be non-negative")
        if self.slowdown <= 0:
            raise ConfigurationError("slowdown must be positive")

    def identity(self) -> str:
        """Stable identity string used to derive the process's RNG stream."""
        return f"{self.kind.value}:{self.name}"


class FaultInjector:
    """Compiles stochastic fault processes into deterministic schedules.

    Parameters
    ----------
    processes:
        The fault processes to compile.  Process identities
        (:meth:`FaultProcess.identity`) must be unique so every process gets
        its own RNG stream.
    seed:
        Base seed of the injector; the same seed always compiles to a
        bitwise-identical schedule for the same processes and cluster.
    """

    def __init__(self, processes: Sequence[FaultProcess], seed: int = 0) -> None:
        self.processes: Tuple[FaultProcess, ...] = tuple(processes)
        if not self.processes:
            raise ConfigurationError("at least one fault process is required")
        identities = [p.identity() for p in self.processes]
        if len(set(identities)) != len(identities):
            raise ConfigurationError(
                f"fault process identities must be unique, got {identities}; "
                "give same-kind processes distinct names"
            )
        self.seed = int(seed)

    def _process_seed(self, process: FaultProcess) -> int:
        """Per-process seed, independent of process ordering."""
        digest = zlib.crc32(f"fault-process:{process.identity()}".encode())
        return (self.seed * 1000003 + digest) % (2**31 - 1)

    def compile(self, duration: float, cluster: Cluster) -> FaultSchedule:
        """Roll every process forward over ``[0, duration)`` and pin victims.

        Each process keeps its own alive-view of the cluster (its victims
        return at their paired recovery), so one process never re-preempts a
        GPU it already holds down; overlap *between* processes is allowed and
        resolved by :class:`~repro.faults.state.ClusterFaultState` at apply
        time.  A failure whose victim pool is empty (the process would have
        to take the last GPUs it can see) is skipped rather than compiled
        into an impossible event.

        Returns
        -------
        FaultSchedule
            The compiled schedule, already validated against ``duration`` and
            ``cluster``.
        """
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        events: List[FaultEvent] = []
        for process in self.processes:
            events.extend(self._compile_one(process, duration, cluster))
        return FaultSchedule.from_events(events).validate(duration, cluster)

    def _compile_one(
        self, process: FaultProcess, duration: float, cluster: Cluster
    ) -> List[FaultEvent]:
        rng = ensure_rng(self._process_seed(process))
        alive: Set[int] = set(g.gpu_id for g in cluster.all_gpus or cluster.gpus)
        events: List[FaultEvent] = []
        t = 0.0
        while True:
            t += float(rng.exponential(process.mtbf_s))
            if t >= duration:
                break
            victims = self._pick_victims(process, cluster, alive, rng)
            if process.kind is not FaultKind.LINK_DEGRADATION and not victims:
                continue  # nothing left for this process to degrade
            events.append(self._failure_event(process, t, victims))
            alive -= set(victims)
            if process.mttr_s <= 0:
                continue  # one-way fault: no repair, keep failing other GPUs
            repair = t + float(rng.exponential(process.mttr_s))
            if repair < duration:
                events.append(self._recovery_event(process, repair, victims))
                alive |= set(victims)
                t = repair
            # else: the fault outlives the horizon; the process keeps rolling
            # from t so later failures can still strike the remaining pool.
        return events

    def _pick_victims(
        self, process: FaultProcess, cluster: Cluster, alive: Set[int], rng
    ) -> Tuple[int, ...]:
        """Draw the pinned victim GPUs of one failure from the process's pool."""
        if process.kind is FaultKind.LINK_DEGRADATION:
            return ()
        if process.kind is FaultKind.NODE_CRASH:
            roster = {g.gpu_id: g.node_id for g in cluster.all_gpus or cluster.gpus}
            nodes = sorted({roster[g] for g in alive})
            if not nodes:
                return ()
            node = int(rng.choice(nodes))
            return tuple(sorted(g for g in alive if roster[g] == node))
        pool = sorted(alive)
        if not pool:
            return ()
        count = min(process.num_gpus, len(pool))
        picked = rng.choice(pool, size=count, replace=False)
        return tuple(sorted(int(g) for g in picked))

    def _failure_event(
        self, process: FaultProcess, t: float, victims: Tuple[int, ...]
    ) -> FaultEvent:
        label = process.identity()
        if process.kind is FaultKind.LINK_DEGRADATION:
            return FaultEvent(
                time=t,
                kind=process.kind,
                bandwidth_scale=process.bandwidth_scale,
                latency_scale=process.latency_scale,
                description=label,
            )
        if process.kind is FaultKind.STRAGGLER:
            return FaultEvent(
                time=t,
                kind=process.kind,
                gpu_ids=victims,
                slowdown=process.slowdown,
                description=label,
            )
        return FaultEvent(time=t, kind=process.kind, gpu_ids=victims, description=label)

    def _recovery_event(
        self, process: FaultProcess, t: float, victims: Tuple[int, ...]
    ) -> FaultEvent:
        return FaultEvent(
            time=t,
            kind=RECOVERY_OF[process.kind],
            gpu_ids=victims,
            description=f"{process.identity()} repair",
        )


__all__ = ["FaultProcess", "FaultInjector", "PROCESS_KINDS", "RECOVERY_OF"]

"""Retry policy governing in-engine request dispositions after a fault.

When a capacity-loss fault kills a replica mid-run, every in-flight request on
it gets a *typed disposition* (see ``docs/simulation.md``): it is either
re-dispatched to a surviving replica after an exponential backoff delay, or
cancelled with a recorded cause (:class:`~repro.core.types.RequestOutcome`).
:class:`RetryPolicy` holds the knobs of that decision — bounded attempts,
exponential backoff with deterministic seeded jitter, and an optional
per-request deadline after which a retry is pointless (``timed_out``).

Determinism contract: all randomness is **hash-based**, not drawn from the
simulator RNG stream.  :func:`fault_uniform` maps ``(salt, seed, request id,
attempt)`` to a uniform in ``[0, 1)`` via CRC-32, so the jitter of a given
retry and the surviving replica it is routed to are pure functions of the
request identity — identical in the fast and reference engines regardless of
the order dispositions are processed in, and stable under replay with the
same seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional


def fault_uniform(salt: str, seed: int, request_id: int, attempt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` keyed by request identity.

    CRC-32 of ``"{salt}:{seed}:{request_id}:{attempt}"`` scaled to ``[0, 1)``.
    Order-independent by construction: the value does not depend on how many
    other requests were disposed before this one, which is what keeps the two
    engines bitwise-identical under fault timelines.
    """
    key = f"{salt}:{seed}:{request_id}:{attempt}".encode()
    return (zlib.crc32(key) & 0xFFFFFFFF) / 4294967296.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with deterministic exponential backoff.

    Parameters
    ----------
    max_retries:
        Maximum number of fault dispositions a request may survive; the
        ``max_retries + 1``-th disposition drops it as ``dropped_outage``.
        ``0`` is the drop-only policy: any fault touching a request kills it.
    backoff_base_s:
        Backoff delay of the first retry (seconds, before jitter).
    backoff_multiplier:
        Multiplicative factor applied per additional attempt
        (``delay = base * multiplier ** (attempt - 1)``).
    jitter:
        Relative jitter amplitude: the delay is scaled by ``1 + jitter * u``
        with ``u`` a deterministic per-(request, attempt) uniform from
        :func:`fault_uniform`.  ``0`` disables jitter.
    deadline_s:
        Optional per-request deadline (seconds after arrival).  A disposition
        whose retry would land past the deadline cancels the request as
        ``timed_out`` instead.  Enforced at disposition instants only — a
        request that is already running is never killed by its deadline.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s <= 0:
            raise ValueError(f"backoff_base_s must be positive, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")

    @classmethod
    def drop_only(cls, deadline_s: Optional[float] = None) -> "RetryPolicy":
        """Policy that never retries: any fault disposition drops the request."""
        return cls(max_retries=0, deadline_s=deadline_s)

    def backoff_delay(self, seed: int, request_id: int, attempt: int) -> float:
        """Backoff delay (seconds) of retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        u = fault_uniform("retry-jitter", seed, request_id, attempt)
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return base * (1.0 + self.jitter * u)


__all__ = ["RetryPolicy", "fault_uniform"]

"""Typed fault taxonomy: fault kinds, events and validated schedules.

A :class:`FaultEvent` is one timestamped transition of the cluster's health:
capacity loss (GPU/spot preemption, whole-node crash), capacity recovery
(revival of previously removed GPUs by global id), network-link degradation
and repair (bandwidth/latency multipliers on the alpha-beta matrices that
price KV-cache transfers), and per-GPU straggler slowdown and recovery.

A :class:`FaultSchedule` is an immutable, time-sorted sequence of events with
construction-time field validation and an explicit :meth:`FaultSchedule.validate`
check against a scenario duration and a target cluster — schedules that
reference unknown GPUs or fire after the trace has ended are rejected with
clear errors instead of silently no-opping deep inside a serving loop.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.exceptions import ConfigurationError
from repro.hardware.cluster import Cluster


class FaultKind(str, enum.Enum):
    """The kinds of fault transition the injector and the live loop understand."""

    #: spot/preemption loss of individual GPUs
    GPU_PREEMPTION = "gpu_preemption"
    #: loss of every GPU on one node at once
    NODE_CRASH = "node_crash"
    #: capacity recovery: previously removed GPUs rejoin by global id
    RECOVERY = "recovery"
    #: network-link degradation (bandwidth/latency multipliers vs. pristine)
    LINK_DEGRADATION = "link_degradation"
    #: network repair: link matrices return to pristine
    LINK_RECOVERY = "link_recovery"
    #: per-GPU straggler slowdown (latency multiplier on hosted replicas)
    STRAGGLER = "straggler"
    #: straggler recovery: listed GPUs (or all, when empty) return to speed
    STRAGGLER_RECOVERY = "straggler_recovery"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: kinds that remove capacity (require pinned victim GPU ids)
CAPACITY_LOSS_KINDS = (FaultKind.GPU_PREEMPTION, FaultKind.NODE_CRASH)


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault transition.

    Parameters
    ----------
    time:
        Serving-clock time (seconds) at which the transition takes effect.
        The live loop applies events between windows: an event inside a
        window takes effect at that window's start.
    kind:
        The :class:`FaultKind` of the transition.
    gpu_ids:
        Pinned victim / revived / straggling GPU ids.  Required for capacity
        loss, capacity recovery and straggler events (the injector always
        pins victims at compile time so schedules replay deterministically);
        for :attr:`FaultKind.STRAGGLER_RECOVERY` an empty tuple means "every
        straggler recovers".
    bandwidth_scale, latency_scale:
        Link multipliers of a :attr:`FaultKind.LINK_DEGRADATION` event,
        applied to the *pristine* matrices (absolute, not cumulative).
    slowdown:
        Latency multiplier of a :attr:`FaultKind.STRAGGLER` event (> 1 slows
        the hosted replicas down).
    description:
        Free-form label surfaced in telemetry.
    """

    time: float
    kind: FaultKind
    gpu_ids: Tuple[int, ...] = ()
    bandwidth_scale: float = 1.0
    latency_scale: float = 1.0
    slowdown: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("fault time must be >= 0")
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "gpu_ids", tuple(int(g) for g in self.gpu_ids))
        if len(set(self.gpu_ids)) != len(self.gpu_ids):
            raise ConfigurationError(f"duplicate GPU ids in fault event: {self.gpu_ids}")
        if kind in CAPACITY_LOSS_KINDS + (FaultKind.RECOVERY, FaultKind.STRAGGLER):
            if not self.gpu_ids:
                raise ConfigurationError(f"{kind.value} events must pin gpu_ids")
        if kind is FaultKind.LINK_DEGRADATION:
            if self.bandwidth_scale <= 0:
                raise ConfigurationError("bandwidth_scale must be positive")
            if self.latency_scale < 0:
                raise ConfigurationError("latency_scale must be non-negative")
        if kind is FaultKind.STRAGGLER and self.slowdown <= 0:
            raise ConfigurationError("straggler slowdown must be positive")

    def describe(self) -> str:
        """Human-readable one-liner, stamped into window telemetry."""
        bits = [f"{self.kind.value}@{self.time:g}s"]
        if self.gpu_ids:
            bits.append(f"gpus={list(self.gpu_ids)}")
        if self.kind is FaultKind.LINK_DEGRADATION:
            bits.append(f"bw×{self.bandwidth_scale:g}, lat×{self.latency_scale:g}")
        if self.kind is FaultKind.STRAGGLER:
            bits.append(f"slowdown×{self.slowdown:g}")
        if self.description:
            bits.append(self.description)
        return " ".join(bits)

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable dict form of the event."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "gpu_ids": list(self.gpu_ids),
            "bandwidth_scale": self.bandwidth_scale,
            "latency_scale": self.latency_scale,
            "slowdown": self.slowdown,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultEvent":
        """Rebuild an event from its dict form (inverse of :meth:`to_dict`)."""
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            kind=FaultKind(data["kind"]),
            gpu_ids=tuple(data.get("gpu_ids", ())),  # type: ignore[arg-type]
            bandwidth_scale=float(data.get("bandwidth_scale", 1.0)),  # type: ignore[arg-type]
            latency_scale=float(data.get("latency_scale", 1.0)),  # type: ignore[arg-type]
            slowdown=float(data.get("slowdown", 1.0)),  # type: ignore[arg-type]
            description=str(data.get("description", "")),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted sequence of fault events.

    Construction sorts events by ``(time, kind, gpu_ids)`` so that two
    schedules built from the same events compare (and hash via
    :meth:`signature`) identically regardless of input order.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.kind.value, e.gpu_ids))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self, duration: float, cluster: Cluster) -> "FaultSchedule":
        """Check the schedule against a scenario duration and a target cluster.

        Raises
        ------
        ConfigurationError
            If any event fires at or after ``duration`` (it could never take
            effect), pins a GPU id outside the cluster roster, or a capacity
            loss names more GPUs than the cluster has — the silent-no-op
            failure modes this validation exists to surface early.

        Returns
        -------
        FaultSchedule
            ``self``, so validation chains onto construction.
        """
        roster = set(g.gpu_id for g in cluster.all_gpus or cluster.gpus)
        for event in self.events:
            if event.time >= duration:
                raise ConfigurationError(
                    f"fault event at t={event.time:g}s fires at/after the scenario "
                    f"duration ({duration:g}s) and could never take effect: "
                    f"{event.describe()}"
                )
            unknown = set(event.gpu_ids) - roster
            if unknown:
                raise ConfigurationError(
                    f"fault event pins GPU ids {sorted(unknown)} outside the "
                    f"cluster roster (size {len(roster)}): {event.describe()}"
                )
            if event.kind in CAPACITY_LOSS_KINDS and len(event.gpu_ids) > cluster.num_gpus:
                raise ConfigurationError(
                    f"fault event removes {len(event.gpu_ids)} GPUs but the cluster "
                    f"only has {cluster.num_gpus}: {event.describe()}"
                )
        return self

    def events_between(self, start: float, end: float) -> List[FaultEvent]:
        """Events with ``start <= time < end``, in schedule order."""
        return [e for e in self.events if start <= e.time < end]

    def shifted(self, offset: float) -> "FaultSchedule":
        """Return a copy with every event time shifted by ``offset`` seconds."""
        return FaultSchedule(
            events=tuple(replace(e, time=e.time + offset) for e in self.events)
        )

    def signature(self) -> str:
        """Stable hex digest of the full schedule (bitwise-replay checks)."""
        payload = repr([e.to_dict() for e in self.events]).encode()
        return f"{zlib.crc32(payload) & 0xFFFFFFFF:08x}"

    def to_dicts(self) -> List[Dict[str, object]]:
        """Return the schedule as JSON-serialisable dicts."""
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_dicts(cls, dicts: Iterable[Mapping[str, object]]) -> "FaultSchedule":
        """Rebuild a schedule from dicts (inverse of :meth:`to_dicts`)."""
        return cls(events=tuple(FaultEvent.from_dict(d) for d in dicts))

    @classmethod
    def from_events(cls, events: Sequence[FaultEvent]) -> "FaultSchedule":
        """Build a schedule from an event sequence (sorted on construction)."""
        return cls(events=tuple(events))


__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "CAPACITY_LOSS_KINDS",
]

"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError` so callers can
catch package-level failures with a single ``except`` clause while still being able
to distinguish configuration problems from scheduling or simulation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class InsufficientMemoryError(ReproError):
    """A serving group cannot hold even a single copy of the model parameters.

    Raised by the parallel-configuration deduction and by the deployment-plan
    validator; the tabu search also uses it as an early-elimination signal for
    infeasible neighbours (see §3.2 of the paper).
    """


class InvalidPlanError(ReproError):
    """A deployment plan violates a structural invariant.

    Examples: a GPU assigned to two serving groups at once, a group with an empty
    GPU set, a routing matrix whose rows do not sum to one.
    """


class SchedulingError(ReproError):
    """The scheduler could not produce a feasible deployment plan."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


__all__ = [
    "ReproError",
    "ConfigurationError",
    "InsufficientMemoryError",
    "InvalidPlanError",
    "SchedulingError",
    "SimulationError",
]

"""Deterministic random-number helpers.

Every stochastic component in the package (workload generators, tabu search,
clustering jitter, failure injection) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises those
three cases so that experiments can be made exactly reproducible by threading a
single seed through the top-level entry points.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RNGLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed)!r}")


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Child generators are seeded from the parent so that the derivation is itself
    deterministic; this lets parallel sub-components (e.g. per-replica arrival
    streams) be reproducible without sharing a single generator object.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


__all__ = ["RNGLike", "ensure_rng", "spawn_rng"]

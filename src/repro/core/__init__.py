"""Core shared types, exceptions and helpers used across the package."""

from repro.core.types import (
    Phase,
    Request,
    RequestMetrics,
    SLOSpec,
    SLOType,
)
from repro.core.exceptions import (
    ReproError,
    ConfigurationError,
    InsufficientMemoryError,
    InvalidPlanError,
    SchedulingError,
    SimulationError,
)
from repro.core.rng import ensure_rng

__all__ = [
    "Phase",
    "Request",
    "RequestMetrics",
    "SLOSpec",
    "SLOType",
    "ReproError",
    "ConfigurationError",
    "InsufficientMemoryError",
    "InvalidPlanError",
    "SchedulingError",
    "SimulationError",
    "ensure_rng",
]

"""Table 4: overhead of full vs lightweight rescheduling.

Full rescheduling re-runs the scheduling algorithm from scratch and reloads the
model parameters onto the re-assigned GPUs; lightweight rescheduling only flips
phase designations and re-solves the orchestration.  The experiment measures the
search times on this machine and combines them with the analytic parameter-reload
model (disk bandwidth x parameter bytes) of
:class:`~repro.scheduling.rescheduling.ReschedulingOverheadModel`.
"""

from __future__ import annotations

import time
from typing import List

from repro.experiments.common import ExperimentResult, cloud_cluster, default_model, quick_scheduler
from repro.scheduling.rescheduling import LightweightRescheduler, ReschedulingOverheadModel
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD


def run(
    model_name: str = "llama-30b",
    request_rate: float = 9.0,
    seed: int = 0,
    scheduler_steps: int = 15,
) -> ExperimentResult:
    """Measured search times plus modelled reload times for both strategies."""
    model = default_model(model_name)
    cluster = cloud_cluster(seed=seed)
    overhead = ReschedulingOverheadModel()

    # Full rescheduling: measure a from-scratch scheduling run.
    scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
    t0 = time.perf_counter()
    schedule_result = scheduler.schedule(cluster, model, CODING_WORKLOAD, request_rate)
    full_search_s = time.perf_counter() - t0
    num_replicas = schedule_result.plan.num_replicas
    reload_s = overhead.reload_seconds(model, num_replicas)

    # Lightweight rescheduling: adapt the coding plan to the conversation workload.
    rescheduler = LightweightRescheduler(seed=seed)
    slo = scheduler.default_slo(model, CONVERSATION_WORKLOAD)
    t0 = time.perf_counter()
    light = rescheduler.reschedule(
        schedule_result.plan, cluster, model, CONVERSATION_WORKLOAD, request_rate, slo
    )
    light_search_s = time.perf_counter() - t0

    rows: List[List] = [
        ["full", full_search_s, reload_s, full_search_s + reload_s],
        ["lightweight", light_search_s, 0.0, light_search_s],
    ]
    speedup = (full_search_s + reload_s) / max(light_search_s, 1e-9)
    return ExperimentResult(
        name="Table 4: rescheduling overhead (seconds)",
        headers=["approach", "rescheduling_s", "reloading_s", "overall_s"],
        rows=rows,
        notes=(
            f"lightweight is x{speedup:.1f} cheaper overall; reload modelled as "
            f"{overhead.disk_bandwidth_bytes/1e9:.1f} GB/s disk streaming of {num_replicas} replicas "
            f"(paper: full 157s vs lightweight 13s)"
        ),
        extras={"speedup": speedup, "num_replicas": num_replicas},
    )


__all__ = ["run"]

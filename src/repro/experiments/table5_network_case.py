"""Table 5 / Figures 16-17 (Appendix H): phase splitting vs network bandwidth.

Two instances — 4xA40 and 4x3090Ti — serve LLaMA-30B under two inter-instance
bandwidths: 40 Gbps (Case A, same data center) and 5 Gbps (Case B, different data
centers).  A non-disaggregating baseline gives each instance one co-located
replica.  The paper's finding: with fast links ThunderServe splits phases across
the instances (A40 prefill -> 3090Ti decode) for a ~2x gain; with slow links it
keeps KV traffic inside each instance and still gains ~1.4x.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.types import Phase
from repro.experiments.common import ExperimentResult, default_model, quick_scheduler
from repro.hardware.cluster import make_two_datacenter_cluster
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.simulation.colocated import ColocatedSimulator
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests
from repro.workload.spec import WorkloadSpec


#: fixed-shape workload of the appendix: continuous 1024-token prompts
CASE_WORKLOAD = WorkloadSpec(
    name="appendix-h",
    median_input_length=1024.0,
    median_output_length=64.0,
    input_sigma=0.0,
    output_sigma=0.0,
)


def _row(label: str, result) -> List:
    summary = result.summary()
    return [
        label,
        summary["mean_prefill"] * 1e3,
        summary["mean_kv_transfer"] * 1e3,
        summary["mean_decode"] * 1e3,
        summary["mean_e2e"] * 1e3,
        result.total_token_throughput,
    ]


def run(
    model_name: str = "llama-30b",
    request_rate: float = 6.0,
    trace_duration: float = 25.0,
    high_bandwidth_gbps: float = 5.0,    # 40 Gbps
    low_bandwidth_gbps: float = 0.625,   # 5 Gbps
    seed: int = 0,
    scheduler_steps: int = 12,
) -> ExperimentResult:
    """Latency breakdown and throughput for the baseline and both network cases."""
    model = default_model(model_name)
    trace = generate_requests(CASE_WORKLOAD, request_rate, duration=trace_duration, seed=seed + 613)

    rows: List[List] = []
    plans: Dict[str, object] = {}

    # Non-disaggregating baseline: one co-located replica per instance (fast-link cluster).
    base_cluster = make_two_datacenter_cluster(inter_dc_gbps=high_bandwidth_gbps, seed=seed)
    replica_plans = []
    for node in base_cluster.nodes:
        gpu_ids = [g.gpu_id for g in base_cluster.gpus_on_node(node.node_id)]
        replica_plans.append(
            deduce_parallel_plan(base_cluster, gpu_ids, Phase.DECODE, model, CASE_WORKLOAD)
        )
    baseline = ColocatedSimulator(base_cluster, replica_plans, model, seed=seed)
    base_result = baseline.run(trace, label="non-disaggregated")
    rows.append(_row("baseline (no phase split)", base_result))

    # ThunderServe under each bandwidth regime.
    for label, bandwidth in (
        ("thunderserve (40 Gbps)", high_bandwidth_gbps),
        ("thunderserve (5 Gbps)", low_bandwidth_gbps),
    ):
        cluster = make_two_datacenter_cluster(inter_dc_gbps=bandwidth, seed=seed)
        scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
        schedule = scheduler.schedule(cluster, model, CASE_WORKLOAD, request_rate)
        plans[label] = schedule.plan
        result = ServingSimulator(
            cluster, schedule.plan, model, config=SimulatorConfig(seed=seed)
        ).run(trace, label=label)
        rows.append(_row(label, result))

    base_thpt = rows[0][-1]
    gains = {row[0]: (row[-1] / base_thpt if base_thpt > 0 else float("nan")) for row in rows[1:]}
    notes = "; ".join(f"{k}: x{v:.2f} vs baseline" for k, v in gains.items())
    return ExperimentResult(
        name="Table 5 / Figs 16-17: phase splitting under 40 Gbps vs 5 Gbps inter-instance links",
        headers=["configuration", "prefill_ms", "kv_comm_ms", "decode_ms", "e2e_ms", "tokens_per_s"],
        rows=rows,
        notes=notes + " (paper: x2.0 at 40 Gbps, x1.4 at 5 Gbps)",
        extras={"plans": plans, "gains": gains},
    )


__all__ = ["run", "CASE_WORKLOAD"]

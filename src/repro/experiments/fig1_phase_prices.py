"""Figure 1: per-request prefill and decode prices on 3090Ti vs A40.

The paper's motivating figure: for a request with 512 input and 16 output tokens,
the compute-dense A40 is the cheaper GPU for the prefill phase while the
bandwidth-dense 3090Ti is the cheaper GPU for the decode phase.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.types import Phase
from repro.costmodel.price import phase_price_per_request
from repro.experiments.common import ExperimentResult, default_model


def run(
    model_name: str = "llama-30b",
    gpu_names: Sequence[str] = ("3090Ti", "A40"),
    input_length: int = 512,
    output_length: int = 16,
) -> ExperimentResult:
    """Compute the Figure 1 per-phase prices."""
    model = default_model(model_name)
    rows = []
    for gpu in gpu_names:
        prefill = phase_price_per_request(
            gpu, model, Phase.PREFILL, input_length=input_length, output_length=output_length
        )
        decode = phase_price_per_request(
            gpu, model, Phase.DECODE, input_length=input_length, output_length=output_length
        )
        rows.append([gpu, prefill, decode])
    cheapest_prefill = min(rows, key=lambda r: r[1])[0]
    cheapest_decode = min(rows, key=lambda r: r[2])[0]
    return ExperimentResult(
        name="Figure 1: prefill/decode price per request (512 in / 16 out)",
        headers=["gpu", "prefill_price_$", "decode_price_$"],
        rows=rows,
        notes=(
            f"cheapest prefill GPU: {cheapest_prefill}; cheapest decode GPU: {cheapest_decode} "
            f"(paper: A40 for prefill, 3090Ti for decode)"
        ),
        extras={"cheapest_prefill": cheapest_prefill, "cheapest_decode": cheapest_decode},
    )


__all__ = ["run"]

"""Shared helpers for the end-to-end system comparisons (Figures 7, 8, 9, 11, 12).

Each helper builds one serving system (ThunderServe or a baseline), replays a
trace, and returns the :class:`SimulationResult`; the figure modules turn those
results into attainment curves or throughput bars.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.distserve import DistServeBaseline
from repro.baselines.hexgen import HexGenBaseline
from repro.baselines.vllm import VLLMBaseline
from repro.core.types import SLOType
from repro.costmodel.reference import ReferenceLatency
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.scheduler import Scheduler
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.simulation.metrics import SimulationResult
from repro.workload.generator import generate_requests
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


def make_trace(workload: WorkloadSpec, rate: float, duration: float, seed: int) -> Trace:
    """Poisson trace for one (workload, rate) evaluation point."""
    return generate_requests(workload, rate, duration=duration, seed=seed)


def run_thunderserve(
    cluster: Cluster,
    model: ModelConfig,
    workload: WorkloadSpec,
    rate: float,
    trace: Trace,
    scheduler: Scheduler,
    seed: int = 0,
    slo_scale_for_planning: float = 5.0,
) -> Tuple[SimulationResult, DeploymentPlan]:
    """Schedule ThunderServe on the cluster and replay the trace."""
    slo = scheduler.default_slo(model, workload, scale=slo_scale_for_planning)
    schedule = scheduler.schedule(cluster, model, workload, rate, slo, seed=seed)
    simulator = ServingSimulator(cluster, schedule.plan, model, config=SimulatorConfig(seed=seed))
    return simulator.run(trace, label="thunderserve"), schedule.plan


def run_hexgen(
    cluster: Cluster,
    model: ModelConfig,
    workload: WorkloadSpec,
    rate: float,
    trace: Trace,
    seed: int = 0,
) -> SimulationResult:
    """HexGen-like baseline on the heterogeneous cloud cluster."""
    baseline = HexGenBaseline(cluster, model, workload, rate, seed=seed)
    return baseline.serve(trace)


def run_distserve(
    cluster: Cluster,
    model: ModelConfig,
    workload: WorkloadSpec,
    rate: float,
    trace: Trace,
    seed: int = 0,
) -> SimulationResult:
    """DistServe-like baseline on the homogeneous in-house cluster."""
    baseline = DistServeBaseline(cluster, model, workload, rate, seed=seed)
    return baseline.serve(trace)


def run_vllm(
    cluster: Cluster,
    model: ModelConfig,
    workload: WorkloadSpec,
    rate: float,
    trace: Trace,
    seed: int = 0,
) -> SimulationResult:
    """vLLM-like baseline on the homogeneous in-house cluster."""
    baseline = VLLMBaseline(cluster, model, workload, rate, seed=seed)
    return baseline.serve(trace)


def attainment_rows(
    result: SimulationResult,
    reference: ReferenceLatency,
    slo_scales: Sequence[float],
    system: str,
    workload_name: str,
    rate: float,
    slo_types: Iterable[SLOType] = (SLOType.E2E, SLOType.TTFT, SLOType.TPOT),
) -> List[List]:
    """Rows ``[workload, rate, system, slo_type, scale, attainment]`` for one run."""
    rows: List[List] = []
    for slo_type in slo_types:
        for scale in slo_scales:
            attainment = result.slo_attainment(reference.slo_spec(scale), slo_type)
            rows.append([workload_name, rate, system, slo_type.value, scale, attainment])
    return rows


def min_deadline_summary(
    results: Dict[str, SimulationResult],
    reference: ReferenceLatency,
    target: float = 0.9,
    slo_type: SLOType = SLOType.E2E,
) -> Dict[str, float]:
    """Minimum SLO scale reaching ``target`` attainment for each system."""
    return {
        name: result.min_scale_for_attainment(target, reference, slo_type)
        for name, result in results.items()
    }


__all__ = [
    "make_trace",
    "run_thunderserve",
    "run_hexgen",
    "run_distserve",
    "run_vllm",
    "attainment_rows",
    "min_deadline_summary",
]

"""Figure 8: cost-efficiency — ThunderServe on the cloud vs DistServe / vLLM in-house.

Given (approximately) the same hourly budget, ThunderServe rents 32 heterogeneous
cloud GPUs while the baselines run on an 8xA100 in-house server.  All systems
serve the same traces; the experiment reports SLO attainment over SLO scales plus
the minimum deadline needed for 90 % attainment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SLO_SCALES,
    ExperimentResult,
    cloud_cluster,
    default_model,
    default_workloads,
    inhouse_cluster,
    quick_scheduler,
    reference_for,
)
from repro.experiments.endtoend import (
    attainment_rows,
    make_trace,
    min_deadline_summary,
    run_distserve,
    run_thunderserve,
    run_vllm,
)
from repro.experiments.fig7_cloud_slo import DEFAULT_RATES


def run(
    model_name: str = "llama-30b",
    rates: Optional[Dict[str, Sequence[float]]] = None,
    trace_duration: float = 30.0,
    slo_scales: Sequence[float] = tuple(DEFAULT_SLO_SCALES),
    seed: int = 0,
    scheduler_steps: int = 12,
) -> ExperimentResult:
    """Attainment curves of ThunderServe (cloud) vs DistServe and vLLM (in-house)."""
    model = default_model(model_name)
    cloud = cloud_cluster(seed=seed)
    inhouse = inhouse_cluster()
    workloads = default_workloads()
    rates = rates or DEFAULT_RATES

    rows: List[List] = []
    deadlines: Dict[str, Dict[str, float]] = {}
    for workload_name, workload in workloads.items():
        reference = reference_for(model, workload)
        for rate in rates.get(workload_name, ()):
            trace = make_trace(workload, rate, trace_duration, seed + 211)
            scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
            ts_result, _ = run_thunderserve(cloud, model, workload, rate, trace, scheduler, seed=seed)
            dist_result = run_distserve(inhouse, model, workload, rate, trace, seed=seed)
            vllm_result = run_vllm(inhouse, model, workload, rate, trace, seed=seed)
            rows += attainment_rows(ts_result, reference, slo_scales, "thunderserve(cloud)", workload_name, rate)
            rows += attainment_rows(dist_result, reference, slo_scales, "distserve(in-house)", workload_name, rate)
            rows += attainment_rows(vllm_result, reference, slo_scales, "vllm(in-house)", workload_name, rate)
            deadlines[f"{workload_name}@{rate:g}"] = min_deadline_summary(
                {
                    "thunderserve(cloud)": ts_result,
                    "distserve(in-house)": dist_result,
                    "vllm(in-house)": vllm_result,
                },
                reference,
                target=0.9,
            )

    budget_note = (
        f"hourly budget: cloud ${cloud.price_per_hour:.2f} vs in-house ${inhouse.price_per_hour:.2f}"
    )
    return ExperimentResult(
        name="Figure 8: SLO attainment at equal budget (cloud ThunderServe vs in-house DistServe/vLLM)",
        headers=["workload", "rate", "system", "slo_type", "slo_scale", "attainment"],
        rows=rows,
        notes=budget_note + "; extras['min_deadline_90'] holds minimum deadlines",
        extras={"min_deadline_90": deadlines},
    )


__all__ = ["run"]

"""Table 3: the model deployments discovered by the scheduling algorithm.

For each workload the scheduler partitions the 32 cloud GPUs into serving groups,
assigns parallel configurations and designates phases.  The qualitative pattern to
reproduce: compute-dense GPUs (A40) are prioritised for prefill, bandwidth-dense
GPUs (3090Ti) for decode, and the coding workload receives more prefill replicas
than the conversation workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.types import Phase
from repro.experiments.common import (
    ExperimentResult,
    cloud_cluster,
    default_model,
    default_workloads,
    quick_scheduler,
)


def run(
    model_name: str = "llama-30b",
    rates: Optional[Dict[str, float]] = None,
    seed: int = 0,
    scheduler_steps: int = 20,
    workload_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Describe the deployment plan found for each workload."""
    model = default_model(model_name)
    cluster = cloud_cluster(seed=seed)
    gpu_names = {g.gpu_id: g.type_name for g in cluster.gpus}
    workloads = default_workloads()
    if workload_names is not None:
        workloads = {k: v for k, v in workloads.items() if k in set(workload_names)}
    rates = rates or {"coding": 12.0, "conversation": 9.0}

    rows: List[List] = []
    plans = {}
    ratios = {}
    prefill_types: Dict[str, Dict[str, int]] = {}
    decode_types: Dict[str, Dict[str, int]] = {}
    for workload_name, workload in workloads.items():
        scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
        schedule_result = scheduler.schedule(cluster, model, workload, rates[workload_name])
        plan = schedule_result.plan
        plans[workload_name] = plan
        ratios[workload_name] = plan.prefill_decode_ratio
        prefill_types[workload_name] = {}
        decode_types[workload_name] = {}
        for group in plan.groups:
            counts: Dict[str, int] = {}
            for gpu_id in group.gpu_ids:
                counts[gpu_names[gpu_id]] = counts.get(gpu_names[gpu_id], 0) + 1
            hw = "+".join(f"{n}x{t}" for t, n in sorted(counts.items()))
            strategy = str(group.plan.parallel_config) if group.plan else "-"
            rows.append([workload_name, hw, strategy, group.phase.value])
            target = prefill_types if group.phase is Phase.PREFILL else decode_types
            for gpu_type, count in counts.items():
                target[workload_name][gpu_type] = target[workload_name].get(gpu_type, 0) + count

    notes = "; ".join(
        f"{wl}: {r[0]} prefill / {r[1]} decode replicas" for wl, r in ratios.items()
    )
    return ExperimentResult(
        name="Table 3: model deployment discovered by the scheduler (32-GPU cloud)",
        headers=["workload", "gpu_configuration", "strategy", "replica_type"],
        rows=rows,
        notes=notes,
        extras={
            "plans": plans,
            "ratios": ratios,
            "prefill_gpu_types": prefill_types,
            "decode_gpu_types": decode_types,
        },
    )


__all__ = ["run"]

"""Figure 6: throughput by prefill-to-decode ratio.

LLaMA-13B on homogeneous A5000 clusters of 8, 12 and 16 GPUs with two GPUs per
replica (4, 6 and 8 replicas).  For every feasible prefill:decode split the
replicas are orchestrated with the lower-level solver and the cluster is driven to
saturation; the prefill-heavy coding workload peaks at prefill-heavy ratios while
the decode-heavy conversation workload peaks at decode-heavy ratios, and the best
ratio moves with the cluster size — the observation that motivates lightweight
rescheduling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult, default_model, default_workloads, fixed_ratio_plan
from repro.hardware.cluster import make_homogeneous_cluster
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests


def run(
    model_name: str = "llama-13b",
    gpu_type: str = "A5000",
    cluster_sizes: Sequence[int] = (8, 12, 16),
    gpus_per_replica: int = 2,
    saturation_rate: float = 30.0,
    trace_duration: float = 20.0,
    seed: int = 0,
    workload_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Total token throughput for every prefill:decode ratio, workload and cluster size."""
    model = default_model(model_name)
    workloads = default_workloads()
    if workload_names is not None:
        workloads = {k: v for k, v in workloads.items() if k in set(workload_names)}

    rows: List[List] = []
    best: Dict[str, Dict[int, str]] = {name: {} for name in workloads}
    for num_gpus in cluster_sizes:
        cluster = make_homogeneous_cluster(gpu_type, num_gpus=num_gpus, gpus_per_node=4, seed=seed)
        num_replicas = num_gpus // gpus_per_replica
        for workload_name, workload in workloads.items():
            trace = generate_requests(workload, saturation_rate, duration=trace_duration, seed=seed + 17)
            best_throughput = -1.0
            best_ratio = ""
            for num_prefill in range(1, num_replicas):
                num_decode = num_replicas - num_prefill
                try:
                    plan, _ = fixed_ratio_plan(
                        cluster, model, workload, saturation_rate,
                        num_prefill, num_decode, gpus_per_replica,
                    )
                except ValueError:
                    continue
                simulator = ServingSimulator(cluster, plan, model, config=SimulatorConfig(seed=seed))
                result = simulator.run(trace, label=f"{num_prefill}/{num_decode}")
                throughput = result.total_token_throughput
                ratio = f"{num_prefill}/{num_decode}"
                rows.append([num_gpus, workload_name, ratio, throughput, result.output_token_throughput])
                if throughput > best_throughput:
                    best_throughput = throughput
                    best_ratio = ratio
            best[workload_name][num_gpus] = best_ratio

    notes = "; ".join(
        f"{wl}: best ratio per cluster size {sizes}" for wl, sizes in best.items()
    )
    return ExperimentResult(
        name="Figure 6: throughput (tokens/s) by prefill-to-decode ratio",
        headers=["num_gpus", "workload", "prefill/decode", "total_tokens_per_s", "output_tokens_per_s"],
        rows=rows,
        notes=notes + " (paper: coding favours prefill-heavy, conversation decode-heavy)",
        extras={"best_ratio": best},
    )


__all__ = ["run"]

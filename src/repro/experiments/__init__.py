"""Experiment harness: one module per table / figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows are the same
rows/series the paper reports (SLO-attainment curves, throughput bars, deployment
breakdowns, ...).  The ``benchmarks/`` directory wires each of these into a
pytest-benchmark target; ``EXPERIMENTS.md`` records paper-vs-measured values.

Absolute numbers differ from the paper (our substrate is a simulator, not the
authors' Vast.ai testbed) — the quantities to compare are the *shapes*: which
system wins, by roughly what factor, and where behaviour crosses over.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]

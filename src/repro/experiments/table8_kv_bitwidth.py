"""Table 8 / Figure 18: 16-bit vs 4-bit KV-cache transport end-to-end.

Table 8 repeats the Appendix-H two-instance case study with transport compression
switched off (16-bit) and on (4-bit).  Figure 18 sweeps the batched token size on
a 2xA5000 / LLaMA-7B pair (40 Gbps link) and reports the KV-communication time and
the end-to-end processing time for 4-, 8- and 16-bit transport.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from repro.core.types import Phase
from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.costmodel.latency import DEFAULT_PARAMS, ReplicaCostModel
from repro.experiments.common import ExperimentResult, default_model, quick_scheduler
from repro.experiments.table5_network_case import CASE_WORKLOAD
from repro.hardware.cluster import make_homogeneous_cluster, make_two_datacenter_cluster
from repro.model.architecture import get_model_config
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests


def run(
    model_name: str = "llama-30b",
    request_rate: float = 6.0,
    trace_duration: float = 25.0,
    bit_widths: Sequence[int] = (16, 4),
    batched_token_sizes: Sequence[int] = (1024, 2048, 3072, 4096),
    seed: int = 0,
    scheduler_steps: int = 12,
) -> ExperimentResult:
    """End-to-end 16 vs 4-bit comparison plus the Figure 18 token-size sweep."""
    model = default_model(model_name)
    cluster = make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=seed)  # 40 Gbps case
    trace = generate_requests(CASE_WORKLOAD, request_rate, duration=trace_duration, seed=seed + 701)

    rows: List[List] = []
    throughputs = {}
    for bits in bit_widths:
        scheduler = quick_scheduler(seed=seed, steps=scheduler_steps, kv_bits=bits)
        schedule = scheduler.schedule(cluster, model, CASE_WORKLOAD, request_rate)
        plan = schedule.plan
        if plan.kv_transport_bits != bits:
            plan = replace(plan, kv_transport_bits=bits)
        result = ServingSimulator(cluster, plan, model, config=SimulatorConfig(seed=seed)).run(
            trace, label=f"{bits}-bit"
        )
        summary = result.summary()
        throughputs[bits] = result.total_token_throughput
        rows.append(
            [
                "table8",
                f"{bits}-bit",
                0,
                summary["mean_prefill"] * 1e3,
                summary["mean_kv_transfer"] * 1e3,
                summary["mean_decode"] * 1e3,
                summary["mean_e2e"] * 1e3,
                result.total_token_throughput,
            ]
        )

    # Figure 18: KV-communication time vs batched token size on 2xA5000 / LLaMA-7B.
    small_model = get_model_config("llama-7b")
    pair_cluster = make_homogeneous_cluster("A5000", num_gpus=2, gpus_per_node=1, seed=seed)
    # Force the inter-node link to 40 Gbps (5 GB/s) to match the paper's testbed.
    src, dst = pair_cluster.gpu_ids[0], pair_cluster.gpu_ids[1]
    plan_src = deduce_parallel_plan(pair_cluster, [src], Phase.PREFILL, small_model, CASE_WORKLOAD)
    cost_src = ReplicaCostModel(pair_cluster, plan_src, small_model, DEFAULT_PARAMS)
    plan_dst = deduce_parallel_plan(pair_cluster, [dst], Phase.DECODE, small_model, CASE_WORKLOAD)
    cost_dst = ReplicaCostModel(pair_cluster, plan_dst, small_model, DEFAULT_PARAMS)
    for tokens in batched_token_sizes:
        for bits in (4, 8, 16):
            kv_time = kv_transfer_seconds(
                pair_cluster.network, [src], [dst], small_model,
                num_tokens=tokens, batch_size=1, bits=bits,
            )
            prefill = cost_src.prefill_latency(tokens)
            decode = cost_dst.decode_latency(1, tokens, 16)
            rows.append(
                [
                    "fig18",
                    f"{bits}-bit",
                    tokens,
                    prefill * 1e3,
                    kv_time * 1e3,
                    decode * 1e3,
                    (prefill + kv_time + decode) * 1e3,
                    float("nan"),
                ]
            )

    gain = (
        throughputs.get(4, float("nan")) / throughputs.get(16, float("nan"))
        if throughputs.get(16, 0) else float("nan")
    )
    return ExperimentResult(
        name="Table 8 / Figure 18: KV transport precision (16-bit vs 4-bit)",
        headers=[
            "part",
            "precision",
            "batched_tokens",
            "prefill_ms",
            "kv_comm_ms",
            "decode_ms",
            "e2e_ms",
            "tokens_per_s",
        ],
        rows=rows,
        notes=f"4-bit vs 16-bit end-to-end throughput gain: x{gain:.2f} (paper: x1.34)",
        extras={"throughputs": throughputs},
    )


__all__ = ["run"]

"""Tables 2, 6 and 7: model quality under KV-cache transport quantization.

The paper shows that quantizing the KV cache to 4 bits *for transport only*
(dequantizing before compute) costs < 2 % task accuracy, < 1 % perplexity and
keeps ROUGE against the 16-bit outputs around 0.95.  Our substitution runs the
same mechanism end-to-end on two sizes of the deterministic NumPy transformer
(standing in for LLaMA-7B and LLaMA-13B/30B) and reports the analogous metrics:
greedy-token agreement (accuracy analogue), pseudo-perplexity ratio and
ROUGE-1/2/L of the quantized output against the 16-bit output.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import ExperimentResult
from repro.quality.metrics import evaluate_kv_transport_quality
from repro.quality.tiny_transformer import TinyTransformer, TinyTransformerConfig


#: stand-ins for the two model sizes the paper evaluates
MODEL_PROXIES = {
    "proxy-small (LLaMA-7B stand-in)": TinyTransformerConfig(
        vocab_size=128, d_model=64, num_heads=4, num_layers=4, d_ff=128, seed=7
    ),
    "proxy-large (LLaMA-13B stand-in)": TinyTransformerConfig(
        vocab_size=128, d_model=96, num_heads=6, num_layers=6, d_ff=192, seed=11
    ),
}


def run(
    bit_widths: Sequence[int] = (8, 4),
    num_prompts: int = 6,
    prompt_length: int = 48,
    generate_tokens: int = 24,
    seed: int = 0,
) -> ExperimentResult:
    """Quality metrics for every (model proxy, transport bit-width) pair."""
    rows: List[List] = []
    reports = {}
    for model_name, config in MODEL_PROXIES.items():
        model = TinyTransformer(config)
        for bits in bit_widths:
            report = evaluate_kv_transport_quality(
                bits=bits,
                num_prompts=num_prompts,
                prompt_length=prompt_length,
                generate_tokens=generate_tokens,
                model=model,
                seed=seed,
            )
            reports[(model_name, bits)] = report
            rows.append(
                [
                    model_name,
                    bits,
                    report.token_agreement,
                    report.accuracy_drop,
                    report.ppl_ratio,
                    report.rouge1,
                    report.rouge2,
                    report.rougeL,
                ]
            )
    return ExperimentResult(
        name="Tables 2/6/7: KV transport quantization quality (tiny-transformer proxy)",
        headers=[
            "model",
            "bits",
            "token_agreement",
            "accuracy_drop",
            "ppl_ratio",
            "rouge1",
            "rouge2",
            "rougeL",
        ],
        rows=rows,
        notes="paper: accuracy drop < 2%, PPL within 1%, ROUGE ~0.95 at 4-bit transport",
        extras={"reports": reports},
    )


__all__ = ["run", "MODEL_PROXIES"]

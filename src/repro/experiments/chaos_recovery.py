"""Fault-aware adaptive serving vs. a static plan under a seeded fault storm.

The robustness claim of §3.4 is not just that lightweight rescheduling is
cheap (Table 4) — it is that the serving loop *survives* the full failure
lifecycle: capacity loss degrades the plan, the rescheduler flips the
surviving GPUs into a servable configuration, and when the preempted
instances rejoin, a full replan re-expands onto the recovered capacity.
This harness measures what that lifecycle buys against a static plan that
merely sheds dead groups.

A seeded :class:`~repro.faults.injector.FaultInjector` compiles a fault
storm — a node crash with paired rejoin, spot GPU preemptions and a WAN
link degradation — into one deterministic
:class:`~repro.faults.taxonomy.FaultSchedule`.  Two serving modes then
replay the *same* trace under the *same* schedule on identical window
grids:

* ``static``   — all rescheduling disabled.  Dead groups are dropped
  (mode ``"none"``), surviving groups keep the stale routing, and rejoined
  GPUs sit idle: the plan never re-expands.
* ``adaptive`` — capacity loss triggers the §3.4 flip-only rescheduler
  (falling back to drop-dead-groups when even that fails), rejoin triggers
  a shadow-validated full replan, and SLO breaches/shifts trigger the
  normal online loop.

Because both modes consume the identical compiled schedule, the comparison
isolates the recovery policy; determinism of the injector makes the whole
experiment bitwise replayable (the chaos CI gate rests on that).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, default_model
from repro.faults import FaultInjector, FaultProcess, FaultKind, FaultSchedule
from repro.hardware.cluster import make_cloud_cluster, make_two_datacenter_cluster
from repro.scheduling.scheduler import SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.live import LiveServeConfig, LiveServeReport, LiveServer
from repro.serving.system import ThunderServe
from repro.workload.generator import generate_requests
from repro.workload.spec import CODING_WORKLOAD, WorkloadSpec


_CLUSTERS = {
    "cloud": lambda seed: make_cloud_cluster(seed=seed),
    "two-dc": lambda seed: make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=seed),
}


def default_fault_storm() -> Tuple[FaultProcess, ...]:
    """The default chaos processes: node crash + spot preemption + WAN brownout.

    MTBF/MTTR are sized for the two-datacenter cluster and the default
    240-second trace: the node crash is expected to strike within the first
    half of the trace and rejoin before the end, so a single run exercises
    degrade -> flip-reschedule -> rejoin -> re-expand end to end.
    """
    return (
        FaultProcess(
            kind=FaultKind.NODE_CRASH,
            mtbf_s=120.0,
            mttr_s=90.0,
            name="dc-node",
        ),
        FaultProcess(
            kind=FaultKind.GPU_PREEMPTION,
            mtbf_s=200.0,
            mttr_s=60.0,
            num_gpus=1,
            name="spot",
        ),
        FaultProcess(
            kind=FaultKind.LINK_DEGRADATION,
            mtbf_s=150.0,
            mttr_s=60.0,
            bandwidth_scale=0.5,
            name="wan",
        ),
    )


def _live_config(window_s: float, adaptive: bool, faults: FaultSchedule) -> LiveServeConfig:
    """Live-loop config for one serving mode, with the shared fault schedule."""
    return LiveServeConfig(
        window_s=window_s,
        faults=faults,
        reschedule_on_breach=adaptive,
        reschedule_on_shift=adaptive,
        reschedule_on_failure=adaptive,
        reschedule_on_recovery=adaptive,
    )


def run(
    model_name: str = "llama-30b",
    cluster_name: str = "two-dc",
    workload: Optional[WorkloadSpec] = None,
    request_rate: float = 1.0,
    duration: float = 240.0,
    window_s: float = 30.0,
    processes: Optional[Sequence[FaultProcess]] = None,
    fault_seed: int = 25,
    num_steps: int = 12,
    num_neighbors: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Replay one fault storm under static and fault-aware adaptive serving.

    Parameters
    ----------
    model_name, cluster_name:
        Evaluation model and cluster (``"cloud"`` or ``"two-dc"``).  The
        two-datacenter cluster is the default because a node crash there
        removes half the capacity — heavy enough that re-expansion on rejoin
        genuinely beats standing still under shadow validation.
    workload, request_rate:
        Served workload (default coding) and mean Poisson arrival rate.
    duration, window_s:
        Trace length and live-loop window length (seconds of trace time).
    processes:
        Stochastic fault processes compiled into the storm; defaults to
        :func:`default_fault_storm`.
    fault_seed:
        Seed of the :class:`~repro.faults.injector.FaultInjector` — the same
        seed always compiles the bitwise-identical schedule.  The default is
        chosen so the node crash strikes the *survivable* node of the
        two-datacenter cluster (LLaMA-30B does not fit on the 3090Ti node
        alone, so a crash of the A40 node is unrecoverable by any strategy)
        and rejoins mid-trace, exercising the full lifecycle.
    num_steps, num_neighbors:
        Tabu budget of the initial scheduling run.
    seed:
        Seed for the cluster, the scheduler and the request trace.

    Returns
    -------
    ExperimentResult
        One row per serving mode with worst-window/merged attainment and the
        fault-lifecycle stats of :meth:`~repro.serving.live.LiveServeReport.fault_stats`.
        ``extras`` carries the live reports, the compiled schedule (as dicts)
        and its signature.
    """
    if cluster_name not in _CLUSTERS:
        raise ValueError(f"cluster_name must be one of {sorted(_CLUSTERS)}, got {cluster_name!r}")
    model = default_model(model_name)
    cluster = _CLUSTERS[cluster_name](seed)
    spec = workload or CODING_WORKLOAD
    scheduler_config = SchedulerConfig(
        tabu=TabuSearchConfig(
            num_steps=num_steps, num_neighbors=num_neighbors, memory_size=5, patience=8
        ),
        seed=seed,
    )

    injector = FaultInjector(tuple(processes) if processes is not None else default_fault_storm(),
                             seed=fault_seed)
    schedule = injector.compile(duration, cluster)
    trace = generate_requests(spec, request_rate, duration=duration, seed=seed)

    def build_system() -> ThunderServe:
        return ThunderServe(
            cluster,
            model,
            spec,
            request_rate,
            scheduler_config=scheduler_config,
        )

    base = build_system()
    slo = base.slo
    initial_plan = base.deploy(seed=seed)

    headers = [
        "mode", "worst_window", "merged_attainment", "under_failure",
        "post_recovery", "failure_replans", "recovery_replans", "outage_windows",
    ]
    rows: List[List] = []
    reports: Dict[str, LiveServeReport] = {}
    stats: Dict[str, Dict[str, float]] = {}

    for mode in ("static", "adaptive"):
        system = build_system()
        system.adopt_plan(initial_plan, reason=f"chaos_recovery[{mode}]")
        server = LiveServer(system, config=_live_config(window_s, mode == "adaptive", schedule))
        report = server.run(trace, label=f"chaos-{mode}")
        reports[mode] = report
        fs = report.fault_stats()
        stats[mode] = fs
        rows.append(
            [
                mode,
                report.worst_window_attainment(),
                report.merged.slo_attainment(slo),
                fs["attainment_under_failure"],
                fs["post_recovery_attainment"],
                int(fs["num_failure_replans"]),
                int(fs["num_recovery_replans"]),
                int(fs["outage_windows"]),
            ]
        )

    return ExperimentResult(
        name=(
            f"Chaos recovery: fault-aware adaptive vs static ({cluster_name} cluster, "
            f"{len(schedule)} fault events, seed {fault_seed}, {window_s:g}s windows)"
        ),
        headers=headers,
        rows=rows,
        notes=(
            "static = same windowed loop and fault schedule with all rescheduling "
            "disabled (dead groups dropped, rejoined GPUs stay idle); "
            "adaptive = flip-reschedule on loss, shadow-validated full replan on rejoin"
        ),
        extras={
            "reports": reports,
            "fault_stats": stats,
            "fault_schedule": schedule.to_dicts(),
            "fault_signature": schedule.signature(),
            "slo": slo,
        },
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = ["run", "default_fault_storm"]

"""Adaptive live serving vs. a static plan on shifting workloads.

The live loop (:class:`~repro.serving.live.LiveServer`) replays a trace in
bounded windows, evaluates declarative SLO objectives per window and triggers
the §3.4 lightweight rescheduler on a breach or a detected workload shift.
This harness measures what that adaptivity buys on the two workload-shift
scenarios of the library — ``diurnal`` (a day/night rate cycle) and
``agentic-mix`` (a coding/conversation blend) — against a deliberately
mismatched static plan (scheduled for a steady conversation workload, the
situation §3.4 exists for).

Three serving modes run on identical traces and identical window grids:

* ``static``  — the live loop with all rescheduling disabled: every window is
  served by the initial plan.  Same window grid as adaptive, so worst-window
  attainment compares apples to apples (windowed serving resets queues at
  window boundaries; comparing adaptive-windowed against one batch run would
  confound adaptivity with that reset).
* ``adaptive`` — the full loop: SLO breaches and workload shifts trigger
  lightweight rescheduling between windows.
* a one-shot batch replay of the static plan, reported in ``extras`` as the
  queue-carryover reference.

Because the flip-only rescheduler warm-starts from the current phase
designation, an online rescheduling never looks worse than standing still *to
the estimator*; the table shows what that guarantee translates to in served
worst-window attainment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult, default_model
from repro.hardware.cluster import make_cloud_cluster, make_two_datacenter_cluster
from repro.scenarios.registry import get_scenario
from repro.scheduling.robust import scenario_slo
from repro.scheduling.scheduler import SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.serving.live import LiveServeConfig, LiveServeReport, LiveServer
from repro.serving.system import ThunderServe
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD, WorkloadSpec


_CLUSTERS = {
    "cloud": lambda seed: make_cloud_cluster(seed=seed),
    "two-dc": lambda seed: make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=seed),
}

#: Default per-scenario construction overrides.  The diurnal cycle runs over
#: the *coding* workload so the conversation-planned static plan is mismatched
#: in mix as well as in rate — the §3.4 situation flip-only rescheduling can
#: actually fix (a pure rate swing with a matched mix leaves nothing for a
#: phase flip to improve, and the validated loop correctly stands still there).
#: Rates sit below the scenarios' stress defaults so the comparison runs where
#: plans differ, not where every plan drowns.
DEFAULT_SCENARIO_OVERRIDES = {
    "diurnal": {"request_rate": 4.0, "workload": CODING_WORKLOAD},
    "agentic-mix": {"request_rate": 3.0},
}


def _live_config(window_s: float, adaptive: bool) -> LiveServeConfig:
    """Live-loop config for one serving mode (rescheduling on or off)."""
    return LiveServeConfig(
        window_s=window_s,
        reschedule_on_breach=adaptive,
        reschedule_on_shift=adaptive,
    )


def run(
    model_name: str = "llama-30b",
    cluster_name: str = "cloud",
    scenario_names: Sequence[str] = ("diurnal", "agentic-mix"),
    scenario_overrides: Optional[Dict[str, Dict]] = None,
    static_workload: Optional[WorkloadSpec] = None,
    static_request_rate: float = 3.0,
    duration: float = 120.0,
    window_s: float = 30.0,
    num_steps: int = 12,
    num_neighbors: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Compare adaptive live serving against the frozen static plan per scenario.

    Parameters
    ----------
    model_name, cluster_name:
        Evaluation model and cluster (``"cloud"`` or ``"two-dc"``).
    scenario_names:
        Registered scenarios to replay; defaults to the two workload-shift
        scenarios (``diurnal``, ``agentic-mix``).
    scenario_overrides:
        Per-scenario constructor overrides keyed by scenario name; defaults to
        :data:`DEFAULT_SCENARIO_OVERRIDES`.
    static_workload, static_request_rate:
        The (mismatched) workload the static plan is scheduled for; defaults
        to the steady conversation workload.
    duration, window_s:
        Trace length and live-loop window length (seconds of trace time).
    num_steps, num_neighbors:
        Tabu budget of the initial scheduling run.
    seed:
        Seed for the cluster, the scheduler and the scenario traces.

    Returns
    -------
    ExperimentResult
        One row per scenario: worst-window and merged E2E attainment of the
        static and adaptive runs, the number of adaptive plan changes and the
        number of SLO breach events.  ``extras`` carries the live reports and
        the batch-replay attainment of the static plan.
    """
    if cluster_name not in _CLUSTERS:
        raise ValueError(f"cluster_name must be one of {sorted(_CLUSTERS)}, got {cluster_name!r}")
    model = default_model(model_name)
    cluster = _CLUSTERS[cluster_name](seed)
    workload = static_workload or CONVERSATION_WORKLOAD
    scheduler_config = SchedulerConfig(
        tabu=TabuSearchConfig(
            num_steps=num_steps, num_neighbors=num_neighbors, memory_size=5, patience=8
        ),
        seed=seed,
    )

    headers = [
        "scenario", "static_worst", "adaptive_worst", "static_merged",
        "adaptive_merged", "plan_changes", "breaches",
    ]
    rows: List[List] = []
    reports: Dict[str, Dict[str, LiveServeReport]] = {}
    batch_static: Dict[str, float] = {}
    static_plans: Dict[str, object] = {}

    overrides = (
        scenario_overrides if scenario_overrides is not None else DEFAULT_SCENARIO_OVERRIDES
    )
    for name in scenario_names:
        scenario = get_scenario(name, duration=duration, **overrides.get(name, {}))
        trace = scenario.build_trace(seed=seed)
        slo = scenario_slo(scenario, model)

        def build_system() -> ThunderServe:
            # The scenario's SLO tier governs serving and any online
            # rescheduling; the plan itself is the static schedule below.
            return ThunderServe(
                cluster,
                model,
                workload,
                static_request_rate,
                slo=slo,
                scheduler_config=scheduler_config,
            )

        # The static schedule: the scenario's SLO tier, but the planned
        # (mismatched) workload and rate.  Shared by every mode of this
        # scenario so the comparison isolates the serving policy.
        static_plan = build_system().deploy(seed=seed)
        static_plans[name] = static_plan

        runs: Dict[str, LiveServeReport] = {}
        for mode in ("static", "adaptive"):
            system = build_system()
            system.adopt_plan(static_plan, reason=f"adaptive_vs_static[{name}]")
            server = LiveServer(system, config=_live_config(window_s, mode == "adaptive"))
            runs[mode] = server.run(trace, label=f"{name}-{mode}")
        reports[name] = runs

        batch_system = build_system()
        batch_system.adopt_plan(static_plan, reason=f"adaptive_vs_static[{name}]-batch")
        batch_static[name] = batch_system.serve(trace, label=f"{name}-batch").slo_attainment(slo)

        rows.append(
            [
                name,
                runs["static"].worst_window_attainment(),
                runs["adaptive"].worst_window_attainment(),
                runs["static"].merged.slo_attainment(slo),
                runs["adaptive"].merged.slo_attainment(slo),
                runs["adaptive"].num_plan_changes,
                len(runs["adaptive"].breaches),
            ]
        )

    return ExperimentResult(
        name=(
            f"Adaptive live serving vs static plan ({cluster_name} cluster, "
            f"{window_s:g}s windows, static plan for "
            f"'{workload.name}' @ {static_request_rate:g} req/s)"
        ),
        headers=headers,
        rows=rows,
        notes=(
            "static = same windowed loop with rescheduling disabled; "
            "batch replay of the static plan (queue carryover across windows) "
            "in extras['batch_static']"
        ),
        extras={
            "reports": reports,
            "batch_static": batch_static,
            "static_plans": static_plans,
        },
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = ["run"]

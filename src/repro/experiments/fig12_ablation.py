"""Figure 12: ablation of KV-cache compression and prefill/decode orchestration.

Three configurations of ThunderServe on the cloud cluster:

* **w/ KV compression, w/ orchestration** — the full system (4-bit transport, LP
  routing);
* **w/o KV compression, w/ orchestration** — 16-bit transport, LP routing;
* **w/o KV compression, w/o orchestration** — 16-bit transport, random dispatch.

The paper reports ~1.3x per-request overhead without compression and a further
large degradation with random dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.types import SLOType
from repro.experiments.common import (
    ExperimentResult,
    cloud_cluster,
    default_model,
    default_workloads,
    reference_for,
)
from repro.experiments.endtoend import make_trace
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.simulation.engine import ServingSimulator, SimulatorConfig


def _scheduler(kv_bits: int, orchestration_mode: str, seed: int, steps: int) -> Scheduler:
    return Scheduler(
        SchedulerConfig(
            tabu=TabuSearchConfig(num_steps=steps, num_neighbors=5, memory_size=5, patience=8),
            kv_transport_bits=kv_bits,
            orchestration_mode=orchestration_mode,
            seed=seed,
        )
    )


def run(
    model_name: str = "llama-30b",
    rates: Optional[Dict[str, float]] = None,
    trace_duration: float = 25.0,
    slo_scales: Sequence[float] = (2.0, 3.0, 4.0, 6.0, 8.0, 12.0),
    seed: int = 0,
    scheduler_steps: int = 10,
    workload_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Attainment curves for the three ablation configurations."""
    model = default_model(model_name)
    cluster = cloud_cluster(seed=seed)
    workloads = default_workloads()
    if workload_names is not None:
        workloads = {k: v for k, v in workloads.items() if k in set(workload_names)}
    rates = rates or {"coding": 9.0, "conversation": 6.0}

    configurations = [
        ("kv_comp+orchestration", 4, "lp"),
        ("no_kv_comp+orchestration", 16, "lp"),
        ("no_kv_comp+random_dispatch", 16, "random"),
    ]

    rows: List[List] = []
    kv_fractions: Dict[str, Dict[str, float]] = {}
    for workload_name, workload in workloads.items():
        rate = rates[workload_name]
        reference = reference_for(model, workload)
        trace = make_trace(workload, rate, trace_duration, seed + 509)
        kv_fractions[workload_name] = {}
        for label, kv_bits, mode in configurations:
            scheduler = _scheduler(kv_bits, mode, seed, scheduler_steps)
            slo = scheduler.default_slo(model, workload)
            plan = scheduler.schedule(cluster, model, workload, rate, slo, seed=seed).plan
            result = ServingSimulator(
                cluster, plan, model, config=SimulatorConfig(seed=seed)
            ).run(trace, label=label)
            summary = result.summary()
            total = summary["mean_prefill"] + summary["mean_kv_transfer"] + summary["mean_decode"]
            kv_fractions[workload_name][label] = (
                summary["mean_kv_transfer"] / total if total > 0 else float("nan")
            )
            for scale in slo_scales:
                attainment = result.slo_attainment(reference.slo_spec(scale), SLOType.E2E)
                rows.append([workload_name, label, scale, attainment])

    return ExperimentResult(
        name="Figure 12: ablation of KV compression and orchestration",
        headers=["workload", "configuration", "slo_scale", "e2e_attainment"],
        rows=rows,
        notes="extras['kv_fraction'] = share of service time spent in KV transfer per configuration",
        extras={"kv_fraction": kv_fractions},
    )


__all__ = ["run"]

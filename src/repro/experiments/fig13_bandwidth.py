"""Figure 13: inter-connection bandwidth matrices of the cloud and in-house clusters.

The cloud matrix is strongly heterogeneous (PCIe within a node, a spread of
Ethernet speeds between nodes); the in-house matrix is uniformly fast (NVLink).
The experiment reports the matrices (as extras) plus summary statistics that make
the contrast quantitative.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, cloud_cluster, inhouse_cluster


def _summary(matrix: np.ndarray) -> dict:
    off_diag = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    return {
        "min": float(off_diag.min()),
        "median": float(np.median(off_diag)),
        "max": float(off_diag.max()),
        "heterogeneity": float(off_diag.max() / off_diag.min()),
    }


def run(seed: int = 0) -> ExperimentResult:
    """Bandwidth-matrix statistics for both environments (matrices in extras)."""
    cloud = cloud_cluster(seed=seed)
    inhouse = inhouse_cluster()
    cloud_matrix = cloud.network.bandwidth_matrix_gbps()
    inhouse_matrix = inhouse.network.bandwidth_matrix_gbps()
    cloud_stats = _summary(cloud_matrix)
    inhouse_stats = _summary(inhouse_matrix)
    rows = [
        ["cloud (32 GPUs)", cloud_stats["min"], cloud_stats["median"], cloud_stats["max"], cloud_stats["heterogeneity"]],
        ["in-house (8xA100)", inhouse_stats["min"], inhouse_stats["median"], inhouse_stats["max"], inhouse_stats["heterogeneity"]],
    ]
    return ExperimentResult(
        name="Figure 13: GPU-to-GPU bandwidth matrices (GB/s)",
        headers=["environment", "min_GBps", "median_GBps", "max_GBps", "max/min"],
        rows=rows,
        notes="full matrices available in extras['cloud_matrix'] / extras['inhouse_matrix']",
        extras={"cloud_matrix": cloud_matrix, "inhouse_matrix": inhouse_matrix},
    )


__all__ = ["run"]

"""Robust vs. static scheduling across the scenario library.

The single-workload ("static") scheduler optimises a plan for one workload spec;
robust mode optimises the worst case (or another aggregate) over the whole
scenario library.  This harness schedules both ways on the same cluster with the
same search budget and reports the per-scenario estimated SLO attainment of each
plan, plus the worst-case / mean aggregates — the quantity robust mode exists to
move.  With ``simulate=True`` the same comparison is replayed through the
discrete-event simulator via :class:`~repro.scenarios.sweep.ScenarioSweep`, so
the estimator-optimised worst case can be checked against the served one.

The robust search is warm-started from the static plan's solution: the initial
solution is always evaluated, so the robust plan's aggregate **objective** can
only match or beat the static plan's by construction.  (The objective is
attainment plus the small served-capacity bonus, so the worst-case *attainment*
comparison is one-sided in practice rather than by proof — the bonus could in
principle trade a sliver of attainment for served mass.)  Any worst-case gap
the table reports is headroom the static plan leaves on the table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult, default_model
from repro.hardware.cluster import Cluster, make_cloud_cluster, make_two_datacenter_cluster
from repro.scenarios.base import Scenario
from repro.scenarios.registry import default_scenarios
from repro.scenarios.sweep import ScenarioSweep
from repro.scheduling.robust import RobustObjective, scenario_slo
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.workload.spec import CONVERSATION_WORKLOAD, WorkloadSpec


_CLUSTERS = {
    "cloud": lambda seed: make_cloud_cluster(seed=seed),
    "two-dc": lambda seed: make_two_datacenter_cluster(inter_dc_gbps=5.0, seed=seed),
}


def _scheduler(seed: int, num_steps: int, num_neighbors: int) -> Scheduler:
    config = SchedulerConfig(
        tabu=TabuSearchConfig(
            num_steps=num_steps, num_neighbors=num_neighbors, memory_size=5, patience=8
        ),
        seed=seed,
    )
    return Scheduler(config)


def _estimated_attainments(
    scheduler: Scheduler,
    cluster: Cluster,
    model,
    scenarios: Sequence[Scenario],
    solution,
):
    """Per-scenario estimated attainment and objective of one fixed solution.

    A pure scoring pass — one per-scenario lower-level solve of ``solution``
    with a shared plan cache, no search.  Returns ``(attainments, objectives)``
    keyed by scenario name, in scenario order.
    """
    plan_cache: Dict = {}
    attainments: Dict[str, float] = {}
    objectives: Dict[str, float] = {}
    for scenario in scenarios:
        solver = scheduler.build_solver(
            cluster,
            model,
            scenario.planning_workload(),
            scenario.request_rate,
            scenario_slo(scenario, model, scheduler.config.cost_params),
            plan_cache=plan_cache,
        )
        lower = solver.solve(solution)
        attainments[scenario.name] = lower.estimated_attainment
        objectives[scenario.name] = lower.objective
    return attainments, objectives


def run(
    model_name: str = "llama-30b",
    cluster_name: str = "cloud",
    static_workload: Optional[WorkloadSpec] = None,
    static_request_rate: float = 4.0,
    duration: float = 60.0,
    robust: Optional[RobustObjective] = None,
    num_steps: int = 12,
    num_neighbors: int = 5,
    seed: int = 0,
    simulate: bool = False,
) -> ExperimentResult:
    """Compare the robust plan against the single-workload plan scenario by scenario.

    Returns one row per scenario with the estimated attainment of both plans
    (columns ``static_est`` / ``robust_est``; with ``simulate=True`` also
    ``static_sim`` / ``robust_sim``), followed by ``WORST-CASE`` and ``MEAN``
    aggregate rows.  ``extras`` carries the plans, the aggregates and the raw
    sweep outcomes for downstream analysis.
    """
    if cluster_name not in _CLUSTERS:
        raise ValueError(f"cluster_name must be one of {sorted(_CLUSTERS)}, got {cluster_name!r}")
    model = default_model(model_name)
    cluster = _CLUSTERS[cluster_name](seed)
    scenarios = default_scenarios(duration=duration)
    robust = robust or RobustObjective.worst_case()

    # Static: the paper's single-workload schedule (conversation by default).
    workload = static_workload or CONVERSATION_WORKLOAD
    static_scheduler = _scheduler(seed, num_steps, num_neighbors)
    static = static_scheduler.schedule(cluster, model, workload, static_request_rate)

    # Robust: same budget, same seed, warm-started from the static solution.
    robust_scheduler = _scheduler(seed, num_steps, num_neighbors)
    robust_result = robust_scheduler.schedule_robust(
        cluster, model, scenarios, robust=robust, initial_solution=static.solution
    )

    # Score the *static* solution under every scenario's estimator.
    static_est, static_objectives = _estimated_attainments(
        static_scheduler, cluster, model, scenarios, static.solution
    )
    robust_est = robust_result.per_scenario_attainment
    # Structural invariant (warm start => the robust search saw the static
    # solution): the robust aggregate objective can only match or beat this.
    static_robust_objective = robust.aggregate(
        [static_objectives[s.name] for s in scenarios]
    )

    static_sim: Dict[str, float] = {}
    robust_sim: Dict[str, float] = {}
    outcomes_static = outcomes_robust = None
    if simulate:
        # A plan that cannot survive a scenario (e.g. infeasible rescheduling
        # after a preemption) scores zero there instead of aborting the sweep.
        sweep = ScenarioSweep(scenarios, seed=seed, on_error="zero")
        outcomes_static = sweep.evaluate(cluster, model, static.plan)
        outcomes_robust = sweep.evaluate(cluster, model, robust_result.plan)
        static_sim = {n: o.attainment_e2e for n, o in outcomes_static.items()}
        robust_sim = {n: o.attainment_e2e for n, o in outcomes_robust.items()}

    headers = ["scenario", "static_est", "robust_est"]
    if simulate:
        headers += ["static_sim", "robust_sim"]
    rows: List[List] = []
    for scenario in scenarios:
        row: List = [
            scenario.name,
            static_est[scenario.name],
            robust_est[scenario.name],
        ]
        if simulate:
            row += [static_sim[scenario.name], robust_sim[scenario.name]]
        rows.append(row)

    aggregates = {
        "static_worst": min(static_est.values()),
        "robust_worst": robust_result.worst_case_attainment,
        "static_mean": sum(static_est.values()) / len(static_est),
        "robust_mean": robust_result.mean_attainment,
        "static_robust_objective": static_robust_objective,
        "robust_objective": robust_result.objective,
    }
    worst_row: List = ["WORST-CASE", aggregates["static_worst"], aggregates["robust_worst"]]
    mean_row: List = ["MEAN", aggregates["static_mean"], aggregates["robust_mean"]]
    if simulate:
        worst_row += [min(static_sim.values()), min(robust_sim.values())]
        mean_row += [
            sum(static_sim.values()) / len(static_sim),
            sum(robust_sim.values()) / len(robust_sim),
        ]
    rows += [worst_row, mean_row]

    return ExperimentResult(
        name=(
            f"Robust vs static scheduling ({robust.kind} aggregate, "
            f"{cluster_name} cluster, {len(scenarios)} scenarios)"
        ),
        headers=headers,
        rows=rows,
        notes=(
            f"robust binding scenario: {robust_result.worst_scenario}; "
            f"robust objective {robust_result.objective:.4f} vs static plan's "
            f"workload-specific objective {static.objective:.4f}"
        ),
        extras={
            "static_plan": static.plan,
            "robust_plan": robust_result.plan,
            "static_result": static,
            "robust_result": robust_result,
            "aggregates": aggregates,
            "outcomes_static": outcomes_static,
            "outcomes_robust": outcomes_robust,
        },
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run(simulate=False)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = ["run"]

"""Figure 19 (Appendix J): accuracy of the scheduler's analytic estimator.

Left panel — SLO attainment: the scheduler's analytic estimator (quantile-grid
latencies + two-moment M/G/1 queueing with padded-batch service moments +
routed LP mass; see ``repro.scheduling.estimator``) versus the discrete-event
simulator, swept over SLO scales.

Right panel — the alpha-beta KV-communication model: the Equation-1 estimate of
the KV transfer latency versus the transfer latency measured inside the
discrete-event simulation, swept over batched token sizes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.types import SLOType
from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.experiments.common import (
    ExperimentResult,
    cloud_cluster,
    default_model,
    quick_scheduler,
    reference_for,
)
from repro.experiments.endtoend import make_trace
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.spec import CONVERSATION_WORKLOAD, WorkloadSpec


def run(
    model_name: str = "llama-30b",
    request_rate: float = 6.0,
    trace_duration: float = 25.0,
    slo_scales: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    batched_token_sizes: Sequence[int] = (1024, 2048, 4096, 8192),
    seed: int = 0,
    scheduler_steps: int = 12,
) -> ExperimentResult:
    """Estimated vs simulated SLO attainment, and alpha-beta vs simulated KV latency."""
    model = default_model(model_name)
    cluster = cloud_cluster(seed=seed)
    workload = CONVERSATION_WORKLOAD
    reference = reference_for(model, workload)

    scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
    schedule = scheduler.schedule(cluster, model, workload, request_rate)
    plan = schedule.plan
    solution = UpperLevelSolution.from_lists([(g.gpu_ids, g.phase) for g in plan.groups])

    trace = make_trace(workload, request_rate, trace_duration, seed + 811)
    sim_result = ServingSimulator(cluster, plan, model, config=SimulatorConfig(seed=seed)).run(trace)

    rows: List[List] = []
    errors = []
    for scale in slo_scales:
        slo = reference.slo_spec(scale)
        solver = LowerLevelSolver(
            cluster=cluster,
            model=model,
            workload=workload,
            slo=slo,
            request_rate=request_rate,
            kv_transport_bits=plan.kv_transport_bits,
        )
        estimated = solver.solve(solution).estimated_attainment
        actual = sim_result.slo_attainment(slo, SLOType.E2E)
        errors.append(abs(estimated - actual))
        rows.append(["slo_attainment", scale, estimated * 100.0, actual * 100.0])

    # Alpha-beta model vs simulated KV transfer time across batched token sizes.
    prefill_group = plan.prefill_groups[0]
    decode_group = plan.decode_groups[0]
    kv_errors = []
    for tokens in batched_token_sizes:
        estimated = kv_transfer_seconds(
            cluster.network, prefill_group.gpu_ids, decode_group.gpu_ids, model,
            num_tokens=tokens, batch_size=1, bits=plan.kv_transport_bits,
        )
        # "Measured": the per-request KV transfer latencies of the simulation,
        # rescaled from the trace's mean prompt length to this token count (the
        # simulator charges transfer time linearly in tokens through the same
        # network path, so this mirrors a micro-benchmark at that size).
        observed_mean = sim_result.summary()["mean_kv_transfer"]
        mean_tokens = np.mean([m.request.input_length + 1 for m in sim_result.finished])
        measured = observed_mean * tokens / mean_tokens if mean_tokens > 0 else float("nan")
        kv_errors.append(abs(estimated - measured) / max(measured, 1e-9))
        rows.append(["kv_latency_ms", tokens, estimated * 1e3, measured * 1e3])

    notes = (
        f"mean |estimated - simulated| attainment gap: {np.mean(errors) * 100:.1f} pts; "
        f"mean relative KV-latency error: {np.mean(kv_errors) * 100:.1f}%"
    )
    return ExperimentResult(
        name="Figure 19: simulator / alpha-beta model accuracy",
        headers=["panel", "x_value", "estimated", "simulated"],
        rows=rows,
        notes=notes,
        extras={"attainment_gap": float(np.mean(errors)), "kv_latency_rel_error": float(np.mean(kv_errors))},
    )


__all__ = ["run"]

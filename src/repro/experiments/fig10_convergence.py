"""Figure 10: convergence of the scheduling algorithm for different cluster sizes.

The tabu search is run from scratch on 16-, 24- and 32-GPU subsets of the cloud
environment; the experiment records the best estimated SLO attainment as a
function of wall-clock search time.  The paper's observation: the search converges
within tens of seconds even at 32 GPUs, which is negligible against hourly-scale
serving.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import ExperimentResult, cloud_cluster, default_model, quick_scheduler
from repro.scheduling.scheduler import SchedulerConfig, Scheduler
from repro.scheduling.tabu import TabuSearchConfig
from repro.workload.spec import CONVERSATION_WORKLOAD


def _subcluster(cluster, num_gpus: int):
    """Take the first ``num_gpus`` GPUs (whole nodes first) of the cloud cluster."""
    ids = cluster.gpu_ids[:num_gpus]
    return cluster.restricted_to(ids, name=f"cloud-{num_gpus}gpu")


def run(
    model_name: str = "llama-30b",
    cluster_sizes: Sequence[int] = (16, 24, 32),
    request_rate: float = 9.0,
    num_steps: int = 25,
    num_neighbors: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Tabu-search convergence traces (time vs best objective) per cluster size."""
    model = default_model(model_name)
    cloud = cloud_cluster(seed=seed)
    workload = CONVERSATION_WORKLOAD

    rows: List[List] = []  # objective includes the small served-capacity bonus
    converge_times = {}
    for size in cluster_sizes:
        cluster = _subcluster(cloud, size)
        config = SchedulerConfig(
            tabu=TabuSearchConfig(
                num_steps=num_steps, num_neighbors=num_neighbors, memory_size=5, patience=0
            ),
            seed=seed,
        )
        scheduler = Scheduler(config)
        result = scheduler.schedule(cluster, model, workload, request_rate)
        history = result.trace.best_curve()
        final_best = history[-1][1] if history else float("nan")
        converge_time = None
        for elapsed, best in history:
            rows.append([size, elapsed, best * 100.0])
            if converge_time is None and final_best > 0 and best >= 0.99 * final_best:
                converge_time = elapsed
        converge_times[size] = converge_time if converge_time is not None else float("nan")

    notes = "; ".join(
        f"{size} GPUs converge in {t:.1f}s" for size, t in converge_times.items()
    )
    return ExperimentResult(
        name="Figure 10: scheduler convergence (estimated SLO % vs search time)",
        headers=["num_gpus", "search_time_s", "estimated_slo_percent"],
        rows=rows,
        notes=notes + " (paper: 21s / 36s / 54s for 16 / 24 / 32 GPUs)",
        extras={"convergence_time_s": converge_times},
    )


__all__ = ["run"]

"""Figure 7: SLO attainment of ThunderServe vs HexGen on the heterogeneous cloud.

For the coding and conversation workloads at several request rates, both systems
serve the same Poisson trace on the same 32-GPU cloud cluster; the experiment
reports TTFT / TPOT / E2E SLO attainment swept over SLO scales.  The paper's
headline: ThunderServe needs up to 1.8x (coding) / 1.4x (conversation) lower E2E
latency deadlines than HexGen to reach the same attainment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.types import SLOType
from repro.experiments.common import (
    DEFAULT_SLO_SCALES,
    ExperimentResult,
    cloud_cluster,
    default_model,
    default_workloads,
    quick_scheduler,
    reference_for,
)
from repro.experiments.endtoend import (
    attainment_rows,
    make_trace,
    min_deadline_summary,
    run_hexgen,
    run_thunderserve,
)


#: request rates evaluated per workload (paper: coding 18/12/6, conversation 12/9/6)
DEFAULT_RATES: Dict[str, Sequence[float]] = {
    "coding": (12.0, 6.0),
    "conversation": (9.0, 6.0),
}


def run(
    model_name: str = "llama-30b",
    rates: Optional[Dict[str, Sequence[float]]] = None,
    trace_duration: float = 30.0,
    slo_scales: Sequence[float] = tuple(DEFAULT_SLO_SCALES),
    seed: int = 0,
    scheduler_steps: int = 12,
) -> ExperimentResult:
    """Attainment curves of ThunderServe and HexGen on the cloud cluster."""
    model = default_model(model_name)
    cluster = cloud_cluster(seed=seed)
    workloads = default_workloads()
    rates = rates or DEFAULT_RATES

    rows: List[List] = []
    deadlines: Dict[str, Dict[str, float]] = {}
    for workload_name, workload in workloads.items():
        reference = reference_for(model, workload)
        for rate in rates.get(workload_name, ()):
            trace = make_trace(workload, rate, trace_duration, seed + 101)
            scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
            ts_result, _plan = run_thunderserve(cluster, model, workload, rate, trace, scheduler, seed=seed)
            hex_result = run_hexgen(cluster, model, workload, rate, trace, seed=seed)
            rows += attainment_rows(ts_result, reference, slo_scales, "thunderserve", workload_name, rate)
            rows += attainment_rows(hex_result, reference, slo_scales, "hexgen", workload_name, rate)
            deadlines[f"{workload_name}@{rate:g}"] = min_deadline_summary(
                {"thunderserve": ts_result, "hexgen": hex_result}, reference, target=0.9
            )

    return ExperimentResult(
        name="Figure 7: SLO attainment vs SLO scale on the cloud (ThunderServe vs HexGen)",
        headers=["workload", "rate", "system", "slo_type", "slo_scale", "attainment"],
        rows=rows,
        notes="extras['min_deadline_90'] holds the minimum SLO scale reaching 90% E2E attainment",
        extras={"min_deadline_90": deadlines},
    )


__all__ = ["run", "DEFAULT_RATES"]

"""Figure 11 / Appendix G: serving quality after GPUs go offline.

Four out of the 32 cloud GPUs (one 4xA6000 instance, which the scheduler typically
uses for decode replicas) become unavailable.  The experiment compares the SLO
attainment of the original deployment against three reactions: full rescheduling
(re-run the whole scheduler on the surviving GPUs), ThunderServe's lightweight
rescheduling (flip-only phase re-designation + re-orchestration, no reloads), and
no rescheduling at all (just drop the lost replicas).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.types import SLOType
from repro.experiments.common import (
    ExperimentResult,
    cloud_cluster,
    default_model,
    default_workloads,
    quick_scheduler,
    reference_for,
)
from repro.experiments.endtoend import make_trace
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.rescheduling import LightweightRescheduler
from repro.simulation.engine import ServingSimulator, SimulatorConfig


def _simulate(cluster, plan, model, trace, seed):
    simulator = ServingSimulator(cluster, plan, model, config=SimulatorConfig(seed=seed))
    return simulator.run(trace)


def run(
    model_name: str = "llama-30b",
    rates: Optional[Dict[str, float]] = None,
    trace_duration: float = 25.0,
    slo_scales: Sequence[float] = (2.0, 3.0, 4.0, 6.0, 8.0, 12.0),
    seed: int = 0,
    scheduler_steps: int = 12,
    workload_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Attainment before the failure and after it under each rescheduling strategy."""
    model = default_model(model_name)
    cluster = cloud_cluster(seed=seed)
    workloads = default_workloads()
    if workload_names is not None:
        workloads = {k: v for k, v in workloads.items() if k in set(workload_names)}
    rates = rates or {"coding": 9.0, "conversation": 6.0}

    # The failed instance: one whole 4xA6000 node.
    failed_node = next(n for n in cluster.nodes if n.gpu_type == "A6000")
    failed_gpu_ids = [g.gpu_id for g in cluster.gpus_on_node(failed_node.node_id)]
    degraded = cluster.without_gpus(failed_gpu_ids)

    rows: List[List] = []
    for workload_name, workload in workloads.items():
        rate = rates[workload_name]
        reference = reference_for(model, workload)
        trace = make_trace(workload, rate, trace_duration, seed + 409)

        scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
        slo = scheduler.default_slo(model, workload)
        original = scheduler.schedule(cluster, model, workload, rate, slo, seed=seed).plan

        # Strategy 1: full rescheduling from scratch on the surviving GPUs.
        full_plan = quick_scheduler(seed=seed + 1, steps=scheduler_steps).schedule(
            degraded, model, workload, rate, slo, seed=seed + 1
        ).plan
        # Strategy 2: lightweight rescheduling (keep plans, flip phases, re-orchestrate).
        light_plan = LightweightRescheduler(seed=seed).reschedule(
            original, degraded, model, workload, rate, slo
        ).plan
        # Strategy 3: no rescheduling — drop the groups that lost GPUs.
        surviving = [g for g in original.groups if not (set(g.gpu_ids) & set(failed_gpu_ids))]
        none_plan = DeploymentPlan(
            groups=tuple(surviving),
            routing=None,
            model_name=original.model_name,
            kv_transport_bits=original.kv_transport_bits,
        )

        runs = {
            "before_failure": _simulate(cluster, original, model, trace, seed),
            "full_rescheduling": _simulate(degraded, full_plan, model, trace, seed),
            "lightweight_rescheduling": _simulate(degraded, light_plan, model, trace, seed),
            "no_rescheduling": _simulate(degraded, none_plan, model, trace, seed),
        }
        for strategy, result in runs.items():
            for scale in slo_scales:
                attainment = result.slo_attainment(reference.slo_spec(scale), SLOType.E2E)
                rows.append([workload_name, strategy, scale, attainment])

    return ExperimentResult(
        name="Figure 11: SLO attainment after 4 of 32 GPUs go offline",
        headers=["workload", "strategy", "slo_scale", "e2e_attainment"],
        rows=rows,
        notes=(
            "paper: lightweight rescheduling ~ full rescheduling > no rescheduling, "
            "with near-zero interruption"
        ),
        extras={"failed_gpu_ids": failed_gpu_ids},
    )


__all__ = ["run"]

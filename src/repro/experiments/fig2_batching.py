"""Figure 2: the effect of batching on the prefill and decode phases.

LLaMA-7B, sequences of 1024 tokens, batch sizes 1-6.  Prefill throughput plateaus
almost immediately (the GPU is already saturated by one 1024-token prompt) while
decode throughput keeps climbing with the batch size — the asymmetry that makes
latency-optimal prefill replicas and throughput-optimal decode replicas the right
objectives.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel.latency import DEFAULT_PARAMS, ReplicaCostModel
from repro.experiments.common import ExperimentResult, default_model
from repro.hardware.cluster import make_homogeneous_cluster
from repro.core.types import Phase
from repro.parallelism.config import ReplicaPlan
from repro.workload.spec import WorkloadSpec


def run(
    model_name: str = "llama-7b",
    gpu_type: str = "A5000",
    sequence_length: int = 1024,
    batch_sizes: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> ExperimentResult:
    """Throughput (tokens/s) vs batch size for both phases on a single GPU."""
    model = default_model(model_name)
    cluster = make_homogeneous_cluster(gpu_type, num_gpus=1, gpus_per_node=1)
    gpu_id = cluster.gpu_ids[0]
    plan = ReplicaPlan.from_stage_lists([[gpu_id]], [model.num_layers])
    cost = ReplicaCostModel(cluster, plan, model, DEFAULT_PARAMS)

    rows = []
    for batch in batch_sizes:
        prefill_latency = cost.prefill_latency(sequence_length, batch_size=batch)
        prefill_throughput = sequence_length * batch / prefill_latency
        decode_step = cost.decode_step_latency(batch, sequence_length)
        decode_throughput = batch / decode_step
        rows.append([batch, prefill_throughput, decode_throughput])

    prefill_gain = rows[-1][1] / rows[0][1]
    decode_gain = rows[-1][2] / rows[0][2]
    return ExperimentResult(
        name=f"Figure 2: batching effect ({model_name}, seq {sequence_length}, {gpu_type})",
        headers=["batch_size", "prefill_tokens_per_s", "decode_tokens_per_s"],
        rows=rows,
        notes=(
            f"batch 1->{batch_sizes[-1]} gain: prefill x{prefill_gain:.2f} (plateau), "
            f"decode x{decode_gain:.2f} (keeps scaling)"
        ),
        extras={"prefill_gain": prefill_gain, "decode_gain": decode_gain},
    )


__all__ = ["run"]

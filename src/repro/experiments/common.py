"""Shared plumbing for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.costmodel.reference import ReferenceLatency, a100_reference_latency
from repro.hardware.cluster import Cluster, make_cloud_cluster, make_inhouse_cluster
from repro.model.architecture import ModelConfig, get_model_config
from repro.scheduling.scheduler import Scheduler, SchedulerConfig
from repro.scheduling.tabu import TabuSearchConfig
from repro.utils.tables import format_table
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD, WorkloadSpec, get_workload


@dataclass
class ExperimentResult:
    """Structured output of one experiment (ready to print as a text table)."""

    name: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    #: free-form extra artefacts (matrices, plans, curves) for downstream use
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_table(self, precision: int = 3) -> str:
        """Render the rows as an aligned text table."""
        table = format_table(self.headers, self.rows, precision=precision, title=self.name)
        if self.notes:
            table += f"\n({self.notes})"
        return table

    def column(self, header: str) -> List[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_table()


# --------------------------------------------------------------------------- defaults
#: SLO scales the experiments sweep when none are specified.
DEFAULT_SLO_SCALES = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0]


def default_model(name: str = "llama-30b") -> ModelConfig:
    """The evaluation model (LLaMA-30B unless an experiment says otherwise)."""
    return get_model_config(name)


def default_workloads() -> Dict[str, WorkloadSpec]:
    """The paper's two workloads keyed by name."""
    return {"coding": CODING_WORKLOAD, "conversation": CONVERSATION_WORKLOAD}


def reference_for(model: ModelConfig, workload: WorkloadSpec) -> ReferenceLatency:
    """A100 reference latencies anchoring SLO scales for a workload."""
    return a100_reference_latency(model, workload)


def quick_scheduler(seed: int = 0, steps: int = 12, neighbors: int = 5, kv_bits: int = 4) -> Scheduler:
    """A scheduler with a reduced tabu budget for experiment-sized runs.

    The full Algorithm-1 budget (100 steps x 10 neighbours) is what the Figure 10
    convergence experiment measures; the end-to-end experiments use a smaller
    budget because the search has typically converged long before it is exhausted.
    """
    config = SchedulerConfig(
        tabu=TabuSearchConfig(num_steps=steps, num_neighbors=neighbors, memory_size=5, patience=8),
        kv_transport_bits=kv_bits,
        seed=seed,
    )
    return Scheduler(config)


def cloud_cluster(seed: int = 0) -> Cluster:
    """The 32-GPU heterogeneous cloud environment of §5.1."""
    return make_cloud_cluster(seed=seed)


def inhouse_cluster() -> Cluster:
    """The 8xA100 in-house environment of §5.1."""
    return make_inhouse_cluster()


def fixed_ratio_plan(
    cluster: Cluster,
    model: ModelConfig,
    workload: WorkloadSpec,
    request_rate: float,
    num_prefill: int,
    num_decode: int,
    gpus_per_replica: int,
    slo_scale: float = 5.0,
    kv_transport_bits: int = 4,
):
    """Build a deployment plan with a *fixed* prefill:decode replica ratio.

    Used by the Figure 6 / Figure 14 experiments, which sweep the ratio by hand
    (group construction is fixed to consecutive ``gpus_per_replica``-sized groups)
    and let the lower-level solver deduce parallel plans and the orchestration.
    Returns ``(plan, lower_level_result)``.
    """
    from repro.core.types import Phase
    from repro.scheduling.lower_level import LowerLevelSolver
    from repro.scheduling.solution import UpperLevelSolution

    total = (num_prefill + num_decode) * gpus_per_replica
    gpu_ids = cluster.gpu_ids
    if total > len(gpu_ids):
        raise ValueError(
            f"ratio {num_prefill}:{num_decode} with {gpus_per_replica} GPUs/replica needs "
            f"{total} GPUs but the cluster has {len(gpu_ids)}"
        )
    groups = [
        gpu_ids[i * gpus_per_replica : (i + 1) * gpus_per_replica]
        for i in range(num_prefill + num_decode)
    ]
    phases = [Phase.PREFILL] * num_prefill + [Phase.DECODE] * num_decode
    solution = UpperLevelSolution.from_lists(list(zip(groups, phases)))
    slo = reference_for(model, workload).slo_spec(slo_scale)
    solver = LowerLevelSolver(
        cluster=cluster,
        model=model,
        workload=workload,
        slo=slo,
        request_rate=request_rate,
        kv_transport_bits=kv_transport_bits,
    )
    result = solver.solve(solution)
    if not result.feasible or result.plan is None:
        raise ValueError(f"ratio {num_prefill}:{num_decode} is infeasible on {cluster.name}")
    return result.plan, result


__all__ = [
    "ExperimentResult",
    "DEFAULT_SLO_SCALES",
    "default_model",
    "default_workloads",
    "reference_for",
    "quick_scheduler",
    "cloud_cluster",
    "inhouse_cluster",
    "fixed_ratio_plan",
]

"""Table 1: GPU specifications and pricing.

A direct rendering of the GPU catalog, plus the derived cost-efficiency columns
(FLOPS per dollar and bandwidth per dollar) that explain why the A40 is the
natural prefill GPU and the 3090Ti the natural decode GPU.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware.gpu import GPU_CATALOG


def run() -> ExperimentResult:
    """Render the Table 1 GPU catalog."""
    headers = [
        "gpu",
        "mem_bandwidth_GBps",
        "peak_fp16_TFLOPS",
        "memory_GB",
        "price_per_hr",
        "TFLOPS_per_$",
        "GBps_per_$",
    ]
    rows = []
    for name, spec in sorted(GPU_CATALOG.items()):
        rows.append(
            [
                name,
                spec.memory_bandwidth_gbps,
                spec.peak_fp16_tflops,
                spec.memory_gb,
                spec.price_per_hour,
                spec.peak_fp16_tflops / spec.price_per_hour,
                spec.memory_bandwidth_gbps / spec.price_per_hour,
            ]
        )
    return ExperimentResult(
        name="Table 1: GPU specifications and pricing",
        headers=headers,
        rows=rows,
        notes="specs reproduced verbatim from the paper; per-dollar columns derived",
    )


__all__ = ["run"]

"""Figure 9: system throughput comparison (normalised to ThunderServe).

All four systems serve a saturating trace (request rate well above the sustainable
rate) on their respective environments — ThunderServe and HexGen on the 32-GPU
cloud, DistServe and vLLM on the 8xA100 in-house server — and the experiment
reports generated-token throughput, both absolute and normalised by ThunderServe's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    cloud_cluster,
    default_model,
    default_workloads,
    inhouse_cluster,
    quick_scheduler,
)
from repro.experiments.endtoend import (
    make_trace,
    run_distserve,
    run_hexgen,
    run_thunderserve,
    run_vllm,
)


def run(
    model_name: str = "llama-30b",
    saturation_rates: Optional[Dict[str, float]] = None,
    trace_duration: float = 25.0,
    seed: int = 0,
    scheduler_steps: int = 12,
    workload_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Throughput of ThunderServe, HexGen, DistServe and vLLM under saturation."""
    model = default_model(model_name)
    cloud = cloud_cluster(seed=seed)
    inhouse = inhouse_cluster()
    workloads = default_workloads()
    if workload_names is not None:
        workloads = {k: v for k, v in workloads.items() if k in set(workload_names)}
    saturation_rates = saturation_rates or {"coding": 24.0, "conversation": 16.0}

    rows: List[List] = []
    speedups: Dict[str, Dict[str, float]] = {}
    for workload_name, workload in workloads.items():
        rate = saturation_rates[workload_name]
        trace = make_trace(workload, rate, trace_duration, seed + 307)
        scheduler = quick_scheduler(seed=seed, steps=scheduler_steps)
        results = {}
        results["thunderserve"], _ = run_thunderserve(cloud, model, workload, rate, trace, scheduler, seed=seed)
        results["hexgen"] = run_hexgen(cloud, model, workload, rate, trace, seed=seed)
        results["distserve"] = run_distserve(inhouse, model, workload, rate, trace, seed=seed)
        results["vllm"] = run_vllm(inhouse, model, workload, rate, trace, seed=seed)
        ts_throughput = results["thunderserve"].total_token_throughput
        speedups[workload_name] = {}
        for system, result in results.items():
            throughput = result.total_token_throughput
            normalised = throughput / ts_throughput if ts_throughput > 0 else float("nan")
            rows.append(
                [workload_name, system, throughput, result.output_token_throughput, normalised]
            )
            if system != "thunderserve" and throughput > 0:
                speedups[workload_name][system] = ts_throughput / throughput

    note_parts = []
    for workload_name, per_system in speedups.items():
        gains = ", ".join(f"{sys}: x{gain:.2f}" for sys, gain in per_system.items())
        note_parts.append(f"{workload_name} speedups vs baselines -> {gains}")
    return ExperimentResult(
        name="Figure 9: throughput comparison under saturation",
        headers=["workload", "system", "total_tokens_per_s", "output_tokens_per_s", "normalised_to_TS"],
        rows=rows,
        notes="; ".join(note_parts),
        extras={"speedups": speedups},
    )


__all__ = ["run"]

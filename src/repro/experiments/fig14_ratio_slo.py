"""Figure 14: SLO attainment by prefill-to-decode ratio.

Companion of Figure 6 (Appendix D): LLaMA-13B on 16 A5000 GPUs, two GPUs per
replica, sweeping the replica ratio and the SLO scale.  Prefill-heavy ratios win
for coding, decode-heavy ratios win for conversation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.types import SLOType
from repro.experiments.common import (
    ExperimentResult,
    default_model,
    default_workloads,
    fixed_ratio_plan,
    reference_for,
)
from repro.hardware.cluster import make_homogeneous_cluster
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.workload.generator import generate_requests


def run(
    model_name: str = "llama-13b",
    gpu_type: str = "A5000",
    num_gpus: int = 16,
    gpus_per_replica: int = 2,
    ratios: Sequence[Tuple[int, int]] = ((6, 2), (5, 3), (4, 4), (3, 5), (2, 6)),
    request_rate: float = 10.0,
    trace_duration: float = 20.0,
    slo_scales: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0),
    seed: int = 0,
    workload_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """E2E SLO attainment for each ratio, workload and SLO scale."""
    model = default_model(model_name)
    workloads = default_workloads()
    if workload_names is not None:
        workloads = {k: v for k, v in workloads.items() if k in set(workload_names)}
    cluster = make_homogeneous_cluster(gpu_type, num_gpus=num_gpus, gpus_per_node=4, seed=seed)

    rows: List[List] = []
    for workload_name, workload in workloads.items():
        reference = reference_for(model, workload)
        trace = generate_requests(workload, request_rate, duration=trace_duration, seed=seed + 23)
        for num_prefill, num_decode in ratios:
            if (num_prefill + num_decode) * gpus_per_replica > num_gpus:
                continue
            try:
                plan, _ = fixed_ratio_plan(
                    cluster, model, workload, request_rate, num_prefill, num_decode, gpus_per_replica
                )
            except ValueError:
                continue
            simulator = ServingSimulator(cluster, plan, model, config=SimulatorConfig(seed=seed))
            result = simulator.run(trace, label=f"{num_prefill}/{num_decode}")
            for scale in slo_scales:
                attainment = result.slo_attainment(reference.slo_spec(scale), SLOType.E2E)
                rows.append([workload_name, f"{num_prefill}/{num_decode}", scale, attainment])

    return ExperimentResult(
        name="Figure 14: SLO attainment by prefill-to-decode ratio (16 A5000, LLaMA-13B)",
        headers=["workload", "prefill/decode", "slo_scale", "e2e_attainment"],
        rows=rows,
        notes="paper: coding best near 5/3, conversation best near 3/5",
    )


__all__ = ["run"]

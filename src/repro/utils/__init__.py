"""Small shared utilities (table formatting, experiment bookkeeping)."""

from repro.utils.tables import format_table, format_value

__all__ = ["format_table", "format_value"]

"""Plain-text table rendering for experiment outputs.

Every experiment module returns structured rows; these helpers render them as
aligned text tables so that benchmark runs print the same kind of rows/series the
paper's tables and figures report.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats with fixed precision, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 1e-3 and value != 0):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned text table with optional title."""
    str_rows: List[List[str]] = [[format_value(cell, precision) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have the same number of cells as the header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


__all__ = ["format_value", "format_table"]

"""Analytic SLO-attainment estimator used inside the scheduler.

The paper adopts DistServe's inference-task simulator to estimate the SLO
attainment of every (prefill replica, decode replica) pair, extended with the
alpha-beta KV-communication term of Equation 1.  Running a full discrete-event
simulation for every tabu-search candidate would be prohibitively slow, so — like
the paper — the scheduler uses this fast analytic estimator, and the evaluation
experiments validate it against the discrete-event simulator (Figure 19).

The estimator evaluates a small deterministic grid of request shapes (quantiles of
the workload's prompt- and response-length distributions) and, for each
(prefill i, decode j) pair, computes TTFT, KV-transfer time, TPOT and E2E latency
of every grid point.  The fraction of grid probability mass meeting the SLO
deadline is the pair's estimated attainment ``D_ij``.

Prefill queueing uses a two-moment M/G/1 (Pollaczek–Khinchine) correction: the
service-time mean and squared coefficient of variation are computed from the
workload grid through the cost model's memoized prefill latency grids
(:meth:`ReplicaCostModel.prefill_service_moments`), so a long-context RAG mix
queues harder than a near-deterministic chat mix at the same utilisation.  The
model is deliberately honest about saturation: at ``rho >= 1`` the queue wait
is driven to :data:`OVERLOAD_QUEUE_WAIT_S` (divergent, capped far beyond any
horizon) and the pair's attainment is exactly zero — an overloaded replica is
infeasible, not "95%-utilised".  The Figure-19 agreement harness and the gated
``bench_estimator_saturation`` benchmark pin the estimator against the
discrete-event simulator across a utilisation ramp up to rho ~ 0.95.

The grid evaluation is fully vectorized: the roofline cost model is invoked only
once per *distinct* grid length per replica (those per-replica latency vectors are
cached across calls, keyed by the replica's structural identity), and the
(m, n, grid) latency tensor is assembled and thresholded with numpy.  The
pre-vectorization scalar implementation is retained as
:meth:`SLOEstimator.attainment_matrix_reference` — it is the ground truth the
property tests and the ``bench_scenario_sweep`` micro-benchmark compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import Phase, SLOSpec, SLOType
from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.costmodel.latency import (
    CostModelParams,
    DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    DEFAULT_PARAMS,
    ReplicaCostModel,
)
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.model.memory import kv_cache_bytes_per_token
from repro.scheduling.deployment import ServingGroup
from repro.workload.spec import WorkloadSpec


#: Queue wait assigned to an overloaded (``rho >= 1``) prefill replica: the
#: M/G/1 wait diverges at saturation, so instead of a silently clamped finite
#: value the estimator reports a wait far beyond any plausible SLO deadline or
#: simulation horizon, which drives the pair's attainment to exactly zero.
OVERLOAD_QUEUE_WAIT_S = 1.0e9

#: Structural identity of a serving group: the GPU set, the phase and the parallel
#: plan's stage layout.  Two groups with the same key have identical cost models
#: regardless of their ``group_id``, so cached performance figures can be shared
#: across tabu-search candidates that reuse the same group.
PerfKey = Tuple[Tuple[int, ...], Phase, Tuple[Tuple[Tuple[int, ...], int, int], ...]]


def _perf_key(group: ServingGroup) -> PerfKey:
    if group.plan is None:
        raise ValueError(f"group {group.group_id} has no parallel plan")
    plan_sig = tuple(
        (tuple(stage.gpu_ids), stage.num_layers, stage.tp) for stage in group.plan.stages
    )
    return (tuple(sorted(group.gpu_ids)), group.phase, plan_sig)


@dataclass
class ReplicaPerformance:
    """Cached analytic performance figures of one serving group.

    Attributes
    ----------
    group:
        The serving group (GPUs + phase + parallel plan).
    cost:
        The replica's roofline cost model.
    prefill_service_s:
        Workload-weighted mean per-request prefill service time under the
        engine's *padded* prefill batching: a coalesced batch is priced at its
        longest prompt, so a saturated replica's per-request service time is
        the batched latency at the max-of-``B`` prompt length, amortised over
        the batch (see :meth:`ReplicaCostModel.prefill_service_moments`).
        Equal to the grid-weighted solo latency when ``prefill_batch_requests``
        is 1.  This is the service time the M/G/1 queueing term and the
        capacity figures are built from — it is what bounds a replica's real
        sustainable throughput, not the solo rate.
    prefill_service_cv2:
        Squared coefficient of variation of that service time across the
        workload grid (``E[S^2]/E[S]^2 - 1``) — the second moment the
        Pollaczek–Khinchine queueing correction needs.  Zero for a
        deterministic prompt-length mix; grows with prompt-length spread.
    prefill_capacity_rps:
        Sustainable prefill requests/s at the target utilisation.
    decode_max_batch:
        Largest KV-feasible decode batch at the workload's mean context length.
    decode_token_capacity:
        Sustainable generated tokens/s at the target utilisation (max batch).
    """

    group: ServingGroup
    cost: ReplicaCostModel
    prefill_service_s: float
    prefill_service_cv2: float
    prefill_capacity_rps: float
    decode_max_batch: int
    decode_token_capacity: float

    def decode_operating_batch(self, token_rate: float, context_length: int) -> int:
        """Smallest batch size able to sustain ``token_rate`` generated tokens/s.

        Found by scanning batch sizes (decode throughput is monotone in the batch
        size for a memory-bound replica); returns the max batch when even it
        cannot keep up, and 0 when the replica is KV-infeasible
        (``decode_max_batch == 0``) — no batch at all fits, so callers must
        treat the replica as unable to serve rather than silently running it
        at batch 1.
        """
        if self.decode_max_batch < 1:
            return 0
        if token_rate <= 0:
            return 1
        lo, hi = 1, max(1, self.decode_max_batch)
        best = hi
        while lo <= hi:
            mid = (lo + hi) // 2
            throughput = mid / self.cost.decode_step_latency(mid, context_length)
            if throughput >= token_rate:
                best = mid
                hi = mid - 1
            else:
                lo = mid + 1
        return best


@dataclass(frozen=True)
class PairEstimate:
    """Per-(prefill, decode) pair latency breakdown at the workload's mean shape."""

    ttft: float
    kv_transfer: float
    tpot: float
    e2e: float
    attainment_e2e: float
    attainment_ttft: float
    attainment_tpot: float


class SLOEstimator:
    """Analytic estimator of per-pair and system-level SLO attainment.

    Parameters
    ----------
    cluster, model, workload:
        The serving context.
    slo:
        Absolute SLO deadlines.
    request_rate:
        Mean arrival rate (requests/s) the deployment must sustain.
    kv_transport_bits:
        KV-cache transport precision (4 with compression, 16 without).
    target_utilization:
        Capacity headroom: replicas are planned to run at most at this utilisation
        so that queueing delays stay bounded.
    num_quantiles:
        Number of quantiles per length dimension in the evaluation grid.
    prefill_batch_requests:
        Prefill batching the serving engine applies (the simulator's
        ``max_prefill_batch_requests``); the queueing and capacity terms use
        the effective per-request service time at this batch size.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        slo: SLOSpec,
        request_rate: float,
        kv_transport_bits: int = 4,
        params: CostModelParams = DEFAULT_PARAMS,
        target_utilization: float = 0.85,
        num_quantiles: int = 7,
        prefill_batch_requests: int = DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    ) -> None:
        if request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if not 0 < target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if prefill_batch_requests < 1:
            raise ValueError("prefill_batch_requests must be >= 1")
        self.cluster = cluster
        self.model = model
        self.workload = workload
        self.slo = slo
        self.request_rate = request_rate
        self.kv_transport_bits = kv_transport_bits
        self.params = params
        self.target_utilization = target_utilization
        self.prefill_batch_requests = prefill_batch_requests
        self.mean_input = max(1, int(round(workload.mean_input_length)))
        self.mean_output = max(1, int(round(workload.mean_output_length)))
        self._grid = self._build_grid(num_quantiles)
        self._init_grid_arrays()
        # Caches keyed by a replica's structural identity (PerfKey).  The tabu
        # search revisits the same serving groups in many candidate solutions, so
        # the expensive cost-model evaluations are shared across iterations.
        self._perf_cache: Dict[PerfKey, ReplicaPerformance] = {}
        self._prefill_grid_cache: Dict[PerfKey, np.ndarray] = {}
        self._decode_grid_cache: Dict[Tuple[PerfKey, int], np.ndarray] = {}
        self._link_cache: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]], Optional[Tuple[float, float]]
        ] = {}

    # ------------------------------------------------------------------ grid
    def _build_grid(self, num_quantiles: int) -> List[Tuple[float, int, int]]:
        """Deterministic (weight, input_len, output_len) grid from length quantiles."""
        qs = np.linspace(0.08, 0.92, num_quantiles)
        # Inverse-CDF of the (log-normal) length distributions at the quantiles.
        def lognormal_q(median: float, sigma: float, q: np.ndarray) -> np.ndarray:
            if sigma == 0:
                return np.full_like(q, median, dtype=float)
            from scipy.stats import norm

            return median * np.exp(sigma * norm.ppf(q))

        inputs = np.clip(
            lognormal_q(self.workload.median_input_length, self.workload.input_sigma, qs),
            self.workload.min_input_length, self.workload.max_input_length,
        )
        outputs = np.clip(
            lognormal_q(self.workload.median_output_length, self.workload.output_sigma, qs),
            self.workload.min_output_length, self.workload.max_output_length,
        )
        weight = 1.0 / (num_quantiles * num_quantiles)
        grid = []
        for s_in in inputs:
            for s_out in outputs:
                grid.append((weight, int(round(s_in)), int(round(s_out))))
        return grid

    def _init_grid_arrays(self) -> None:
        """Precompute the vectorized views of the evaluation grid."""
        self._weights = np.array([w for w, _, _ in self._grid])
        self._weight_sum = float(np.sum(self._weights))
        self._s_ins = np.array([s for _, s, _ in self._grid], dtype=np.int64)
        self._s_outs = np.array([o for _, _, o in self._grid], dtype=np.int64)
        # Grid latencies only depend on the *distinct* lengths: map every grid
        # point to its index in the distinct-value vectors so per-replica latency
        # vectors are computed once per distinct value and gathered with fancy
        # indexing.
        self._distinct_inputs = sorted(set(int(s) for s in self._s_ins))
        input_pos = {s: k for k, s in enumerate(self._distinct_inputs)}
        self._input_idx = np.array([input_pos[int(s)] for s in self._s_ins])
        #: probability mass of each distinct prompt length (feeds the M/G/1
        #: service-time moments of every prefill replica)
        self._distinct_input_weights = np.bincount(
            self._input_idx, weights=self._weights, minlength=len(self._distinct_inputs)
        )
        ctxs = [int(s + o // 2) for s, o in zip(self._s_ins, self._s_outs)]
        self._distinct_ctxs = sorted(set(ctxs))
        ctx_pos = {c: k for k, c in enumerate(self._distinct_ctxs)}
        self._ctx_idx = np.array([ctx_pos[c] for c in ctxs])
        self._out_factor = np.maximum(0, self._s_outs - 1)
        #: KV-cache bytes shipped per prompt token at the transport precision.
        self._kv_bytes_per_token = kv_cache_bytes_per_token(
            self.model, bits=self.kv_transport_bits
        )
        #: transfer volume per distinct prompt length
        self._kv_volume = self._kv_bytes_per_token * np.array(
            self._distinct_inputs, dtype=float
        )

    # ------------------------------------------------------------------ replicas
    def replica_performance(self, group: ServingGroup) -> ReplicaPerformance:
        """Build (or fetch) the cached performance view of one serving group.

        Memoised on the group's structural identity (GPU set, phase, stage
        layout) — ``group_id`` is free to differ between candidate solutions, so
        the cached figures are re-wrapped around the requesting group.
        """
        if group.plan is None:
            raise ValueError(f"group {group.group_id} has no parallel plan")
        key = _perf_key(group)
        cached = self._perf_cache.get(key)
        if cached is not None:
            if cached.group is group:
                return cached
            return ReplicaPerformance(
                group=group,
                cost=cached.cost,
                prefill_service_s=cached.prefill_service_s,
                prefill_service_cv2=cached.prefill_service_cv2,
                prefill_capacity_rps=cached.prefill_capacity_rps,
                decode_max_batch=cached.decode_max_batch,
                decode_token_capacity=cached.decode_token_capacity,
            )
        cost = ReplicaCostModel(self.cluster, group.plan, self.model, self.params)
        # Effective per-request service time under the engine's prefill
        # batching: a loaded replica drains its queue in coalesced batches, so
        # its throughput is the batched latency amortised over the batch.  At
        # batch 1 this is exactly the solo prefill latency.  The first and
        # second moments are taken across the workload grid's prompt lengths so
        # the M/G/1 queueing term sees the mix's real service-time variability,
        # not just its mean-prompt point value.
        batch = self.prefill_batch_requests
        m1, m2 = cost.prefill_service_moments(
            self._distinct_inputs, self._distinct_input_weights, batch_size=batch
        )
        prefill_service = m1
        prefill_cv2 = max(0.0, m2 / (m1 * m1) - 1.0) if m1 > 0 else 0.0
        prefill_capacity = self.target_utilization / prefill_service
        context = self.mean_input + self.mean_output
        max_batch = cost.max_decode_batch(context)
        token_capacity = (
            self.target_utilization * cost.decode_throughput(context, max_batch)
            if max_batch > 0
            else 0.0
        )
        perf = ReplicaPerformance(
            group=group,
            cost=cost,
            prefill_service_s=prefill_service,
            prefill_service_cv2=prefill_cv2,
            prefill_capacity_rps=prefill_capacity,
            decode_max_batch=max_batch,
            decode_token_capacity=token_capacity,
        )
        self._perf_cache[key] = perf
        return perf

    # ------------------------------------------------------------------ cached grids
    def _prefill_grid(self, perf: ReplicaPerformance) -> np.ndarray:
        """Prefill latency per grid point (no queueing term), cached per replica."""
        key = _perf_key(perf.group)
        per_distinct = self._prefill_grid_cache.get(key)
        if per_distinct is None:
            per_distinct = np.array(
                [perf.cost.prefill_latency(s, batch_size=1) for s in self._distinct_inputs]
            )
            self._prefill_grid_cache[key] = per_distinct
        return per_distinct[self._input_idx]

    def _decode_grid(self, perf: ReplicaPerformance, batch: int) -> np.ndarray:
        """Decode step latency per grid point at ``batch``, cached per replica."""
        key = (_perf_key(perf.group), int(batch))
        per_distinct = self._decode_grid_cache.get(key)
        if per_distinct is None:
            per_distinct = np.array(
                [perf.cost.decode_step_latency(batch, c) for c in self._distinct_ctxs]
            )
            self._decode_grid_cache[key] = per_distinct
        return per_distinct[self._ctx_idx]

    def _pair_link(
        self, src_gpu_ids: Tuple[int, ...], dst_gpu_ids: Tuple[int, ...]
    ) -> Optional[Tuple[float, float]]:
        """(alpha, beta) of the best link between two replicas; ``None`` if co-located."""
        key = (tuple(src_gpu_ids), tuple(dst_gpu_ids))
        if key in self._link_cache:
            return self._link_cache[key]
        if set(src_gpu_ids) & set(dst_gpu_ids):
            link = None
        else:
            network = self.cluster.network
            i, j, _bw = network.best_link_between(list(src_gpu_ids), list(dst_gpu_ids))
            link = (network.latency_s(i, j), network.bandwidth_bytes(i, j))
        self._link_cache[key] = link
        return link

    def _kv_grid(self, prefill: ReplicaPerformance, decode: ReplicaPerformance) -> np.ndarray:
        """KV transfer time per grid point for one (prefill, decode) pair."""
        link = self._pair_link(prefill.group.gpu_ids, decode.group.gpu_ids)
        if link is None:
            return np.zeros(len(self._grid))
        alpha, beta = link
        return (alpha + self._kv_volume / beta)[self._input_idx]

    def _queue_wait(self, prefill: ReplicaPerformance, utilization: float) -> float:
        """Congestion delay (queueing + batch co-service) of one prefill replica.

        The first term is the M/G/1 (Pollaczek–Khinchine) wait
        ``W_q = rho / (1 - rho) * (1 + CV^2) / 2 * E[S]`` with the service-time
        mean and squared coefficient of variation taken across the workload
        grid.  ``prefill_service_s`` is the *batching-effective* per-request
        service time — the padded batch latency amortised over the batch — so
        the wait already accounts for the engine coalescing queued prompts into
        multi-request batches.

        The second term models batch co-service: the engine's FIFO batching
        releases a request's first token only when its whole batch completes,
        so under load a request additionally waits for its batch-mates.  The
        expected batch fill follows from Little's law — a batch picks up
        roughly the ``lambda * W_q`` requests that queued while the previous
        batch ran, capped at the engine's batch limit — and each extra
        batch-mate adds one amortised service time.

        The utilisation is NOT clamped: as ``rho`` approaches 1 the wait
        diverges, and at ``rho >= 1`` (an overloaded replica) it is pinned to
        :data:`OVERLOAD_QUEUE_WAIT_S` so attainment collapses to zero instead
        of flattering an infeasible operating point.
        """
        rho = max(utilization, 0.0)
        if rho >= 1.0:
            return OVERLOAD_QUEUE_WAIT_S
        wait = (
            rho / (1.0 - rho)
            * (1.0 + prefill.prefill_service_cv2) / 2.0
            * prefill.prefill_service_s
        )
        if prefill.prefill_service_s > 0.0:
            fill = min(
                float(self.prefill_batch_requests),
                1.0 + rho / prefill.prefill_service_s * wait,
            )
            wait += (fill - 1.0) * prefill.prefill_service_s
        return min(wait, OVERLOAD_QUEUE_WAIT_S)

    @staticmethod
    def _wait_hit_prob(slack: np.ndarray, wait: float, rho: float) -> np.ndarray:
        """P[congestion wait <= slack] per grid point.

        Thresholding a deterministic wait would make estimated attainment a
        knife-edge step function of utilisation, which the simulator does not
        exhibit.  Instead the congestion delay is modelled with the classic
        two-parameter M/G/1 approximation (exact for M/M/1): an arriving
        request waits only with probability ``rho`` (PASTA — the server is
        busy), and the conditional wait is exponential with mean ``W / rho`` so
        the unconditional mean stays ``W``:

        ``P[wait > t] = rho * exp(-rho * t / W)``.

        At ``W == 0`` this degenerates to the sharp indicator ``slack >= 0``;
        negative slack (deadline unmeetable even with an empty queue) is always
        a miss.
        """
        hit = (slack >= 0.0).astype(np.float64)
        if wait > 0.0 and rho > 0.0:
            hit = hit * (
                (1.0 - rho) - rho * np.expm1(-rho * np.maximum(slack, 0.0) / wait)
            )
        return hit

    # ------------------------------------------------------------------ pairs
    def pair_estimate(
        self,
        prefill: ReplicaPerformance,
        decode: ReplicaPerformance,
        prefill_utilization: float = 0.5,
        decode_batch: Optional[int] = None,
    ) -> PairEstimate:
        """Latency breakdown and attainment of one (prefill, decode) pair.

        ``prefill_utilization`` adds the M/G/1 queueing-delay term on the
        prefill side (divergent at ``rho >= 1``); ``decode_batch`` is the
        decode replica's operating batch size (defaults to the batch needed for
        its fair share of the token demand).  A KV-infeasible decode replica
        (``decode_max_batch == 0``, or an explicit ``decode_batch`` of 0) gets
        an overload-sized TPOT, so every attainment figure of the pair is zero.
        """
        if decode_batch is None:
            decode_batch = min(decode.decode_max_batch, 8)

        wait = self._queue_wait(prefill, prefill_utilization)
        ttft_base = self._prefill_grid(prefill)
        kv = self._kv_grid(prefill, decode)
        if decode.decode_max_batch < 1 or decode_batch < 1:
            tpot = np.full(len(self._grid), OVERLOAD_QUEUE_WAIT_S)
        else:
            tpot = self._decode_grid(decode, int(decode_batch))
        e2e_base = ttft_base + kv + tpot * self._out_factor

        w = self._weights
        total_w = self._weight_sum
        means = np.array(
            [float(np.sum(w * v)) for v in (ttft_base, kv, tpot, e2e_base)]
        ) / max(total_w, 1e-12)
        # A pair that cannot serve — overloaded prefill or KV-infeasible decode —
        # attains nothing, whatever the SLO type measures.
        serving = 1.0 if (
            prefill_utilization < 1.0 and decode.decode_max_batch >= 1 and decode_batch >= 1
        ) else 0.0
        rho = min(max(prefill_utilization, 0.0), 1.0)
        att_e2e = float(
            np.sum(w * self._wait_hit_prob(self.slo.e2e - e2e_base, wait, rho)) / total_w
        )
        att_ttft = float(
            np.sum(w * self._wait_hit_prob(self.slo.ttft - ttft_base, wait, rho)) / total_w
        )
        return PairEstimate(
            ttft=float(means[0]) + wait,
            kv_transfer=float(means[1]),
            tpot=float(means[2]),
            e2e=float(means[3]) + wait,
            attainment_e2e=serving * att_e2e,
            attainment_ttft=serving * att_ttft,
            attainment_tpot=serving * float(np.sum(w * (tpot <= self.slo.tpot)) / total_w),
        )

    def attainment_matrix(
        self,
        prefills: Sequence[ReplicaPerformance],
        decodes: Sequence[ReplicaPerformance],
        prefill_utilizations: Optional[Sequence[float]] = None,
        decode_batches: Optional[Sequence[int]] = None,
        slo_type: SLOType = SLOType.E2E,
    ) -> np.ndarray:
        """Estimated attainment ``D_ij`` for every (prefill, decode) pair.

        The whole (m, n, grid) latency tensor is assembled with numpy from cached
        per-replica latency vectors: the cost model is invoked only for grid
        lengths not already cached for a replica, and the SLO thresholding is a
        single vectorized comparison.

        Saturation semantics: a prefill replica at ``rho >= 1`` (its M/G/1 wait
        has diverged) zeroes its whole row, and a KV-infeasible decode replica
        (``decode_max_batch == 0`` or an operating batch of 0) zeroes its whole
        column — for *every* SLO type, since a pair that cannot serve attains
        nothing regardless of which latency the SLO measures.
        """
        m, n = len(prefills), len(decodes)
        d = np.zeros((m, n))
        if m == 0 or n == 0:
            return d
        w = self._weights
        total_w = self._weight_sum

        # Per-prefill congestion wait and base (no-queue) TTFT per grid point.
        ttft = np.empty((m, len(self._grid)))
        waits = np.empty(m)
        rhos = np.empty(m)
        overloaded = np.zeros(m, dtype=bool)
        for i, p in enumerate(prefills):
            rho = prefill_utilizations[i] if prefill_utilizations is not None else 0.5
            overloaded[i] = rho >= 1.0
            waits[i] = self._queue_wait(p, rho)
            rhos[i] = min(max(rho, 0.0), 1.0)
            ttft[i] = self._prefill_grid(p)

        # KV-infeasible decode replicas (no batch fits) cannot serve at all.
        infeasible = np.zeros(n, dtype=bool)
        batches = np.empty(n, dtype=np.int64)
        for j, q in enumerate(decodes):
            batch = decode_batches[j] if decode_batches is not None else None
            if batch is None:
                batch = min(q.decode_max_batch, 8)
            batches[j] = int(batch)
            infeasible[j] = q.decode_max_batch < 1 or int(batch) < 1

        if slo_type is SLOType.TTFT:
            att = np.empty(m)
            for i in range(m):
                hit = self._wait_hit_prob(self.slo.ttft - ttft[i], waits[i], rhos[i])
                att[i] = (w * hit).sum() / total_w
            att[overloaded] = 0.0
            d = np.repeat(att[:, None], n, axis=1)
            d[:, infeasible] = 0.0
            return d

        # Per-decode TPOT per grid point (step latency at the operating batch).
        tpot = np.empty((n, len(self._grid)))
        for j, q in enumerate(decodes):
            if infeasible[j]:
                tpot[j] = OVERLOAD_QUEUE_WAIT_S
            else:
                tpot[j] = self._decode_grid(q, int(batches[j]))

        if slo_type is SLOType.TPOT:
            att = (w * (tpot <= self.slo.tpot)).sum(axis=1) / total_w
            att[infeasible] = 0.0
            d = np.repeat(att[None, :], m, axis=0)
            d[overloaded, :] = 0.0
            return d

        # Per-pair KV transfer time (depends on s_in and the pair's best link).
        kv = np.empty((m, n, len(self._grid)))
        for i, p in enumerate(prefills):
            for j, q in enumerate(decodes):
                kv[i, j] = self._kv_grid(p, q)
        e2e = ttft[:, None, :] + kv + (tpot * self._out_factor)[None, :, :]
        for i in range(m):
            hit = self._wait_hit_prob(self.slo.e2e - e2e[i], waits[i], rhos[i])
            d[i] = (w * hit).sum(axis=1) / total_w
        d[overloaded, :] = 0.0
        d[:, infeasible] = 0.0
        return d

    def attainment_matrix_reference(
        self,
        prefills: Sequence[ReplicaPerformance],
        decodes: Sequence[ReplicaPerformance],
        prefill_utilizations: Optional[Sequence[float]] = None,
        decode_batches: Optional[Sequence[int]] = None,
        slo_type: SLOType = SLOType.E2E,
    ) -> np.ndarray:
        """Scalar reference implementation of :meth:`attainment_matrix`.

        Kept as the ground truth for the vectorized fast path: the property
        tests assert agreement to 1e-9 — including the M/G/1 queueing term, the
        ``rho >= 1`` overload collapse and the KV-infeasible decode handling —
        and ``bench_scenario_sweep`` measures the speedup against it.  It
        deliberately bypasses the estimator's per-replica caches, invoking the
        cost model per distinct grid length on every call like the original
        code did.
        """
        m, n = len(prefills), len(decodes)
        d = np.zeros((m, n))
        if m == 0 or n == 0:
            return d
        weights = np.array([w for w, _, _ in self._grid])
        s_ins = np.array([s for _, s, _ in self._grid])
        s_outs = np.array([o for _, _, o in self._grid])
        distinct_inputs = sorted(set(int(s) for s in s_ins))

        ttft = np.zeros((m, len(self._grid)))
        waits = [0.0] * m
        rhos = [0.0] * m
        overloaded = [False] * m
        for i, p in enumerate(prefills):
            rho = prefill_utilizations[i] if prefill_utilizations is not None else 0.5
            rho = max(rho, 0.0)
            if rho >= 1.0:
                # The M/G/1 wait diverges at saturation: an overloaded replica
                # gets a horizon-dwarfing wait and exactly zero attainment.
                overloaded[i] = True
                queue_wait = OVERLOAD_QUEUE_WAIT_S
            else:
                # P-K wait plus the Little's-law batch co-service term, with
                # float operations in the exact order of ``_queue_wait``.
                queue_wait = (
                    rho / (1.0 - rho)
                    * (1.0 + p.prefill_service_cv2) / 2.0
                    * p.prefill_service_s
                )
                if p.prefill_service_s > 0.0:
                    fill = min(
                        float(self.prefill_batch_requests),
                        1.0 + rho / p.prefill_service_s * queue_wait,
                    )
                    queue_wait += (fill - 1.0) * p.prefill_service_s
                queue_wait = min(queue_wait, OVERLOAD_QUEUE_WAIT_S)
            waits[i] = queue_wait
            rhos[i] = min(max(rho, 0.0), 1.0)
            per_input = {
                s: p.cost.prefill_latency(s, batch_size=1) for s in distinct_inputs
            }
            ttft[i] = [per_input[int(s)] for s in s_ins]

        tpot = np.zeros((n, len(self._grid)))
        infeasible = [False] * n
        for j, q in enumerate(decodes):
            batch = decode_batches[j] if decode_batches is not None else None
            if batch is None:
                batch = min(q.decode_max_batch, 8)
            batch = int(batch)
            if q.decode_max_batch < 1 or batch < 1:
                # KV-infeasible decode replica: no batch fits, nothing is served.
                infeasible[j] = True
                tpot[j] = OVERLOAD_QUEUE_WAIT_S
                continue
            cache: Dict[int, float] = {}
            vals = []
            for s_in, s_out in zip(s_ins, s_outs):
                ctx = int(s_in + s_out // 2)
                if ctx not in cache:
                    cache[ctx] = q.cost.decode_step_latency(batch, ctx)
                vals.append(cache[ctx])
            tpot[j] = vals

        for i, p in enumerate(prefills):
            kv_per_input = {}
            for j, q in enumerate(decodes):
                for s in distinct_inputs:
                    kv_per_input[(j, s)] = kv_transfer_seconds(
                        self.cluster.network,
                        p.group.gpu_ids,
                        q.group.gpu_ids,
                        self.model,
                        num_tokens=s,
                        batch_size=1,
                        bits=self.kv_transport_bits,
                    )
            for j in range(n):
                if overloaded[i] or infeasible[j]:
                    d[i, j] = 0.0
                    continue
                kv = np.array([kv_per_input[(j, int(s))] for s in s_ins])
                e2e = ttft[i] + kv + tpot[j] * np.maximum(0, s_outs - 1)
                if slo_type is SLOType.E2E:
                    hit = self._wait_hit_prob(self.slo.e2e - e2e, waits[i], rhos[i])
                elif slo_type is SLOType.TTFT:
                    hit = self._wait_hit_prob(self.slo.ttft - ttft[i], waits[i], rhos[i])
                else:
                    hit = tpot[j] <= self.slo.tpot
                d[i, j] = float(np.sum(weights * hit) / np.sum(weights))
        return d

    # ------------------------------------------------------------------ demand
    @property
    def token_demand(self) -> float:
        """System-wide generated-token demand (tokens/s)."""
        return self.request_rate * self.mean_output

    def prefill_capacity_fraction(self, perf: ReplicaPerformance) -> float:
        """Fraction of the total request rate one prefill replica can absorb."""
        return min(1.0, perf.prefill_capacity_rps / self.request_rate)

    def decode_capacity_fraction(self, perf: ReplicaPerformance) -> float:
        """Fraction of the total request rate one decode replica can absorb."""
        if self.token_demand <= 0:
            return 1.0
        return min(1.0, perf.decode_token_capacity / self.token_demand)


__all__ = [
    "OVERLOAD_QUEUE_WAIT_S",
    "ReplicaPerformance",
    "PairEstimate",
    "SLOEstimator",
]

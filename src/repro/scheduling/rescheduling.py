"""Lightweight rescheduling (§3.4).

When the observed workload shifts or GPUs disappear, regenerating the deployment
plan from scratch and reloading parameters would stall the online service for
minutes.  ThunderServe instead performs a *lightweight* rescheduling that

* keeps the group construction and every group's parallel configuration unchanged
  (so no parameters need to be moved or reloaded),
* drops groups whose GPUs are no longer available,
* re-runs the tabu search restricted to the *flip-phase* neighbourhood, and
* re-solves the orchestration LP for the new phases.

:class:`ReschedulingOverheadModel` reproduces the Table 4 accounting of full vs
lightweight rescheduling overhead (search time + parameter-reloading time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.exceptions import SchedulingError
from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Phase, SLOSpec, SLOType
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.model.memory import parameter_bytes
from repro.parallelism.config import ReplicaPlan
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.lower_level import LowerLevelResult, LowerLevelSolver
from repro.scheduling.neighbors import construct_neighbors
from repro.scheduling.solution import UpperLevelSolution
from repro.scheduling.tabu import SearchTrace, TabuSearch, TabuSearchConfig
from repro.workload.spec import WorkloadSpec, WorkloadStats


@dataclass
class RescheduleResult:
    """Outcome of a lightweight rescheduling pass."""

    plan: DeploymentPlan
    objective: float
    trace: SearchTrace
    lower_result: LowerLevelResult
    elapsed_s: float


class LightweightRescheduler:
    """Re-designate phases and re-orchestrate an existing deployment plan."""

    def __init__(
        self,
        tabu: TabuSearchConfig | None = None,
        kv_transport_bits: int = 4,
        params: CostModelParams = DEFAULT_PARAMS,
        slo_type: SLOType = SLOType.E2E,
        seed: int = 0,
    ) -> None:
        # Flip-only neighbourhoods are tiny, so far fewer steps are needed than in
        # the full search.
        self.tabu = tabu or TabuSearchConfig(num_steps=30, num_neighbors=6, memory_size=5, patience=10)
        self.kv_transport_bits = kv_transport_bits
        self.params = params
        self.slo_type = slo_type
        self.seed = seed

    def reschedule(
        self,
        plan: DeploymentPlan,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        slo: SLOSpec,
        seed: RNGLike = None,
    ) -> RescheduleResult:
        """Adapt an existing plan to a new cluster state / workload.

        ``cluster`` reflects the *current* GPU availability (failed GPUs already
        removed); groups that lost any GPU are dropped from the plan, surviving
        groups keep their parallel configuration, and only phase designations and
        the orchestration are re-optimised.
        """
        start = time.perf_counter()
        rng = ensure_rng(self.seed if seed is None else seed)

        available = set(cluster.gpu_ids)
        surviving = [g for g in plan.groups if set(g.gpu_ids) <= available]
        if not surviving:
            raise SchedulingError("no serving group survived the cluster change")

        fixed_plans: Dict[Tuple[int, ...], ReplicaPlan] = {
            tuple(sorted(g.gpu_ids)): g.plan for g in surviving if g.plan is not None
        }
        solver = LowerLevelSolver(
            cluster=cluster,
            model=model,
            workload=workload,
            slo=slo,
            request_rate=request_rate,
            kv_transport_bits=self.kv_transport_bits,
            params=self.params,
            slo_type=self.slo_type,
            fixed_plans=fixed_plans,
            seed=int(rng.integers(0, 2**31 - 1)),
        )

        initial = UpperLevelSolution.from_lists(
            [(g.gpu_ids, g.phase) for g in surviving]
        )

        def neighbor_fn(solution: UpperLevelSolution, count: int):
            # Only the flip-phase move is allowed (§3.4).
            return construct_neighbors(
                solution, cluster, model, num_neighbors=count, rng=rng, moves=["flip"]
            )

        search = TabuSearch(
            objective=solver.evaluate,
            neighbor_fn=neighbor_fn,
            key_fn=lambda s: s.key(),
            config=self.tabu,
            batch_objective=solver.evaluate_batch,
        )
        result = search.run(initial)
        lower = solver.solve(result.best_solution)
        if not lower.feasible or lower.plan is None:
            # Fall back to the unmodified surviving plan with re-orchestration only.
            lower = solver.solve(initial)
            if not lower.feasible or lower.plan is None:
                raise SchedulingError("lightweight rescheduling could not produce a feasible plan")
        elapsed = time.perf_counter() - start
        return RescheduleResult(
            plan=lower.plan,
            objective=lower.objective,
            trace=result.trace,
            lower_result=lower,
            elapsed_s=elapsed,
        )

    def reschedule_from_stats(
        self,
        plan: DeploymentPlan,
        cluster: Cluster,
        model: ModelConfig,
        stats: WorkloadStats,
        fallback_rate: float,
        slo: SLOSpec,
        seed: RNGLike = None,
        template: Optional[WorkloadSpec] = None,
    ) -> RescheduleResult:
        """Adapt a plan to *observed* workload statistics (the online entry point).

        This is the path the live serving loop takes on an SLO breach or a
        detected workload shift: the profiler's window statistics are converted
        to a :class:`~repro.workload.spec.WorkloadSpec` via
        :meth:`WorkloadStats.as_spec` — with ``template`` (typically the
        planning workload) supplying realistic length variance, without it a
        degenerate zero-variance spec — and the flip-only rescheduling of
        :meth:`reschedule` runs against it.  When the window was too short to
        measure an arrival rate (``stats.request_rate == 0``) the planned
        ``fallback_rate`` is used instead.

        Because the search warm-starts from the plan's current phase
        designation (and the initial solution is always evaluated), the
        returned plan's estimated objective under the observed workload can
        only match or beat keeping the current phases — an online rescheduling
        never looks worse than standing still *to the estimator*.
        """
        rate = stats.request_rate if stats.request_rate > 0 else fallback_rate
        return self.reschedule(
            plan,
            cluster,
            model,
            stats.as_spec(name="observed", template=template),
            rate,
            slo,
            seed=seed,
        )


@dataclass(frozen=True)
class ReschedulingOverheadModel:
    """Analytic model of the service interruption caused by rescheduling (Table 4).

    Full rescheduling re-runs the scheduling algorithm from scratch *and* reloads
    the model parameters onto the re-assigned GPUs from disk; lightweight
    rescheduling only flips phases and re-orchestrates, so no parameters move.
    """

    #: sustained read bandwidth of the parameter store, bytes/s (1.2 GB/s disk in §1)
    disk_bandwidth_bytes: float = 1.2e9
    #: measured full-search time for a 32-GPU cluster (seconds); scaled linearly
    #: with cluster size when estimating other clusters
    full_search_seconds_32gpu: float = 54.0
    #: measured flip-only search time (seconds)
    lightweight_search_seconds: float = 13.0

    def reload_seconds(self, model: ModelConfig, num_replicas: int, parallel_loads: int = 4) -> float:
        """Time to reload ``num_replicas`` copies of the parameters from disk.

        ``parallel_loads`` replicas stream from the store concurrently (different
        nodes have independent disks / object-store connections).
        """
        if num_replicas < 0 or parallel_loads < 1:
            raise ValueError("num_replicas must be >= 0 and parallel_loads >= 1")
        per_copy = parameter_bytes(model) / self.disk_bandwidth_bytes
        waves = -(-num_replicas // parallel_loads) if num_replicas else 0
        return per_copy * waves

    def full_overhead_seconds(self, model: ModelConfig, num_gpus: int, num_replicas: int) -> float:
        """Total interruption of a full rescheduling (search + reload)."""
        search = self.full_search_seconds_32gpu * num_gpus / 32.0
        return search + self.reload_seconds(model, num_replicas)

    def lightweight_overhead_seconds(self) -> float:
        """Total interruption of a lightweight rescheduling (search only)."""
        return self.lightweight_search_seconds


__all__ = ["LightweightRescheduler", "RescheduleResult", "ReschedulingOverheadModel"]

"""Hierarchical-clustering initialisation of the tabu search (§3.2).

A good initial solution matters: the paper clusters GPUs by their inter-connection
bandwidth matrix so that the initial serving groups avoid ultra-low-bandwidth links
(e.g. cross-node or cross-datacenter Ethernet), then designates each group's phase
randomly.  We use SciPy's agglomerative clustering on the dissimilarity matrix
``1 / bandwidth`` with average linkage.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Phase
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.model.memory import parameter_bytes
from repro.parallelism.partition import group_can_hold_model
from repro.scheduling.solution import GroupAssignment, UpperLevelSolution


def minimum_group_size(cluster: Cluster, model: ModelConfig, kv_reserve_fraction: float = 0.3) -> int:
    """Smallest group size (in GPUs) that can hold the model on the weakest GPU type.

    Used both to pick the initial number of clusters and by the neighbour
    constructor's early feasibility checks.
    """
    min_memory = min(g.spec.memory_bytes for g in cluster.gpus)
    per_gpu_usable = min_memory * (1.0 - kv_reserve_fraction)
    return max(1, math.ceil(parameter_bytes(model) / per_gpu_usable))


def initial_groups_by_clustering(
    cluster: Cluster,
    model: ModelConfig,
    target_num_groups: Optional[int] = None,
    seed: RNGLike = 0,
    kv_reserve_fraction: float = 0.3,
) -> UpperLevelSolution:
    """Build the tabu-search initial solution.

    GPUs are agglomeratively clustered on ``1 / bandwidth`` so that each initial
    group is well connected; clusters that cannot hold one model copy are merged
    into their best-connected neighbour.  Phases are designated randomly (the paper
    randomises them too — the tabu search quickly fixes the balance).
    """
    rng = ensure_rng(seed)
    gpu_ids = cluster.gpu_ids
    n = len(gpu_ids)
    if target_num_groups is None:
        # Aim for groups just large enough to hold the model comfortably.
        min_size = minimum_group_size(cluster, model, kv_reserve_fraction)
        target_num_groups = max(1, n // max(1, min_size))
    target_num_groups = max(1, min(target_num_groups, n))

    if target_num_groups == 1 or n == 1:
        labels = np.ones(n, dtype=int)
    else:
        dist_full = cluster.network.distance_matrix()
        idx = np.asarray(gpu_ids)
        dist = dist_full[np.ix_(idx, idx)]
        # squareform requires an exactly symmetric, zero-diagonal matrix.
        dist = (dist + dist.T) / 2.0
        np.fill_diagonal(dist, 0.0)
        condensed = squareform(dist, checks=False)
        z = linkage(condensed, method="average")
        labels = fcluster(z, t=target_num_groups, criterion="maxclust")

    groups: List[set[int]] = []
    for label in sorted(set(labels)):
        members = {gpu_ids[i] for i in range(n) if labels[i] == label}
        groups.append(members)

    groups = _merge_infeasible_groups(cluster, model, groups, kv_reserve_fraction)

    assignments = []
    for members in groups:
        phase = Phase.PREFILL if rng.random() < 0.5 else Phase.DECODE
        assignments.append((members, phase))
    solution = UpperLevelSolution.from_lists(assignments)
    return _ensure_both_phases(solution, rng)


def _merge_infeasible_groups(
    cluster: Cluster,
    model: ModelConfig,
    groups: List[set[int]],
    kv_reserve_fraction: float,
) -> List[set[int]]:
    """Merge groups that cannot hold the model into their best-connected neighbour."""
    groups = [set(g) for g in groups if g]
    changed = True
    while changed and len(groups) > 1:
        changed = False
        for i, members in enumerate(groups):
            if group_can_hold_model(cluster, members, model, kv_reserve_fraction):
                continue
            # Merge with the group offering the highest mean bandwidth.
            others = [j for j in range(len(groups)) if j != i]
            best_j = max(
                others,
                key=lambda j: cluster.network.mean_bandwidth_between(members, groups[j]),
            )
            groups[best_j] = groups[best_j] | members
            groups.pop(i)
            changed = True
            break
    return groups


def _ensure_both_phases(solution: UpperLevelSolution, rng: np.random.Generator) -> UpperLevelSolution:
    """Flip one group if every group ended up with the same phase designation."""
    if solution.num_groups < 2:
        return solution
    if solution.num_prefill == 0 or solution.num_decode == 0:
        idx = int(rng.integers(0, solution.num_groups))
        group = solution.groups[idx]
        return solution.replace_group(idx, group.with_phase(group.phase.other()))
    return solution


__all__ = ["minimum_group_size", "initial_groups_by_clustering"]

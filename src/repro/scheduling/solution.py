"""Upper-level solution representation: group construction + phase designation.

The upper-level problem of §3.2 searches over *how GPUs are partitioned into
groups* and *which phase each group serves*.  A solution is a partition of the
cluster's GPU ids into non-empty groups, each tagged with a phase.  The parallel
configuration and the orchestration are *not* part of the upper-level solution —
they are derived by the lower-level solver when the solution is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.exceptions import InvalidPlanError
from repro.core.types import Phase


@dataclass(frozen=True)
class GroupAssignment:
    """One group of the upper-level solution: a GPU set and its designated phase."""

    gpu_ids: FrozenSet[int]
    phase: Phase

    def __post_init__(self) -> None:
        if not self.gpu_ids:
            raise InvalidPlanError("a group assignment must contain at least one GPU")

    @property
    def num_gpus(self) -> int:
        """Number of GPUs in the group."""
        return len(self.gpu_ids)

    def with_phase(self, phase: Phase) -> "GroupAssignment":
        """Copy with a different phase."""
        return GroupAssignment(gpu_ids=self.gpu_ids, phase=phase)


@dataclass(frozen=True)
class UpperLevelSolution:
    """A complete candidate solution to the upper-level problem.

    The solution is canonicalised (groups sorted by their smallest GPU id) so that
    structurally identical solutions hash equally — the tabu list stores hashed
    solutions to avoid revisiting them.
    """

    groups: Tuple[GroupAssignment, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise InvalidPlanError("a solution must contain at least one group")
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen & group.gpu_ids
            if overlap:
                raise InvalidPlanError(f"GPUs {sorted(overlap)} appear in multiple groups")
            seen.update(group.gpu_ids)

    # ------------------------------------------------------------------ factory
    @classmethod
    def from_lists(
        cls, groups: Sequence[Tuple[Iterable[int], Phase]]
    ) -> "UpperLevelSolution":
        """Build a solution from ``[(gpu_ids, phase), ...]`` pairs (canonical order)."""
        assignments = [
            GroupAssignment(gpu_ids=frozenset(gpus), phase=phase) for gpus, phase in groups
        ]
        assignments.sort(key=lambda a: (min(a.gpu_ids), a.phase.value))
        return cls(groups=tuple(assignments))

    def canonical(self) -> "UpperLevelSolution":
        """Return the canonically-ordered equivalent of this solution."""
        return UpperLevelSolution.from_lists([(g.gpu_ids, g.phase) for g in self.groups])

    # ------------------------------------------------------------------ accessors
    @property
    def num_groups(self) -> int:
        """Number of serving groups."""
        return len(self.groups)

    @property
    def all_gpu_ids(self) -> FrozenSet[int]:
        """All GPUs used by the solution."""
        return frozenset(g for group in self.groups for g in group.gpu_ids)

    @property
    def num_prefill(self) -> int:
        """Number of prefill groups."""
        return sum(1 for g in self.groups if g.phase is Phase.PREFILL)

    @property
    def num_decode(self) -> int:
        """Number of decode groups."""
        return sum(1 for g in self.groups if g.phase is Phase.DECODE)

    def key(self) -> Tuple:
        """Hashable canonical key used by the tabu list.

        Cached on first use: the key is consulted by neighbourhood dedup, the
        tabu list and every per-scenario objective memo, so robust scheduling
        asks for it many times per candidate.
        """
        cached = getattr(self, "_key", None)
        if cached is None:
            cached = tuple(
                (tuple(sorted(g.gpu_ids)), g.phase.value)
                for g in self.canonical().groups
            )
            object.__setattr__(self, "_key", cached)
        return cached

    def describe(self) -> str:
        """One-line summary like ``[4 gpus->prefill | 4 gpus->decode | ...]``."""
        parts = [f"{g.num_gpus}->{g.phase.value}" for g in self.groups]
        return "[" + " | ".join(parts) + "]"

    def replace_group(self, index: int, *replacements: GroupAssignment) -> "UpperLevelSolution":
        """Return a new solution with ``groups[index]`` replaced by ``replacements``.

        Passing zero replacements removes the group (used by the merge move, which
        removes one group and replaces another with the union).
        """
        if not 0 <= index < len(self.groups):
            raise IndexError(f"group index {index} out of range")
        new_groups: List[GroupAssignment] = list(self.groups[:index])
        new_groups.extend(replacements)
        new_groups.extend(self.groups[index + 1:])
        return UpperLevelSolution.from_lists([(g.gpu_ids, g.phase) for g in new_groups])


__all__ = ["GroupAssignment", "UpperLevelSolution"]

"""Orchestration of prefill and decode replicas (the two-stage transportation problem).

Section 3.3 turns the routing problem into a two-stage transportation problem
(TSTP): choose the fraction ``X_i`` of incoming requests handled by each prefill
replica and the fraction ``Y_ij`` of replica *i*'s requests forwarded to decode
replica *j*, maximising the routed SLO attainment ``sum_ij X_i Y_ij D_ij``.

We solve the equivalent linear program over the joint fractions ``Z_ij = X_i Y_ij``
with scipy's ``linprog``.  The paper's formulation as written admits the degenerate
optimum of routing everything through the single best pair, so — consistent with
how a transportation problem is normally posed — we add the natural capacity
constraints (a prefill replica cannot absorb more requests than its service rate
allows; a decode replica cannot generate more tokens than its bandwidth allows).
The resulting routing both maximises attainment and respects replica capacities.
If the cluster lacks capacity for the offered load, ``sum_ij Z_ij < 1`` and the
unserved fraction counts as missed SLOs, which is exactly the penalty the tabu
search should see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.exceptions import SchedulingError


@dataclass
class OrchestrationResult:
    """Solution of the orchestration LP.

    Attributes
    ----------
    x:
        Prefill routing weights ``X_i`` (normalised to sum to 1 over the served
        fraction).
    y:
        Dispatch matrix ``Y_ij`` (rows of active prefill replicas sum to 1).
    z:
        Raw joint fractions ``Z_ij`` (may sum to less than 1 when capacity is
        insufficient).
    objective:
        Estimated system attainment ``sum_ij Z_ij D_ij`` (unserved mass scores 0).
    served_fraction:
        ``sum_ij Z_ij``.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    objective: float
    served_fraction: float


def solve_orchestration(
    attainment: np.ndarray,
    prefill_capacity: Optional[Sequence[float]] = None,
    decode_capacity: Optional[Sequence[float]] = None,
) -> OrchestrationResult:
    """Solve the TSTP for an attainment matrix and per-replica capacity fractions.

    Parameters
    ----------
    attainment:
        ``(m, n)`` matrix ``D_ij`` of estimated per-pair SLO attainment.
    prefill_capacity:
        Per-prefill-replica capacity expressed as a fraction of the total request
        rate (``None`` = uncapacitated).
    decode_capacity:
        Per-decode-replica capacity expressed as a fraction of the total request
        rate (``None`` = uncapacitated).
    """
    d = np.asarray(attainment, dtype=float)
    if d.ndim != 2 or d.size == 0:
        raise SchedulingError("attainment matrix must be a non-empty 2-D array")
    m, n = d.shape
    num_vars = m * n

    # Objective: maximise sum Z_ij D_ij  <=>  minimise -D . Z
    c = -d.reshape(-1)

    a_ub = []
    b_ub = []
    # Total routed mass cannot exceed 1.
    a_ub.append(np.ones(num_vars))
    b_ub.append(1.0)
    # Prefill capacity: sum_j Z_ij <= cap_i
    if prefill_capacity is not None:
        caps = np.asarray(list(prefill_capacity), dtype=float)
        if caps.shape != (m,):
            raise SchedulingError("prefill_capacity must have one entry per prefill replica")
        for i in range(m):
            row = np.zeros(num_vars)
            row[i * n : (i + 1) * n] = 1.0
            a_ub.append(row)
            b_ub.append(max(0.0, float(caps[i])))
    # Decode capacity: sum_i Z_ij <= cap_j
    if decode_capacity is not None:
        caps = np.asarray(list(decode_capacity), dtype=float)
        if caps.shape != (n,):
            raise SchedulingError("decode_capacity must have one entry per decode replica")
        for j in range(n):
            row = np.zeros(num_vars)
            row[j::n] = 1.0
            a_ub.append(row)
            b_ub.append(max(0.0, float(caps[j])))

    result = linprog(
        c,
        A_ub=np.vstack(a_ub),
        b_ub=np.asarray(b_ub),
        bounds=[(0.0, None)] * num_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - highs is robust for this LP class
        raise SchedulingError(f"orchestration LP failed: {result.message}")

    z = np.clip(result.x.reshape(m, n), 0.0, None)
    served = float(z.sum())
    objective = float((z * d).sum())

    # Recover X (normalised) and Y (row-normalised) for the routing policy.
    if served > 1e-12:
        x = z.sum(axis=1) / served
    else:
        x = np.full(m, 1.0 / m)
    y = np.zeros_like(z)
    for i in range(m):
        row_sum = z[i].sum()
        if row_sum > 1e-12:
            y[i] = z[i] / row_sum
        else:
            # Inactive prefill replica: give it a sane fallback dispatch row.
            best_j = int(np.argmax(d[i]))
            y[i, best_j] = 1.0
    return OrchestrationResult(x=x, y=y, z=z, objective=objective, served_fraction=served)


def random_orchestration(
    num_prefill: int, num_decode: int, rng: np.random.Generator
) -> OrchestrationResult:
    """Baseline used by the Figure 12 ablation: random dispatch, no optimisation."""
    if num_prefill < 1 or num_decode < 1:
        raise SchedulingError("random orchestration needs at least one replica per phase")
    x = rng.dirichlet(np.ones(num_prefill))
    y = rng.dirichlet(np.ones(num_decode), size=num_prefill)
    z = x[:, None] * y
    return OrchestrationResult(x=x, y=y, z=z, objective=float("nan"), served_fraction=1.0)


__all__ = ["OrchestrationResult", "solve_orchestration", "random_orchestration"]

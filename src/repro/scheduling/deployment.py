"""Deployment plans: serving groups, phase designation, parallel plans and routing.

A *deployment plan* is the full output of the scheduling algorithm (§3.1):

1. the group construction — which GPUs form each model-serving group,
2. the phase designation — whether each group serves prefill or decode,
3. the parallel configuration of each group (a :class:`~repro.parallelism.config.ReplicaPlan`),
4. the orchestration — how requests are routed among prefill and decode replicas
   (:class:`RoutingPolicy`, the ``X`` / ``Y`` of §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import InvalidPlanError
from repro.core.types import Phase
from repro.parallelism.config import ReplicaPlan


@dataclass(frozen=True)
class ServingGroup:
    """One model-serving group: a GPU set, its phase and its parallel plan."""

    group_id: int
    gpu_ids: Tuple[int, ...]
    phase: Phase
    plan: Optional[ReplicaPlan] = None

    def __post_init__(self) -> None:
        if not self.gpu_ids:
            raise InvalidPlanError("a serving group must contain at least one GPU")
        if len(set(self.gpu_ids)) != len(self.gpu_ids):
            raise InvalidPlanError("a serving group must not repeat GPUs")
        if self.plan is not None:
            if set(self.plan.gpu_ids) != set(self.gpu_ids):
                raise InvalidPlanError(
                    f"group {self.group_id}: parallel plan uses GPUs {sorted(self.plan.gpu_ids)} "
                    f"but the group owns {sorted(self.gpu_ids)}"
                )

    @property
    def num_gpus(self) -> int:
        """Number of GPUs in the group."""
        return len(self.gpu_ids)

    def with_phase(self, phase: Phase) -> "ServingGroup":
        """Return a copy of this group with a different phase designation."""
        return replace(self, phase=phase)

    def with_plan(self, plan: ReplicaPlan) -> "ServingGroup":
        """Return a copy of this group with a concrete parallel plan attached."""
        return replace(self, plan=plan)

    def describe(self, gpu_names: Optional[Dict[int, str]] = None) -> str:
        """Human-readable description, optionally naming the GPU types."""
        if gpu_names:
            counts: Dict[str, int] = {}
            for g in self.gpu_ids:
                counts[gpu_names[g]] = counts.get(gpu_names[g], 0) + 1
            hw = "+".join(f"{n}x{t}" for t, n in sorted(counts.items()))
        else:
            hw = f"{self.num_gpus} GPUs"
        plan_desc = self.plan.parallel_config if self.plan else "unplanned"
        return f"group {self.group_id}: {hw}, {plan_desc}, {self.phase.value}"


@dataclass(frozen=True)
class RoutingPolicy:
    """Request routing among prefill and decode replicas (the orchestration).

    ``prefill_weights[i]`` (``X_i`` in the paper) is the portion of incoming
    requests sent to the i-th prefill replica; ``dispatch[i, j]`` (``Y_ij``) is the
    portion of that replica's requests forwarded to the j-th decode replica.
    Indices follow ``prefill_group_ids`` / ``decode_group_ids``.
    """

    prefill_group_ids: Tuple[int, ...]
    decode_group_ids: Tuple[int, ...]
    prefill_weights: Tuple[float, ...]
    dispatch: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        m, n = len(self.prefill_group_ids), len(self.decode_group_ids)
        if len(self.prefill_weights) != m:
            raise InvalidPlanError("prefill_weights length must match prefill_group_ids")
        if len(self.dispatch) != m or any(len(row) != n for row in self.dispatch):
            raise InvalidPlanError("dispatch must be an m x n matrix")
        x = np.asarray(self.prefill_weights, dtype=float)
        y = np.asarray(self.dispatch, dtype=float)
        if np.any(x < -1e-9) or np.any(y < -1e-9):
            raise InvalidPlanError("routing weights must be non-negative")
        if abs(x.sum() - 1.0) > 1e-6:
            raise InvalidPlanError(f"prefill weights must sum to 1, got {x.sum():.6f}")
        active = x > 1e-12
        row_sums = y.sum(axis=1)
        if np.any(np.abs(row_sums[active] - 1.0) > 1e-6):
            raise InvalidPlanError("each active prefill replica's dispatch row must sum to 1")

    @classmethod
    def from_matrices(
        cls,
        prefill_group_ids: Sequence[int],
        decode_group_ids: Sequence[int],
        x: np.ndarray,
        y: np.ndarray,
    ) -> "RoutingPolicy":
        """Build a policy from NumPy arrays."""
        return cls(
            prefill_group_ids=tuple(prefill_group_ids),
            decode_group_ids=tuple(decode_group_ids),
            prefill_weights=tuple(float(v) for v in x),
            dispatch=tuple(tuple(float(v) for v in row) for row in y),
        )

    @classmethod
    def uniform(
        cls, prefill_group_ids: Sequence[int], decode_group_ids: Sequence[int]
    ) -> "RoutingPolicy":
        """Uniform routing: every prefill replica gets an equal share and dispatches evenly."""
        m, n = len(prefill_group_ids), len(decode_group_ids)
        if m == 0 or n == 0:
            raise InvalidPlanError("uniform routing requires at least one replica of each phase")
        x = np.full(m, 1.0 / m)
        y = np.full((m, n), 1.0 / n)
        return cls.from_matrices(prefill_group_ids, decode_group_ids, x, y)

    @property
    def x(self) -> np.ndarray:
        """Prefill weights as an array."""
        return np.asarray(self.prefill_weights, dtype=float)

    @property
    def y(self) -> np.ndarray:
        """Dispatch matrix as an array."""
        return np.asarray(self.dispatch, dtype=float)

    @property
    def joint(self) -> np.ndarray:
        """Joint routing fractions ``Z_ij = X_i * Y_ij`` (sums to 1)."""
        return self.x[:, None] * self.y

    def pair_share(self, prefill_group_id: int, decode_group_id: int) -> float:
        """Fraction of all requests taking the (prefill, decode) replica pair."""
        i = self.prefill_group_ids.index(prefill_group_id)
        j = self.decode_group_ids.index(decode_group_id)
        return float(self.joint[i, j])


@dataclass(frozen=True)
class DeploymentPlan:
    """The complete output of the scheduler."""

    groups: Tuple[ServingGroup, ...]
    routing: Optional[RoutingPolicy] = None
    model_name: str = ""
    kv_transport_bits: int = 4

    def __post_init__(self) -> None:
        if not self.groups:
            raise InvalidPlanError("a deployment plan must contain at least one group")
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen & set(group.gpu_ids)
            if overlap:
                raise InvalidPlanError(f"GPUs {sorted(overlap)} are assigned to multiple groups")
            seen.update(group.gpu_ids)
        ids = [g.group_id for g in self.groups]
        if len(set(ids)) != len(ids):
            raise InvalidPlanError("group ids must be unique")
        if self.kv_transport_bits not in (4, 8, 16):
            raise InvalidPlanError("kv_transport_bits must be 4, 8 or 16")
        if self.routing is not None:
            expected_prefill = tuple(g.group_id for g in self.groups if g.phase is Phase.PREFILL)
            expected_decode = tuple(g.group_id for g in self.groups if g.phase is Phase.DECODE)
            if set(self.routing.prefill_group_ids) != set(expected_prefill):
                raise InvalidPlanError("routing prefill groups do not match the plan's prefill groups")
            if set(self.routing.decode_group_ids) != set(expected_decode):
                raise InvalidPlanError("routing decode groups do not match the plan's decode groups")

    # ------------------------------------------------------------------ accessors
    @property
    def prefill_groups(self) -> List[ServingGroup]:
        """Groups designated as prefill replicas."""
        return [g for g in self.groups if g.phase is Phase.PREFILL]

    @property
    def decode_groups(self) -> List[ServingGroup]:
        """Groups designated as decode replicas."""
        return [g for g in self.groups if g.phase is Phase.DECODE]

    @property
    def num_replicas(self) -> int:
        """Total number of model replicas."""
        return len(self.groups)

    @property
    def prefill_decode_ratio(self) -> Tuple[int, int]:
        """(number of prefill replicas, number of decode replicas)."""
        return len(self.prefill_groups), len(self.decode_groups)

    @property
    def used_gpu_ids(self) -> List[int]:
        """All GPU ids used by the plan."""
        return sorted(g for group in self.groups for g in group.gpu_ids)

    def group(self, group_id: int) -> ServingGroup:
        """Look up a group by id."""
        for g in self.groups:
            if g.group_id == group_id:
                return g
        raise KeyError(f"no group with id {group_id}")

    def with_routing(self, routing: RoutingPolicy) -> "DeploymentPlan":
        """Return a copy of the plan with a new routing policy."""
        return replace(self, routing=routing)

    def with_groups(self, groups: Sequence[ServingGroup]) -> "DeploymentPlan":
        """Return a copy of the plan with a new group list (routing is dropped)."""
        return replace(self, groups=tuple(groups), routing=None)

    def describe(self, gpu_names: Optional[Dict[int, str]] = None) -> str:
        """Multi-line human-readable description (the Table 3 style breakdown)."""
        lines = [f"DeploymentPlan(model={self.model_name or 'unspecified'}, "
                 f"{len(self.prefill_groups)} prefill / {len(self.decode_groups)} decode replicas, "
                 f"kv_bits={self.kv_transport_bits})"]
        for g in self.groups:
            lines.append("  " + g.describe(gpu_names))
        return "\n".join(lines)


__all__ = ["ServingGroup", "RoutingPolicy", "DeploymentPlan"]

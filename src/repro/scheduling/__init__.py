"""ThunderServe's two-level scheduling algorithm (the paper's core contribution).

Upper level (§3.2): partition the heterogeneous GPU pool into model-serving groups
and designate each group's phase, searched with tabu search over four neighbourhood
moves (flip phase / split group / merge groups / move GPUs), initialised by
hierarchical clustering of the bandwidth matrix.

Lower level (§3.3): for a fixed group construction and phase designation, deduce
each group's optimal parallel configuration (Algorithm 2) and orchestrate prefill
and decode replicas by solving a two-stage transportation problem over the
estimated SLO-attainment matrix.

Lightweight rescheduling (§3.4): on workload shifts or GPU failures, only the phase
designation and the orchestration are re-optimised — parallel configurations are
kept and no parameters are reloaded.
"""

from repro.scheduling.deployment import DeploymentPlan, ServingGroup, RoutingPolicy
from repro.scheduling.solution import UpperLevelSolution, GroupAssignment
from repro.scheduling.clustering import initial_groups_by_clustering
from repro.scheduling.neighbors import (
    flip_phase,
    split_group,
    merge_groups,
    move_gpus,
    construct_neighbors,
)
from repro.scheduling.tabu import TabuSearch, TabuSearchConfig, SearchTrace
from repro.scheduling.estimator import SLOEstimator, ReplicaPerformance
from repro.scheduling.orchestration import solve_orchestration, OrchestrationResult
from repro.scheduling.lower_level import LowerLevelSolver, LowerLevelResult
from repro.scheduling.robust import (
    RobustEvaluator,
    RobustObjective,
    RobustScheduleResult,
    scenario_slo,
)
from repro.scheduling.scheduler import Scheduler, SchedulerConfig, ScheduleResult
from repro.scheduling.rescheduling import (
    LightweightRescheduler,
    ReschedulingOverheadModel,
)

__all__ = [
    "DeploymentPlan",
    "ServingGroup",
    "RoutingPolicy",
    "UpperLevelSolution",
    "GroupAssignment",
    "initial_groups_by_clustering",
    "flip_phase",
    "split_group",
    "merge_groups",
    "move_gpus",
    "construct_neighbors",
    "TabuSearch",
    "TabuSearchConfig",
    "SearchTrace",
    "SLOEstimator",
    "ReplicaPerformance",
    "solve_orchestration",
    "OrchestrationResult",
    "LowerLevelSolver",
    "LowerLevelResult",
    "RobustObjective",
    "RobustEvaluator",
    "RobustScheduleResult",
    "scenario_slo",
    "Scheduler",
    "SchedulerConfig",
    "ScheduleResult",
    "LightweightRescheduler",
    "ReschedulingOverheadModel",
]

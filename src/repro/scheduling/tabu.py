"""Generic tabu search (Algorithm 1 of the paper).

The search starts from an initial solution, repeatedly constructs a set of
neighbours, evaluates them with the (expensive) objective ``f``, moves to the best
non-tabu neighbour and remembers recently visited solutions in a bounded tabu list.
It returns the best solution seen and a trace of (wall-clock time, best objective)
pairs, which regenerates the convergence curves of Figure 10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

S = TypeVar("S")


@dataclass(frozen=True)
class TabuSearchConfig:
    """Hyper-parameters of Algorithm 1.

    ``num_steps`` is :math:`N_{step}`, ``num_neighbors`` is :math:`N_{nghb}` and
    ``memory_size`` is :math:`N_{mem}` in the paper's notation.  ``patience``
    optionally stops the search early after that many consecutive steps without
    improvement (0 disables early stopping); ``time_limit_s`` bounds wall-clock
    time.
    """

    num_steps: int = 100
    num_neighbors: int = 10
    memory_size: int = 5
    patience: int = 0
    time_limit_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_steps < 1 or self.num_neighbors < 1 or self.memory_size < 1:
            raise ValueError("num_steps, num_neighbors and memory_size must be >= 1")
        if self.patience < 0 or self.time_limit_s < 0:
            raise ValueError("patience and time_limit_s must be >= 0")


@dataclass
class SearchTrace:
    """Trace of a tabu-search run (used for the Figure 10 convergence curves)."""

    #: (elapsed seconds, best objective so far) recorded after every step
    history: List[Tuple[float, float]] = field(default_factory=list)
    #: number of candidate evaluations performed
    num_evaluations: int = 0
    #: total wall-clock time of the search in seconds
    elapsed_s: float = 0.0

    def best_curve(self) -> List[Tuple[float, float]]:
        """The monotone best-objective-vs-time curve."""
        return list(self.history)


@dataclass
class TabuSearchResult(Generic[S]):
    """Best solution found plus its objective and the search trace."""

    best_solution: S
    best_objective: float
    trace: SearchTrace


class TabuSearch(Generic[S]):
    """Tabu search over an arbitrary solution type.

    Parameters
    ----------
    objective:
        Callable returning the scalar objective to *maximise* for a solution.
        May be ``None`` when ``batch_objective`` is provided — single solutions
        (the initial one included) are then scored through a batch of one, so
        evaluators only need to implement one scoring path.
    neighbor_fn:
        Callable producing a list of candidate neighbours for a solution.  With
        ``pass_tabu_keys=True`` it must accept a third argument — the current
        tabu keys — so that generation can skip tabu candidates instead of
        wasting attempts on them.
    key_fn:
        Callable mapping a solution to a hashable key (used by the tabu list).
        Defaults to the identity, which requires hashable solutions.
    config:
        Search hyper-parameters.
    batch_objective:
        Optional callable scoring a whole batch of candidates at once, returning
        one objective per candidate in order.  When provided, each search step
        scores its neighbourhood with a single call — evaluators with shared
        caches (e.g. the lower-level solver) can then deduplicate work across
        the batch instead of rescoring one candidate at a time.
    pass_tabu_keys:
        Explicit opt-in: pass the current tabu keys as a third positional
        argument to ``neighbor_fn`` so candidates can be filtered during
        generation.
    """

    def __init__(
        self,
        objective: Optional[Callable[[S], float]],
        neighbor_fn: Callable[[S, int], Sequence[S]],
        key_fn: Optional[Callable[[S], Hashable]] = None,
        config: TabuSearchConfig = TabuSearchConfig(),
        batch_objective: Optional[Callable[[Sequence[S]], Sequence[float]]] = None,
        pass_tabu_keys: bool = False,
    ) -> None:
        if objective is None and batch_objective is None:
            raise ValueError("either objective or batch_objective is required")
        self.objective = objective
        self.neighbor_fn = neighbor_fn
        self.key_fn = key_fn or (lambda s: s)  # type: ignore[assignment]
        self.config = config
        self.batch_objective = batch_objective
        self.pass_tabu_keys = pass_tabu_keys

    def _score(self, candidates: Sequence[S]) -> List[float]:
        """Score candidates, batched when a batch objective is available."""
        if self.batch_objective is not None:
            scores = list(self.batch_objective(candidates))
            if len(scores) != len(candidates):
                raise ValueError(
                    f"batch_objective returned {len(scores)} scores "
                    f"for {len(candidates)} candidates"
                )
            return [float(s) for s in scores]
        assert self.objective is not None  # enforced in __init__
        return [self.objective(c) for c in candidates]

    def run(self, initial_solution: S) -> TabuSearchResult[S]:
        """Execute Algorithm 1 starting from ``initial_solution``."""
        cfg = self.config
        start = time.perf_counter()
        trace = SearchTrace()

        current = initial_solution
        current_obj = (
            self.objective(current)
            if self.objective is not None
            else self._score([current])[0]
        )
        trace.num_evaluations += 1
        best, best_obj = current, current_obj
        # The ordered list is the bounded memory; the set gives O(1) membership
        # checks when filtering whole neighbourhood batches.
        tabu: List[Hashable] = [self.key_fn(current)]
        tabu_set = set(tabu)
        trace.history.append((time.perf_counter() - start, best_obj))

        stale_steps = 0
        for _ in range(cfg.num_steps):
            if cfg.time_limit_s and time.perf_counter() - start > cfg.time_limit_s:
                break
            if self.pass_tabu_keys:
                neighbors = list(self.neighbor_fn(current, cfg.num_neighbors, tuple(tabu)))
                if not neighbors:
                    # Everything reachable is tabu: regenerate without the
                    # exclusions so the search can still move through a tabu
                    # solution (the classic aspiration-by-default fallback)
                    # rather than terminating on small search spaces.
                    neighbors = list(self.neighbor_fn(current, cfg.num_neighbors, ()))
            else:
                neighbors = list(self.neighbor_fn(current, cfg.num_neighbors))
            # Exclude tabu solutions from navigation.
            candidates = [n for n in neighbors if self.key_fn(n) not in tabu_set]
            if not candidates:
                candidates = neighbors
            if not candidates:
                break
            scored = list(zip(self._score(candidates), candidates))
            trace.num_evaluations += len(scored)
            step_obj, step_best = max(scored, key=lambda t: t[0])

            if step_obj > best_obj:
                best, best_obj = step_best, step_obj
                stale_steps = 0
            else:
                stale_steps += 1

            tabu.append(self.key_fn(step_best))
            if len(tabu) > cfg.memory_size:
                tabu = tabu[-cfg.memory_size:]
            tabu_set = set(tabu)
            current, current_obj = step_best, step_obj
            trace.history.append((time.perf_counter() - start, best_obj))

            if cfg.patience and stale_steps >= cfg.patience:
                break

        trace.elapsed_s = time.perf_counter() - start
        return TabuSearchResult(best_solution=best, best_objective=best_obj, trace=trace)


__all__ = ["TabuSearch", "TabuSearchConfig", "TabuSearchResult", "SearchTrace"]

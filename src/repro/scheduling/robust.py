"""Robust scenario-aware scheduling (closes the ROADMAP's top open item).

The single-workload scheduler optimises ``f(x)`` — the estimated SLO attainment
of an upper-level solution — for one workload spec.  Production deployments face
a *set* of operating conditions (the scenario library), and a plan tuned for one
of them can be badly exposed under another.  Robust mode makes the tabu search
optimise an aggregate of the per-scenario objectives directly:

* ``min`` — maximise the worst-case scenario objective (the classic robust
  optimisation stance);
* ``mix`` — maximise a weighted mean over scenarios (weights default to
  uniform; an all-zero or negative weight vector is rejected);
* ``cvar`` — maximise the Conditional Value at Risk: the mean of the worst
  ``ceil(alpha * K)`` scenario objectives, interpolating between ``min``
  (``alpha -> 0``) and the uniform mean (``alpha = 1``).

The inner evaluator is the same per-scenario objective the
:class:`~repro.scenarios.sweep.ScenarioSweep` pins its SLO tiers to: each
scenario gets its own :class:`~repro.scheduling.lower_level.LowerLevelSolver`
built from the scenario's planning workload, request rate and SLO tier
(:func:`scenario_slo` is the shared derivation).  Scoring stays affordable
because everything that can be shared *is* shared:

* parallel-plan deduction is memoised in **one cache across all scenario
  solvers**, keyed by the GPU set, the phase and the workload's planning shape
  (the rounded mean lengths are all the deduction consumes), so scenarios that
  plan for the same shape — typically most of the library — pay a
  neighbourhood's plan-feasibility work once, not once per scenario;
* each solver memoises its objective per solution key, so tabu revisits and
  duplicate candidates cost nothing;
* each solver's estimator keeps its vectorized per-replica latency grids warm
  across the whole search.

Batch scoring is scenario-major: every solver scores the whole neighbourhood in
one pass before the next solver starts, keeping its caches hot, and the
aggregate is then taken per candidate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.types import SLOSpec
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.costmodel.reference import a100_reference_latency
from repro.model.architecture import ModelConfig
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.lower_level import LowerLevelResult, LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.scheduling.tabu import SearchTrace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.scenarios.base import Scenario


#: Aggregation kinds understood by :class:`RobustObjective`.
AGGREGATE_KINDS = ("min", "mix", "cvar")


def scenario_slo(
    scenario: "Scenario", model: ModelConfig, params: CostModelParams = DEFAULT_PARAMS
) -> SLOSpec:
    """The SLO tier a scenario holds a deployment to (shared with the sweep).

    Deadlines are the scenario's own :meth:`~repro.scenarios.base.Scenario.slo_scale`
    multiple of the A100 reference latency of its planning workload — the same
    contract :class:`~repro.scenarios.sweep.ScenarioSweep` serves against, so the
    robust objective and the sweep's reported attainment measure the same thing.
    """
    workload = scenario.planning_workload()
    return a100_reference_latency(model, workload, params=params).slo_spec(
        scenario.slo_scale()
    )


@dataclass(frozen=True)
class RobustObjective:
    """How per-scenario objectives are folded into one robust objective.

    Parameters
    ----------
    kind:
        ``"min"`` (worst case, the default), ``"mix"`` (weighted mean) or
        ``"cvar"`` (mean of the worst ``ceil(cvar_alpha * K)`` scenarios).
    weights:
        Per-scenario weights for ``"mix"``, aligned with the scenario order
        handed to the scheduler.  ``None`` means uniform.  Must be non-negative
        with a positive sum; ignored by the other kinds.
    cvar_alpha:
        Tail fraction for ``"cvar"``, in ``(0, 1]``.
    """

    kind: str = "min"
    weights: Optional[Tuple[float, ...]] = None
    cvar_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise ValueError(
                f"unknown robust objective kind {self.kind!r}; known: {AGGREGATE_KINDS}"
            )
        if self.weights is not None:
            weights = tuple(float(w) for w in self.weights)
            object.__setattr__(self, "weights", weights)
            if not weights:
                raise ValueError("weights must be non-empty when given")
            if any(not math.isfinite(w) for w in weights):
                raise ValueError(f"weights must be finite, got {weights}")
            if any(w < 0 for w in weights):
                raise ValueError(f"weights must be non-negative, got {weights}")
            if sum(weights) <= 0:
                raise ValueError("weights must not be all zero")
        if not 0 < self.cvar_alpha <= 1:
            raise ValueError("cvar_alpha must be in (0, 1]")

    # ------------------------------------------------------------------ factories
    @classmethod
    def worst_case(cls) -> "RobustObjective":
        """Maximise the worst-case scenario objective."""
        return cls(kind="min")

    @classmethod
    def weighted_mix(cls, weights: Sequence[float]) -> "RobustObjective":
        """Maximise a weighted mean of the scenario objectives."""
        return cls(kind="mix", weights=tuple(weights))

    @classmethod
    def cvar(cls, alpha: float = 0.3) -> "RobustObjective":
        """Maximise the mean of the worst ``ceil(alpha * K)`` scenario objectives."""
        return cls(kind="cvar", cvar_alpha=alpha)

    # ------------------------------------------------------------------ validation
    def validate_for(self, num_scenarios: int) -> None:
        """Check this objective is usable with ``num_scenarios`` scenarios."""
        if num_scenarios < 1:
            raise ValueError("robust scheduling needs at least one scenario")
        if self.kind == "mix" and self.weights is not None and len(self.weights) != num_scenarios:
            raise ValueError(
                f"{len(self.weights)} weights given for {num_scenarios} scenarios"
            )

    # ------------------------------------------------------------------ aggregate
    def aggregate(self, scores: Sequence[float]) -> float:
        """Fold per-scenario objective values into the robust objective."""
        values = [float(s) for s in scores]
        if not values:
            raise ValueError("cannot aggregate an empty score vector")
        if self.kind == "min":
            return min(values)
        if self.kind == "mix":
            weights = self.weights or tuple(1.0 for _ in values)
            if len(weights) != len(values):
                raise ValueError(
                    f"{len(weights)} weights for {len(values)} scenario scores"
                )
            total = sum(weights)
            return sum(w * v for w, v in zip(weights, values)) / total
        # kind == "cvar": mean of the worst ceil(alpha * K) scores
        k = max(1, math.ceil(self.cvar_alpha * len(values)))
        tail = sorted(values)[:k]
        return sum(tail) / k


class RobustEvaluator:
    """Scores upper-level solutions across a scenario set for the tabu search.

    Parameters
    ----------
    solvers:
        ``(scenario_name, solver)`` pairs in scenario order (the order aligns
        ``mix`` weights).  Build the solvers with a shared plan cache
        (:meth:`~repro.scheduling.scheduler.Scheduler.build_solver` accepts
        ``plan_cache``) so parallel-plan deduction is paid once per group.
    objective:
        The aggregation rule.
    """

    def __init__(
        self,
        solvers: Sequence[Tuple[str, LowerLevelSolver]],
        objective: RobustObjective,
    ) -> None:
        self._solvers: List[Tuple[str, LowerLevelSolver]] = list(solvers)
        if not self._solvers:
            raise ValueError("robust scheduling needs at least one scenario solver")
        names = [name for name, _ in self._solvers]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")
        objective.validate_for(len(self._solvers))
        self.objective = objective

    @property
    def scenario_names(self) -> List[str]:
        """Scenario names in aggregation order."""
        return [name for name, _ in self._solvers]

    def scenario_scores(self, solution: UpperLevelSolution) -> Dict[str, float]:
        """Per-scenario objective values of one solution (memoised per solver)."""
        return {name: solver.evaluate(solution) for name, solver in self._solvers}

    def evaluate(self, solution: UpperLevelSolution) -> float:
        """Robust objective of one solution."""
        return self.objective.aggregate(
            [solver.evaluate(solution) for _, solver in self._solvers]
        )

    def evaluate_batch(self, solutions: Sequence[UpperLevelSolution]) -> List[float]:
        """Robust objectives of a whole neighbourhood batch.

        Scenario-major: each solver scores every candidate in one pass (keeping
        its estimator grids and objective memo hot) before the next solver runs;
        the aggregate is then taken candidate by candidate.
        """
        per_scenario = [solver.evaluate_batch(solutions) for _, solver in self._solvers]
        return [
            self.objective.aggregate([scores[k] for scores in per_scenario])
            for k in range(len(solutions))
        ]


@dataclass
class RobustScheduleResult:
    """Output of a robust scheduling run.

    The returned ``plan`` is the best solution solved under its **binding**
    scenario — the worst estimated attainment among the scenarios the solution
    is feasible under — so the installed routing is tuned for the operating
    condition the plan is most exposed to; ``per_scenario`` holds the full
    lower-level result under every scenario (individually infeasible scenarios
    appear with ``feasible=False`` and zero attainment) for downstream analysis.
    """

    plan: DeploymentPlan
    #: aggregate robust objective of the winning solution
    objective: float
    trace: SearchTrace
    solution: UpperLevelSolution
    robust: RobustObjective
    per_scenario: Dict[str, LowerLevelResult] = field(default_factory=dict)
    #: binding scenario: worst estimated attainment among *feasible* scenarios
    worst_scenario: str = ""
    elapsed_s: float = 0.0

    @property
    def per_scenario_attainment(self) -> Dict[str, float]:
        """Estimated SLO attainment of the winning solution under each scenario.

        Individually infeasible scenarios report 0.0 — the plan serves nothing
        there, which is exactly what a worst-case reading should see.
        """
        return {name: r.estimated_attainment for name, r in self.per_scenario.items()}

    @property
    def worst_case_attainment(self) -> float:
        """Worst per-scenario estimated attainment (0.0 if any scenario is infeasible).

        Note this can name a different scenario than ``worst_scenario``:
        ``worst_scenario`` is the *binding* scenario — the worst among those the
        solution is feasible under, i.e. the one the installed plan's routing
        is tuned for — while this minimum also counts infeasible scenarios at
        zero.  The two coincide whenever every scenario is feasible.
        """
        return min(self.per_scenario_attainment.values())

    @property
    def mean_attainment(self) -> float:
        """Unweighted mean per-scenario estimated attainment."""
        values = list(self.per_scenario_attainment.values())
        return sum(values) / len(values)


__all__ = [
    "AGGREGATE_KINDS",
    "RobustObjective",
    "RobustEvaluator",
    "RobustScheduleResult",
    "scenario_slo",
]

"""Lower-level solver: parallel-configuration deduction + orchestration (§3.3).

Given an upper-level solution (group construction + phase designation), the lower
level:

1. deduces the optimal parallel configuration of every group with Algorithm 2
   (latency-optimal for prefill groups, throughput-optimal for decode groups),
2. estimates the SLO attainment of every (prefill, decode) pair with the analytic
   estimator, and
3. orchestrates the replicas by solving the two-stage transportation problem.

The resulting system-level attainment is the value ``f(x)`` consumed by the tabu
search.  Parallel-plan deduction is memoised on (GPU set, phase) because the tabu
search revisits the same groups in many candidate solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import InsufficientMemoryError
from repro.core.types import Phase, SLOSpec, SLOType
from repro.costmodel.latency import (
    CostModelParams,
    DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    DEFAULT_PARAMS,
)
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.parallelism.config import ReplicaPlan
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy, ServingGroup
from repro.scheduling.estimator import ReplicaPerformance, SLOEstimator
from repro.scheduling.orchestration import OrchestrationResult, random_orchestration, solve_orchestration
from repro.scheduling.solution import UpperLevelSolution
from repro.workload.spec import WorkloadSpec


#: Objective assigned to structurally infeasible solutions (no plan, missing phase,
#: group too small to hold the model, ...).  Any feasible solution scores >= 0.
INFEASIBLE_OBJECTIVE = -1.0

#: Small bonus per unit of served request mass added to the tabu-search objective.
#: When the offered load saturates the cluster (or the SLO is trivially loose) the
#: attainment term alone is flat, which would leave the search without a gradient;
#: rewarding served capacity keeps it moving towards higher-throughput designations
#: without ever outweighing a real attainment difference.
SERVED_FRACTION_BONUS = 0.05


@dataclass
class LowerLevelResult:
    """Outcome of evaluating one upper-level solution."""

    #: tabu-search objective: estimated attainment plus the served-capacity bonus
    objective: float
    feasible: bool
    plan: Optional[DeploymentPlan] = None
    attainment_matrix: Optional[np.ndarray] = None
    orchestration: Optional[OrchestrationResult] = None
    #: estimated end-to-end SLO attainment of the routed traffic (no bonus term)
    estimated_attainment: float = 0.0
    #: per-group performance views, keyed by group id
    performance: Dict[int, ReplicaPerformance] = field(default_factory=dict)


class LowerLevelSolver:
    """Evaluates upper-level solutions and materialises full deployment plans.

    Parameters
    ----------
    cluster, model, workload, slo, request_rate:
        The serving context the deployment must satisfy.
    kv_transport_bits:
        KV transport precision used in the KV-communication term (4 = compressed).
    orchestration_mode:
        ``"lp"`` (the paper's TSTP), ``"uniform"`` or ``"random"`` (Figure 12
        ablation).
    fixed_plans:
        Optional mapping from (sorted GPU tuple) to an existing
        :class:`ReplicaPlan`; when provided those plans are reused instead of
        re-deduced.  The lightweight rescheduler uses this to keep parallel
        configurations unchanged.
    plan_cache:
        Optional externally shared memo for parallel-plan deduction.  Keys
        include the model name and the workload's rounded mean input/output
        lengths (the only workload facts :func:`deduce_parallel_plan`
        consumes), so robust scheduling can hand one cache to every
        per-scenario solver: scenarios with the same planning shape (e.g. the
        conversation-workload trio) share deductions, while differently-shaped
        scenarios get their own entries.  The cache must only be shared among
        solvers over the same cluster and cost params — the key does not carry
        those (robust scheduling holds them constant by construction).
    prefill_batch_requests:
        Prefill batching assumed by the attainment estimator (defaults to the
        serving engine's ``max_prefill_batch_requests`` default, so estimates
        and simulation agree on the batching policy).
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        slo: SLOSpec,
        request_rate: float,
        kv_transport_bits: int = 4,
        params: CostModelParams = DEFAULT_PARAMS,
        slo_type: SLOType = SLOType.E2E,
        orchestration_mode: str = "lp",
        fixed_plans: Optional[Dict[Tuple[int, ...], ReplicaPlan]] = None,
        seed: int = 0,
        plan_cache: Optional[Dict[object, Optional[ReplicaPlan]]] = None,
        prefill_batch_requests: int = DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    ) -> None:
        if orchestration_mode not in ("lp", "uniform", "random"):
            raise ValueError("orchestration_mode must be 'lp', 'uniform' or 'random'")
        self.cluster = cluster
        self.model = model
        self.workload = workload
        self.slo = slo
        self.request_rate = request_rate
        self.kv_transport_bits = kv_transport_bits
        self.params = params
        self.slo_type = slo_type
        self.orchestration_mode = orchestration_mode
        self.fixed_plans = dict(fixed_plans or {})
        self._rng = np.random.default_rng(seed)
        self.estimator = SLOEstimator(
            cluster=cluster,
            model=model,
            workload=workload,
            slo=slo,
            request_rate=request_rate,
            kv_transport_bits=kv_transport_bits,
            params=params,
            prefill_batch_requests=prefill_batch_requests,
        )
        self._plan_cache: Dict[object, Optional[ReplicaPlan]] = (
            plan_cache if plan_cache is not None else {}
        )
        # The deduced plan depends on the workload only through these rounded
        # mean lengths (see enumerate_parallel_plans); salting the cache key
        # with them — plus the model name — keeps a shared cache correct across
        # per-scenario solvers.  Cluster and cost params are deliberately not
        # in the key: sharers must hold them constant (schedule_robust does).
        self._plan_key_salt = (
            model.name,
            max(1, int(round(workload.mean_input_length))),
            max(1, int(round(workload.mean_output_length))),
        )
        self._objective_cache: Dict[object, float] = {}
        self.num_evaluations = 0

    # ------------------------------------------------------------------ plans
    def _plan_for(self, gpu_ids: Tuple[int, ...], phase: Phase) -> Optional[ReplicaPlan]:
        """Deduce (or fetch) the parallel plan for a group; ``None`` when infeasible."""
        gpu_key = tuple(sorted(gpu_ids))
        fixed = self.fixed_plans.get(gpu_key)
        if fixed is not None:
            return fixed
        key = (gpu_key, phase, self._plan_key_salt)
        if key in self._plan_cache:
            return self._plan_cache[key]
        try:
            plan = deduce_parallel_plan(
                self.cluster, list(gpu_ids), phase, self.model, self.workload, self.params
            )
        except InsufficientMemoryError:
            plan = None
        self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------ evaluate
    def evaluate(self, solution: UpperLevelSolution) -> float:
        """Objective value ``f(x)`` of an upper-level solution (for tabu search).

        Memoised on the solution's canonical key: the tabu search repeatedly
        generates structurally identical candidates across steps, and a full
        ``solve`` is by far the hottest call of the whole scheduling run.
        """
        key = solution.key()
        cached = self._objective_cache.get(key)
        if cached is not None:
            return cached
        objective = self.solve(solution).objective
        self._objective_cache[key] = objective
        return objective

    def evaluate_batch(self, solutions: Sequence[UpperLevelSolution]) -> List[float]:
        """Objective values of a whole neighbourhood batch.

        Structurally identical candidates within the batch (and across previous
        batches) hit :meth:`evaluate`'s memo; the estimator's replica-performance
        and grid-latency caches are shared by all candidates, so batch scoring
        costs roughly one ``solve`` per *distinct new* solution.
        """
        return [self.evaluate(s) for s in solutions]

    def solve(self, solution: UpperLevelSolution) -> LowerLevelResult:
        """Fully evaluate a solution and build its deployment plan."""
        self.num_evaluations += 1
        groups: List[ServingGroup] = []
        for idx, assignment in enumerate(solution.groups):
            plan = self._plan_for(tuple(assignment.gpu_ids), assignment.phase)
            if plan is None:
                return LowerLevelResult(objective=INFEASIBLE_OBJECTIVE, feasible=False)
            groups.append(
                ServingGroup(
                    group_id=idx,
                    gpu_ids=tuple(sorted(assignment.gpu_ids)),
                    phase=assignment.phase,
                    plan=plan,
                )
            )

        prefill_groups = [g for g in groups if g.phase is Phase.PREFILL]
        decode_groups = [g for g in groups if g.phase is Phase.DECODE]
        if not prefill_groups or not decode_groups:
            return LowerLevelResult(objective=INFEASIBLE_OBJECTIVE, feasible=False)

        prefills = [self.estimator.replica_performance(g) for g in prefill_groups]
        decodes = [self.estimator.replica_performance(g) for g in decode_groups]

        prefill_caps = [self.estimator.prefill_capacity_fraction(p) for p in prefills]
        decode_caps = [self.estimator.decode_capacity_fraction(d) for d in decodes]

        # Two-pass fixed point: operating points from a provisional routing, then
        # the final attainment matrix and routing at those operating points.
        z = self._initial_joint(prefill_caps, decode_caps)
        orchestration: Optional[OrchestrationResult] = None
        d = np.zeros((len(prefills), len(decodes)))
        for _ in range(2):
            utilizations, batches = self._operating_points(z, prefills, decodes)
            d = self.estimator.attainment_matrix(
                prefills, decodes,
                prefill_utilizations=utilizations,
                decode_batches=batches,
                slo_type=self.slo_type,
            )
            # The served-capacity bonus keeps the LP (and hence the tabu search)
            # oriented towards serving more traffic even when D saturates at 0/1.
            orchestration = self._orchestrate(d + SERVED_FRACTION_BONUS, prefill_caps, decode_caps)
            z = orchestration.z

        assert orchestration is not None
        routing = RoutingPolicy.from_matrices(
            [g.group_id for g in prefill_groups],
            [g.group_id for g in decode_groups],
            orchestration.x,
            orchestration.y,
        )
        plan = DeploymentPlan(
            groups=tuple(groups),
            routing=routing,
            model_name=self.model.name,
            kv_transport_bits=self.kv_transport_bits,
        )
        if self.orchestration_mode == "lp":
            effective = orchestration.z
        else:
            # Non-optimised orchestration ignores replica capacities when routing,
            # so score it on the capacity-clipped routing: mass sent beyond a
            # replica's sustainable share queues up and misses its SLO.
            effective = self._clip_to_capacity(orchestration.z, prefill_caps, decode_caps)
        estimated_attainment = float((effective * d).sum())
        objective = estimated_attainment + SERVED_FRACTION_BONUS * float(effective.sum())
        performance = {p.group.group_id: p for p in prefills}
        performance.update({q.group.group_id: q for q in decodes})
        return LowerLevelResult(
            objective=objective,
            feasible=True,
            plan=plan,
            attainment_matrix=d,
            orchestration=orchestration,
            estimated_attainment=estimated_attainment,
            performance=performance,
        )

    # ------------------------------------------------------------------ internals
    def _initial_joint(self, prefill_caps: List[float], decode_caps: List[float]) -> np.ndarray:
        """Capacity-proportional provisional routing used to seed the fixed point."""
        p = np.asarray(prefill_caps, dtype=float)
        q = np.asarray(decode_caps, dtype=float)
        p = p / p.sum() if p.sum() > 0 else np.full_like(p, 1.0 / len(p))
        q = q / q.sum() if q.sum() > 0 else np.full_like(q, 1.0 / len(q))
        return np.outer(p, q)

    def _operating_points(
        self,
        z: np.ndarray,
        prefills: List[ReplicaPerformance],
        decodes: List[ReplicaPerformance],
    ) -> Tuple[List[float], List[int]]:
        """Per-replica prefill utilisation and decode operating batch implied by a routing.

        The implied utilisation is passed through *unclamped*: a routing that
        overloads a prefill replica yields ``rho >= 1``, which the estimator's
        M/G/1 overload handling turns into zero attainment for that row — the
        fixed point then reroutes the mass or the plan scores what an
        infeasible plan deserves.  (This used to be silently clamped at 0.95,
        which made overloaded plans look ~0.95-utilised and finite-wait.)
        A KV-infeasible decode replica likewise reports operating batch 0 and
        is zeroed by the estimator rather than pretending to run at batch 1.

        The routing ``z`` is normalised before the rates are derived: the LP
        clips routed mass to replica capacities (``z.sum() < 1`` under
        overload), but :class:`RoutingPolicy` renormalises ``X`` to route the
        *full* offered rate, so the replicas' real arrival rates follow the
        mass shares, not the capacity-clipped mass.  Deriving rho from the
        clipped mass was the second half of the flattery: a fleet offered 1.5x
        its capacity would report rho ~ 0.85 because the LP refused to route
        the overflow the serving system still has to absorb.
        """
        rate = self.request_rate
        mean_out = self.estimator.mean_output
        context = self.estimator.mean_input + mean_out
        total = float(z.sum())
        m, n = z.shape
        utilizations = []
        for i, perf in enumerate(prefills):
            share = float(z[i, :].sum()) / total if total > 0 else 1.0 / m
            utilizations.append(share * rate * perf.prefill_service_s)
        batches = []
        for j, perf in enumerate(decodes):
            share = float(z[:, j].sum()) / total if total > 0 else 1.0 / n
            token_rate = share * rate * mean_out
            batches.append(perf.decode_operating_batch(token_rate, context))
        return utilizations, batches

    @staticmethod
    def _clip_to_capacity(
        z: np.ndarray, prefill_caps: List[float], decode_caps: List[float]
    ) -> np.ndarray:
        """Down-scale a joint routing so no replica exceeds its capacity fraction."""
        clipped = np.asarray(z, dtype=float).copy()
        row_sums = clipped.sum(axis=1)
        for i, cap in enumerate(prefill_caps):
            if row_sums[i] > cap > 0:
                clipped[i] *= cap / row_sums[i]
            elif cap <= 0:
                clipped[i] = 0.0
        col_sums = clipped.sum(axis=0)
        for j, cap in enumerate(decode_caps):
            if col_sums[j] > cap > 0:
                clipped[:, j] *= cap / col_sums[j]
            elif cap <= 0:
                clipped[:, j] = 0.0
        return clipped

    def _orchestrate(
        self, d: np.ndarray, prefill_caps: List[float], decode_caps: List[float]
    ) -> OrchestrationResult:
        if self.orchestration_mode == "lp":
            return solve_orchestration(d, prefill_caps, decode_caps)
        if self.orchestration_mode == "uniform":
            m, n = d.shape
            x = np.full(m, 1.0 / m)
            y = np.full((m, n), 1.0 / n)
            z = np.outer(x, y[0])
            return OrchestrationResult(x=x, y=y, z=z, objective=float((z * d).sum()), served_fraction=1.0)
        return random_orchestration(d.shape[0], d.shape[1], self._rng)


__all__ = ["LowerLevelSolver", "LowerLevelResult", "INFEASIBLE_OBJECTIVE"]

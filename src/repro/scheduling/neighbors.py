"""Neighbourhood moves of the tabu search (§3.2, Figure 4).

Four moves generate neighbours of an upper-level solution:

* **flip** — flip the phase designation of one group;
* **split** — split one group into two by a random ratio (phases re-randomised);
* **merge** — merge two groups into one (phase re-randomised);
* **move** — move some GPUs of one type from one group to another.

Every generated neighbour passes the early feasibility check of the paper: a group
whose total memory cannot hold one copy of the model parameters is discarded
before the (comparatively expensive) lower-level evaluation.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Optional

import numpy as np

from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Phase
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.parallelism.partition import group_can_hold_model
from repro.scheduling.solution import GroupAssignment, UpperLevelSolution


def _random_phase(rng: np.random.Generator) -> Phase:
    return Phase.PREFILL if rng.random() < 0.5 else Phase.DECODE


def _feasible(
    cluster: Cluster, model: ModelConfig, solution: UpperLevelSolution, kv_reserve_fraction: float
) -> bool:
    """Early feasibility check: every group can hold the model, both phases exist."""
    if solution.num_groups >= 2 and (solution.num_prefill == 0 or solution.num_decode == 0):
        return False
    return all(
        group_can_hold_model(cluster, g.gpu_ids, model, kv_reserve_fraction)
        for g in solution.groups
    )


# --------------------------------------------------------------------------- moves
def flip_phase(
    solution: UpperLevelSolution, rng: RNGLike = None, group_index: Optional[int] = None
) -> Optional[UpperLevelSolution]:
    """Flip the phase of one (randomly chosen) group."""
    gen = ensure_rng(rng)
    idx = int(gen.integers(0, solution.num_groups)) if group_index is None else group_index
    group = solution.groups[idx]
    return solution.replace_group(idx, group.with_phase(group.phase.other()))


def split_group(
    solution: UpperLevelSolution, rng: RNGLike = None
) -> Optional[UpperLevelSolution]:
    """Split a randomly chosen group into two along a random ratio."""
    gen = ensure_rng(rng)
    splittable = [i for i, g in enumerate(solution.groups) if g.num_gpus >= 2]
    if not splittable:
        return None
    idx = int(gen.choice(splittable))
    group = solution.groups[idx]
    gpus = sorted(group.gpu_ids)
    ratio = float(gen.uniform(0.25, 0.75))
    cut = int(len(gpus) * ratio)
    cut = min(max(cut, 1), len(gpus) - 1)
    first = GroupAssignment(gpu_ids=frozenset(gpus[:cut]), phase=_random_phase(gen))
    second = GroupAssignment(gpu_ids=frozenset(gpus[cut:]), phase=_random_phase(gen))
    return solution.replace_group(idx, first, second)


def merge_groups(
    solution: UpperLevelSolution, rng: RNGLike = None
) -> Optional[UpperLevelSolution]:
    """Merge two randomly chosen groups into one."""
    gen = ensure_rng(rng)
    if solution.num_groups < 2:
        return None
    i, j = gen.choice(solution.num_groups, size=2, replace=False)
    i, j = int(min(i, j)), int(max(i, j))
    merged = GroupAssignment(
        gpu_ids=solution.groups[i].gpu_ids | solution.groups[j].gpu_ids,
        phase=_random_phase(gen),
    )
    without_j = solution.replace_group(j)
    # Group i keeps its index after removing j (j > i).
    return without_j.replace_group(i, merged)


def move_gpus(
    solution: UpperLevelSolution, cluster: Cluster, rng: RNGLike = None
) -> Optional[UpperLevelSolution]:
    """Move one or more GPUs of a single type from one group to another."""
    gen = ensure_rng(rng)
    if solution.num_groups < 2:
        return None
    donors = [i for i, g in enumerate(solution.groups) if g.num_gpus >= 2]
    if not donors:
        return None
    src_idx = int(gen.choice(donors))
    dst_idx = int(gen.choice([i for i in range(solution.num_groups) if i != src_idx]))
    src = solution.groups[src_idx]
    dst = solution.groups[dst_idx]

    # Pick a GPU type present in the source group and move 1..(count-1) of them.
    by_type: dict[str, List[int]] = {}
    for g in src.gpu_ids:
        by_type.setdefault(cluster.gpu(g).type_name, []).append(g)
    type_name = str(gen.choice(sorted(by_type)))
    candidates = sorted(by_type[type_name])
    max_move = min(len(candidates), src.num_gpus - 1)
    if max_move < 1:
        return None
    count = int(gen.integers(1, max_move + 1))
    moved = frozenset(candidates[:count])

    new_src = GroupAssignment(gpu_ids=src.gpu_ids - moved, phase=src.phase)
    new_dst = GroupAssignment(gpu_ids=dst.gpu_ids | moved, phase=dst.phase)
    groups = list(solution.groups)
    groups[src_idx] = new_src
    groups[dst_idx] = new_dst
    return UpperLevelSolution.from_lists([(g.gpu_ids, g.phase) for g in groups])


# --------------------------------------------------------------------------- batch
def construct_neighbors(
    solution: UpperLevelSolution,
    cluster: Cluster,
    model: ModelConfig,
    num_neighbors: int,
    rng: RNGLike = None,
    kv_reserve_fraction: float = 0.3,
    moves: Optional[List[str]] = None,
    max_attempts_factor: int = 8,
    exclude_keys: Optional[Iterable[Hashable]] = None,
) -> List[UpperLevelSolution]:
    """Generate up to ``num_neighbors`` feasible, distinct neighbours of a solution.

    ``moves`` restricts the allowed move set; the lightweight rescheduler passes
    ``["flip"]`` so that only phase designations change (§3.4).  ``exclude_keys``
    (typically the tabu list) rejects candidates during generation, so the batch
    handed to the evaluator contains only solutions the search can actually move
    to instead of wasting attempts — and evaluations — on tabu revisits.
    """
    gen = ensure_rng(rng)
    allowed = moves or ["flip", "split", "merge", "move"]
    movers: dict[str, Callable[[], Optional[UpperLevelSolution]]] = {
        "flip": lambda: flip_phase(solution, gen),
        "split": lambda: split_group(solution, gen),
        "merge": lambda: merge_groups(solution, gen),
        "move": lambda: move_gpus(solution, cluster, gen),
    }
    unknown = set(allowed) - set(movers)
    if unknown:
        raise ValueError(f"unknown neighbourhood moves: {sorted(unknown)}")

    neighbors: List[UpperLevelSolution] = []
    seen = {solution.key()}
    if exclude_keys is not None:
        seen.update(exclude_keys)
    attempts = 0
    max_attempts = max_attempts_factor * num_neighbors
    while len(neighbors) < num_neighbors and attempts < max_attempts:
        attempts += 1
        move = str(gen.choice(allowed))
        candidate = movers[move]()
        if candidate is None:
            continue
        if candidate.key() in seen:
            continue
        if not _feasible(cluster, model, candidate, kv_reserve_fraction):
            continue
        seen.add(candidate.key())
        neighbors.append(candidate)
    return neighbors


__all__ = [
    "flip_phase",
    "split_group",
    "merge_groups",
    "move_gpus",
    "construct_neighbors",
]

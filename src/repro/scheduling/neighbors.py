"""Neighbourhood moves of the tabu search (§3.2, Figure 4).

Four moves generate neighbours of an upper-level solution:

* **flip** — flip the phase designation of one group;
* **split** — split one group into two by a random ratio (phases re-randomised);
* **merge** — merge two groups into one (phase re-randomised);
* **move** — move some GPUs of one type from one group to another.

Every generated neighbour passes the early feasibility check of the paper: a group
whose total memory cannot hold one copy of the model parameters is discarded
before the (comparatively expensive) lower-level evaluation.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterable, List, Optional

import numpy as np

from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Phase
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.parallelism.partition import group_can_hold_model
from repro.scheduling.solution import GroupAssignment, UpperLevelSolution


def _random_phase(rng: np.random.Generator) -> Phase:
    return Phase.PREFILL if rng.random() < 0.5 else Phase.DECODE


def _feasible(
    cluster: Cluster,
    model: ModelConfig,
    solution: UpperLevelSolution,
    kv_reserve_fraction: float,
    can_hold: Optional[Callable[[FrozenSet[int]], bool]] = None,
) -> bool:
    """Early feasibility check: every group can hold the model, both phases exist.

    ``can_hold`` optionally replaces the raw memory check with a memoised one —
    candidates of one neighbourhood share most of their groups with the base
    solution, so a per-batch memo turns the per-candidate cost into a lookup.
    """
    if solution.num_groups >= 2 and (solution.num_prefill == 0 or solution.num_decode == 0):
        return False
    if can_hold is None:
        return all(
            group_can_hold_model(cluster, g.gpu_ids, model, kv_reserve_fraction)
            for g in solution.groups
        )
    return all(can_hold(g.gpu_ids) for g in solution.groups)


# ------------------------------------------------------------------- appliers
# Deterministic move semantics, shared by the standalone movers (which sample
# their parameters one draw at a time) and the batched :class:`_MovePlan`
# (which pre-draws every parameter vectorized).  Keeping a single copy of each
# move's mechanics means the two sampling paths cannot drift apart.


def _apply_flip(solution: UpperLevelSolution, idx: int) -> UpperLevelSolution:
    group = solution.groups[idx]
    return solution.replace_group(idx, group.with_phase(group.phase.other()))


def _apply_split(
    solution: UpperLevelSolution, idx: int, ratio: float, phase_a: Phase, phase_b: Phase
) -> UpperLevelSolution:
    gpus = sorted(solution.groups[idx].gpu_ids)
    cut = int(len(gpus) * ratio)
    cut = min(max(cut, 1), len(gpus) - 1)
    first = GroupAssignment(gpu_ids=frozenset(gpus[:cut]), phase=phase_a)
    second = GroupAssignment(gpu_ids=frozenset(gpus[cut:]), phase=phase_b)
    return solution.replace_group(idx, first, second)


def _apply_merge(solution: UpperLevelSolution, a: int, b: int, phase: Phase) -> UpperLevelSolution:
    i, j = int(min(a, b)), int(max(a, b))
    merged = GroupAssignment(
        gpu_ids=solution.groups[i].gpu_ids | solution.groups[j].gpu_ids,
        phase=phase,
    )
    without_j = solution.replace_group(j)
    # Group i keeps its index after removing j (j > i).
    return without_j.replace_group(i, merged)


def _apply_move(
    solution: UpperLevelSolution, src_idx: int, dst_idx: int, moved: frozenset
) -> UpperLevelSolution:
    src = solution.groups[src_idx]
    dst = solution.groups[dst_idx]
    new_src = GroupAssignment(gpu_ids=src.gpu_ids - moved, phase=src.phase)
    new_dst = GroupAssignment(gpu_ids=dst.gpu_ids | moved, phase=dst.phase)
    groups = list(solution.groups)
    groups[src_idx] = new_src
    groups[dst_idx] = new_dst
    return UpperLevelSolution.from_lists([(g.gpu_ids, g.phase) for g in groups])


# --------------------------------------------------------------------------- moves
def flip_phase(
    solution: UpperLevelSolution, rng: RNGLike = None, group_index: Optional[int] = None
) -> Optional[UpperLevelSolution]:
    """Flip the phase of one (randomly chosen) group."""
    gen = ensure_rng(rng)
    idx = int(gen.integers(0, solution.num_groups)) if group_index is None else group_index
    return _apply_flip(solution, idx)


def split_group(
    solution: UpperLevelSolution, rng: RNGLike = None
) -> Optional[UpperLevelSolution]:
    """Split a randomly chosen group into two along a random ratio."""
    gen = ensure_rng(rng)
    splittable = [i for i, g in enumerate(solution.groups) if g.num_gpus >= 2]
    if not splittable:
        return None
    idx = int(gen.choice(splittable))
    ratio = float(gen.uniform(0.25, 0.75))
    return _apply_split(solution, idx, ratio, _random_phase(gen), _random_phase(gen))


def merge_groups(
    solution: UpperLevelSolution, rng: RNGLike = None
) -> Optional[UpperLevelSolution]:
    """Merge two randomly chosen groups into one."""
    gen = ensure_rng(rng)
    if solution.num_groups < 2:
        return None
    i, j = gen.choice(solution.num_groups, size=2, replace=False)
    return _apply_merge(solution, int(i), int(j), _random_phase(gen))


def move_gpus(
    solution: UpperLevelSolution, cluster: Cluster, rng: RNGLike = None
) -> Optional[UpperLevelSolution]:
    """Move one or more GPUs of a single type from one group to another."""
    gen = ensure_rng(rng)
    if solution.num_groups < 2:
        return None
    donors = [i for i, g in enumerate(solution.groups) if g.num_gpus >= 2]
    if not donors:
        return None
    src_idx = int(gen.choice(donors))
    dst_idx = int(gen.choice([i for i in range(solution.num_groups) if i != src_idx]))
    src = solution.groups[src_idx]

    # Pick a GPU type present in the source group and move 1..(count-1) of them.
    by_type: dict[str, List[int]] = {}
    for g in src.gpu_ids:
        by_type.setdefault(cluster.gpu(g).type_name, []).append(g)
    type_name = str(gen.choice(sorted(by_type)))
    candidates = sorted(by_type[type_name])
    max_move = min(len(candidates), src.num_gpus - 1)
    if max_move < 1:
        return None
    count = int(gen.integers(1, max_move + 1))
    # Sample the moved subset — a sorted prefix would confine the move to a
    # deterministic sliver of the neighbourhood.
    moved = frozenset(int(g) for g in gen.choice(candidates, size=count, replace=False))
    return _apply_move(solution, src_idx, dst_idx, moved)


# --------------------------------------------------------------------------- batch
_KNOWN_MOVES = ("flip", "split", "merge", "move")


class _MovePlan:
    """All randomness for a batch of neighbourhood moves, drawn up front.

    Every candidate in a neighbourhood is derived from the *same* base solution,
    so the random parameters of each move depend only on solution-static facts
    (which groups are splittable, which can donate GPUs, the per-group hardware
    mix).  That lets the whole attempt sequence be sampled with one vectorized
    RNG draw per parameter kind instead of a cascade of tiny per-candidate
    draws — the remaining Python overhead in large-cluster tabu searches.
    """

    def __init__(
        self,
        gen: np.random.Generator,
        allowed: List[str],
        attempts: int,
        solution: UpperLevelSolution,
        cluster: Cluster,
    ) -> None:
        self.solution = solution
        self.kinds: List[str] = [str(k) for k in gen.choice(allowed, size=attempts)]
        counts = {kind: self.kinds.count(kind) for kind in allowed}
        num_groups = solution.num_groups
        self._cursor = {kind: 0 for kind in allowed}

        self.flip_idx = (
            gen.integers(0, num_groups, size=counts["flip"]).tolist()
            if counts.get("flip")
            else []
        )

        # Solution-static facts are only gathered for kinds actually drawn: the
        # flip-only rescheduling path must not pay for donor/split breakdowns.
        n_split = counts.get("split", 0)
        self.splittable = (
            [i for i, g in enumerate(solution.groups) if g.num_gpus >= 2] if n_split else []
        )
        if n_split and self.splittable:
            self.split_idx = gen.integers(0, len(self.splittable), size=n_split).tolist()
            self.split_ratio = gen.uniform(0.25, 0.75, size=n_split).tolist()
            self.split_phases = (gen.random(size=(n_split, 2)) < 0.5).tolist()
        else:
            self.split_idx = []

        n_merge = counts.get("merge", 0)
        if n_merge and num_groups >= 2:
            first = gen.integers(0, num_groups, size=n_merge)
            second = gen.integers(0, num_groups - 1, size=n_merge)
            second = second + (second >= first)
            self.merge_pairs = np.stack([first, second], axis=1).tolist()
            self.merge_phase = (gen.random(size=n_merge) < 0.5).tolist()
        else:
            self.merge_pairs = []

        n_move = counts.get("move", 0)
        self.donors = (
            [i for i, g in enumerate(solution.groups) if g.num_gpus >= 2] if n_move else []
        )
        #: per-donor {type_name: sorted gpu ids} breakdown (solution-static)
        self.donor_types: List[dict[str, List[int]]] = []
        for i in self.donors:
            by_type: dict[str, List[int]] = {}
            for g in solution.groups[i].gpu_ids:
                by_type.setdefault(cluster.gpu(g).type_name, []).append(g)
            self.donor_types.append({t: sorted(ids) for t, ids in sorted(by_type.items())})
        if n_move and self.donors and num_groups >= 2:
            self.move_src = gen.integers(0, len(self.donors), size=n_move).tolist()
            self.move_dst = gen.integers(0, num_groups - 1, size=n_move).tolist()
            self.move_type_u = gen.random(size=n_move).tolist()
            self.move_count_u = gen.random(size=n_move).tolist()
            max_gpus = max(solution.groups[i].num_gpus for i in self.donors)
            self.move_subset_u = gen.random(size=(n_move, max_gpus))
        else:
            self.move_src = []

    def _next(self, kind: str) -> int:
        slot = self._cursor[kind]
        self._cursor[kind] = slot + 1
        return slot

    # ------------------------------------------------------------------ apply
    def apply(self, kind: str) -> Optional[UpperLevelSolution]:
        """Materialise the next pre-drawn move of ``kind`` (None when impossible).

        Only the parameter *lookup* lives here; the move mechanics are the
        shared ``_apply_*`` functions, so batch and standalone sampling cannot
        diverge semantically.
        """
        solution = self.solution
        slot = self._next(kind)
        if kind == "flip":
            return _apply_flip(solution, self.flip_idx[slot])
        if kind == "split":
            if not self.split_idx:
                return None
            idx = self.splittable[self.split_idx[slot]]
            phase_a, phase_b = (
                Phase.PREFILL if flag else Phase.DECODE for flag in self.split_phases[slot]
            )
            return _apply_split(solution, idx, self.split_ratio[slot], phase_a, phase_b)
        if kind == "merge":
            if not self.merge_pairs:
                return None
            a, b = self.merge_pairs[slot]
            phase = Phase.PREFILL if self.merge_phase[slot] else Phase.DECODE
            return _apply_merge(solution, a, b, phase)
        # kind == "move"
        if not self.move_src:
            return None
        donor_slot = self.move_src[slot]
        src_idx = self.donors[donor_slot]
        dst_idx = self.move_dst[slot]
        dst_idx = dst_idx + (dst_idx >= src_idx)
        by_type = self.donor_types[donor_slot]
        type_names = list(by_type)
        type_name = type_names[min(int(self.move_type_u[slot] * len(type_names)), len(type_names) - 1)]
        candidates = by_type[type_name]
        max_move = min(len(candidates), solution.groups[src_idx].num_gpus - 1)
        if max_move < 1:
            return None
        count = 1 + min(int(self.move_count_u[slot] * max_move), max_move - 1)
        # Random subset of the movable GPUs via pre-drawn uniform keys.
        keys = self.move_subset_u[slot, : len(candidates)]
        chosen = np.argsort(keys, kind="stable")[:count]
        moved = frozenset(candidates[c] for c in chosen)
        return _apply_move(solution, src_idx, dst_idx, moved)


def construct_neighbors(
    solution: UpperLevelSolution,
    cluster: Cluster,
    model: ModelConfig,
    num_neighbors: int,
    rng: RNGLike = None,
    kv_reserve_fraction: float = 0.3,
    moves: Optional[List[str]] = None,
    max_attempts_factor: int = 8,
    exclude_keys: Optional[Iterable[Hashable]] = None,
) -> List[UpperLevelSolution]:
    """Generate up to ``num_neighbors`` feasible, distinct neighbours of a solution.

    The whole neighbourhood comes from one vectorized move plan: the attempt
    sequence and every move parameter (indices, ratios, phases, moved subsets)
    are sampled up front with a single RNG draw per kind (:class:`_MovePlan`),
    then materialised until enough feasible, distinct candidates are found.

    ``moves`` restricts the allowed move set; the lightweight rescheduler passes
    ``["flip"]`` so that only phase designations change (§3.4).  ``exclude_keys``
    (typically the tabu list) rejects candidates during generation, so the batch
    handed to the evaluator contains only solutions the search can actually move
    to instead of wasting attempts — and evaluations — on tabu revisits.
    """
    gen = ensure_rng(rng)
    allowed = list(moves) if moves else list(_KNOWN_MOVES)
    unknown = set(allowed) - set(_KNOWN_MOVES)
    if unknown:
        raise ValueError(f"unknown neighbourhood moves: {sorted(unknown)}")

    max_attempts = max_attempts_factor * num_neighbors
    plan = _MovePlan(gen, allowed, max_attempts, solution, cluster)
    neighbors: List[UpperLevelSolution] = []
    seen = {solution.key()}
    if exclude_keys is not None:
        seen.update(exclude_keys)

    # Memoise the per-group memory check for the duration of this batch: the
    # candidates share most groups with the base solution (and each other), so
    # each distinct GPU set is checked once per neighbourhood, not per candidate.
    hold_memo: dict[FrozenSet[int], bool] = {}

    def can_hold(gpu_ids: FrozenSet[int]) -> bool:
        ok = hold_memo.get(gpu_ids)
        if ok is None:
            ok = group_can_hold_model(cluster, gpu_ids, model, kv_reserve_fraction)
            hold_memo[gpu_ids] = ok
        return ok

    for kind in plan.kinds:
        if len(neighbors) >= num_neighbors:
            break
        candidate = plan.apply(kind)
        if candidate is None:
            continue
        if candidate.key() in seen:
            continue
        if not _feasible(cluster, model, candidate, kv_reserve_fraction, can_hold=can_hold):
            continue
        seen.add(candidate.key())
        neighbors.append(candidate)
    return neighbors


__all__ = [
    "flip_phase",
    "split_group",
    "merge_groups",
    "move_gpus",
    "construct_neighbors",
]

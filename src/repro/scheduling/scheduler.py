"""The ThunderServe scheduler facade.

:class:`Scheduler` ties the pieces of §3 together: it builds the initial solution
by hierarchical clustering, runs the tabu search over group construction and phase
designation (upper level), evaluates every candidate with the lower-level solver
(parallel-configuration deduction + orchestration) and returns the best complete
deployment plan together with the search trace (the Figure 10 convergence data).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SchedulingError
from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import SLOSpec, SLOType
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.parallelism.config import ReplicaPlan
from repro.scheduling.clustering import initial_groups_by_clustering
from repro.scheduling.lower_level import LowerLevelResult, LowerLevelSolver
from repro.scheduling.neighbors import construct_neighbors
from repro.scheduling.robust import (
    RobustEvaluator,
    RobustObjective,
    RobustScheduleResult,
    scenario_slo,
)
from repro.scheduling.solution import UpperLevelSolution
from repro.scheduling.tabu import SearchTrace, TabuSearch, TabuSearchConfig, TabuSearchResult
from repro.scheduling.deployment import DeploymentPlan
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.scenarios.base import Scenario


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration of the full scheduling run.

    The tabu-search defaults follow Algorithm 1 (``N_step = 100``,
    ``N_nghb = 10``, ``N_mem = 5``); ``patience`` adds an early-stopping criterion
    so that small clusters converge quickly, matching the seconds-scale search
    times of Figure 10.
    """

    tabu: TabuSearchConfig = field(
        default_factory=lambda: TabuSearchConfig(num_steps=100, num_neighbors=10, memory_size=5, patience=20)
    )
    kv_transport_bits: int = 4
    slo_type: SLOType = SLOType.E2E
    orchestration_mode: str = "lp"
    cost_params: CostModelParams = field(default_factory=lambda: DEFAULT_PARAMS)
    seed: int = 0
    #: optional explicit number of initial groups (None = derived from memory needs)
    initial_num_groups: Optional[int] = None

    def with_tabu(self, **kwargs) -> "SchedulerConfig":
        """Return a copy with modified tabu-search parameters."""
        return replace(self, tabu=replace(self.tabu, **kwargs))


@dataclass
class ScheduleResult:
    """Output of a scheduling run."""

    plan: DeploymentPlan
    objective: float
    trace: SearchTrace
    lower_result: LowerLevelResult
    elapsed_s: float
    solution: UpperLevelSolution

    @property
    def estimated_slo_attainment(self) -> float:
        """Scheduler-estimated system SLO attainment of the returned plan."""
        return self.lower_result.estimated_attainment


class Scheduler:
    """End-to-end scheduling: cluster + model + workload + SLO → deployment plan."""

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------ helpers
    def default_slo(
        self, model: ModelConfig, workload: WorkloadSpec, scale: float = 5.0
    ) -> SLOSpec:
        """Convenience: SLO deadlines at a given scale of the A100 reference latency."""
        return a100_reference_latency(model, workload, params=self.config.cost_params).slo_spec(scale)

    def build_solver(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        slo: SLOSpec,
        plan_cache: Optional[Dict[object, Optional[ReplicaPlan]]] = None,
    ) -> LowerLevelSolver:
        """Construct the lower-level solver for a serving context.

        ``plan_cache`` optionally shares one parallel-plan deduction memo across
        several solvers over the **same cluster and cost params** (robust mode
        builds one solver per scenario, holding both constant).  Entries are
        keyed by the model and the workload's planning shape, so same-shape
        scenarios share deductions and differing ones cannot collide.
        """
        return LowerLevelSolver(
            cluster=cluster,
            model=model,
            workload=workload,
            slo=slo,
            request_rate=request_rate,
            kv_transport_bits=self.config.kv_transport_bits,
            params=self.config.cost_params,
            slo_type=self.config.slo_type,
            orchestration_mode=self.config.orchestration_mode,
            seed=self.config.seed,
            plan_cache=plan_cache,
        )

    # ------------------------------------------------------------------ search core
    def _initial_solution(
        self, cluster: Cluster, model: ModelConfig, rng
    ) -> UpperLevelSolution:
        """Hierarchical-clustering initial solution (shared by both schedule modes)."""
        cfg = self.config
        return initial_groups_by_clustering(
            cluster,
            model,
            target_num_groups=cfg.initial_num_groups,
            seed=rng,
            kv_reserve_fraction=cfg.cost_params.kv_reserve_fraction
            if cfg.cost_params.kv_reserve_fraction > 0
            else 0.3,
        )

    def _run_search(
        self,
        cluster: Cluster,
        model: ModelConfig,
        rng,
        objective: Optional[Callable[[UpperLevelSolution], float]],
        batch_objective: Callable[[Sequence[UpperLevelSolution]], Sequence[float]],
        initial_solution: Optional[UpperLevelSolution] = None,
    ) -> TabuSearchResult[UpperLevelSolution]:
        """Run the upper-level tabu search over a given objective.

        Both :meth:`schedule` and :meth:`schedule_robust` go through this one
        path, so an identical seed drives an identical search trajectory — only
        the objective differs.  That is what makes a one-scenario robust run
        reproduce the single-workload plan exactly.
        """
        cfg = self.config
        initial = (
            initial_solution
            if initial_solution is not None
            else self._initial_solution(cluster, model, rng)
        )

        def neighbor_fn(solution: UpperLevelSolution, count: int, tabu_keys=()):
            return construct_neighbors(
                solution,
                cluster,
                model,
                num_neighbors=count,
                rng=rng,
                kv_reserve_fraction=0.3,
                exclude_keys=tabu_keys,
            )

        search = TabuSearch(
            objective=objective,
            neighbor_fn=neighbor_fn,
            key_fn=lambda s: s.key(),
            config=cfg.tabu,
            batch_objective=batch_objective,
            pass_tabu_keys=True,
        )
        return search.run(initial)

    # ------------------------------------------------------------------ schedule
    def schedule(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        slo: Optional[SLOSpec] = None,
        seed: RNGLike = None,
        initial_solution: Optional[UpperLevelSolution] = None,
    ) -> ScheduleResult:
        """Run the full two-level scheduling algorithm and return the best plan.

        ``initial_solution`` optionally warm-starts the tabu search from a known
        solution instead of the clustering initialiser.
        """
        start = time.perf_counter()
        cfg = self.config
        rng = ensure_rng(cfg.seed if seed is None else seed)
        slo = slo or self.default_slo(model, workload)

        solver = self.build_solver(cluster, model, workload, request_rate, slo)
        result = self._run_search(
            cluster, model, rng, solver.evaluate, solver.evaluate_batch, initial_solution
        )
        lower = solver.solve(result.best_solution)
        if not lower.feasible or lower.plan is None:
            raise SchedulingError(
                "the tabu search did not find a feasible deployment plan; "
                "the cluster may be too small to hold the model"
            )
        elapsed = time.perf_counter() - start
        return ScheduleResult(
            plan=lower.plan,
            objective=lower.objective,
            trace=result.trace,
            lower_result=lower,
            elapsed_s=elapsed,
            solution=result.best_solution,
        )

    # ------------------------------------------------------------------ robust
    def schedule_robust(
        self,
        cluster: Cluster,
        model: ModelConfig,
        scenarios: Sequence["Scenario"],
        robust: Optional[RobustObjective] = None,
        seed: RNGLike = None,
        initial_solution: Optional[UpperLevelSolution] = None,
    ) -> RobustScheduleResult:
        """Optimise one deployment plan against a whole scenario set.

        Each scenario contributes a lower-level solver built from its planning
        workload, request rate and SLO tier (the same derivation the scenario
        sweep serves against); the tabu search maximises ``robust``'s aggregate
        of the per-scenario objectives (worst case by default).  The returned
        plan is the winning solution solved under its binding (worst) scenario.

        ``initial_solution`` warm-starts the search — passing the single-workload
        plan's solution guarantees the robust plan scores at least as well as it
        on the robust objective, since the initial solution is always evaluated.
        """
        start = time.perf_counter()
        cfg = self.config
        scenario_list = list(scenarios)
        robust = robust or RobustObjective.worst_case()
        rng = ensure_rng(cfg.seed if seed is None else seed)

        plan_cache: Dict[object, Optional[ReplicaPlan]] = {}
        solvers: List[Tuple[str, LowerLevelSolver]] = [
            (
                scenario.name,
                self.build_solver(
                    cluster,
                    model,
                    scenario.planning_workload(),
                    scenario.request_rate,
                    scenario_slo(scenario, model, cfg.cost_params),
                    plan_cache=plan_cache,
                ),
            )
            for scenario in scenario_list
        ]
        # The evaluator owns validation: non-empty scenario set, unique names,
        # weight count vs. scenario count.
        evaluator = RobustEvaluator(solvers, robust)
        result = self._run_search(
            cluster, model, rng, None, evaluator.evaluate_batch, initial_solution
        )

        per_scenario = {name: solver.solve(result.best_solution) for name, solver in solvers}
        # A scenario can be individually infeasible (e.g. its long-context shape
        # leaves no KV headroom on this cluster) without invalidating the plan —
        # mix/cvar objectives may legitimately trade such a scenario away, and
        # its lower-level result records feasible=False / attainment 0.  Only a
        # solution feasible under no scenario at all is an error.
        feasible = {
            name: r for name, r in per_scenario.items() if r.feasible and r.plan is not None
        }
        if not feasible:
            raise SchedulingError(
                "the robust tabu search found no plan feasible under any scenario; "
                "the cluster may be too small to hold the model"
            )
        worst = min(feasible, key=lambda name: feasible[name].estimated_attainment)
        plan = feasible[worst].plan
        assert plan is not None  # guarded by the feasibility filter above
        return RobustScheduleResult(
            plan=plan,
            objective=result.best_objective,
            trace=result.trace,
            solution=result.best_solution,
            robust=robust,
            per_scenario=per_scenario,
            worst_scenario=worst,
            elapsed_s=time.perf_counter() - start,
        )


__all__ = ["Scheduler", "SchedulerConfig", "ScheduleResult", "RobustScheduleResult"]

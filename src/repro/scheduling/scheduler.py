"""The ThunderServe scheduler facade.

:class:`Scheduler` ties the pieces of §3 together: it builds the initial solution
by hierarchical clustering, runs the tabu search over group construction and phase
designation (upper level), evaluates every candidate with the lower-level solver
(parallel-configuration deduction + orchestration) and returns the best complete
deployment plan together with the search trace (the Figure 10 convergence data).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.exceptions import SchedulingError
from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import SLOSpec, SLOType
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.costmodel.reference import a100_reference_latency
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.scheduling.clustering import initial_groups_by_clustering
from repro.scheduling.lower_level import LowerLevelResult, LowerLevelSolver
from repro.scheduling.neighbors import construct_neighbors
from repro.scheduling.solution import UpperLevelSolution
from repro.scheduling.tabu import SearchTrace, TabuSearch, TabuSearchConfig
from repro.scheduling.deployment import DeploymentPlan
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration of the full scheduling run.

    The tabu-search defaults follow Algorithm 1 (``N_step = 100``,
    ``N_nghb = 10``, ``N_mem = 5``); ``patience`` adds an early-stopping criterion
    so that small clusters converge quickly, matching the seconds-scale search
    times of Figure 10.
    """

    tabu: TabuSearchConfig = field(
        default_factory=lambda: TabuSearchConfig(num_steps=100, num_neighbors=10, memory_size=5, patience=20)
    )
    kv_transport_bits: int = 4
    slo_type: SLOType = SLOType.E2E
    orchestration_mode: str = "lp"
    cost_params: CostModelParams = field(default_factory=lambda: DEFAULT_PARAMS)
    seed: int = 0
    #: optional explicit number of initial groups (None = derived from memory needs)
    initial_num_groups: Optional[int] = None

    def with_tabu(self, **kwargs) -> "SchedulerConfig":
        """Return a copy with modified tabu-search parameters."""
        return replace(self, tabu=replace(self.tabu, **kwargs))


@dataclass
class ScheduleResult:
    """Output of a scheduling run."""

    plan: DeploymentPlan
    objective: float
    trace: SearchTrace
    lower_result: LowerLevelResult
    elapsed_s: float
    solution: UpperLevelSolution

    @property
    def estimated_slo_attainment(self) -> float:
        """Scheduler-estimated system SLO attainment of the returned plan."""
        return self.lower_result.estimated_attainment


class Scheduler:
    """End-to-end scheduling: cluster + model + workload + SLO → deployment plan."""

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------ helpers
    def default_slo(
        self, model: ModelConfig, workload: WorkloadSpec, scale: float = 5.0
    ) -> SLOSpec:
        """Convenience: SLO deadlines at a given scale of the A100 reference latency."""
        return a100_reference_latency(model, workload, params=self.config.cost_params).slo_spec(scale)

    def build_solver(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        slo: SLOSpec,
    ) -> LowerLevelSolver:
        """Construct the lower-level solver for a serving context."""
        return LowerLevelSolver(
            cluster=cluster,
            model=model,
            workload=workload,
            slo=slo,
            request_rate=request_rate,
            kv_transport_bits=self.config.kv_transport_bits,
            params=self.config.cost_params,
            slo_type=self.config.slo_type,
            orchestration_mode=self.config.orchestration_mode,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------ schedule
    def schedule(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        slo: Optional[SLOSpec] = None,
        seed: RNGLike = None,
    ) -> ScheduleResult:
        """Run the full two-level scheduling algorithm and return the best plan."""
        start = time.perf_counter()
        cfg = self.config
        rng = ensure_rng(cfg.seed if seed is None else seed)
        slo = slo or self.default_slo(model, workload)

        solver = self.build_solver(cluster, model, workload, request_rate, slo)
        initial = initial_groups_by_clustering(
            cluster,
            model,
            target_num_groups=cfg.initial_num_groups,
            seed=rng,
            kv_reserve_fraction=cfg.cost_params.kv_reserve_fraction
            if cfg.cost_params.kv_reserve_fraction > 0
            else 0.3,
        )

        def neighbor_fn(solution: UpperLevelSolution, count: int, tabu_keys=()):
            return construct_neighbors(
                solution,
                cluster,
                model,
                num_neighbors=count,
                rng=rng,
                kv_reserve_fraction=0.3,
                exclude_keys=tabu_keys,
            )

        search = TabuSearch(
            objective=solver.evaluate,
            neighbor_fn=neighbor_fn,
            key_fn=lambda s: s.key(),
            config=cfg.tabu,
            batch_objective=solver.evaluate_batch,
            pass_tabu_keys=True,
        )
        result = search.run(initial)
        lower = solver.solve(result.best_solution)
        if not lower.feasible or lower.plan is None:
            raise SchedulingError(
                "the tabu search did not find a feasible deployment plan; "
                "the cluster may be too small to hold the model"
            )
        elapsed = time.perf_counter() - start
        return ScheduleResult(
            plan=lower.plan,
            objective=lower.objective,
            trace=result.trace,
            lower_result=lower,
            elapsed_s=elapsed,
            solution=result.best_solution,
        )


__all__ = ["Scheduler", "SchedulerConfig", "ScheduleResult"]

"""Per-request phase prices (Figure 1).

Figure 1 of the paper motivates heterogeneous phase splitting by showing that the
*dollar* cost of a prefill is lowest on compute-dense GPUs (A40) while the dollar
cost of a decode is lowest on bandwidth-dense GPUs (3090Ti).  The price of a phase
is simply its roofline execution time multiplied by the GPU's hourly rate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.core.types import Phase
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS, single_gpu_phase_latency
from repro.hardware.gpu import GPUSpec, GPU_CATALOG, get_gpu_spec
from repro.model.architecture import ModelConfig


def phase_price_per_request(
    gpu: str | GPUSpec,
    model: ModelConfig,
    phase: Phase | str,
    input_length: int = 512,
    output_length: int = 16,
    params: CostModelParams = DEFAULT_PARAMS,
) -> float:
    """Dollar cost of one request's prefill or decode phase on one GPU type."""
    spec = gpu if isinstance(gpu, GPUSpec) else get_gpu_spec(gpu)
    phase_enum = phase if isinstance(phase, Phase) else Phase(phase)
    seconds = single_gpu_phase_latency(
        spec, model, phase_enum,
        input_length=input_length, output_length=output_length, params=params,
    )
    return seconds * spec.price_per_hour / 3600.0


def phase_price_table(
    model: ModelConfig,
    gpu_names: Sequence[str] = ("3090Ti", "A40"),
    input_length: int = 512,
    output_length: int = 16,
    params: CostModelParams = DEFAULT_PARAMS,
) -> Dict[str, Dict[str, float]]:
    """Per-GPU prefill/decode prices, keyed as ``table[phase][gpu]`` (Figure 1 data)."""
    table: Dict[str, Dict[str, float]] = {Phase.PREFILL.value: {}, Phase.DECODE.value: {}}
    for name in gpu_names:
        for phase in (Phase.PREFILL, Phase.DECODE):
            table[phase.value][name] = phase_price_per_request(
                name, model, phase,
                input_length=input_length, output_length=output_length, params=params,
            )
    return table


def cheapest_gpu_for_phase(
    model: ModelConfig,
    phase: Phase | str,
    gpu_names: Iterable[str] | None = None,
    input_length: int = 512,
    output_length: int = 16,
) -> str:
    """Name of the GPU type with the lowest per-request price for a phase."""
    names = list(gpu_names) if gpu_names is not None else list(GPU_CATALOG)
    if not names:
        raise ValueError("gpu_names must be non-empty")
    return min(
        names,
        key=lambda n: phase_price_per_request(
            n, model, phase, input_length=input_length, output_length=output_length
        ),
    )


__all__ = ["phase_price_per_request", "phase_price_table", "cheapest_gpu_for_phase"]

"""Analytic cost models: roofline latency, alpha-beta communication, prices.

The paper's scheduler never executes the model while searching — it relies on an
analytic cost model (borrowed from HexGen) for per-phase latency/throughput and on
the alpha-beta (Hockney) model for KV-cache communication, then validates both
against real execution (Appendix J).  This subpackage is that cost model; the
discrete-event simulator consumes it to produce end-to-end metrics.
"""

from repro.costmodel.alpha_beta import AlphaBetaModel, transfer_seconds
from repro.costmodel.latency import (
    CostModelParams,
    ReplicaCostModel,
    single_gpu_phase_latency,
)
from repro.costmodel.kv_transfer import kv_transfer_seconds, kv_transfer_bytes
from repro.costmodel.price import phase_price_per_request, phase_price_table
from repro.costmodel.reference import ReferenceLatency, a100_reference_latency

__all__ = [
    "AlphaBetaModel",
    "transfer_seconds",
    "CostModelParams",
    "ReplicaCostModel",
    "single_gpu_phase_latency",
    "kv_transfer_seconds",
    "kv_transfer_bytes",
    "phase_price_per_request",
    "phase_price_table",
    "ReferenceLatency",
    "a100_reference_latency",
]

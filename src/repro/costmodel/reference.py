"""Reference single-device latencies used to anchor SLO scales.

The paper scales SLO deadlines as multiples of the execution latency measured on
A100 GPUs ("SLO scale").  This module computes those reference latencies from the
same roofline model, so SLO scales are self-consistent across the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Phase, SLOSpec
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS, single_gpu_phase_latency
from repro.hardware.gpu import get_gpu_spec
from repro.model.architecture import ModelConfig
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class ReferenceLatency:
    """Reference TTFT and TPOT for a (model, workload) pair on a reference GPU."""

    ttft: float
    tpot: float
    mean_output_length: float
    gpu_name: str = "A100"

    def slo_spec(self, scale: float) -> SLOSpec:
        """Absolute SLO deadlines at the given SLO scale."""
        return SLOSpec.from_scale(
            scale,
            reference_ttft=self.ttft,
            reference_tpot=self.tpot,
            mean_output_length=self.mean_output_length,
        )


def a100_reference_latency(
    model: ModelConfig,
    workload: WorkloadSpec,
    num_reference_gpus: int = 4,
    params: CostModelParams = DEFAULT_PARAMS,
    gpu_name: str = "A100",
) -> ReferenceLatency:
    """Reference latencies of the workload's mean-shaped request on A100 hardware.

    ``num_reference_gpus`` models the tensor-parallel degree a practitioner would
    use to serve the model on the reference hardware (the paper's in-house
    configuration serves LLaMA-30B with 2 GPUs per replica; we default to a mildly
    generous 4-way split so SLO scales start near 1).  The reference divides the
    single-GPU roofline latency by the GPU count, which is the idealised linear
    scaling an SLO anchor should assume.
    """
    if num_reference_gpus < 1:
        raise ValueError("num_reference_gpus must be >= 1")
    spec = get_gpu_spec(gpu_name)
    input_len = max(1, int(round(workload.mean_input_length)))
    output_len = max(1, int(round(workload.mean_output_length)))
    ttft = single_gpu_phase_latency(
        spec, model, Phase.PREFILL, input_length=input_len, output_length=1, params=params
    ) / num_reference_gpus
    decode_total = single_gpu_phase_latency(
        spec, model, Phase.DECODE, input_length=input_len, output_length=output_len,
        batch_size=8, params=params,
    ) / num_reference_gpus
    tpot = decode_total / output_len
    return ReferenceLatency(
        ttft=ttft, tpot=tpot, mean_output_length=float(output_len), gpu_name=gpu_name
    )


__all__ = ["ReferenceLatency", "a100_reference_latency"]

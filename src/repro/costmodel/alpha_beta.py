"""Alpha-beta (Hockney) communication model.

Equation 1 of the paper models the KV-cache transfer time between a prefill and a
decode replica as ``T = alpha + 2*b*s*h*N_bytes / beta`` where ``alpha`` is the link
latency, ``beta`` the link bandwidth, ``b`` the batch size, ``s`` the sequence
length, ``h`` the hidden size and ``N_bytes`` the per-element byte size.  The same
two-parameter model is used for activation transfers between pipeline stages and
for tensor-parallel collectives.
"""

from __future__ import annotations

from dataclasses import dataclass


def transfer_seconds(alpha_s: float, beta_bytes_per_s: float, num_bytes: float) -> float:
    """Time to move ``num_bytes`` over a link with latency ``alpha`` and bandwidth ``beta``."""
    if alpha_s < 0:
        raise ValueError("alpha must be >= 0")
    if beta_bytes_per_s <= 0:
        raise ValueError("beta must be positive")
    if num_bytes < 0:
        raise ValueError("num_bytes must be >= 0")
    if num_bytes == 0:
        return 0.0
    return alpha_s + num_bytes / beta_bytes_per_s


@dataclass(frozen=True)
class AlphaBetaModel:
    """A single point-to-point link characterised by latency and bandwidth."""

    alpha_s: float
    beta_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.alpha_s < 0:
            raise ValueError("alpha must be >= 0")
        if self.beta_bytes_per_s <= 0:
            raise ValueError("beta must be positive")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link."""
        return transfer_seconds(self.alpha_s, self.beta_bytes_per_s, num_bytes)

    def allreduce_seconds(self, num_bytes: float, world_size: int) -> float:
        """Ring all-reduce time for ``num_bytes`` per rank over ``world_size`` ranks.

        Uses the standard ``2*(p-1)/p`` volume factor of ring all-reduce; degenerate
        world sizes (0 or 1 ranks) cost nothing.
        """
        if world_size < 0:
            raise ValueError("world_size must be >= 0")
        if world_size <= 1 or num_bytes == 0:
            return 0.0
        volume = 2.0 * (world_size - 1) / world_size * num_bytes
        # A ring all-reduce performs 2*(p-1) latency-bound steps.
        return 2.0 * (world_size - 1) * self.alpha_s + volume / self.beta_bytes_per_s

    def effective_bandwidth_gbps(self) -> float:
        """Bandwidth expressed in GB/s (for reporting)."""
        return self.beta_bytes_per_s / 1e9


__all__ = ["AlphaBetaModel", "transfer_seconds"]

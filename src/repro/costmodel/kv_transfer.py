"""KV-cache transfer cost between prefill and decode replicas (Equation 1).

After the prefill replica computes a request's KV cache it must ship the cache to
the decode replica.  The volume is ``2 * layers * kv_hidden * tokens`` elements per
sequence; transport precision (16-bit natively, 4-bit with ThunderServe's one-shot
compression) scales the byte count.  The transfer runs over the single best link
between the two replicas' GPU sets, modelled with the alpha-beta formula.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel.alpha_beta import transfer_seconds
from repro.hardware.network import NetworkModel
from repro.model.architecture import ModelConfig
from repro.model.memory import kv_cache_bytes_per_token


def kv_transfer_bytes(
    model: ModelConfig,
    num_tokens: int,
    batch_size: int = 1,
    bits: int = 16,
) -> float:
    """Bytes of KV cache transferred for ``batch_size`` sequences of ``num_tokens``."""
    if num_tokens < 0 or batch_size < 0:
        raise ValueError("num_tokens and batch_size must be >= 0")
    return kv_cache_bytes_per_token(model, bits=bits) * num_tokens * batch_size


def kv_transfer_seconds(
    network: NetworkModel,
    src_gpu_ids: Sequence[int],
    dst_gpu_ids: Sequence[int],
    model: ModelConfig,
    num_tokens: int,
    batch_size: int = 1,
    bits: int = 16,
    quantization_overhead_s: float = 0.0,
) -> float:
    """Time to ship a request batch's KV cache from a prefill to a decode replica.

    ``bits`` is the transport precision (4 with compression enabled, 16 without);
    ``quantization_overhead_s`` adds the pack/unpack kernel time, which is tiny
    compared with the bandwidth saving on cloud links.
    Co-located replicas (sharing a GPU) transfer for free.
    """
    src = list(src_gpu_ids)
    dst = list(dst_gpu_ids)
    if not src or not dst:
        raise ValueError("source and destination GPU sets must be non-empty")
    if set(src) & set(dst):
        return 0.0
    volume = kv_transfer_bytes(model, num_tokens, batch_size, bits)
    i, j, _bw = network.best_link_between(src, dst)
    alpha = network.latency_s(i, j)
    beta = network.bandwidth_bytes(i, j)
    return transfer_seconds(alpha, beta, volume) + quantization_overhead_s


def kv_transfer_fraction(
    transfer_seconds_value: float,
    prefill_seconds: float,
    decode_seconds: float,
) -> float:
    """Fraction of the end-to-end request time spent on KV transfer.

    The paper reports that 4-bit compression shrinks this fraction from 16–30 % to
    4–9 % on 40 Gbps links.
    """
    total = transfer_seconds_value + prefill_seconds + decode_seconds
    if total <= 0:
        return 0.0
    return transfer_seconds_value / total


__all__ = ["kv_transfer_bytes", "kv_transfer_seconds", "kv_transfer_fraction"]

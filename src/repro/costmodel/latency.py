"""Roofline latency model for prefill and decode phases.

The model follows the structure the paper inherits from HexGen: each pipeline
stage's execution time is the maximum of its compute time (FLOPs divided by the
stage's effective FLOPS) and its memory time (bytes moved divided by the stage's
aggregate memory bandwidth), plus tensor-parallel collective costs within the stage
and pipeline (activation) communication between consecutive stages.

Two phase-specific regimes emerge directly from the arithmetic intensity:

* **Prefill** processes the whole prompt at once, so the GEMMs are large and the
  phase is *compute bound* — stages built from high-FLOPS GPUs (A40) are fast, and
  batching beyond ~1k total tokens yields little benefit (Figure 2, left).
* **Decode** emits one token per step per sequence, so every step must re-stream
  the weights and the growing KV cache — the phase is *memory-bandwidth bound*,
  high-bandwidth GPUs (3090Ti) are fast and batching is essential (Figure 2,
  right).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import Phase
from repro.costmodel.alpha_beta import AlphaBetaModel
from repro.hardware.cluster import Cluster
from repro.hardware.gpu import GPUSpec
from repro.model.architecture import ModelConfig
from repro.model.flops import (
    attention_flops,
    decode_flops_per_token,
    decode_memory_bytes_per_token,
    mlp_flops,
    prefill_flops,
    prefill_memory_bytes,
)
from repro.model.memory import (
    kv_cache_bytes_per_token,
    parameter_bytes,
    weight_bytes_per_layer,
)
from repro.parallelism.config import ReplicaPlan


@dataclass(frozen=True)
class CostModelParams:
    """Tunable efficiency constants of the roofline model.

    The defaults are calibrated to give realistic absolute magnitudes (tens of
    milliseconds of TTFT for LLaMA-7B on a single GPU, tens of milliseconds per
    decode step for LLaMA-30B across a small group) — but the experiments only rely
    on *relative* behaviour, which is governed by the GPU specs themselves.
    """

    #: Peak model FLOPs utilisation reached by large prefill batches.
    prefill_mfu_max: float = 0.55
    #: Token count at which prefill utilisation approaches saturation (Figure 2).
    prefill_saturation_tokens: float = 300.0
    #: Fraction of peak memory bandwidth achieved by streaming kernels.
    memory_efficiency: float = 0.85
    #: Model FLOPs utilisation of the small GEMMs in decode steps.
    decode_mfu: float = 0.30
    #: Relative tensor-parallel efficiency loss per extra GPU.
    tp_overhead: float = 0.03
    #: Fixed per-layer kernel launch / scheduling overhead (seconds).
    per_layer_overhead_s: float = 2.0e-5
    #: Fixed per-stage overhead (seconds) for framework dispatch.
    per_stage_overhead_s: float = 5.0e-4
    #: Fraction of device memory reserved for activations / fragmentation.
    kv_reserve_fraction: float = 0.1
    #: Hard cap on the decode batch size (continuous-batching slot limit).
    max_decode_batch: int = 256

    def tp_efficiency(self, tp: int) -> float:
        """Multiplicative compute-efficiency factor for a TP group of size ``tp``."""
        if tp < 1:
            raise ConfigurationError("tp must be >= 1")
        return 1.0 / (1.0 + self.tp_overhead * (tp - 1))

    def prefill_mfu(self, total_tokens: float) -> float:
        """Prefill utilisation as a saturating function of the batched token count."""
        if total_tokens <= 0:
            return 1e-3
        return self.prefill_mfu_max * (1.0 - math.exp(-total_tokens / self.prefill_saturation_tokens))


DEFAULT_PARAMS = CostModelParams()

#: cap on the per-replica decode-step memo (entries are ~100 bytes; the cap
#: bounds long-lived simulators serving context-diverse traces to a few tens of
#: MB — the memo simply restarts cold when it fills)
DECODE_STEP_MEMO_MAX = 262_144

#: cap on the per-replica prefill-latency memo (keys are (input_length,
#: batch_size); prompt lengths are far more diverse than decode grid points, so
#: the cap is smaller — the memo restarts cold when it fills)
PREFILL_LATENCY_MEMO_MAX = 65_536

#: default number of requests coalesced into one prefill batch, shared by the
#: discrete-event simulators (``SimulatorConfig.max_prefill_batch_requests``,
#: ``ColocatedSimulator``) and the scheduler's :class:`SLOEstimator` so the
#: analytic queueing model and the simulated execution assume the same batching
DEFAULT_MAX_PREFILL_BATCH_REQUESTS = 8


def single_gpu_phase_latency(
    spec: GPUSpec,
    model: ModelConfig,
    phase: Phase,
    input_length: int,
    output_length: int = 1,
    batch_size: int = 1,
    params: CostModelParams = DEFAULT_PARAMS,
) -> float:
    """Latency of one phase of one batched request on a single GPU (TP=PP=1).

    For prefill this is the time to process ``batch_size`` prompts of
    ``input_length`` tokens; for decode it is the time to generate
    ``output_length`` tokens per sequence.  Used by the Figure 1 price analysis and
    by the A100 reference latencies that anchor SLO scales.
    """
    if input_length < 1 or output_length < 1 or batch_size < 1:
        raise ValueError("input_length, output_length and batch_size must be >= 1")
    eff_flops = spec.peak_fp16_flops
    eff_bw = spec.memory_bandwidth_bytes * params.memory_efficiency
    layer_overhead = model.num_layers * params.per_layer_overhead_s + params.per_stage_overhead_s
    if phase is Phase.PREFILL:
        total_tokens = input_length * batch_size
        flops = prefill_flops(model, input_length) * batch_size
        compute_t = flops / (eff_flops * params.prefill_mfu(total_tokens))
        mem_t = prefill_memory_bytes(model, input_length, batch_size) / eff_bw
        return max(compute_t, mem_t) + layer_overhead
    # Decode: one step per generated token; use the mid-generation context length.
    context = input_length + output_length / 2.0
    flops = decode_flops_per_token(model, int(context)) * batch_size
    compute_t = flops / (eff_flops * params.decode_mfu)
    mem_t = decode_memory_bytes_per_token(model, int(context), batch_size) / eff_bw
    step_t = max(compute_t, mem_t) + layer_overhead
    return step_t * output_length


@dataclass
class _StageView:
    """Cached per-stage quantities used by the replica cost model."""

    gpu_ids: tuple
    num_layers: int
    tp: int
    sum_flops: float
    sum_bandwidth: float
    intra_bandwidth_bytes: float
    intra_latency_s: float
    total_memory_bytes: float


class ReplicaCostModel:
    """Analytic latency / throughput model of one model replica.

    Parameters
    ----------
    cluster:
        Cluster providing GPU specs and the network model.
    plan:
        Concrete :class:`ReplicaPlan` (stage GPU groups + layer split).
    model:
        Model architecture being served.
    params:
        Efficiency constants.
    slowdown:
        Uniform latency multiplier on every prefill/decode latency this
        replica produces (straggler injection: a degraded GPU slows the whole
        replica down).  ``1.0`` is bitwise-neutral — multiplying a float by
        ``1.0`` is exact, so the default path and the scalar/array parity
        contracts are unaffected.
    """

    def __init__(
        self,
        cluster: Cluster,
        plan: ReplicaPlan,
        model: ModelConfig,
        params: CostModelParams = DEFAULT_PARAMS,
        slowdown: float = 1.0,
    ) -> None:
        if plan.total_layers != model.num_layers:
            raise ConfigurationError(
                f"plan hosts {plan.total_layers} layers but the model has {model.num_layers}"
            )
        if slowdown <= 0:
            raise ConfigurationError("slowdown must be positive")
        self.cluster = cluster
        self.plan = plan
        self.model = model
        self.params = params
        self.slowdown = float(slowdown)
        #: memoized decode-step latencies keyed by (batch_size, context_length);
        #: filled by :meth:`decode_step_grid` and shared across simulator epochs
        self._decode_step_memo: Dict[Tuple[int, int], float] = {}
        #: memoized prefill latencies keyed by (input_length, batch_size);
        #: filled by :meth:`prefill_latency_grid` and shared across prefill epochs
        self._prefill_memo: Dict[Tuple[int, int], float] = {}
        self._pp_links: List[AlphaBetaModel] | None = None
        self._stages: List[_StageView] = []
        network = cluster.network
        for stage in plan.stages:
            gpus = [cluster.gpu(g) for g in stage.gpu_ids]
            intra_bw = network.min_bandwidth_within(stage.gpu_ids)
            if math.isinf(intra_bw):
                intra_bw_bytes = 1e15
                intra_lat = 0.0
            else:
                intra_bw_bytes = intra_bw * 1e9
                intra_lat = max(network.latency_s(i, j) for i in stage.gpu_ids for j in stage.gpu_ids)
            self._stages.append(
                _StageView(
                    gpu_ids=tuple(stage.gpu_ids),
                    num_layers=stage.num_layers,
                    tp=stage.tp,
                    sum_flops=sum(g.spec.peak_fp16_flops for g in gpus),
                    sum_bandwidth=sum(g.spec.memory_bandwidth_bytes for g in gpus),
                    intra_bandwidth_bytes=intra_bw_bytes,
                    intra_latency_s=intra_lat,
                    total_memory_bytes=sum(g.spec.memory_bytes for g in gpus),
                )
            )

    # ------------------------------------------------------------------ helpers
    def _stage_link(self, a: _StageView, b: _StageView) -> AlphaBetaModel:
        network = self.cluster.network
        bw = network.mean_bandwidth_between(a.gpu_ids, b.gpu_ids) * 1e9
        lat = max(
            network.latency_s(i, j) for i in a.gpu_ids for j in b.gpu_ids
        )
        return AlphaBetaModel(alpha_s=lat, beta_bytes_per_s=bw)

    def _tp_comm_time(self, stage: _StageView, tokens: int, batch_size: int) -> float:
        """Tensor-parallel all-reduce time across one stage for a forward pass."""
        if stage.tp <= 1:
            return 0.0
        link = AlphaBetaModel(alpha_s=stage.intra_latency_s, beta_bytes_per_s=stage.intra_bandwidth_bytes)
        activation_bytes = tokens * batch_size * self.model.hidden_size * self.model.dtype_bytes
        # Two all-reduces per transformer block (after attention and after the MLP).
        per_layer = 2.0 * link.allreduce_seconds(activation_bytes, stage.tp)
        return per_layer * stage.num_layers

    def _pp_comm_time(self, tokens: int, batch_size: int) -> float:
        """Total pipeline activation-transfer time across stage boundaries."""
        if len(self._stages) <= 1:
            return 0.0
        activation_bytes = tokens * batch_size * self.model.hidden_size * self.model.dtype_bytes
        total = 0.0
        for a, b in zip(self._stages[:-1], self._stages[1:]):
            total += self._stage_link(a, b).transfer_seconds(activation_bytes)
        return total

    # ------------------------------------------------------------------ prefill
    def prefill_latency(self, input_length: int, batch_size: int = 1) -> float:
        """Time to run the prefill phase for ``batch_size`` prompts of ``input_length`` tokens."""
        if input_length < 1 or batch_size < 1:
            raise ValueError("input_length and batch_size must be >= 1")
        total_tokens = input_length * batch_size
        mfu = self.params.prefill_mfu(total_tokens)
        total = 0.0
        for stage in self._stages:
            flops = (
                mlp_flops(self.model, input_length, stage.num_layers)
                + attention_flops(self.model, input_length, input_length, stage.num_layers)
            ) * batch_size
            compute_t = flops / (stage.sum_flops * self.params.tp_efficiency(stage.tp) * mfu)
            mem_bytes = prefill_memory_bytes(self.model, input_length, batch_size, stage.num_layers)
            mem_t = mem_bytes / (stage.sum_bandwidth * self.params.memory_efficiency)
            overhead = stage.num_layers * self.params.per_layer_overhead_s + self.params.per_stage_overhead_s
            total += max(compute_t, mem_t) + overhead + self._tp_comm_time(stage, input_length, batch_size)
        total += self._pp_comm_time(input_length, batch_size)
        return total * self.slowdown

    def prefill_throughput(self, input_length: int, batch_size: int = 1) -> float:
        """Prefill throughput in prompt tokens per second."""
        latency = self.prefill_latency(input_length, batch_size)
        return input_length * batch_size / latency

    def prefill_latency_array(
        self, input_lengths: Sequence[int] | np.ndarray, batch_sizes: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`prefill_latency` over parallel (input, batch) arrays.

        Bitwise-identical to the scalar method: every element goes through the
        same sequence of float64 operations.  The saturating-MFU factor is the
        one place the scalar path calls a libm transcendental (``math.exp``),
        whose numpy counterpart is not guaranteed ULP-identical — so that factor
        alone is computed through the scalar helper, which costs O(n) cheap
        python calls while all per-stage roofline math stays vectorized.  This
        is the kernel behind the simulator's coalesced prefill epochs, where one
        call prices every queued batch of a replica at once.
        """
        s = np.asarray(input_lengths, dtype=np.int64)
        b = np.asarray(batch_sizes, dtype=np.int64)
        if s.shape != b.shape:
            raise ValueError("input_lengths and batch_sizes must have the same shape")
        if s.size == 0:
            return np.zeros(0, dtype=np.float64)
        if int(s.min()) < 1 or int(b.min()) < 1:
            raise ValueError("input_length and batch_size must be >= 1")
        model = self.model
        params = self.params
        # params.prefill_mfu(input_length * batch_size), element for element.
        mfu = np.array(
            [params.prefill_mfu(t) for t in (s * b).tolist()], dtype=np.float64
        )
        h = model.hidden_size
        total = np.zeros(s.shape, dtype=np.float64)
        for stage in self._stages:
            layers = stage.num_layers
            # flops = (mlp_flops(model, s, layers)
            #          + attention_flops(model, s, s, layers)) * batch, with the
            # scalar path's exact multiplication order (mlp_flops is linear in
            # seq_len, so the one-token value scales exactly — see model.flops).
            mlp = mlp_flops(model, 1, layers) * s
            att = layers * 4.0 * s * s * h
            flops = (mlp + att) * b
            compute_t = flops / (
                stage.sum_flops * params.tp_efficiency(stage.tp) * mfu
            )
            # mem_bytes = prefill_memory_bytes(model, s, batch, layers)
            frac = layers / model.num_layers
            weights = parameter_bytes(model) * frac
            kv_written = kv_cache_bytes_per_token(model, num_layers=layers) * s * b
            activations = 2.0 * model.hidden_size * model.dtype_bytes * s * b * layers
            mem_t = (weights + kv_written + activations) / (
                stage.sum_bandwidth * params.memory_efficiency
            )
            overhead = layers * params.per_layer_overhead_s + params.per_stage_overhead_s
            if stage.tp <= 1:
                tp_comm: np.ndarray | float = 0.0
            else:
                activation_bytes = s * b * model.hidden_size * model.dtype_bytes
                volume = 2.0 * (stage.tp - 1) / stage.tp * activation_bytes
                allreduce = (
                    2.0 * (stage.tp - 1) * stage.intra_latency_s
                    + volume / stage.intra_bandwidth_bytes
                )
                tp_comm = (2.0 * allreduce) * stage.num_layers
            total = total + ((np.maximum(compute_t, mem_t) + overhead) + tp_comm)
        if len(self._stages) > 1:
            if self._pp_links is None:
                self._pp_links = [
                    self._stage_link(a, bb)
                    for a, bb in zip(self._stages[:-1], self._stages[1:])
                ]
            activation_bytes = s * b * model.hidden_size * model.dtype_bytes
            pp = 0.0
            for link in self._pp_links:
                pp = pp + (link.alpha_s + activation_bytes / link.beta_bytes_per_s)
            total = total + pp
        return total * self.slowdown

    def prefill_latency_grid(
        self, input_lengths: np.ndarray, batch_sizes: np.ndarray
    ) -> np.ndarray:
        """Memoized elementwise prefill latencies.

        Looks every (input_length, batch_size) pair up in the per-replica memo
        and computes only the missing entries with :meth:`prefill_latency_array`
        — the prefill analogue of :meth:`decode_step_grid`.  Prompt-heavy traces
        revisit batch shapes constantly once the queue saturates the batch cap,
        so the steady-state cost collapses to dict lookups.
        """
        s = np.asarray(input_lengths, dtype=np.int64)
        b = np.asarray(batch_sizes, dtype=np.int64)
        out = np.empty(s.shape, dtype=np.float64)
        memo = self._prefill_memo
        missing: List[int] = []
        s_list = s.tolist()
        b_list = b.tolist()
        for i, key in enumerate(zip(s_list, b_list)):
            cached = memo.get(key)
            if cached is None:
                missing.append(i)
            else:
                out[i] = cached
        if missing:
            idx = np.asarray(missing, dtype=np.intp)
            values = self.prefill_latency_array(s[idx], b[idx])
            out[idx] = values
            if len(memo) + len(missing) > PREFILL_LATENCY_MEMO_MAX:
                memo.clear()
            for i, value in zip(missing, values.tolist()):
                memo[(s_list[i], b_list[i])] = value
        return out

    def prefill_service_moments(
        self,
        input_lengths: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
        batch_size: int = 1,
    ) -> Tuple[float, float]:
        """Weighted first and second moments of the per-request prefill service time.

        ``input_lengths`` are the distinct prompt lengths of a workload grid and
        ``weights`` their probability masses (normalised internally).  The
        serving engine pads a coalesced batch to its *longest* prompt — a batch
        of ``B`` requests costs ``prefill_latency(max length, B)`` — so the
        per-request service time a saturated replica actually delivers is
        ``prefill_latency(max of B iid draws, B) / B``.  The max-of-``B`` prompt
        length distribution follows from the grid by order statistics
        (``P[max <= l_k] = F(l_k)^B``), each outcome is priced through the
        memoized :meth:`prefill_latency_grid` and amortised over the batch.  At
        ``batch_size == 1`` this reduces to the plain grid-weighted solo
        moments.  The returned ``(E[S], E[S^2])`` feed the scheduler's M/G/1
        (Pollaczek–Khinchine) queueing correction: the squared coefficient of
        variation ``E[S^2]/E[S]^2 - 1`` is what separates a long-context RAG
        mix from a near-deterministic chat mix at the same utilisation.
        """
        s = np.asarray(input_lengths, dtype=np.int64)
        w = np.asarray(weights, dtype=np.float64)
        if s.shape != w.shape:
            raise ValueError("input_lengths and weights must have the same shape")
        if s.size == 0:
            raise ValueError("at least one input length is required")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if float(w.min()) < 0 or float(w.sum()) <= 0:
            raise ValueError("weights must be non-negative with positive mass")
        order = np.argsort(s, kind="stable")
        s = s[order]
        w = w[order] / w.sum()
        # Distribution of the padded batch length: max of ``batch_size`` iid
        # draws from the grid mix, P[max = l_k] = F(l_k)^B - F(l_{k-1})^B.
        cdf = np.cumsum(w)
        cdf[-1] = 1.0  # guard against float drift in the top cell
        p_max = np.power(cdf, batch_size) - np.power(
            np.concatenate(([0.0], cdf[:-1])), batch_size
        )
        batches = np.full(s.shape, batch_size, dtype=np.int64)
        service = self.prefill_latency_grid(s, batches) / float(batch_size)
        m1 = float(np.sum(p_max * service))
        m2 = float(np.sum(p_max * service * service))
        return m1, m2

    # ------------------------------------------------------------------ decode
    def decode_step_latency(self, batch_size: int, context_length: int) -> float:
        """Time of one decode step (one token per sequence) for a batch."""
        if batch_size < 1 or context_length < 1:
            raise ValueError("batch_size and context_length must be >= 1")
        total = 0.0
        for stage in self._stages:
            flops = decode_flops_per_token(self.model, context_length, stage.num_layers) * batch_size
            compute_t = flops / (stage.sum_flops * self.params.tp_efficiency(stage.tp) * self.params.decode_mfu)
            mem_bytes = decode_memory_bytes_per_token(self.model, context_length, batch_size, stage.num_layers)
            mem_t = mem_bytes / (stage.sum_bandwidth * self.params.memory_efficiency)
            overhead = stage.num_layers * self.params.per_layer_overhead_s + self.params.per_stage_overhead_s
            total += max(compute_t, mem_t) + overhead + self._tp_comm_time(stage, 1, batch_size)
        total += self._pp_comm_time(1, batch_size)
        return total * self.slowdown

    def decode_step_latency_array(
        self, batch_sizes: Sequence[int] | np.ndarray, context_lengths: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`decode_step_latency` over parallel (batch, context) arrays.

        Bitwise-identical to the scalar method: every element goes through the
        same sequence of float64 operations (all integer intermediates stay below
        2**53, so the int-to-float conversion points round identically).  This is
        the kernel behind the simulator's coalesced decode epochs, where one call
        prices every step of a jump at once.
        """
        b = np.asarray(batch_sizes, dtype=np.int64)
        c = np.asarray(context_lengths, dtype=np.int64)
        if b.shape != c.shape:
            raise ValueError("batch_sizes and context_lengths must have the same shape")
        if b.size == 0:
            return np.zeros(0, dtype=np.float64)
        if int(b.min()) < 1 or int(c.min()) < 1:
            raise ValueError("batch_size and context_length must be >= 1")
        model = self.model
        params = self.params
        total = np.zeros(b.shape, dtype=np.float64)
        for stage in self._stages:
            # flops = decode_flops_per_token(model, ctx, layers) * batch, with the
            # scalar path's exact multiplication order (see model.flops).
            mlp1 = mlp_flops(model, 1, stage.num_layers)
            att = stage.num_layers * 4.0 * 1 * c * model.hidden_size
            flops = (mlp1 + att) * b
            compute_t = flops / (
                stage.sum_flops * params.tp_efficiency(stage.tp) * params.decode_mfu
            )
            # mem_bytes = decode_memory_bytes_per_token(model, ctx, batch, layers)
            frac = stage.num_layers / model.num_layers
            weights = parameter_bytes(model) * frac
            kv_read = kv_cache_bytes_per_token(model, num_layers=stage.num_layers) * c * b
            mem_t = (weights + kv_read) / (stage.sum_bandwidth * params.memory_efficiency)
            overhead = stage.num_layers * params.per_layer_overhead_s + params.per_stage_overhead_s
            if stage.tp <= 1:
                tp_comm: np.ndarray | float = 0.0
            else:
                activation_bytes = 1 * b * model.hidden_size * model.dtype_bytes
                volume = 2.0 * (stage.tp - 1) / stage.tp * activation_bytes
                allreduce = (
                    2.0 * (stage.tp - 1) * stage.intra_latency_s
                    + volume / stage.intra_bandwidth_bytes
                )
                tp_comm = (2.0 * allreduce) * stage.num_layers
            total = total + ((np.maximum(compute_t, mem_t) + overhead) + tp_comm)
        if len(self._stages) > 1:
            if self._pp_links is None:
                self._pp_links = [
                    self._stage_link(a, bb)
                    for a, bb in zip(self._stages[:-1], self._stages[1:])
                ]
            activation_bytes = 1 * b * model.hidden_size * model.dtype_bytes
            pp = 0.0
            for link in self._pp_links:
                pp = pp + (link.alpha_s + activation_bytes / link.beta_bytes_per_s)
            total = total + pp
        return total * self.slowdown

    def decode_step_memo(self, batch_size: int, context_length: int) -> float:
        """Memoized scalar decode-step latency, sharing :meth:`decode_step_grid`'s memo.

        The fast simulator's small-epoch path prices one step at a time; going
        through the shared memo keeps those lookups at dict-get cost and —
        because :meth:`decode_step_latency` and
        :meth:`decode_step_latency_array` are bitwise-identical — the cached
        values agree with the vectorized path no matter which filled them.
        """
        memo = self._decode_step_memo
        key = (batch_size, context_length)
        cached = memo.get(key)
        if cached is not None:
            return cached
        value = self.decode_step_latency(batch_size, context_length)
        if len(memo) >= DECODE_STEP_MEMO_MAX:
            memo.clear()
        memo[key] = value
        return value

    def decode_step_grid(
        self, batch_sizes: np.ndarray, context_lengths: np.ndarray
    ) -> np.ndarray:
        """Memoized elementwise decode-step latencies.

        Looks every (batch, context) pair up in the per-replica memo and computes
        only the missing entries with :meth:`decode_step_latency_array`.  Decode
        replicas revisit the same grid points constantly (the batch saturates and
        contexts advance through the same integer range across requests), so the
        memo turns the steady-state cost into a dict lookup.
        """
        b = np.asarray(batch_sizes, dtype=np.int64)
        c = np.asarray(context_lengths, dtype=np.int64)
        out = np.empty(b.shape, dtype=np.float64)
        memo = self._decode_step_memo
        missing: List[int] = []
        b_list = b.tolist()
        c_list = c.tolist()
        for i, key in enumerate(zip(b_list, c_list)):
            cached = memo.get(key)
            if cached is None:
                missing.append(i)
            else:
                out[i] = cached
        if missing:
            idx = np.asarray(missing, dtype=np.intp)
            values = self.decode_step_latency_array(b[idx], c[idx])
            out[idx] = values
            if len(memo) + len(missing) > DECODE_STEP_MEMO_MAX:
                memo.clear()
            for i, value in zip(missing, values.tolist()):
                memo[(b_list[i], c_list[i])] = value
        return out

    def decode_latency(self, batch_size: int, context_length: int, num_tokens: int) -> float:
        """Time to generate ``num_tokens`` tokens per sequence for a batch.

        Uses the mid-generation context length, which is accurate to first order
        because decode step time is affine in the context length.
        """
        if num_tokens < 1:
            raise ValueError("num_tokens must be >= 1")
        mid_context = context_length + num_tokens // 2
        return self.decode_step_latency(batch_size, mid_context) * num_tokens

    def max_decode_batch(self, context_length: int) -> int:
        """Largest decode batch whose KV cache fits in every stage's memory."""
        if context_length < 1:
            raise ValueError("context_length must be >= 1")
        limit = self.params.max_decode_batch
        for stage in self._stages:
            weights = weight_bytes_per_layer(self.model) * stage.num_layers
            usable = stage.total_memory_bytes * (1.0 - self.params.kv_reserve_fraction) - weights
            if usable <= 0:
                return 0
            per_seq = kv_cache_bytes_per_token(self.model, num_layers=stage.num_layers) * context_length
            limit = min(limit, int(usable // per_seq))
        return max(0, limit)

    def decode_throughput(self, context_length: int, batch_size: int | None = None) -> float:
        """Decode throughput in generated tokens per second.

        With no explicit ``batch_size`` the maximum feasible batch is used, which
        is where a memory-bound decode replica reaches its best throughput.
        """
        if batch_size is None:
            batch_size = self.max_decode_batch(context_length)
        if batch_size <= 0:
            return 0.0
        return batch_size / self.decode_step_latency(batch_size, context_length)

    # ------------------------------------------------------------------ memory
    def kv_token_capacity(self) -> int:
        """Total number of KV-cache tokens the replica can hold (bottleneck stage)."""
        capacity = math.inf
        for stage in self._stages:
            weights = weight_bytes_per_layer(self.model) * stage.num_layers
            usable = stage.total_memory_bytes * (1.0 - self.params.kv_reserve_fraction) - weights
            if usable <= 0:
                return 0
            per_token = kv_cache_bytes_per_token(self.model, num_layers=stage.num_layers)
            capacity = min(capacity, usable / per_token)
        return int(capacity)

    def fits_in_memory(self) -> bool:
        """Whether every stage can hold its layer weights plus the KV reserve."""
        return self.kv_token_capacity() > 0


__all__ = [
    "CostModelParams",
    "DEFAULT_PARAMS",
    "DEFAULT_MAX_PREFILL_BATCH_REQUESTS",
    "single_gpu_phase_latency",
    "ReplicaCostModel",
]

"""Baseline serving systems the paper compares against.

All baselines run on the same substrate (cluster model, roofline cost model,
discrete-event simulators) as ThunderServe, so the comparisons isolate the
*policy* differences exactly as the paper's evaluation does:

* :mod:`repro.baselines.vllm` — vLLM-like: homogeneous in-house GPUs, co-located
  prefill/decode with continuous batching, no phase splitting.
* :mod:`repro.baselines.distserve` — DistServe-like: homogeneous in-house GPUs,
  phase splitting with fast intra-node (NVLink) KV transfer, goodput-driven
  prefill:decode split, no KV compression.
* :mod:`repro.baselines.hexgen` — HexGen-like: heterogeneous cloud GPUs,
  asymmetric parallelism per replica, co-located phases (no phase splitting).
"""

from repro.baselines.common import BaselineSystem
from repro.baselines.vllm import VLLMBaseline
from repro.baselines.distserve import DistServeBaseline
from repro.baselines.hexgen import HexGenBaseline

__all__ = [
    "BaselineSystem",
    "VLLMBaseline",
    "DistServeBaseline",
    "HexGenBaseline",
]

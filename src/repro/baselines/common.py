"""Shared interface and helpers for baseline serving systems."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.exceptions import InsufficientMemoryError, SchedulingError
from repro.core.types import Phase
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.parallelism.config import ReplicaPlan
from repro.parallelism.enumeration import deduce_parallel_plan
from repro.simulation.metrics import SimulationResult
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


class BaselineSystem(abc.ABC):
    """A serving system that can be built for a cluster and replay a trace."""

    #: short display name used in experiment tables
    name: str = "baseline"

    def __init__(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        params: CostModelParams = DEFAULT_PARAMS,
        seed: int = 0,
    ) -> None:
        if request_rate <= 0:
            raise ValueError("request_rate must be positive")
        self.cluster = cluster
        self.model = model
        self.workload = workload
        self.request_rate = request_rate
        self.params = params
        self.seed = seed
        self._built = False

    @abc.abstractmethod
    def build(self) -> None:
        """Derive the system's deployment (replica plans, routing, ...)."""

    @abc.abstractmethod
    def serve(self, trace: Trace) -> SimulationResult:
        """Replay a request trace and return per-request metrics."""

    def ensure_built(self) -> None:
        """Build the system lazily on first use."""
        if not self._built:
            self.build()
            self._built = True

    # ------------------------------------------------------------------ helpers
    def _even_gpu_groups(self, group_size: int) -> List[List[int]]:
        """Partition the cluster's GPUs into equal node-aligned groups of ``group_size``.

        GPUs are grouped node by node so the resulting replicas never straddle a
        node unnecessarily (homogeneous in-house clusters always satisfy this).
        """
        if group_size < 1:
            raise SchedulingError("group_size must be >= 1")
        ordered: List[int] = []
        for node in self.cluster.nodes:
            ordered.extend(g.gpu_id for g in self.cluster.gpus_on_node(node.node_id))
        groups = [ordered[i : i + group_size] for i in range(0, len(ordered), group_size)]
        return [g for g in groups if len(g) == group_size]

    def _plan_for_group(self, gpu_ids: Sequence[int], phase: Phase) -> ReplicaPlan:
        """Phase-optimal parallel plan for a GPU group (shared Algorithm 2 machinery)."""
        return deduce_parallel_plan(
            self.cluster, list(gpu_ids), phase, self.model, self.workload, self.params
        )

    def smallest_feasible_group_size(self) -> int:
        """Smallest node-aligned group size able to hold the model."""
        from repro.parallelism.partition import group_can_hold_model

        max_node = max(len(self.cluster.gpus_on_node(n.node_id)) for n in self.cluster.nodes)
        for size in range(1, max_node + 1):
            groups = self._even_gpu_groups(size)
            if groups and all(
                group_can_hold_model(self.cluster, g, self.model) for g in groups
            ):
                if all(
                    self._try_plan(g) is not None for g in groups
                ):
                    return size
        raise InsufficientMemoryError("no node-aligned group size can hold the model")

    def _try_plan(self, gpu_ids: Sequence[int]) -> Optional[ReplicaPlan]:
        try:
            return self._plan_for_group(gpu_ids, Phase.DECODE)
        except InsufficientMemoryError:
            return None


__all__ = ["BaselineSystem"]

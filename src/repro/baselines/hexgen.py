"""HexGen-like baseline: heterogeneous co-located serving with asymmetric parallelism.

HexGen serves LLMs over heterogeneous GPUs by carving the cluster into model
replicas with per-replica ("asymmetric") parallel configurations and scheduling
requests across them — but it does *not* split the prefill and decode phases, so
every replica suffers prefill/decode interference and cannot specialise its GPU
type to a phase.  Our baseline reuses ThunderServe's group construction machinery
(hierarchical clustering of the bandwidth matrix, per-group Algorithm-2 parallel
plans) and then serves every group as a co-located replica with capacity-weighted
request dispatch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.common import BaselineSystem
from repro.core.exceptions import InsufficientMemoryError, SchedulingError
from repro.core.types import Phase
from repro.costmodel.latency import ReplicaCostModel
from repro.parallelism.config import ReplicaPlan
from repro.scheduling.clustering import initial_groups_by_clustering
from repro.simulation.colocated import ColocatedSimulator
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace


class HexGenBaseline(BaselineSystem):
    """Heterogeneity-aware but non-phase-splitting baseline (HexGen-style)."""

    name = "hexgen"

    def __init__(self, *args, target_num_replicas: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.target_num_replicas = target_num_replicas
        self.replica_plans: List[ReplicaPlan] = []
        self.replica_gpu_groups: List[List[int]] = []
        self._simulator: Optional[ColocatedSimulator] = None

    def build(self) -> None:
        """Partition the heterogeneous cluster into co-located replicas."""
        solution = initial_groups_by_clustering(
            self.cluster,
            self.model,
            target_num_groups=self.target_num_replicas,
            seed=self.seed,
        )
        plans: List[ReplicaPlan] = []
        groups: List[List[int]] = []
        for assignment in solution.groups:
            gpu_ids = sorted(assignment.gpu_ids)
            try:
                # Co-located replicas must be good at both phases; HexGen's cost
                # model optimises serving latency, so use the latency-optimal
                # (prefill-objective) plan.
                plan = self._plan_for_group(gpu_ids, Phase.PREFILL)
            except InsufficientMemoryError:
                continue
            plans.append(plan)
            groups.append(gpu_ids)
        if not plans:
            raise SchedulingError("HexGen could not build any feasible replica")
        self.replica_plans = plans
        self.replica_gpu_groups = groups
        # Capacity-weighted dispatching over replicas, mirroring HexGen's
        # workload-aware request scheduling across asymmetric replicas.
        context = int(self.workload.mean_input_length + self.workload.mean_output_length)
        weights = []
        for plan in plans:
            cost = ReplicaCostModel(self.cluster, plan, self.model, self.params)
            prefill_rate = 1.0 / cost.prefill_latency(int(self.workload.mean_input_length))
            decode_rate = cost.decode_throughput(context) / max(1.0, self.workload.mean_output_length)
            weights.append(min(prefill_rate, decode_rate))
        weights_arr = np.asarray(weights)
        self._simulator = ColocatedSimulator(
            self.cluster,
            plans,
            self.model,
            params=self.params,
            seed=self.seed,
            routing_weights=weights_arr / weights_arr.sum(),
        )

    @property
    def num_replicas(self) -> int:
        """Number of co-located replicas the baseline deploys."""
        self.ensure_built()
        return len(self.replica_plans)

    def serve(self, trace: Trace) -> SimulationResult:
        """Replay a trace against the co-located heterogeneous replicas."""
        self.ensure_built()
        assert self._simulator is not None
        return self._simulator.run(trace, label=self.name)


__all__ = ["HexGenBaseline"]

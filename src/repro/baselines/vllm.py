"""vLLM-like baseline: homogeneous co-located serving with continuous batching.

The in-house baseline of the paper runs vLLM on an 8xA100 server: the GPUs are
split into identical tensor-parallel replicas (two A100s per LLaMA-30B replica),
every replica serves both phases, requests are load-balanced across replicas and
each replica runs continuous batching with prefill-priority scheduling — which is
exactly what :class:`~repro.simulation.colocated.ColocatedSimulator` models.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.common import BaselineSystem
from repro.core.exceptions import SchedulingError
from repro.core.types import Phase
from repro.parallelism.config import ReplicaPlan
from repro.simulation.colocated import ColocatedSimulator
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace


class VLLMBaseline(BaselineSystem):
    """Co-located homogeneous serving (vLLM-style)."""

    name = "vllm"

    def __init__(self, *args, gpus_per_replica: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.gpus_per_replica = gpus_per_replica
        self.replica_plans: List[ReplicaPlan] = []
        self._simulator: Optional[ColocatedSimulator] = None

    def build(self) -> None:
        """Split the cluster into identical TP replicas and build their plans."""
        size = self.gpus_per_replica or self.smallest_feasible_group_size()
        groups = self._even_gpu_groups(size)
        if not groups:
            raise SchedulingError(
                f"cannot form any replica of {size} GPUs on cluster {self.cluster.name!r}"
            )
        # vLLM replicas serve both phases; use the decode-optimal (throughput)
        # plan, which for homogeneous single-node groups is plain tensor
        # parallelism.
        self.replica_plans = [self._plan_for_group(g, Phase.DECODE) for g in groups]
        self._simulator = ColocatedSimulator(
            self.cluster,
            self.replica_plans,
            self.model,
            params=self.params,
            seed=self.seed,
        )

    @property
    def num_replicas(self) -> int:
        """Number of model replicas the baseline deploys."""
        self.ensure_built()
        return len(self.replica_plans)

    def serve(self, trace: Trace) -> SimulationResult:
        """Replay a trace with continuous batching on every replica."""
        self.ensure_built()
        assert self._simulator is not None
        return self._simulator.run(trace, label=self.name)


__all__ = ["VLLMBaseline"]

"""DistServe-like baseline: homogeneous phase splitting without KV compression.

DistServe disaggregates prefill and decode onto separate (homogeneous, in-house)
GPU groups and relies on fast intra-node links for KV transfer.  Our baseline:

* splits the in-house GPUs into identical replicas (same group size as the vLLM
  baseline),
* designates each replica as prefill or decode, choosing the split that maximises
  the analytic SLO estimator's objective (DistServe optimises goodput with a
  simulator in the same spirit),
* transfers KV caches at full 16-bit precision (no ThunderServe compression),
* uses the same orchestration LP for routing (DistServe pairs replicas explicitly;
  the LP subsumes that choice on a homogeneous cluster).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.common import BaselineSystem
from repro.core.exceptions import SchedulingError
from repro.core.types import Phase, SLOSpec
from repro.costmodel.reference import a100_reference_latency
from repro.scheduling.deployment import DeploymentPlan, ServingGroup
from repro.scheduling.lower_level import LowerLevelSolver
from repro.scheduling.solution import UpperLevelSolution
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace


class DistServeBaseline(BaselineSystem):
    """Homogeneous phase-splitting baseline (DistServe-style)."""

    name = "distserve"

    def __init__(
        self,
        *args,
        gpus_per_replica: Optional[int] = None,
        slo: Optional[SLOSpec] = None,
        slo_scale: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.gpus_per_replica = gpus_per_replica
        self.slo = slo
        self.slo_scale = slo_scale
        self.plan: Optional[DeploymentPlan] = None
        self._simulator: Optional[ServingSimulator] = None

    # ------------------------------------------------------------------ build
    def build(self) -> None:
        """Choose the best prefill:decode split of identical replicas."""
        size = self.gpus_per_replica or self.smallest_feasible_group_size()
        groups = self._even_gpu_groups(size)
        if len(groups) < 2:
            raise SchedulingError(
                "DistServe needs at least two replicas (one prefill + one decode)"
            )
        slo = self.slo or a100_reference_latency(self.model, self.workload, params=self.params).slo_spec(
            self.slo_scale
        )
        solver = LowerLevelSolver(
            cluster=self.cluster,
            model=self.model,
            workload=self.workload,
            slo=slo,
            request_rate=self.request_rate,
            kv_transport_bits=16,  # DistServe ships KV caches uncompressed
            params=self.params,
        )
        best_objective = float("-inf")
        best_plan: Optional[DeploymentPlan] = None
        for num_prefill in range(1, len(groups)):
            phases = [Phase.PREFILL] * num_prefill + [Phase.DECODE] * (len(groups) - num_prefill)
            solution = UpperLevelSolution.from_lists(list(zip(groups, phases)))
            result = solver.solve(solution)
            if result.feasible and result.objective > best_objective:
                best_objective = result.objective
                best_plan = result.plan
        if best_plan is None:
            raise SchedulingError("no feasible prefill/decode split found for DistServe")
        self.plan = best_plan
        self._simulator = ServingSimulator(
            self.cluster,
            best_plan,
            self.model,
            params=self.params,
            config=SimulatorConfig(seed=self.seed),
        )

    @property
    def prefill_decode_ratio(self) -> Tuple[int, int]:
        """(prefill replicas, decode replicas) of the chosen split."""
        self.ensure_built()
        assert self.plan is not None
        return self.plan.prefill_decode_ratio

    def serve(self, trace: Trace) -> SimulationResult:
        """Replay a trace with the phase-splitting simulator."""
        self.ensure_built()
        assert self._simulator is not None
        return self._simulator.run(trace, label=self.name)


__all__ = ["DistServeBaseline"]

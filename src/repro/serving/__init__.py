"""The ThunderServe serving runtime.

This package is the control plane of the reproduction: the request coordinator
(dispatching requests according to the scheduler's routing policy), the heartbeat
monitor (detecting GPU failures), and the :class:`ThunderServe` facade that ties
scheduling, serving (simulated execution), workload profiling and lightweight
rescheduling together — the overall routine described in §4 and Appendix E.
"""

from repro.serving.coordinator import RequestCoordinator
from repro.serving.monitor import HeartbeatMonitor, GPUFailure
from repro.serving.system import ThunderServe, ServeEvent

__all__ = [
    "RequestCoordinator",
    "HeartbeatMonitor",
    "GPUFailure",
    "ThunderServe",
    "ServeEvent",
]

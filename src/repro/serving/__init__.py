"""The ThunderServe serving runtime.

This package is the control plane of the reproduction: the request coordinator
(dispatching requests according to the scheduler's routing policy), the heartbeat
monitor (detecting GPU failures), the :class:`ThunderServe` facade that ties
scheduling, serving (simulated execution), workload profiling and lightweight
rescheduling together — the overall routine described in §4 and Appendix E — and
the live adaptive serving layer: declarative SLO objectives
(:mod:`repro.serving.slo_objectives`), edge-triggered breach tracking
(:class:`SLOBreachTracker`) and the windowed :class:`LiveServer` loop with
streaming per-window telemetry (:mod:`repro.serving.live`).
"""

from repro.serving.coordinator import RequestCoordinator
from repro.serving.live import (
    LiveServeConfig,
    LiveServeReport,
    LiveServer,
    PlanHealth,
    WindowTelemetry,
    plan_signature,
)
from repro.serving.monitor import (
    GPUFailure,
    GPURecovery,
    HeartbeatMonitor,
    SLOBreachTracker,
)
from repro.serving.slo_objectives import (
    BreachEvent,
    ObjectiveOutcome,
    SLOObjective,
    SLOReport,
    auto_slo_config,
    evaluate_slo_objectives,
    infer_slo_profile,
    resolve_slo_objectives,
)
from repro.serving.system import ServeEvent, ThunderServe

__all__ = [
    "RequestCoordinator",
    "HeartbeatMonitor",
    "GPUFailure",
    "GPURecovery",
    "SLOBreachTracker",
    "ThunderServe",
    "ServeEvent",
    "LiveServer",
    "LiveServeConfig",
    "LiveServeReport",
    "WindowTelemetry",
    "PlanHealth",
    "plan_signature",
    "SLOObjective",
    "ObjectiveOutcome",
    "SLOReport",
    "BreachEvent",
    "auto_slo_config",
    "evaluate_slo_objectives",
    "infer_slo_profile",
    "resolve_slo_objectives",
]

"""Request coordinator: dispatches requests across prefill and decode replicas.

The coordinator is the runtime realisation of the orchestration computed by the
scheduler: it owns the routing policy (``X`` / ``Y``), tracks per-replica
outstanding work, and picks a (prefill, decode) pair for every incoming request.
Dispatching follows the routing weights but corrects for imbalance with a
deficit-counter scheme so that the realised request shares converge to the planned
shares even for short bursts (plain sampling only matches them in expectation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import InvalidPlanError
from repro.core.types import OUTCOME_NAMES, Request
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy


@dataclass
class DispatchRecord:
    """Bookkeeping entry for one dispatched request."""

    request_id: int
    prefill_group_id: int
    decode_group_id: int


class RequestCoordinator:
    """Deficit-weighted request dispatcher over a deployment plan's routing policy."""

    def __init__(self, plan: DeploymentPlan) -> None:
        if plan.routing is None:
            routing = RoutingPolicy.uniform(
                [g.group_id for g in plan.prefill_groups],
                [g.group_id for g in plan.decode_groups],
            )
        else:
            routing = plan.routing
        self.plan = plan
        self.routing = routing
        m = len(routing.prefill_group_ids)
        n = len(routing.decode_group_ids)
        if m == 0 or n == 0:
            raise InvalidPlanError("the plan must expose prefill and decode replicas")
        # Deficit counters: planned share minus realised share, per prefill replica
        # and per (prefill, decode) pair.
        self._prefill_deficit = np.zeros(m)
        self._pair_deficit = np.zeros((m, n))
        self._dispatched = 0
        self._records: Dict[int, DispatchRecord] = {}
        self._outstanding: Dict[int, int] = {gid: 0 for gid in routing.prefill_group_ids}
        # Per-workload-tag accounting: dispatched and shed request counts keyed
        # by ``Request.workload`` (e.g. ``"tenant:gold"``), feeding the live
        # loop's per-tenant telemetry and admission bookkeeping.
        self._dispatched_by_tag: Dict[str, int] = {}
        self._shed = 0
        self._shed_by_tag: Dict[str, int] = {}
        self._outage_dropped = 0
        self._outage_dropped_by_tag: Dict[str, int] = {}
        # Run-level ledger over the typed RequestOutcome taxonomy: engine
        # outcomes fold in through record_outcomes(); shed / outage drops
        # (which never reach the engine) through their record_* calls.
        self._outcome_totals: Dict[str, int] = {name: 0 for name in OUTCOME_NAMES}

    # ------------------------------------------------------------------ dispatch
    def assign(self, request: Request) -> Tuple[int, int]:
        """Pick the (prefill group id, decode group id) pair for a request."""
        x = self.routing.x
        y = self.routing.y
        # Deficit round-robin: accumulate planned shares, serve the most underserved.
        self._prefill_deficit += x
        i = int(np.argmax(self._prefill_deficit))
        self._prefill_deficit[i] -= 1.0

        self._pair_deficit[i] += y[i]
        j = int(np.argmax(self._pair_deficit[i]))
        self._pair_deficit[i, j] -= 1.0

        prefill_id = self.routing.prefill_group_ids[i]
        decode_id = self.routing.decode_group_ids[j]
        record = DispatchRecord(
            request_id=request.request_id,
            prefill_group_id=prefill_id,
            decode_group_id=decode_id,
        )
        self._records[request.request_id] = record
        self._outstanding[prefill_id] += 1
        self._dispatched += 1
        tag = request.workload or ""
        self._dispatched_by_tag[tag] = self._dispatched_by_tag.get(tag, 0) + 1
        return prefill_id, decode_id

    def record_shed(self, request: Request) -> None:
        """Account for a request the admission front-end refused to dispatch.

        Shed requests never reach a replica; they are tracked separately so
        telemetry can report the admitted vs. refused mix per workload tag.
        """
        self._shed += 1
        tag = request.workload or ""
        self._shed_by_tag[tag] = self._shed_by_tag.get(tag, 0) + 1
        self._outcome_totals["shed"] += 1

    def record_outage_drop(self, request: Request) -> None:
        """Account for a request lost to a total-capacity outage.

        Unlike shed requests (a deliberate admission decision), outage drops
        arrive while no GPU is alive to serve them; the live loop records them
        as zero-attainment misses and this counter keeps the per-tag ledger
        complete.
        """
        self._outage_dropped += 1
        tag = request.workload or ""
        self._outage_dropped_by_tag[tag] = self._outage_dropped_by_tag.get(tag, 0) + 1
        self._outcome_totals["dropped_outage"] += 1

    def record_outcomes(self, counts: Dict[str, int]) -> None:
        """Fold one simulation run's outcome counts into the run-level ledger.

        ``counts`` is the mapping returned by
        :meth:`~repro.simulation.metrics.SimulationResult.outcome_counts`
        (request count per :class:`~repro.core.types.RequestOutcome` name).
        Shed and outage-dropped requests never reach the engine, so their
        dedicated ``record_*`` calls keep the ledger complete; callers must
        not fold the same result twice.
        """
        for name, count in counts.items():
            if name not in self._outcome_totals:
                raise KeyError(f"unknown request outcome {name!r}")
            self._outcome_totals[name] += int(count)

    def complete(self, request_id: int) -> None:
        """Mark a request finished (releases its outstanding-work accounting)."""
        record = self._records.pop(request_id, None)
        if record is None:
            raise KeyError(f"unknown request id {request_id}")
        self._outstanding[record.prefill_group_id] -= 1

    # ------------------------------------------------------------------ stats
    @property
    def num_dispatched(self) -> int:
        """Total number of requests dispatched so far."""
        return self._dispatched

    @property
    def num_shed(self) -> int:
        """Total number of requests refused by the admission front-end."""
        return self._shed

    @property
    def dispatched_by_tag(self) -> Dict[str, int]:
        """Dispatched request counts keyed by ``Request.workload`` tag."""
        return dict(self._dispatched_by_tag)

    @property
    def shed_by_tag(self) -> Dict[str, int]:
        """Shed request counts keyed by ``Request.workload`` tag."""
        return dict(self._shed_by_tag)

    @property
    def num_outage_dropped(self) -> int:
        """Total number of requests lost to total-capacity outage windows."""
        return self._outage_dropped

    @property
    def outage_dropped_by_tag(self) -> Dict[str, int]:
        """Outage-dropped request counts keyed by ``Request.workload`` tag."""
        return dict(self._outage_dropped_by_tag)

    @property
    def outcome_totals(self) -> Dict[str, int]:
        """Run-level request count per :class:`~repro.core.types.RequestOutcome` name."""
        return dict(self._outcome_totals)

    def outstanding(self, prefill_group_id: int) -> int:
        """Outstanding (dispatched, not completed) requests of one prefill replica."""
        return self._outstanding[prefill_group_id]

    def realised_prefill_shares(self) -> Dict[int, float]:
        """Realised share of requests per prefill replica (compare against ``X``)."""
        if self._dispatched == 0:
            return {gid: 0.0 for gid in self.routing.prefill_group_ids}
        counts: Dict[int, int] = {gid: 0 for gid in self.routing.prefill_group_ids}
        for record in self._records.values():
            counts[record.prefill_group_id] += 1
        # Records only hold outstanding requests; rebuild totals from deficits instead.
        planned = {gid: float(x) for gid, x in zip(self.routing.prefill_group_ids, self.routing.x)}
        realised = {
            gid: planned[gid] - float(d) / self._dispatched
            for gid, d in zip(self.routing.prefill_group_ids, self._prefill_deficit)
        }
        return realised

    def update_routing(self, routing: RoutingPolicy) -> None:
        """Install a new routing policy (after a lightweight rescheduling)."""
        self.routing = routing
        m = len(routing.prefill_group_ids)
        n = len(routing.decode_group_ids)
        self._prefill_deficit = np.zeros(m)
        self._pair_deficit = np.zeros((m, n))
        for gid in routing.prefill_group_ids:
            self._outstanding.setdefault(gid, 0)


__all__ = ["RequestCoordinator", "DispatchRecord"]

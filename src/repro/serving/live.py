"""Live adaptive serving: a time-warped windowed loop with SLO observability.

This module promotes :class:`~repro.serving.system.ThunderServe` from batch
simulation to a long-running service.  :class:`LiveServer` replays a request
trace against the fast engine in bounded windows on a *time-warped* serving
clock (the loop advances the clock window by window instead of sleeping, so a
two-hour trace replays in seconds while keeping wall-clock semantics), and per
window it

1. estimates the health of the installed plan for the window's observed
   request mix with the M/G/1 :class:`~repro.scheduling.estimator.SLOEstimator`
   (per-replica utilisation ``rho`` and routed attainment);
2. optionally sheds load at admission when the estimator reports the plan
   would run beyond a configured utilisation ceiling;
3. serves the admitted window through the engine and measures a telemetry
   snapshot (:class:`WindowTelemetry` — attainment, queue wait, per-tenant
   breakdown, plan id);
4. resolves the declarative SLO-objective config to a profile
   (realtime/degraded, see :mod:`repro.serving.slo_objectives`), evaluates the
   objectives, and emits edge-triggered breach events; and
5. on a breach — or a profiler-detected workload shift — triggers the §3.4
   lightweight rescheduler online, so the next window is served by a plan
   re-designated for the observed workload.

Plan changes only happen *between* windows, which makes the loop auditable:
replaying each window's sub-trace against its recorded plan in independent
batch simulations reproduces the live run's metrics exactly (the
piecewise-static equivalence contract, enforced by the test suite).

For integration into an asyncio application, :meth:`LiveServer.stream` wraps
the same loop as an async generator and can optionally pace windows in scaled
wall-clock time.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.core.types import SLOType
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy
from repro.scheduling.estimator import SLOEstimator
from repro.serving.monitor import SLOBreachTracker
from repro.serving.slo_objectives import (
    BreachEvent,
    auto_slo_config,
    evaluate_slo_objectives,
    resolve_slo_objectives,
)
from repro.serving.system import ThunderServe
from repro.simulation.metrics import SimulationResult, merge_results
from repro.workload.trace import Trace


def plan_signature(plan: DeploymentPlan) -> str:
    """Stable short identifier of a deployment plan's structure.

    Hashes the group construction (GPU sets, phases, stage layouts) and the
    routing weights (rounded to 1e-6), so two plans that serve identically get
    the same id and any rescheduling that changed phases *or* routing gets a
    new one.  Used as the ``plan_id`` surfaced in windowed telemetry.
    """
    parts: List[object] = []
    for group in sorted(plan.groups, key=lambda g: g.group_id):
        stages: Tuple = ()
        if group.plan is not None:
            stages = tuple(
                (tuple(st.gpu_ids), st.num_layers, st.tp) for st in group.plan.stages
            )
        parts.append((group.group_id, tuple(group.gpu_ids), group.phase.value, stages))
    if plan.routing is not None:
        parts.append(tuple(round(float(v), 6) for v in plan.routing.prefill_weights))
        parts.append(
            tuple(tuple(round(float(v), 6) for v in row) for row in plan.routing.dispatch)
        )
    return f"{zlib.crc32(repr(parts).encode()) & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class PlanHealth:
    """Estimator view of how the installed plan handles an observed window."""

    #: highest per-prefill-replica utilisation implied by the routing
    rho: float
    #: routed estimated E2E attainment (``sum_ij z_ij * D_ij``)
    attainment: float
    #: arrival rate (requests/s) the estimate was computed for
    request_rate: float


@dataclass
class WindowTelemetry:
    """Telemetry snapshot of one served window of the live loop."""

    #: index of the window within the run (served windows only)
    index: int
    #: window start / end on the serving clock (seconds)
    start: float
    end: float
    #: structural id of the plan the window was served with
    plan_id: str
    #: SLO profile the window was judged under (``realtime`` / ``degraded`` / ...)
    profile: str
    #: requests that arrived / were shed at admission / finished in the window
    num_requests: int
    num_shed: int
    num_finished: int
    #: observed arrival rate over the window (requests/s)
    request_rate: float
    #: served SLO attainment at the system deadline, per SLO type
    attainment_e2e: float
    attainment_ttft: float
    attainment_tpot: float
    #: mean simulated queue wait of finished requests (0 when none finished)
    mean_queue_wait: float
    #: fraction of admitted requests that finished within the window horizon
    completion_rate: float
    #: estimator utilisation / attainment of the plan for the observed mix
    estimated_rho: float
    estimated_attainment: float
    #: whether a new plan was installed at the end of this window
    plan_changed: bool = False
    #: breach events emitted by this window's SLO evaluation
    breaches: Tuple[BreachEvent, ...] = ()
    #: per-tenant E2E attainment for ``"tenant:*"``-tagged requests
    per_tenant_attainment: Dict[str, float] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, float]:
        """Return the metric mapping SLO objectives are evaluated against."""
        total = self.num_requests + self.num_shed
        return {
            "attainment_e2e": self.attainment_e2e,
            "attainment_ttft": self.attainment_ttft,
            "attainment_tpot": self.attainment_tpot,
            "mean_queue_wait": self.mean_queue_wait,
            "completion_rate": self.completion_rate,
            "estimated_rho": self.estimated_rho,
            "estimated_attainment": self.estimated_attainment,
            "request_rate": self.request_rate,
            "num_requests": float(self.num_requests),
            "shed_fraction": self.num_shed / total if total else 0.0,
        }

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable dict form of the record."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "plan_id": self.plan_id,
            "profile": self.profile,
            "num_requests": self.num_requests,
            "num_shed": self.num_shed,
            "num_finished": self.num_finished,
            "request_rate": self.request_rate,
            "attainment_e2e": self.attainment_e2e,
            "attainment_ttft": self.attainment_ttft,
            "attainment_tpot": self.attainment_tpot,
            "mean_queue_wait": self.mean_queue_wait,
            "completion_rate": self.completion_rate,
            "estimated_rho": self.estimated_rho,
            "estimated_attainment": self.estimated_attainment,
            "plan_changed": self.plan_changed,
            "breaches": [b.to_dict() for b in self.breaches],
            "per_tenant_attainment": dict(self.per_tenant_attainment),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WindowTelemetry":
        """Rebuild a record from its dict form (inverse of :meth:`to_dict`)."""
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            plan_id=str(data["plan_id"]),
            profile=str(data["profile"]),
            num_requests=int(data["num_requests"]),  # type: ignore[arg-type]
            num_shed=int(data["num_shed"]),  # type: ignore[arg-type]
            num_finished=int(data["num_finished"]),  # type: ignore[arg-type]
            request_rate=float(data["request_rate"]),  # type: ignore[arg-type]
            attainment_e2e=float(data["attainment_e2e"]),  # type: ignore[arg-type]
            attainment_ttft=float(data["attainment_ttft"]),  # type: ignore[arg-type]
            attainment_tpot=float(data["attainment_tpot"]),  # type: ignore[arg-type]
            mean_queue_wait=float(data["mean_queue_wait"]),  # type: ignore[arg-type]
            completion_rate=float(data["completion_rate"]),  # type: ignore[arg-type]
            estimated_rho=float(data["estimated_rho"]),  # type: ignore[arg-type]
            estimated_attainment=float(data["estimated_attainment"]),  # type: ignore[arg-type]
            plan_changed=bool(data["plan_changed"]),
            breaches=tuple(
                BreachEvent.from_dict(b) for b in data.get("breaches", ())  # type: ignore[union-attr]
            ),
            per_tenant_attainment=dict(data.get("per_tenant_attainment", {})),  # type: ignore[arg-type]
        )


@dataclass
class LiveServeConfig:
    """Configuration of the live serving loop.

    Parameters
    ----------
    window_s:
        Serving window length on the time-warped clock (seconds of trace time).
    slo_config:
        Declarative SLO-objective config (flat or profile form, see
        :mod:`repro.serving.slo_objectives`); defaults to
        :func:`~repro.serving.slo_objectives.auto_slo_config`.
    admission_max_rho:
        Utilisation ceiling for the admission front-end: when the estimator
        reports a window would run the hottest prefill replica beyond this,
        excess arrivals are shed deterministically to bring it back under.
        ``None`` (default) disables shedding — every request is admitted.
    reschedule_on_breach:
        Trigger the §3.4 lightweight rescheduler when a window emits breach
        events.
    reschedule_on_shift:
        Fall back to the workload profiler's shift detector in windows without
        breaches (the original ``serve_adaptive`` trigger).
    validate_reschedule:
        Shadow-validate every rescheduling candidate by replaying the window
        just served under it: the candidate is adopted only when it strictly
        beats the incumbent plan's simulated attainment on that window (see
        :meth:`~repro.serving.system.ThunderServe.reschedule_online`).  On by
        default — the estimator can mis-rank flip candidates near saturation,
        and an online loop must never adopt a plan that demonstrably serves
        the observed workload worse.

    Raises
    ------
    ValueError
        If ``window_s`` is not positive or ``admission_max_rho`` is not in
        ``(0, 1]``.
    """

    window_s: float = 30.0
    slo_config: Optional[Mapping[str, object]] = None
    admission_max_rho: Optional[float] = None
    reschedule_on_breach: bool = True
    reschedule_on_shift: bool = True
    validate_reschedule: bool = True

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.admission_max_rho is not None and not 0 < self.admission_max_rho <= 1:
            raise ValueError("admission_max_rho must be in (0, 1]")


@dataclass
class LiveServeReport:
    """Everything a live run produced: telemetry, results and breach events."""

    #: per-window telemetry records, in serving order
    windows: List[WindowTelemetry]
    #: per-window simulation results (parallel to ``windows``)
    results: List[SimulationResult]
    #: the plan each window was served with (parallel to ``windows``)
    served_plans: List[DeploymentPlan]
    #: all breach events emitted across the run, in firing order
    breaches: List[BreachEvent]
    #: label of the run
    label: str = "live"

    @property
    def num_plan_changes(self) -> int:
        """Number of windows after which a new plan was installed."""
        return sum(1 for w in self.windows if w.plan_changed)

    @property
    def plan_ids(self) -> List[str]:
        """Plan id of every served window, in order."""
        return [w.plan_id for w in self.windows]

    @property
    def merged(self) -> SimulationResult:
        """All window results merged into one trace-level result."""
        return merge_results(self.results, label=self.label)

    def worst_window_attainment(self) -> float:
        """Lowest windowed E2E attainment of the run (1.0 for an empty run)."""
        if not self.windows:
            return 1.0
        return min(w.attainment_e2e for w in self.windows)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Return the windowed telemetry stream as JSON-serialisable dicts."""
        return [w.to_dict() for w in self.windows]


class LiveServer:
    """Windowed adaptive serving loop over a :class:`ThunderServe` system.

    Parameters
    ----------
    system:
        A deployed serving system (``deploy()`` / ``adopt_plan()`` must have
        installed a plan before :meth:`run`).
    config:
        Loop configuration; defaults to :class:`LiveServeConfig`.
    on_window:
        Optional callback invoked with each :class:`WindowTelemetry` as it is
        measured (the streaming telemetry hook).
    on_breach:
        Optional callback invoked with each :class:`BreachEvent` as it fires.
    """

    def __init__(
        self,
        system: ThunderServe,
        config: Optional[LiveServeConfig] = None,
        on_window: Optional[Callable[[WindowTelemetry], None]] = None,
        on_breach: Optional[Callable[[BreachEvent], None]] = None,
    ) -> None:
        self.system = system
        self.config = config or LiveServeConfig()
        self.on_window = on_window
        self.on_breach = on_breach
        self.tracker = SLOBreachTracker()

    # ------------------------------------------------------------------ estimation
    def _routing(self, plan: DeploymentPlan) -> RoutingPolicy:
        """Return the plan's routing policy (uniform when the plan has none)."""
        if plan.routing is not None:
            return plan.routing
        return RoutingPolicy.uniform(
            [g.group_id for g in plan.prefill_groups],
            [g.group_id for g in plan.decode_groups],
        )

    def plan_health(self, window: Trace) -> PlanHealth:
        """Estimate the installed plan's health for one window's observed mix.

        Builds an M/G/1 :class:`~repro.scheduling.estimator.SLOEstimator` for
        the window's empirical workload (means and arrival rate) and prices the
        plan's routing through it: per-prefill-replica utilisation follows the
        routed share of the observed rate, decode operating batches follow the
        routed token demand, and the routed attainment aggregates the pair
        matrix exactly like the lower-level solver does.

        Returns
        -------
        PlanHealth
            ``rho`` (hottest prefill replica), routed E2E ``attainment`` and
            the ``request_rate`` the figures were computed for.
        """
        system = self.system
        plan = system.require_plan()
        rate = window.request_rate or system.request_rate
        from repro.workload.spec import WorkloadStats

        stats = WorkloadStats(
            mean_input_length=window.mean_input_length,
            mean_output_length=window.mean_output_length,
            request_rate=rate,
            num_requests=len(window),
        )
        estimator = SLOEstimator(
            system.cluster,
            system.model,
            stats.as_spec(name="live-window"),
            system.slo,
            rate,
            kv_transport_bits=plan.kv_transport_bits,
            params=system.params,
            prefill_batch_requests=system.simulator_config.max_prefill_batch_requests,
        )
        routing = self._routing(plan)
        prefills = [
            estimator.replica_performance(plan.group(gid))
            for gid in routing.prefill_group_ids
        ]
        decodes = [
            estimator.replica_performance(plan.group(gid))
            for gid in routing.decode_group_ids
        ]
        x = routing.x
        z = routing.joint
        utilizations = [
            float(x[i]) * rate * p.prefill_service_s for i, p in enumerate(prefills)
        ]
        context = estimator.mean_input + estimator.mean_output
        batches = [
            q.decode_operating_batch(
                float(z[:, j].sum()) * rate * estimator.mean_output, context
            )
            for j, q in enumerate(decodes)
        ]
        d = estimator.attainment_matrix(
            prefills, decodes, prefill_utilizations=utilizations, decode_batches=batches
        )
        return PlanHealth(
            rho=max(utilizations) if utilizations else 0.0,
            attainment=float((z * d).sum()),
            request_rate=rate,
        )

    def _admit(self, window: Trace, health: PlanHealth) -> Tuple[Trace, int]:
        """Apply the admission front-end to one window.

        When the estimated utilisation exceeds ``admission_max_rho``, requests
        are shed with a deterministic deficit counter so the admitted fraction
        tracks ``admission_max_rho / rho`` exactly (no sampling noise), and the
        shed requests are recorded on the coordinator.  Returns the admitted
        sub-trace and the number of shed requests.
        """
        max_rho = self.config.admission_max_rho
        if max_rho is None or health.rho <= max_rho or health.rho <= 0:
            return window, 0
        keep_fraction = max_rho / health.rho
        admitted = []
        shed = 0
        acc = 0.0
        coordinator = self.system.coordinator
        for request in window:
            acc += keep_fraction
            if acc >= 1.0:
                acc -= 1.0
                admitted.append(request)
            else:
                shed += 1
                if coordinator is not None:
                    coordinator.record_shed(request)
        return Trace(requests=admitted, name=f"{window.name}-admitted"), shed

    # ------------------------------------------------------------------ telemetry
    def _measure(
        self,
        index: int,
        start: float,
        end: float,
        result: SimulationResult,
        health: PlanHealth,
        num_shed: int,
        served_plan_id: str,
    ) -> WindowTelemetry:
        """Build the telemetry record of one served window."""
        slo = self.system.slo
        finished = result.finished
        queue_waits = [m.queue_time for m in finished]
        per_tenant: Dict[str, float] = {}
        tenant_metrics: Dict[str, List] = {}
        for m in result.metrics:
            tag = m.request.workload or ""
            if tag.startswith("tenant:"):
                tenant_metrics.setdefault(tag.split(":", 1)[1], []).append(m)
        for tenant, metrics in sorted(tenant_metrics.items()):
            hits = sum(1 for m in metrics if slo.is_met(m, SLOType.E2E))
            per_tenant[tenant] = hits / len(metrics)
        return WindowTelemetry(
            index=index,
            start=start,
            end=end,
            plan_id=served_plan_id,
            profile="",  # resolved by the caller against the SLO config
            num_requests=result.num_requests,
            num_shed=num_shed,
            num_finished=result.num_finished,
            request_rate=result.num_requests / (end - start) if end > start else 0.0,
            attainment_e2e=result.slo_attainment(slo, SLOType.E2E),
            attainment_ttft=result.slo_attainment(slo, SLOType.TTFT),
            attainment_tpot=result.slo_attainment(slo, SLOType.TPOT),
            mean_queue_wait=float(np.mean(queue_waits)) if queue_waits else 0.0,
            completion_rate=result.completion_rate,
            estimated_rho=health.rho,
            estimated_attainment=health.attainment,
            per_tenant_attainment=per_tenant,
        )

    # ------------------------------------------------------------------ loop
    def _serve_windows(
        self, trace: Trace, label: str
    ) -> Iterator[Tuple[WindowTelemetry, SimulationResult, DeploymentPlan]]:
        """Serve ``trace`` window by window, yielding telemetry as it is measured."""
        system = self.system
        config = self.config
        slo_config = config.slo_config or auto_slo_config()
        system.require_plan()
        if trace.is_empty:
            return
        start = trace[0].arrival_time
        end = trace[-1].arrival_time
        window_start = start
        index = 0
        while window_start <= end:
            window_end = window_start + config.window_s
            window = trace.window(window_start, window_end)
            window_start = window_end
            if window.is_empty:
                continue
            served_plan = system.require_plan()
            served_plan_id = plan_signature(served_plan)
            health = self.plan_health(window)
            admitted, num_shed = self._admit(window, health)
            result = system.serve(admitted, label=f"{label}[{index}]")
            system.monitor.heartbeat_all(window_end)
            telemetry = self._measure(
                index, window_end - config.window_s, window_end, result, health,
                num_shed, served_plan_id,
            )
            profile, objectives = resolve_slo_objectives(slo_config, telemetry.snapshot())
            telemetry.profile = profile
            report = evaluate_slo_objectives(telemetry.snapshot(), objectives, profile=profile)
            events = self.tracker.update(
                report, time=window_end, window_index=index, context=label
            )
            telemetry.breaches = tuple(events)
            for event in events:
                if self.on_breach is not None:
                    self.on_breach(event)
            telemetry.plan_changed = self._adapt(events, admitted, label)
            if self.on_window is not None:
                self.on_window(telemetry)
            yield telemetry, result, served_plan
            index += 1

    def _adapt(self, events: List[BreachEvent], window: Trace, label: str) -> bool:
        """Run the online rescheduling policy after one window; return whether the plan changed."""
        system = self.system
        config = self.config
        validate_on = window if config.validate_reschedule else None
        if events and config.reschedule_on_breach:
            names = ",".join(e.objective for e in events)
            return system.reschedule_online(
                reason=f"slo breach ({names}) during {label}", validate_on=validate_on
            )
        if config.reschedule_on_shift:
            shift = system.profiler.detect_shift()
            if shift is not None:
                return system.reschedule_online(
                    stats=shift.current,
                    reason=f"lightweight rescheduling ({shift.describe()})",
                    validate_on=validate_on,
                )
        return False

    def run(self, trace: Trace, label: str = "live") -> LiveServeReport:
        """Serve a whole trace adaptively and return the run report.

        Parameters
        ----------
        trace:
            The request trace to replay on the time-warped serving clock.
        label:
            Run label stamped onto window results and breach events.

        Returns
        -------
        LiveServeReport
            Windowed telemetry, per-window simulation results, the plan each
            window was served with, and every breach event fired.
        """
        windows: List[WindowTelemetry] = []
        results: List[SimulationResult] = []
        plans: List[DeploymentPlan] = []
        breaches: List[BreachEvent] = []
        for telemetry, result, plan in self._serve_windows(trace, label):
            windows.append(telemetry)
            results.append(result)
            plans.append(plan)
            breaches.extend(telemetry.breaches)
        return LiveServeReport(
            windows=windows,
            results=results,
            served_plans=plans,
            breaches=breaches,
            label=label,
        )

    async def stream(self, trace: Trace, label: str = "live", time_warp: float = 0.0):
        """Serve a trace as an async generator of :class:`WindowTelemetry`.

        Parameters
        ----------
        trace:
            The request trace to replay.
        label:
            Run label stamped onto window results and breach events.
        time_warp:
            Real seconds to sleep per simulated window second.  ``0`` (default)
            only yields control to the event loop between windows; ``1.0``
            paces the replay in real time.

        Yields
        ------
        WindowTelemetry
            One record per served window, as soon as it is measured.
        """
        import asyncio

        for telemetry, _result, _plan in self._serve_windows(trace, label):
            yield telemetry
            await asyncio.sleep(self.config.window_s * time_warp)


__all__ = [
    "LiveServer",
    "LiveServeConfig",
    "LiveServeReport",
    "WindowTelemetry",
    "PlanHealth",
    "plan_signature",
]

"""Live adaptive serving: a time-warped windowed loop with SLO observability.

This module promotes :class:`~repro.serving.system.ThunderServe` from batch
simulation to a long-running service.  :class:`LiveServer` replays a request
trace against the fast engine in bounded windows on a *time-warped* serving
clock (the loop advances the clock window by window instead of sleeping, so a
two-hour trace replays in seconds while keeping wall-clock semantics), and per
window it

1. estimates the health of the installed plan for the window's observed
   request mix with the M/G/1 :class:`~repro.scheduling.estimator.SLOEstimator`
   (per-replica utilisation ``rho`` and routed attainment);
2. optionally sheds load at admission when the estimator reports the plan
   would run beyond a configured utilisation ceiling;
3. serves the admitted window through the engine and measures a telemetry
   snapshot (:class:`WindowTelemetry` — attainment, queue wait, per-tenant
   breakdown, plan id);
4. resolves the declarative SLO-objective config to a profile
   (realtime/degraded, see :mod:`repro.serving.slo_objectives`), evaluates the
   objectives, and emits edge-triggered breach events; and
5. on a breach — or a profiler-detected workload shift — triggers the §3.4
   lightweight rescheduler online, so the next window is served by a plan
   re-designated for the observed workload; and
6. optionally replays a :class:`~repro.faults.FaultSchedule` against the loop:
   capacity events inside the window are compiled into a replica-level
   :class:`~repro.faults.FaultTimeline` and handed to the engine, which
   preempts in-flight work at the exact fault instant and retries it under the
   configured :class:`~repro.faults.RetryPolicy`; at the next window boundary
   the same events fold into the cluster state, where capacity loss triggers a
   failure replan chain with bounded retry/backoff, capacity recovery triggers
   a (shadow-validated) re-expansion replan, network degradation and straggler
   slowdowns reprice the engine transparently, and a total-capacity outage
   degrades gracefully to zero-attainment windows instead of crashing the run.

Plan changes only happen *between* windows, which keeps the loop auditable:
replaying each window's sub-trace against its recorded plan — and, for windows
with mid-window faults, the same compiled fault timeline — in independent
batch simulations reproduces the live run's metrics exactly (the
piecewise-static equivalence contract, enforced by the test suite).

For integration into an asyncio application, :meth:`LiveServer.stream` wraps
the same loop as an async generator and can optionally pace windows in scaled
wall-clock time.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.core.exceptions import InvalidPlanError, SchedulingError
from repro.core.types import OUTCOME_NAMES, RequestMetrics, RequestOutcome, SLOType
from repro.faults.retry import RetryPolicy
from repro.faults.state import ClusterFaultState
from repro.faults.taxonomy import CAPACITY_LOSS_KINDS, FaultKind, FaultSchedule
from repro.faults.timeline import FaultTimeline, compile_fault_timeline
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy
from repro.scheduling.estimator import SLOEstimator
from repro.serving.monitor import SLOBreachTracker
from repro.serving.slo_objectives import (
    BreachEvent,
    auto_slo_config,
    evaluate_slo_objectives,
    resolve_slo_objectives,
)
from repro.serving.system import ThunderServe
from repro.simulation.metrics import SimulationResult, merge_results
from repro.workload.trace import Trace


def plan_signature(plan: DeploymentPlan) -> str:
    """Stable short identifier of a deployment plan's structure.

    Hashes the group construction (GPU sets, phases, stage layouts) and the
    routing weights (rounded to 1e-6), so two plans that serve identically get
    the same id and any rescheduling that changed phases *or* routing gets a
    new one.  Used as the ``plan_id`` surfaced in windowed telemetry.
    """
    parts: List[object] = []
    for group in sorted(plan.groups, key=lambda g: g.group_id):
        stages: Tuple = ()
        if group.plan is not None:
            stages = tuple(
                (tuple(st.gpu_ids), st.num_layers, st.tp) for st in group.plan.stages
            )
        parts.append((group.group_id, tuple(group.gpu_ids), group.phase.value, stages))
    if plan.routing is not None:
        parts.append(tuple(round(float(v), 6) for v in plan.routing.prefill_weights))
        parts.append(
            tuple(tuple(round(float(v), 6) for v in row) for row in plan.routing.dispatch)
        )
    return f"{zlib.crc32(repr(parts).encode()) & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class PlanHealth:
    """Estimator view of how the installed plan handles an observed window."""

    #: highest per-prefill-replica utilisation implied by the routing
    rho: float
    #: routed estimated E2E attainment (``sum_ij z_ij * D_ij``)
    attainment: float
    #: arrival rate (requests/s) the estimate was computed for
    request_rate: float


@dataclass
class WindowTelemetry:
    """Telemetry snapshot of one served window of the live loop."""

    #: index of the window within the run (served windows only)
    index: int
    #: window start / end on the serving clock (seconds)
    start: float
    end: float
    #: structural id of the plan the window was served with
    plan_id: str
    #: SLO profile the window was judged under (``realtime`` / ``degraded`` / ...)
    profile: str
    #: requests that arrived / were shed at admission / finished in the window
    num_requests: int
    num_shed: int
    num_finished: int
    #: observed arrival rate over the window (requests/s)
    request_rate: float
    #: served SLO attainment at the system deadline, per SLO type
    attainment_e2e: float
    attainment_ttft: float
    attainment_tpot: float
    #: mean simulated queue wait of finished requests (0 when none finished)
    mean_queue_wait: float
    #: fraction of admitted requests that finished within the window horizon
    completion_rate: float
    #: estimator utilisation / attainment of the plan for the observed mix
    estimated_rho: float
    estimated_attainment: float
    #: whether a new plan was installed at the end of this window
    plan_changed: bool = False
    #: breach events emitted by this window's SLO evaluation
    breaches: Tuple[BreachEvent, ...] = ()
    #: per-tenant E2E attainment for ``"tenant:*"``-tagged requests
    per_tenant_attainment: Dict[str, float] = field(default_factory=dict)
    #: whether the window was a total-capacity outage (nothing served)
    outage: bool = False
    #: whether any injected fault was active while the window was served
    degraded: bool = False
    #: human-readable fault events applied at this window's start
    faults: Tuple[str, ...] = ()
    #: GPUs alive when the window was served (``-1`` when fault injection is off)
    num_gpus_alive: int = -1
    #: capacity replan installed at this window's start (``""``/``failure``/``recovery``)
    replan_trigger: str = ""
    #: request count per :class:`~repro.core.types.RequestOutcome` name,
    #: including admission sheds (sums to ``num_requests + num_shed``)
    outcome_counts: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, float]:
        """Return the metric mapping SLO objectives are evaluated against."""
        total = self.num_requests + self.num_shed
        return {
            "attainment_e2e": self.attainment_e2e,
            "attainment_ttft": self.attainment_ttft,
            "attainment_tpot": self.attainment_tpot,
            "mean_queue_wait": self.mean_queue_wait,
            "completion_rate": self.completion_rate,
            "estimated_rho": self.estimated_rho,
            "estimated_attainment": self.estimated_attainment,
            "request_rate": self.request_rate,
            "num_requests": float(self.num_requests),
            "shed_fraction": self.num_shed / total if total else 0.0,
            "failed_fraction": (
                (
                    self.outcome_counts.get("timed_out", 0)
                    + self.outcome_counts.get("dropped_outage", 0)
                )
                / total
                if total
                else 0.0
            ),
        }

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable dict form of the record."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "plan_id": self.plan_id,
            "profile": self.profile,
            "num_requests": self.num_requests,
            "num_shed": self.num_shed,
            "num_finished": self.num_finished,
            "request_rate": self.request_rate,
            "attainment_e2e": self.attainment_e2e,
            "attainment_ttft": self.attainment_ttft,
            "attainment_tpot": self.attainment_tpot,
            "mean_queue_wait": self.mean_queue_wait,
            "completion_rate": self.completion_rate,
            "estimated_rho": self.estimated_rho,
            "estimated_attainment": self.estimated_attainment,
            "plan_changed": self.plan_changed,
            "breaches": [b.to_dict() for b in self.breaches],
            "per_tenant_attainment": dict(self.per_tenant_attainment),
            "outage": self.outage,
            "degraded": self.degraded,
            "faults": list(self.faults),
            "num_gpus_alive": self.num_gpus_alive,
            "replan_trigger": self.replan_trigger,
            "outcome_counts": dict(self.outcome_counts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WindowTelemetry":
        """Rebuild a record from its dict form (inverse of :meth:`to_dict`)."""
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            plan_id=str(data["plan_id"]),
            profile=str(data["profile"]),
            num_requests=int(data["num_requests"]),  # type: ignore[arg-type]
            num_shed=int(data["num_shed"]),  # type: ignore[arg-type]
            num_finished=int(data["num_finished"]),  # type: ignore[arg-type]
            request_rate=float(data["request_rate"]),  # type: ignore[arg-type]
            attainment_e2e=float(data["attainment_e2e"]),  # type: ignore[arg-type]
            attainment_ttft=float(data["attainment_ttft"]),  # type: ignore[arg-type]
            attainment_tpot=float(data["attainment_tpot"]),  # type: ignore[arg-type]
            mean_queue_wait=float(data["mean_queue_wait"]),  # type: ignore[arg-type]
            completion_rate=float(data["completion_rate"]),  # type: ignore[arg-type]
            estimated_rho=float(data["estimated_rho"]),  # type: ignore[arg-type]
            estimated_attainment=float(data["estimated_attainment"]),  # type: ignore[arg-type]
            plan_changed=bool(data["plan_changed"]),
            breaches=tuple(
                BreachEvent.from_dict(b) for b in data.get("breaches", ())  # type: ignore[union-attr]
            ),
            per_tenant_attainment=dict(data.get("per_tenant_attainment", {})),  # type: ignore[arg-type]
            outage=bool(data.get("outage", False)),
            degraded=bool(data.get("degraded", False)),
            faults=tuple(str(f) for f in data.get("faults", ())),  # type: ignore[union-attr]
            num_gpus_alive=int(data.get("num_gpus_alive", -1)),  # type: ignore[arg-type]
            replan_trigger=str(data.get("replan_trigger", "")),
            outcome_counts={
                str(k): int(v)  # type: ignore[call-overload]
                for k, v in dict(data.get("outcome_counts", {})).items()  # type: ignore[call-overload]
            },
        )


@dataclass
class LiveServeConfig:
    """Configuration of the live serving loop.

    Parameters
    ----------
    window_s:
        Serving window length on the time-warped clock (seconds of trace time).
    slo_config:
        Declarative SLO-objective config (flat or profile form, see
        :mod:`repro.serving.slo_objectives`); defaults to
        :func:`~repro.serving.slo_objectives.auto_slo_config`.
    admission_max_rho:
        Utilisation ceiling for the admission front-end: when the estimator
        reports a window would run the hottest prefill replica beyond this,
        excess arrivals are shed deterministically to bring it back under.
        ``None`` (default) disables shedding — every request is admitted.
    reschedule_on_breach:
        Trigger the §3.4 lightweight rescheduler when a window emits breach
        events.
    reschedule_on_shift:
        Fall back to the workload profiler's shift detector in windows without
        breaches (the original ``serve_adaptive`` trigger).
    validate_reschedule:
        Shadow-validate every rescheduling candidate by replaying the window
        just served under it: the candidate is adopted only when it strictly
        beats the incumbent plan's simulated attainment on that window (see
        :meth:`~repro.serving.system.ThunderServe.reschedule_online`).  On by
        default — the estimator can mis-rank flip candidates near saturation,
        and an online loop must never adopt a plan that demonstrably serves
        the observed workload worse.  Recovery replans reuse the same guard
        non-strictly (ties keep the candidate, see
        :meth:`~repro.serving.system.ThunderServe.replan_capacity`).
    faults:
        Optional :class:`~repro.faults.FaultSchedule` to replay against the
        loop.  Capacity events (preemption, crash, recovery) inside a window
        are compiled into a replica-level timeline and applied *by the engine*
        at the exact fault instant — in-flight work on a dead replica is
        preempted and retried under ``retry_policy``; at the next window
        boundary the same events fold into the cluster state and drive
        replanning.  Non-capacity events (links, stragglers) still take effect
        at the boundary of the window containing their timestamp, keeping the
        piecewise-static contract: within a window the *plan* never changes.
    retry_policy:
        :class:`~repro.faults.RetryPolicy` governing the disposition of work
        preempted by mid-window capacity loss (attempt budget, backoff,
        deadline).  ``None`` (default) inherits the engine default — a
        bounded-retry :class:`~repro.faults.RetryPolicy` with exponential
        backoff; pass :meth:`~repro.faults.RetryPolicy.drop_only` to cancel
        preempted work instead.
    reschedule_on_failure:
        React to capacity loss by replanning through ``failure_mode_order``.
        When off, dead serving groups are still dropped (mode ``"none"``) so
        the surviving replicas keep serving, but nothing re-optimises — the
        static arm of a chaos comparison.
    reschedule_on_recovery:
        React to capacity recovery (GPU rejoin) with a ``recovery_mode``
        replan that re-expands onto the revived GPUs.  When off, revived
        capacity stays idle.
    failure_mode_order:
        Replan strategies tried in order after a capacity loss; the first one
        that yields a servable plan wins.  Strategies are the Figure 11 modes
        accepted by :meth:`~repro.serving.system.ThunderServe.replan_capacity`.
    recovery_mode:
        Replan strategy after a capacity recovery.  Defaults to ``"full"``:
        the §3.4 flip-only rescheduler cannot place new groups on revived
        GPUs, so re-expansion needs the whole scheduler.
    replan_max_retries:
        Consecutive failed replan attempts tolerated before the loop backs
        off.  While backed off (and whenever every strategy fails), affected
        windows are served by the surviving plan — or recorded as
        zero-attainment outage windows when no servable plan exists.
    replan_backoff_windows:
        Windows to skip replan attempts for after ``replan_max_retries``
        consecutive failures.
    degraded_admission_max_rho:
        Tighter admission ceiling applied while any injected fault is active
        (graceful degradation sheds load instead of missing every deadline).
        ``None`` (default) keeps ``admission_max_rho`` in all conditions.

    Raises
    ------
    ValueError
        If ``window_s`` is not positive, an admission ceiling is not in
        ``(0, 1]``, a replan mode is unknown, or a retry/backoff knob is
        negative.
    """

    window_s: float = 30.0
    slo_config: Optional[Mapping[str, object]] = None
    admission_max_rho: Optional[float] = None
    reschedule_on_breach: bool = True
    reschedule_on_shift: bool = True
    validate_reschedule: bool = True
    faults: Optional[FaultSchedule] = None
    retry_policy: Optional[RetryPolicy] = None
    reschedule_on_failure: bool = True
    reschedule_on_recovery: bool = True
    failure_mode_order: Tuple[str, ...] = ("lightweight", "none")
    recovery_mode: str = "full"
    replan_max_retries: int = 2
    replan_backoff_windows: int = 1
    degraded_admission_max_rho: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        for name in ("admission_max_rho", "degraded_admission_max_rho"):
            ceiling = getattr(self, name)
            if ceiling is not None and not 0 < ceiling <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        modes = ThunderServe.RESCHEDULE_MODES
        self.failure_mode_order = tuple(self.failure_mode_order)
        if not self.failure_mode_order:
            raise ValueError("failure_mode_order must name at least one mode")
        for field_name, field_modes in (
            ("failure_mode_order", self.failure_mode_order),
            ("recovery_mode", (self.recovery_mode,)),
        ):
            for mode in field_modes:
                if mode not in modes:
                    raise ValueError(
                        f"{field_name} entries must be one of {modes}, got {mode!r}"
                    )
        if self.replan_max_retries < 1:
            raise ValueError("replan_max_retries must be at least 1")
        if self.replan_backoff_windows < 0:
            raise ValueError("replan_backoff_windows must not be negative")


@dataclass
class LiveServeReport:
    """Everything a live run produced: telemetry, results and breach events."""

    #: per-window telemetry records, in serving order
    windows: List[WindowTelemetry]
    #: per-window simulation results (parallel to ``windows``)
    results: List[SimulationResult]
    #: the plan each window was served with (parallel to ``windows``)
    served_plans: List[DeploymentPlan]
    #: all breach events emitted across the run, in firing order
    breaches: List[BreachEvent]
    #: label of the run
    label: str = "live"
    #: fault-lifecycle log: one entry per applied fault event, in order
    fault_log: List[Dict[str, object]] = field(default_factory=list)

    @property
    def num_plan_changes(self) -> int:
        """Number of plan installations during the run.

        Counts end-of-window adaptations (``plan_changed``) plus the
        failure/recovery replans installed at window starts by fault handling.
        """
        return sum(
            1
            for w in self.windows
            if w.plan_changed or w.replan_trigger in ("failure", "recovery")
        )

    @property
    def plan_ids(self) -> List[str]:
        """Plan id of every served window, in order."""
        return [w.plan_id for w in self.windows]

    @property
    def merged(self) -> SimulationResult:
        """All window results merged into one trace-level result."""
        return merge_results(self.results, label=self.label)

    def worst_window_attainment(self) -> float:
        """Lowest windowed E2E attainment of the run (1.0 for an empty run)."""
        if not self.windows:
            return 1.0
        return min(w.attainment_e2e for w in self.windows)

    def fault_stats(self) -> Dict[str, float]:
        """Summarise the run's fault lifecycle (all-zero without faults).

        Returns
        -------
        Dict[str, float]
            ``outage_windows`` / ``degraded_windows`` — window counts;
            ``attainment_under_failure`` — mean windowed E2E attainment of
            degraded windows (outages included; 1.0 when never degraded);
            ``attainment_healthy`` — same over fault-free windows;
            ``post_recovery_attainment`` — mean attainment from the last
            recovery-triggered replan onwards (1.0 when none happened);
            ``num_failure_replans`` / ``num_recovery_replans`` — windows whose
            start installed a fault-triggered plan; ``mean_time_to_replan_s``
            — mean delay from a capacity loss taking effect to the next
            successful replan (0 when replanned at the same boundary);
            ``mean_mttr_s`` — mean time between a capacity-loss event and the
            recovery event that revived its GPUs; ``requests_<outcome>`` — the
            run-level request count per
            :class:`~repro.core.types.RequestOutcome` name, summed over the
            windowed ``outcome_counts``.
        """
        windows = self.windows
        degraded = [w.attainment_e2e for w in windows if w.degraded]
        healthy = [w.attainment_e2e for w in windows if not w.degraded]
        recovery_indices = [w.index for w in windows if w.replan_trigger == "recovery"]
        post = [
            w.attainment_e2e
            for w in windows
            if recovery_indices and w.index >= recovery_indices[-1]
        ]
        time_to_replan = [
            float(e["replanned_at"]) - float(e["applied_at"])  # type: ignore[arg-type]
            for e in self.fault_log
            if e.get("replan_ok") and "replanned_at" in e
        ]
        loss_kinds = {"gpu_preemption", "node_crash"}
        mttr: List[float] = []
        for i, entry in enumerate(self.fault_log):
            if entry["kind"] != "recovery":
                continue
            revived = set(entry["gpu_ids"])  # type: ignore[arg-type]
            for prior in reversed(self.fault_log[:i]):
                if prior["kind"] in loss_kinds and revived & set(prior["gpu_ids"]):  # type: ignore[arg-type]
                    mttr.append(float(entry["time"]) - float(prior["time"]))  # type: ignore[arg-type]
                    break

        def _mean(values: List[float], default: float) -> float:
            return float(np.mean(values)) if values else default

        outcome_totals = {name: 0 for name in OUTCOME_NAMES}
        for w in windows:
            for name, count in w.outcome_counts.items():
                outcome_totals[name] = outcome_totals.get(name, 0) + int(count)
        return {
            **{f"requests_{name}": float(n) for name, n in outcome_totals.items()},
            "outage_windows": float(sum(1 for w in windows if w.outage)),
            "degraded_windows": float(len(degraded)),
            "attainment_under_failure": _mean(degraded, 1.0),
            "attainment_healthy": _mean(healthy, 1.0),
            "post_recovery_attainment": _mean(post, 1.0),
            "num_failure_replans": float(
                sum(1 for w in windows if w.replan_trigger == "failure")
            ),
            "num_recovery_replans": float(
                sum(1 for w in windows if w.replan_trigger == "recovery")
            ),
            "mean_time_to_replan_s": _mean(time_to_replan, 0.0),
            "mean_mttr_s": _mean(mttr, 0.0),
        }

    def to_dicts(self) -> List[Dict[str, object]]:
        """Return the windowed telemetry stream as JSON-serialisable dicts."""
        return [w.to_dict() for w in self.windows]


@dataclass
class _FaultSync:
    """Outcome of syncing one window boundary's fault events into the system."""

    #: human-readable descriptions of the events applied at this boundary
    descriptions: Tuple[str, ...] = ()
    #: replan installed at this boundary ("" / "failure" / "recovery")
    trigger: str = ""
    #: True when no servable plan exists (outage, or every replan failed)
    unservable: bool = False
    #: True when any fault is currently active
    degraded: bool = False
    #: GPUs alive after applying the boundary's events
    num_alive: int = -1
    #: True when every GPU is removed (total capacity loss)
    outage: bool = False


def _merge_sync(carried: "_FaultSync", current: "_FaultSync") -> "_FaultSync":
    """Fold a fault sync carried over empty windows into the current one."""
    return _FaultSync(
        descriptions=carried.descriptions + current.descriptions,
        trigger=current.trigger or carried.trigger,
        unservable=current.unservable,
        degraded=current.degraded,
        num_alive=current.num_alive,
        outage=current.outage,
    )


class LiveServer:
    """Windowed adaptive serving loop over a :class:`ThunderServe` system.

    Parameters
    ----------
    system:
        A deployed serving system (``deploy()`` / ``adopt_plan()`` must have
        installed a plan before :meth:`run`).
    config:
        Loop configuration; defaults to :class:`LiveServeConfig`.
    on_window:
        Optional callback invoked with each :class:`WindowTelemetry` as it is
        measured (the streaming telemetry hook).
    on_breach:
        Optional callback invoked with each :class:`BreachEvent` as it fires.
    """

    def __init__(
        self,
        system: ThunderServe,
        config: Optional[LiveServeConfig] = None,
        on_window: Optional[Callable[[WindowTelemetry], None]] = None,
        on_breach: Optional[Callable[[BreachEvent], None]] = None,
    ) -> None:
        self.system = system
        self.config = config or LiveServeConfig()
        self.on_window = on_window
        self.on_breach = on_breach
        self.tracker = SLOBreachTracker()
        # Fault-injection loop state (reset at the start of every run).
        self._fault_state: Optional[ClusterFaultState] = None
        self._pending_faults: List = []
        self._fault_log: List[Dict[str, object]] = []
        self._awaiting_replan: List[Dict[str, object]] = []
        self._carry_sync: Optional[_FaultSync] = None
        self._last_window: Optional[Trace] = None
        self._replan_failures = 0
        self._replan_cooldown = 0
        self._unservable = False
        self._system_stale = False
        self._degraded_now = False

    # ------------------------------------------------------------------ estimation
    def _routing(self, plan: DeploymentPlan) -> RoutingPolicy:
        """Return the plan's routing policy (uniform when the plan has none)."""
        if plan.routing is not None:
            return plan.routing
        return RoutingPolicy.uniform(
            [g.group_id for g in plan.prefill_groups],
            [g.group_id for g in plan.decode_groups],
        )

    def plan_health(self, window: Trace) -> PlanHealth:
        """Estimate the installed plan's health for one window's observed mix.

        Builds an M/G/1 :class:`~repro.scheduling.estimator.SLOEstimator` for
        the window's empirical workload (means and arrival rate) and prices the
        plan's routing through it: per-prefill-replica utilisation follows the
        routed share of the observed rate, decode operating batches follow the
        routed token demand, and the routed attainment aggregates the pair
        matrix exactly like the lower-level solver does.

        Returns
        -------
        PlanHealth
            ``rho`` (hottest prefill replica), routed E2E ``attainment`` and
            the ``request_rate`` the figures were computed for.
        """
        system = self.system
        plan = system.require_plan()
        rate = window.request_rate or system.request_rate
        from repro.workload.spec import WorkloadStats

        stats = WorkloadStats(
            mean_input_length=window.mean_input_length,
            mean_output_length=window.mean_output_length,
            request_rate=rate,
            num_requests=len(window),
        )
        estimator = SLOEstimator(
            system.cluster,
            system.model,
            stats.as_spec(name="live-window"),
            system.slo,
            rate,
            kv_transport_bits=plan.kv_transport_bits,
            params=system.params,
            prefill_batch_requests=system.simulator_config.max_prefill_batch_requests,
        )
        routing = self._routing(plan)
        prefills = [
            estimator.replica_performance(plan.group(gid))
            for gid in routing.prefill_group_ids
        ]
        decodes = [
            estimator.replica_performance(plan.group(gid))
            for gid in routing.decode_group_ids
        ]
        x = routing.x
        z = routing.joint
        utilizations = [
            float(x[i]) * rate * p.prefill_service_s for i, p in enumerate(prefills)
        ]
        context = estimator.mean_input + estimator.mean_output
        batches = [
            q.decode_operating_batch(
                float(z[:, j].sum()) * rate * estimator.mean_output, context
            )
            for j, q in enumerate(decodes)
        ]
        d = estimator.attainment_matrix(
            prefills, decodes, prefill_utilizations=utilizations, decode_batches=batches
        )
        return PlanHealth(
            rho=max(utilizations) if utilizations else 0.0,
            attainment=float((z * d).sum()),
            request_rate=rate,
        )

    def _admit(self, window: Trace, health: PlanHealth) -> Tuple[Trace, int]:
        """Apply the admission front-end to one window.

        When the estimated utilisation exceeds ``admission_max_rho``, requests
        are shed with a deterministic deficit counter so the admitted fraction
        tracks ``admission_max_rho / rho`` exactly (no sampling noise), and the
        shed requests are recorded on the coordinator.  While an injected
        fault is active and ``degraded_admission_max_rho`` is configured, the
        tighter of the two ceilings applies (graceful degradation).  Returns
        the admitted sub-trace and the number of shed requests.
        """
        max_rho = self.config.admission_max_rho
        degraded_rho = self.config.degraded_admission_max_rho
        if self._degraded_now and degraded_rho is not None:
            max_rho = degraded_rho if max_rho is None else min(max_rho, degraded_rho)
        if max_rho is None or health.rho <= max_rho or health.rho <= 0:
            return window, 0
        keep_fraction = max_rho / health.rho
        admitted = []
        shed = 0
        acc = 0.0
        coordinator = self.system.coordinator
        for request in window:
            acc += keep_fraction
            if acc >= 1.0:
                acc -= 1.0
                admitted.append(request)
            else:
                shed += 1
                if coordinator is not None:
                    coordinator.record_shed(request)
        return Trace(requests=admitted, name=f"{window.name}-admitted"), shed

    # ------------------------------------------------------------------ telemetry
    def _measure(
        self,
        index: int,
        start: float,
        end: float,
        result: SimulationResult,
        health: PlanHealth,
        num_shed: int,
        served_plan_id: str,
    ) -> WindowTelemetry:
        """Build the telemetry record of one served window."""
        slo = self.system.slo
        finished = result.finished
        queue_waits = [m.queue_time for m in finished]
        per_tenant: Dict[str, float] = {}
        tenant_metrics: Dict[str, List] = {}
        for m in result.metrics:
            tag = m.request.workload or ""
            if tag.startswith("tenant:"):
                tenant_metrics.setdefault(tag.split(":", 1)[1], []).append(m)
        for tenant, metrics in sorted(tenant_metrics.items()):
            hits = sum(1 for m in metrics if slo.is_met(m, SLOType.E2E))
            per_tenant[tenant] = hits / len(metrics)
        outcome_counts = {k: int(v) for k, v in result.outcome_counts().items()}
        outcome_counts["shed"] = outcome_counts.get("shed", 0) + num_shed
        return WindowTelemetry(
            index=index,
            start=start,
            end=end,
            plan_id=served_plan_id,
            profile="",  # resolved by the caller against the SLO config
            num_requests=result.num_requests,
            num_shed=num_shed,
            num_finished=result.num_finished,
            request_rate=result.num_requests / (end - start) if end > start else 0.0,
            attainment_e2e=result.slo_attainment(slo, SLOType.E2E),
            attainment_ttft=result.slo_attainment(slo, SLOType.TTFT),
            attainment_tpot=result.slo_attainment(slo, SLOType.TPOT),
            mean_queue_wait=float(np.mean(queue_waits)) if queue_waits else 0.0,
            completion_rate=result.completion_rate,
            estimated_rho=health.rho,
            estimated_attainment=health.attainment,
            per_tenant_attainment=per_tenant,
            outcome_counts=outcome_counts,
        )

    # ------------------------------------------------------------------ loop
    def _serve_windows(
        self, trace: Trace, label: str
    ) -> Iterator[Tuple[WindowTelemetry, SimulationResult, DeploymentPlan]]:
        """Serve ``trace`` window by window, yielding telemetry as it is measured."""
        system = self.system
        config = self.config
        slo_config = config.slo_config or auto_slo_config()
        system.require_plan()
        self._fault_state = None
        self._pending_faults = []
        self._fault_log = []
        self._awaiting_replan = []
        self._carry_sync = None
        self._last_window = None
        self._replan_failures = 0
        self._replan_cooldown = 0
        self._unservable = False
        self._system_stale = False
        self._degraded_now = False
        if config.faults is not None and len(config.faults) > 0:
            # Times are checked per window; validate ids/counts up front.
            config.faults.validate(float("inf"), system.cluster)
            self._fault_state = ClusterFaultState(system.cluster)
            self._pending_faults = list(config.faults)
        if trace.is_empty:
            return
        start = trace[0].arrival_time
        end = trace[-1].arrival_time
        window_start = start
        index = 0
        while window_start <= end:
            w_start = window_start
            window_end = w_start + config.window_s
            window = trace.window(w_start, window_end)
            window_start = window_end
            sync = self._apply_due_faults(w_start, label)
            if sync is not None and self._carry_sync is not None:
                sync = _merge_sync(self._carry_sync, sync)
                self._carry_sync = None
            if window.is_empty:
                self._carry_sync = sync
                continue
            self._degraded_now = bool(sync is not None and sync.degraded)
            if sync is not None and sync.unservable:
                telemetry, result, served_plan = self._outage_window(
                    index, w_start, window_end, window, sync, label
                )
                if self.on_window is not None:
                    self.on_window(telemetry)
                yield telemetry, result, served_plan
                index += 1
                continue
            served_plan = system.require_plan()
            served_plan_id = plan_signature(served_plan)
            faults, fault_notes = self._intra_window_faults(w_start, window_end)
            if faults is not None:
                self._degraded_now = True
            health = self.plan_health(window)
            admitted, num_shed = self._admit(window, health)
            result = system.serve(
                admitted,
                label=f"{label}[{index}]",
                faults=faults,
                retry=config.retry_policy,
            )
            system.monitor.heartbeat_all(window_end)
            telemetry = self._measure(
                index, w_start, window_end, result, health,
                num_shed, served_plan_id,
            )
            if system.coordinator is not None:
                system.coordinator.record_outcomes(result.outcome_counts())
            if sync is not None:
                telemetry.faults = sync.descriptions + fault_notes
                telemetry.degraded = sync.degraded or faults is not None
                telemetry.num_gpus_alive = sync.num_alive
                telemetry.replan_trigger = sync.trigger
            profile, objectives = resolve_slo_objectives(slo_config, telemetry.snapshot())
            telemetry.profile = profile
            report = evaluate_slo_objectives(telemetry.snapshot(), objectives, profile=profile)
            events = self.tracker.update(
                report, time=window_end, window_index=index, context=label
            )
            telemetry.breaches = tuple(events)
            for event in events:
                if self.on_breach is not None:
                    self.on_breach(event)
            telemetry.plan_changed = self._adapt(events, admitted, label)
            self._last_window = admitted
            if self.on_window is not None:
                self.on_window(telemetry)
            yield telemetry, result, served_plan
            index += 1
        # Fold the final window's events so the fault log covers the whole run
        # (the loop exits before their boundary would otherwise come due).
        self._apply_due_faults(window_start, label)

    # ------------------------------------------------------------------ faults
    def _apply_due_faults(self, boundary: float, label: str) -> Optional[_FaultSync]:
        """Fold fault events due before the ``boundary`` into the serving system.

        ``boundary`` is the start of the window about to be served: events
        from already-served windows (whose capacity effect the engine already
        applied in-run) are folded through the :class:`ClusterFaultState`
        (idempotent against overlapping fail/recover sequences), the system's
        cluster, network and straggler view is re-synced, and capacity changes
        trigger the failure/recovery replan chain.  Events inside the upcoming
        window stay pending — :meth:`_intra_window_faults` compiles them for
        the engine.  Returns ``None`` when fault injection is off.
        """
        state = self._fault_state
        if state is None:
            return None
        system = self.system
        config = self.config
        descriptions: List[str] = []
        lost: set = set()
        gained: set = set()
        network_changed = False
        slowdown_changed = False
        while self._pending_faults and self._pending_faults[0].time < boundary:
            event = self._pending_faults.pop(0)
            delta = state.apply(event)
            descriptions.append(event.describe())
            lost.update(delta.removed)
            gained.update(delta.revived)
            network_changed = network_changed or delta.network_changed
            slowdown_changed = slowdown_changed or delta.slowdown_changed
            entry: Dict[str, object] = {
                "time": event.time,
                "kind": event.kind.value,
                "gpu_ids": list(event.gpu_ids),
                "applied_at": boundary,
                "replan_trigger": "",
                "replan_ok": False,
            }
            self._fault_log.append(entry)
            if event.kind in CAPACITY_LOSS_KINDS and delta.removed:
                self._awaiting_replan.append(entry)
        if state.outage:
            # Total loss: nothing to sync the system against; windows are
            # recorded as zero-attainment outages until capacity recovers.
            self._unservable = True
            self._system_stale = True
            return _FaultSync(
                descriptions=tuple(descriptions),
                unservable=True,
                degraded=True,
                num_alive=0,
                outage=True,
            )
        was_unservable = self._unservable
        if lost or gained or network_changed or self._system_stale:
            cluster = state.current_cluster()
            if cluster is not None:
                system.set_cluster(
                    cluster,
                    reason="fault injection: "
                    + ("; ".join(descriptions) or "re-sync after outage"),
                )
        if slowdown_changed or self._system_stale:
            system.apply_gpu_slowdowns(state.active_slowdowns(), reason="fault injection")
        self._system_stale = False
        trigger = ""
        if lost or was_unservable:
            modes = (
                config.failure_mode_order if config.reschedule_on_failure else ("none",)
            )
            reason = (
                f"fault injection ({'; '.join(descriptions)})"
                if descriptions
                else "fault injection (replan retry)"
            )
            if self._attempt_replan(modes, reason, validate_window=None):
                trigger = "failure"
        elif gained and config.reschedule_on_recovery:
            validate_window = self._last_window if config.validate_reschedule else None
            reason = f"capacity recovery ({'; '.join(descriptions)})"
            if self._attempt_replan((config.recovery_mode,), reason, validate_window):
                trigger = "recovery"
        plan = system.require_plan()
        alive = set(system.cluster.gpu_ids)
        self._unservable = not all(set(g.gpu_ids) <= alive for g in plan.groups)
        if trigger == "failure" and not self._unservable:
            for entry in self._awaiting_replan:
                entry["replan_trigger"] = trigger
                entry["replan_ok"] = True
                entry["replanned_at"] = boundary
            self._awaiting_replan = []
        return _FaultSync(
            descriptions=tuple(descriptions),
            trigger=trigger,
            unservable=self._unservable,
            degraded=state.degraded,
            num_alive=len(alive),
            outage=False,
        )

    def _intra_window_faults(
        self, start: float, end: float
    ) -> Tuple[Optional[FaultTimeline], Tuple[str, ...]]:
        """Compile the upcoming window's capacity events into an engine timeline.

        Peeks — without consuming — the pending fault events whose timestamps
        fall inside ``[start, end)`` and compiles the capacity subset
        (preemption, crash, recovery) against the installed plan into a
        :class:`~repro.faults.FaultTimeline` the engine applies mid-run,
        preempting and retrying in-flight work at the exact fault instant.
        The events stay pending: they fold into the cluster state — and drive
        replanning — at the next window boundary.  Recovery of capacity that
        was already dead when the window began compiles to nothing (the plan
        no longer contains those GPUs); it takes effect through the boundary
        replan instead.  Returns ``(None, ())`` when fault injection is off
        or nothing in the window touches the plan.
        """
        state = self._fault_state
        if state is None:
            return None, ()
        subset = [
            event
            for event in self._pending_faults
            if start <= event.time < end
            and (event.kind in CAPACITY_LOSS_KINDS or event.kind is FaultKind.RECOVERY)
        ]
        if not subset:
            return None, ()
        plan = self.system.require_plan()
        timeline = compile_fault_timeline(FaultSchedule.from_events(subset), plan)
        if not timeline:
            return None, ()
        notes = tuple(f"in-engine: {event.describe()}" for event in subset)
        return timeline, notes

    def _attempt_replan(
        self, modes: Tuple[str, ...], reason: str, validate_window: Optional[Trace]
    ) -> bool:
        """Try capacity-replan strategies in order, with bounded retry/backoff.

        Returns ``True`` when a new plan was installed.  A strategy that
        raises :class:`~repro.core.exceptions.SchedulingError` (or yields an
        unservable plan, :class:`~repro.core.exceptions.InvalidPlanError`)
        falls through to the next; when every strategy fails, the consecutive-failure
        counter advances and — after ``replan_max_retries`` failures — replan
        attempts are suppressed for ``replan_backoff_windows`` boundaries.
        """
        if self._replan_cooldown > 0:
            self._replan_cooldown -= 1
            return False
        system = self.system
        for mode in modes:
            try:
                installed = system.replan_capacity(
                    mode=mode, reason=reason, validate_on=validate_window
                )
            except (SchedulingError, InvalidPlanError):
                continue
            self._replan_failures = 0
            return installed is not None
        self._replan_failures += 1
        if self._replan_failures >= self.config.replan_max_retries:
            self._replan_cooldown = self.config.replan_backoff_windows
            self._replan_failures = 0
        return False

    def _outage_window(
        self,
        index: int,
        start: float,
        end: float,
        window: Trace,
        sync: _FaultSync,
        label: str,
    ) -> Tuple[WindowTelemetry, SimulationResult, DeploymentPlan]:
        """Record one window that arrived while no servable capacity existed.

        Every arrival is logged as an outage drop on the coordinator and
        becomes an unfinished :class:`~repro.core.types.RequestMetrics` with
        outcome ``dropped_outage`` (an SLO miss), so the window reports
        attainment 0 without aborting the run; SLO objectives still resolve
        and breach events still fire.
        """
        system = self.system
        slo_config = self.config.slo_config or auto_slo_config()
        coordinator = system.coordinator
        metrics = []
        for request in window:
            if coordinator is not None:
                coordinator.record_outage_drop(request)
            metrics.append(
                RequestMetrics(request=request, outcome=RequestOutcome.DROPPED_OUTAGE)
            )
        arrivals = [r.arrival_time for r in window]
        result = SimulationResult(
            metrics=metrics,
            makespan=end,
            trace_duration=(max(arrivals) - min(arrivals)) if len(arrivals) >= 2 else 0.0,
            label=f"{label}[{index}]",
        )
        rate = result.num_requests / (end - start) if end > start else 0.0
        health = PlanHealth(rho=0.0, attainment=0.0, request_rate=rate)
        telemetry = self._measure(index, start, end, result, health, 0, "")
        telemetry.outage = True
        telemetry.degraded = True
        telemetry.faults = sync.descriptions
        telemetry.num_gpus_alive = sync.num_alive
        profile, objectives = resolve_slo_objectives(slo_config, telemetry.snapshot())
        telemetry.profile = profile
        report = evaluate_slo_objectives(telemetry.snapshot(), objectives, profile=profile)
        events = self.tracker.update(report, time=end, window_index=index, context=label)
        telemetry.breaches = tuple(events)
        for event in events:
            if self.on_breach is not None:
                self.on_breach(event)
        return telemetry, result, system.require_plan()

    def _adapt(self, events: List[BreachEvent], window: Trace, label: str) -> bool:
        """Run the online rescheduling policy after one window; return whether the plan changed."""
        system = self.system
        config = self.config
        validate_on = window if config.validate_reschedule else None
        if events and config.reschedule_on_breach:
            names = ",".join(e.objective for e in events)
            return system.reschedule_online(
                reason=f"slo breach ({names}) during {label}", validate_on=validate_on
            )
        if config.reschedule_on_shift:
            shift = system.profiler.detect_shift()
            if shift is not None:
                return system.reschedule_online(
                    stats=shift.current,
                    reason=f"lightweight rescheduling ({shift.describe()})",
                    validate_on=validate_on,
                )
        return False

    def run(self, trace: Trace, label: str = "live") -> LiveServeReport:
        """Serve a whole trace adaptively and return the run report.

        Parameters
        ----------
        trace:
            The request trace to replay on the time-warped serving clock.
        label:
            Run label stamped onto window results and breach events.

        Returns
        -------
        LiveServeReport
            Windowed telemetry, per-window simulation results, the plan each
            window was served with, and every breach event fired.
        """
        windows: List[WindowTelemetry] = []
        results: List[SimulationResult] = []
        plans: List[DeploymentPlan] = []
        breaches: List[BreachEvent] = []
        for telemetry, result, plan in self._serve_windows(trace, label):
            windows.append(telemetry)
            results.append(result)
            plans.append(plan)
            breaches.extend(telemetry.breaches)
        return LiveServeReport(
            windows=windows,
            results=results,
            served_plans=plans,
            breaches=breaches,
            label=label,
            fault_log=list(self._fault_log),
        )

    async def stream(self, trace: Trace, label: str = "live", time_warp: float = 0.0):
        """Serve a trace as an async generator of :class:`WindowTelemetry`.

        Parameters
        ----------
        trace:
            The request trace to replay.
        label:
            Run label stamped onto window results and breach events.
        time_warp:
            Real seconds to sleep per simulated window second.  ``0`` (default)
            only yields control to the event loop between windows; ``1.0``
            paces the replay in real time.

        Yields
        ------
        WindowTelemetry
            One record per served window, as soon as it is measured.
        """
        import asyncio

        for telemetry, _result, _plan in self._serve_windows(trace, label):
            yield telemetry
            await asyncio.sleep(self.config.window_s * time_warp)


__all__ = [
    "LiveServer",
    "LiveServeConfig",
    "LiveServeReport",
    "WindowTelemetry",
    "PlanHealth",
    "plan_signature",
]

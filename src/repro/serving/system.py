"""The ThunderServe system facade.

:class:`ThunderServe` wires the components of §4 together into the paper's overall
routine:

1. ``deploy()`` runs the scheduling algorithm and instantiates the model replicas
   (in this reproduction, the replica cost models and the discrete-event simulator
   take the place of real GPU processes);
2. ``serve()`` replays a request trace against the current deployment plan;
3. the workload profiler continuously monitors the observed request mix;
4. on a detected workload shift or a GPU failure, the lightweight rescheduler
   adjusts phase designations and the orchestration without reloading parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import SchedulingError
from repro.core.types import SLOSpec, SLOType
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.costmodel.reference import ReferenceLatency, a100_reference_latency
from repro.faults.retry import RetryPolicy
from repro.faults.timeline import FaultTimeline
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.rescheduling import LightweightRescheduler, ReschedulingOverheadModel
from repro.scheduling.robust import RobustObjective, RobustScheduleResult
from repro.scheduling.scheduler import ScheduleResult, Scheduler, SchedulerConfig
from repro.serving.coordinator import RequestCoordinator
from repro.serving.monitor import GPUFailure, GPURecovery, HeartbeatMonitor
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.simulation.metrics import SimulationResult
from repro.workload.profiler import WorkloadProfiler
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.scenarios.base import Scenario


@dataclass(frozen=True)
class ServeEvent:
    """A notable runtime event (rescheduling, failure handling) during serving."""

    time: float
    kind: str
    detail: str


class ThunderServe:
    """End-to-end ThunderServe system over a (simulated) heterogeneous cluster.

    Parameters
    ----------
    cluster:
        The GPU cluster to deploy on.
    model:
        Model to serve.
    workload:
        Expected workload (used for the initial deployment plan).
    request_rate:
        Planned average request rate (requests/s).
    slo:
        Absolute SLO deadlines; defaults to 5x the A100 reference latency.
    scheduler_config:
        Scheduling hyper-parameters (tabu search budget, KV transport bits, ...).
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelConfig,
        workload: WorkloadSpec,
        request_rate: float,
        slo: Optional[SLOSpec] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        simulator_config: Optional[SimulatorConfig] = None,
        params: CostModelParams = DEFAULT_PARAMS,
    ) -> None:
        if request_rate <= 0:
            raise ValueError("request_rate must be positive")
        self.cluster = cluster
        self.model = model
        self.workload = workload
        self.request_rate = request_rate
        self.params = params
        self.scheduler = Scheduler(scheduler_config or SchedulerConfig())
        self.simulator_config = simulator_config or SimulatorConfig()
        self.reference: ReferenceLatency = a100_reference_latency(model, workload, params=params)
        self.slo = slo or self.reference.slo_spec(5.0)
        self.rescheduler = LightweightRescheduler(
            kv_transport_bits=self.scheduler.config.kv_transport_bits, params=params
        )
        self.overhead_model = ReschedulingOverheadModel()
        self.profiler = WorkloadProfiler()
        self.monitor = HeartbeatMonitor(cluster.gpu_ids)
        self.plan: Optional[DeploymentPlan] = None
        self.coordinator: Optional[RequestCoordinator] = None
        self.schedule_result: Optional[ScheduleResult] = None
        self.robust_result: Optional[RobustScheduleResult] = None
        self.events: List[ServeEvent] = []
        #: simulator reused across serve() calls; rebuilt when the plan changes
        self._simulator: Optional[ServingSimulator] = None

    # ------------------------------------------------------------------ deployment
    def deploy(self, seed: Optional[int] = None) -> DeploymentPlan:
        """Run the scheduling algorithm and install the resulting deployment plan."""
        result = self.scheduler.schedule(
            self.cluster, self.model, self.workload, self.request_rate, self.slo, seed=seed
        )
        self.schedule_result = result
        self.robust_result = None  # a single-workload deployment supersedes it
        self._install_plan(result.plan, reason="initial deployment")
        self.profiler.set_reference_from_spec(self.workload, self.request_rate)
        return result.plan

    def deploy_robust(
        self,
        scenarios: Sequence["Scenario"],
        robust: Optional[RobustObjective] = None,
        seed: Optional[int] = None,
    ) -> DeploymentPlan:
        """Schedule against a scenario set and install the winning robust plan.

        Runs :meth:`Scheduler.schedule_robust` (worst-case aggregate unless
        ``robust`` says otherwise) and adopts the plan tuned for the binding
        scenario; the full per-scenario breakdown stays available as
        ``self.robust_result``.
        """
        result = self.scheduler.schedule_robust(
            self.cluster, self.model, scenarios, robust=robust, seed=seed
        )
        self.robust_result = result
        self.schedule_result = None  # a robust deployment supersedes it
        self._install_plan(
            result.plan,
            reason=(
                f"robust deployment over {len(result.per_scenario)} scenarios "
                f"(binding scenario: {result.worst_scenario})"
            ),
        )
        self.profiler.set_reference_from_spec(self.workload, self.request_rate)
        return result.plan

    def adopt_plan(self, plan: DeploymentPlan, reason: str = "adopted external plan") -> DeploymentPlan:
        """Install an externally built deployment plan without running the scheduler.

        The scenario sweep schedules once and replays the same plan across many
        scenarios, each on its own :class:`ThunderServe` instance; this is the
        public entry point for installing that shared plan.
        """
        self._install_plan(plan, reason=reason)
        self.profiler.set_reference_from_spec(self.workload, self.request_rate)
        return plan

    def _install_plan(self, plan: DeploymentPlan, reason: str) -> None:
        self.plan = plan
        self.coordinator = RequestCoordinator(plan)
        self._simulator = None
        self.events.append(ServeEvent(time=time.time(), kind="plan_installed", detail=reason))

    def require_plan(self) -> DeploymentPlan:
        """Return the installed plan, raising if ``deploy`` has not run yet."""
        if self.plan is None:
            raise SchedulingError("no deployment plan installed; call deploy() first")
        return self.plan

    # ------------------------------------------------------------------ serving
    def serve(
        self,
        trace: Trace,
        label: str = "thunderserve",
        faults: Optional[FaultTimeline] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> SimulationResult:
        """Serve a request trace with the current deployment plan.

        The :class:`ServingSimulator` is cached between calls (``run`` resets all
        simulator state, including the routing RNG, so reuse is exact): windowed
        serving — adaptive rescheduling, failure scenarios — skips rebuilding the
        replica cost models and keeps their memoized decode-step grids warm.

        ``faults`` / ``retry`` are forwarded to
        :meth:`~repro.simulation.engine.ServingSimulator.run`: a compiled
        :class:`~repro.faults.timeline.FaultTimeline` is applied *inside* the
        run (replica deaths dispose in-flight requests under the
        :class:`~repro.faults.retry.RetryPolicy`) instead of the trace being
        sliced into windows around each fault.
        """
        plan = self.require_plan()
        if self._simulator is None:
            self._simulator = ServingSimulator(
                self.cluster, plan, self.model, params=self.params, config=self.simulator_config
            )
        self.profiler.observe_many(trace)
        return self._simulator.run(trace, label=label, faults=faults, retry=retry)

    def serve_adaptive(
        self,
        trace: Trace,
        window_s: float = 60.0,
        label: str = "thunderserve-adaptive",
    ) -> List[SimulationResult]:
        """Serve a trace in windows, lightweight-rescheduling when the workload shifts.

        Each window is served with the plan current at its start; between windows
        the workload profiler checks for a shift and, if one is detected, the
        lightweight rescheduler re-designates phases and re-orchestrates using the
        *observed* workload statistics.  Returns the per-window simulation results.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        plan = self.require_plan()
        results: List[SimulationResult] = []
        if trace.is_empty:
            return results
        start = trace[0].arrival_time
        end = trace[-1].arrival_time
        window_start = start
        while window_start <= end:
            window = trace.window(window_start, window_start + window_s)
            if not window.is_empty:
                results.append(self.serve(window, label=f"{label}[{window_start:.0f}s]"))
                shift = self.profiler.detect_shift()
                if shift is not None:
                    self._reschedule_for_workload(shift)
            window_start += window_s
        return results

    def _reschedule_for_workload(self, shift) -> None:
        self.reschedule_online(
            stats=shift.current, reason=f"lightweight rescheduling ({shift.describe()})"
        )

    def reschedule_online(
        self,
        stats=None,
        reason: str = "online rescheduling",
        validate_on: Optional[Trace] = None,
    ) -> bool:
        """Run the §3.4 lightweight rescheduler against *observed* statistics.

        This is the online entry point the live serving loop calls on an SLO
        breach (and the path ``serve_adaptive`` takes on a detected workload
        shift).  The profiler's current window statistics are used unless
        ``stats`` is given explicitly; the resulting plan is installed and the
        profiler's reference is re-pinned to the statistics the new plan was
        built for.

        The replanning rate is floored at the provisioned ``request_rate``:
        observing a quiet window (a diurnal trough, a lull between bursts) must
        not shrink the plan's capacity below what the deployment was sized for,
        or the next peak lands on a plan tuned for the lull.  Observed rates
        *above* the provisioned rate are taken at face value — that is the
        upward shift the rescheduler exists for.

        Parameters
        ----------
        stats:
            :class:`~repro.workload.spec.WorkloadStats` to replan for; defaults
            to ``self.profiler.current_stats()``.
        reason:
            Human-readable reason recorded on the ``plan_installed`` event.
        validate_on:
            Optional trace (typically the window just served) used as a shadow
            canary: the candidate plan is only adopted when its simulated SLO
            attainment on this trace strictly beats the incumbent plan's.  The
            estimator that guides the flip-only search can mis-rank plans near
            saturation; the shadow replay keeps a mis-ranked candidate from
            ever being installed.  ``None`` (default) trusts the estimator.

        Returns
        -------
        bool
            ``True`` when a new plan was installed, ``False`` when the profiler
            window was empty or the candidate failed shadow validation.
        """
        if stats is None:
            stats = self.profiler.current_stats()
        if stats.num_requests == 0 and stats.request_rate == 0:
            return False
        if 0 < stats.request_rate < self.request_rate:
            stats = replace(stats, request_rate=self.request_rate)
        result = self.rescheduler.reschedule_from_stats(
            self.require_plan(),
            self.cluster,
            self.model,
            stats,
            fallback_rate=self.request_rate,
            slo=self.slo,
            template=self.workload,
        )
        if validate_on is not None and not validate_on.is_empty:
            incumbent = self._shadow_attainment(self.require_plan(), validate_on)
            candidate = self._shadow_attainment(result.plan, validate_on)
            if candidate <= incumbent:
                return False
        self._install_plan(result.plan, reason=reason)
        self.profiler.set_reference(stats)
        return True

    def _shadow_attainment(self, plan: DeploymentPlan, trace: Trace) -> float:
        """Simulated E2E attainment of ``plan`` on ``trace`` (no state touched)."""
        simulator = ServingSimulator(
            self.cluster, plan, self.model, params=self.params, config=self.simulator_config
        )
        return simulator.run(trace, label="shadow").slo_attainment(self.slo)

    def serve_live(self, trace: Trace, config=None, label: str = "live"):
        """Serve a trace through the adaptive live loop with SLO observability.

        Convenience facade over :class:`~repro.serving.live.LiveServer`: the
        trace is replayed in bounded windows on a time-warped serving clock,
        each window streams a telemetry record (attainment, queue wait,
        estimated rho, plan id), SLO objectives are evaluated per window, and
        breaches / workload shifts trigger :meth:`reschedule_online`.

        Parameters
        ----------
        trace:
            The request trace to replay.
        config:
            Optional :class:`~repro.serving.live.LiveServeConfig`.
        label:
            Run label stamped onto window results and breach events.

        Returns
        -------
        repro.serving.live.LiveServeReport
            Windowed telemetry, per-window results and breach events.
        """
        from repro.serving.live import LiveServer  # local import: live.py imports this module

        return LiveServer(self, config=config).run(trace, label=label)

    @property
    def num_plan_changes(self) -> int:
        """Number of plan installations *after* the initial one (re-schedulings)."""
        installs = sum(1 for e in self.events if e.kind == "plan_installed")
        return max(0, installs - 1)

    # ------------------------------------------------------------- capacity changes
    RESCHEDULE_MODES = ("lightweight", "full", "none")

    def set_cluster(self, cluster: Cluster, reason: str = "cluster changed") -> None:
        """Swap the serving cluster (capacity change, network degradation).

        Invalidates the cached simulator so the next ``serve()`` — and every
        shadow validation — prices KV transfers and replica latencies against
        the new cluster's matrices, and rebuilds the heartbeat monitor over
        the new GPU set.  The installed plan is left untouched: callers that
        changed capacity must follow up with :meth:`replan_capacity` (or one
        of the ``handle_gpu_*`` wrappers, which do both).
        """
        self.cluster = cluster
        self.monitor = HeartbeatMonitor(cluster.gpu_ids)
        self._simulator = None
        self.events.append(ServeEvent(time=time.time(), kind="cluster_changed", detail=reason))

    def apply_gpu_slowdowns(
        self, slowdowns: Mapping[int, float], reason: str = "straggler update"
    ) -> bool:
        """Install per-GPU straggler slowdowns on the serving engine.

        ``slowdowns`` maps GPU id to a latency multiplier; entries of exactly
        ``1.0`` are dropped.  Serving groups containing a slowed GPU price
        every latency through the largest multiplier among their GPUs (see
        :meth:`~repro.simulation.engine.SimulatorConfig.group_slowdown`).
        Returns ``True`` when the effective configuration changed.
        """
        items = tuple(sorted(
            (int(g), float(s)) for g, s in slowdowns.items() if float(s) != 1.0
        ))
        if items == self.simulator_config.gpu_slowdowns:
            return False
        self.simulator_config = replace(self.simulator_config, gpu_slowdowns=items)
        self._simulator = None
        self.events.append(
            ServeEvent(time=time.time(), kind="slowdowns_changed", detail=f"{reason}: {items}")
        )
        return True

    def replan_capacity(
        self,
        mode: str = "lightweight",
        reason: str = "capacity change",
        validate_on: Optional[Trace] = None,
    ) -> Optional[DeploymentPlan]:
        """Re-plan the deployment for the *current* cluster after a capacity change.

        ``mode`` selects the Figure 11 strategies: ``"lightweight"`` (§3.4
        flip-only rescheduling, no parameter reload), ``"full"`` (re-run the
        whole scheduler) or ``"none"`` (drop serving groups that reference
        unavailable GPUs and keep the rest).  Raises
        :class:`~repro.core.exceptions.SchedulingError` when the selected
        strategy cannot produce a servable plan.

        ``validate_on`` shadow-validates the candidate with the same replay
        guard as :meth:`reschedule_online`, replaying the trace under both
        plans.  The comparison only runs when the incumbent is still servable
        on the current cluster (capacity *recovery*; after a loss there is
        nothing meaningful to replay the incumbent against) and, unlike the
        breach path, is non-strict: re-expanding onto recovered capacity must
        not be vetoed by a tie on a quiet window.  A candidate that replays
        strictly worse is rejected — ``None`` is returned and the incumbent
        plan stays installed.
        """
        if mode not in self.RESCHEDULE_MODES:
            raise ValueError(f"mode must be one of {self.RESCHEDULE_MODES}, got {mode!r}")
        plan = self.require_plan()
        if mode == "full":
            result = self.scheduler.schedule(
                self.cluster, self.model, self.workload, self.request_rate, self.slo
            )
            new_plan = result.plan
        elif mode == "lightweight":
            result = self.rescheduler.reschedule(
                plan, self.cluster, self.model, self.workload, self.request_rate, self.slo
            )
            new_plan = result.plan
        else:
            available = set(self.cluster.gpu_ids)
            surviving = [g for g in plan.groups if set(g.gpu_ids) <= available]
            if not surviving:
                raise SchedulingError(
                    "every serving group lost a GPU; cannot continue without rescheduling"
                )
            if len({g.phase for g in surviving}) < 2:
                raise SchedulingError(
                    "surviving groups cover only one phase; cannot continue without rescheduling"
                )
            new_plan = DeploymentPlan(
                groups=tuple(surviving),
                routing=None,
                model_name=plan.model_name,
                kv_transport_bits=plan.kv_transport_bits,
            )
        if validate_on is not None and not validate_on.is_empty:
            available = set(self.cluster.gpu_ids)
            if all(set(g.gpu_ids) <= available for g in plan.groups):
                incumbent = self._shadow_attainment(plan, validate_on)
                candidate = self._shadow_attainment(new_plan, validate_on)
                if candidate < incumbent:
                    return None
        self._install_plan(new_plan, reason=f"{reason}, mode={mode}")
        return new_plan

    def handle_gpu_failure(
        self, failed_gpu_ids: Sequence[int], mode: str = "lightweight"
    ) -> DeploymentPlan:
        """React to GPU failures: remove the GPUs, then re-plan.

        ``mode`` selects the Figure 11 strategies: ``"lightweight"`` (flip-only
        rescheduling, no reload), ``"full"`` (re-run the whole scheduler on the
        surviving GPUs) or ``"none"`` (just drop the affected groups).
        """
        if mode not in self.RESCHEDULE_MODES:
            raise ValueError(f"mode must be one of {self.RESCHEDULE_MODES}, got {mode!r}")
        failed = sorted(set(failed_gpu_ids))
        self.set_cluster(
            self.cluster.without_gpus(failed), reason=f"gpu failure ({failed})"
        )
        return self.replan_capacity(mode=mode, reason=f"gpu failure ({failed})")

    def handle_gpu_recovery(
        self, recovered_gpu_ids: Sequence[int], mode: str = "full"
    ) -> DeploymentPlan:
        """React to capacity recovery: revive removed GPUs, then re-plan.

        The inverse of :meth:`handle_gpu_failure` — previously removed GPUs
        rejoin by global id (:meth:`~repro.hardware.cluster.Cluster.with_gpus`)
        and the deployment re-expands onto them.  The default mode is
        ``"full"``: the §3.4 flip-only rescheduler can re-designate phases of
        *existing* groups but cannot place new groups on revived GPUs, so
        recovering capacity without a full scheduler run would leave the
        rejoined GPUs idle.
        """
        if mode not in self.RESCHEDULE_MODES:
            raise ValueError(f"mode must be one of {self.RESCHEDULE_MODES}, got {mode!r}")
        recovered = sorted(set(recovered_gpu_ids))
        self.set_cluster(
            self.cluster.with_gpus(recovered), reason=f"gpu recovery ({recovered})"
        )
        return self.replan_capacity(mode=mode, reason=f"gpu recovery ({recovered})")

    def process_heartbeats(
        self,
        now: float,
        failure_mode: str = "lightweight",
        recovery_mode: str = "full",
    ) -> Tuple[Optional[GPUFailure], Optional[GPURecovery]]:
        """Poll the heartbeat monitor and fold detected transitions into the system.

        Drains both detection paths of the monitor — recoveries
        (:meth:`~repro.serving.monitor.HeartbeatMonitor.check_recovered`,
        fed by heartbeats resuming on a failed GPU) before new failures
        (:meth:`~repro.serving.monitor.HeartbeatMonitor.check`) — and reacts
        through :meth:`handle_gpu_recovery` / :meth:`handle_gpu_failure`.
        After a failure is handled, the removed GPUs stay on the rebuilt
        monitor's watch list as failed
        (:meth:`~repro.serving.monitor.HeartbeatMonitor.mark_failed`), so a
        comeback heartbeat surfaces as an explicit recovery on a later call —
        fail → recover → fail cycles round-trip without external bookkeeping.
        Replan failures (:class:`~repro.core.exceptions.SchedulingError`)
        propagate to the caller.

        Returns
        -------
        Tuple[Optional[GPUFailure], Optional[GPURecovery]]
            The failure and recovery events detected at ``now`` (either may
            be ``None``).
        """
        recovery = self.monitor.check_recovered(now)
        failure = self.monitor.check(now)
        if recovery is not None:
            revived = sorted(set(recovery.gpu_ids) - set(self.cluster.gpu_ids))
            if revived:
                self.handle_gpu_recovery(revived, mode=recovery_mode)
                self.monitor.heartbeat_all(now)
        if failure is not None:
            dead = sorted(failure.gpu_ids)
            self.handle_gpu_failure(dead, mode=failure_mode)
            self.monitor.heartbeat_all(now)
            self.monitor.mark_failed(dead, now)
        return failure, recovery

    # ------------------------------------------------------------------ reporting
    def attainment_curve(
        self,
        result: SimulationResult,
        slo_scales: Sequence[float],
        slo_type: SLOType = SLOType.E2E,
    ) -> List[float]:
        """SLO attainment of a serve() result swept over SLO scales."""
        return result.attainment_curve(slo_scales, self.reference, slo_type)


__all__ = ["ThunderServe", "ServeEvent"]

"""Declarative SLO objectives, serving profiles and breach events.

The live serving loop (:mod:`repro.serving.live`) measures a telemetry
*snapshot* per serving window — attainment, queue wait, estimated utilisation —
and checks it against a declarative *SLO-objective config*.  The config either
lists one flat set of objectives or, in profile form, maps *profiles* (e.g.
``"realtime"`` / ``"degraded"``) to objective lists plus an ``auto`` block
telling :func:`infer_slo_profile` how to pick the profile from the live
snapshot.  Objectives that fail produce :class:`BreachEvent` records, which the
live loop feeds to the §3.4 lightweight rescheduler.

Config schema (the profile form)::

    {
        "auto": {
            "realtime_attainment_min": 0.75,   # snapshot attainment at or above
                                               # which the realtime profile applies
            "overload_rho": 0.95,              # estimated utilisation beyond which
                                               # the service is considered degraded
            "default_profile": "degraded",     # deterministic fallback profile
        },
        "profiles": {
            "realtime": [
                {"name": "availability", "metric": "attainment_e2e", "op": ">=", "target": 0.9},
                {"name": "headroom", "metric": "estimated_rho", "op": "<=", "target": 0.95},
            ],
            "degraded": [
                {"name": "availability", "metric": "attainment_e2e", "op": ">=", "target": 0.5},
            ],
        },
    }

The flat form is simply ``{"objectives": [...]}`` and always evaluates under
the ``"default"`` profile.  :func:`auto_slo_config` builds a ready-to-use
profile-form config from two attainment floors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Comparison operators an objective may use.
SLO_OPS: Tuple[str, ...] = (">=", "<=")

#: Profile name used when a config has no profiles (flat ``objectives`` form).
DEFAULT_PROFILE = "default"


@dataclass(frozen=True)
class SLOObjective:
    """One declarative SLO objective: a named threshold on a snapshot metric.

    Parameters
    ----------
    name:
        Stable identifier of the objective (breach events key on it).
    metric:
        Snapshot key the objective reads (e.g. ``"attainment_e2e"``).
    op:
        Comparison direction, ``">="`` or ``"<="``.
    target:
        Threshold the metric is compared against.

    Raises
    ------
    ValueError
        If ``name`` or ``metric`` is empty, or ``op`` is not a known operator.
    """

    name: str
    metric: str
    op: str
    target: float

    def __post_init__(self) -> None:
        if not self.name or not self.metric:
            raise ValueError("objective name and metric must be non-empty")
        if self.op not in SLO_OPS:
            raise ValueError(f"op must be one of {SLO_OPS}, got {self.op!r}")

    def is_met(self, value: Optional[float]) -> bool:
        """Return whether ``value`` satisfies the objective.

        A missing (``None``) or NaN value never satisfies an objective: an
        unobservable metric is treated as a breach, not silently skipped.
        """
        if value is None or math.isnan(value):
            return False
        return value >= self.target if self.op == ">=" else value <= self.target

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable dict form of the objective."""
        return {"name": self.name, "metric": self.metric, "op": self.op, "target": self.target}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SLOObjective":
        """Build an objective from its dict form (the config-file syntax)."""
        return cls(
            name=str(data["name"]),
            metric=str(data["metric"]),
            op=str(data["op"]),
            target=float(data["target"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ObjectiveOutcome:
    """Evaluation of one objective against one snapshot."""

    objective: SLOObjective
    #: the snapshot value the objective read (``None`` when the metric was absent)
    value: Optional[float]
    #: whether the objective was satisfied
    passed: bool


@dataclass(frozen=True)
class SLOReport:
    """Outcome of evaluating a profile's objectives against one snapshot."""

    profile: str
    outcomes: Tuple[ObjectiveOutcome, ...]

    @property
    def passed(self) -> bool:
        """Whether every objective passed."""
        return all(o.passed for o in self.outcomes)

    @property
    def failed(self) -> List[str]:
        """Names of the objectives that failed, in config order."""
        return [o.objective.name for o in self.outcomes if not o.passed]

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable dict form of the report."""
        return {
            "profile": self.profile,
            "passed": self.passed,
            "failed": list(self.failed),
            "outcomes": [
                {**o.objective.to_dict(), "value": o.value, "objective_passed": o.passed}
                for o in self.outcomes
            ],
        }


@dataclass(frozen=True)
class BreachEvent:
    """One SLO-objective crossing from passing to failing.

    Emitted by :class:`~repro.serving.monitor.SLOBreachTracker` exactly once
    per crossing: a persistently failing objective does not re-fire until it
    has recovered (passed) and failed again.
    """

    #: serving-clock time the breach was observed (window end)
    time: float
    #: index of the serving window whose snapshot breached
    window_index: int
    #: profile active when the breach fired
    profile: str
    #: name of the breached objective
    objective: str
    #: snapshot metric the objective reads
    metric: str
    #: comparison direction of the objective
    op: str
    #: objective threshold
    target: float
    #: observed value (``None`` when the metric was absent from the snapshot)
    value: Optional[float]
    #: free-form label of the serving context (scenario name, trace label, ...)
    context: str = ""

    def describe(self) -> str:
        """Return a human-readable one-line summary of the breach."""
        observed = "n/a" if self.value is None else f"{self.value:.4g}"
        return (
            f"SLO breach [{self.profile}] {self.objective}: "
            f"{self.metric}={observed} violates {self.op} {self.target:g} "
            f"(window {self.window_index}, t={self.time:.1f}s)"
        )

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON-serialisable dict form of the event."""
        return {
            "time": self.time,
            "window_index": self.window_index,
            "profile": self.profile,
            "objective": self.objective,
            "metric": self.metric,
            "op": self.op,
            "target": self.target,
            "value": self.value,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BreachEvent":
        """Rebuild an event from its dict form (inverse of :meth:`to_dict`)."""
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            window_index=int(data["window_index"]),  # type: ignore[arg-type]
            profile=str(data["profile"]),
            objective=str(data["objective"]),
            metric=str(data["metric"]),
            op=str(data["op"]),
            target=float(data["target"]),  # type: ignore[arg-type]
            value=None if data.get("value") is None else float(data["value"]),  # type: ignore[arg-type]
            context=str(data.get("context", "")),
        )


def _as_objectives(items: Sequence[object]) -> List[SLOObjective]:
    """Normalise a config objective list to :class:`SLOObjective` instances."""
    objectives: List[SLOObjective] = []
    for item in items:
        if isinstance(item, SLOObjective):
            objectives.append(item)
        else:
            objectives.append(SLOObjective.from_dict(item))  # type: ignore[arg-type]
    names = [o.name for o in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"objective names must be unique within a profile, got {names}")
    return objectives


def evaluate_slo_objectives(
    snapshot: Mapping[str, float],
    objectives: Sequence[object],
    profile: str = DEFAULT_PROFILE,
) -> SLOReport:
    """Evaluate objectives against a telemetry snapshot.

    Parameters
    ----------
    snapshot:
        Metric name → value mapping (a :meth:`WindowTelemetry.snapshot
        <repro.serving.live.WindowTelemetry.snapshot>` or any dict).
    objectives:
        Objective list — :class:`SLOObjective` instances or their dict form.
    profile:
        Profile label recorded on the report (and on any breach events derived
        from it).

    Returns
    -------
    SLOReport
        Per-objective outcomes in config order; a metric absent from the
        snapshot fails its objective.
    """
    outcomes = []
    for objective in _as_objectives(objectives):
        raw = snapshot.get(objective.metric)
        value = None if raw is None else float(raw)
        outcomes.append(
            ObjectiveOutcome(objective=objective, value=value, passed=objective.is_met(value))
        )
    return SLOReport(profile=profile, outcomes=tuple(outcomes))


def infer_slo_profile(
    snapshot: Mapping[str, float],
    realtime_attainment_min: float = 0.75,
    overload_rho: float = 0.95,
    default_profile: str = "degraded",
) -> str:
    """Infer the serving profile a snapshot should be judged under.

    The service is ``"realtime"`` while E2E attainment stays at or above
    ``realtime_attainment_min`` and the estimated prefill utilisation stays
    below ``overload_rho``; otherwise it is judged under ``default_profile``
    (the degraded tier).  A snapshot missing ``attainment_e2e`` resolves to
    ``default_profile`` — inference is deterministic on partial telemetry.
    """
    attainment = snapshot.get("attainment_e2e")
    if attainment is None or math.isnan(float(attainment)):
        return default_profile
    rho = snapshot.get("estimated_rho", 0.0)
    rho = 0.0 if rho is None or math.isnan(float(rho)) else float(rho)
    if float(attainment) >= realtime_attainment_min and rho < overload_rho:
        return "realtime"
    return default_profile


def resolve_slo_objectives(
    config: Mapping[str, object],
    snapshot: Mapping[str, float],
) -> Tuple[str, List[SLOObjective]]:
    """Resolve which profile and objective list apply to a snapshot.

    Parameters
    ----------
    config:
        An SLO-objective config in flat form (``{"objectives": [...]}``) or
        profile form (``{"auto": {...}, "profiles": {...}}`` — see the module
        docstring for the schema).
    snapshot:
        The telemetry snapshot used by profile auto-inference.

    Returns
    -------
    tuple
        ``(profile_name, objectives)``.  The flat form always resolves to
        ``("default", ...)``; the profile form resolves via
        :func:`infer_slo_profile` and falls back deterministically to the
        ``auto.default_profile`` entry when the inferred profile is not
        configured.

    Raises
    ------
    ValueError
        If the config has neither ``objectives`` nor ``profiles``, or the
        fallback profile is missing from ``profiles``.
    """
    if "objectives" in config:
        return DEFAULT_PROFILE, _as_objectives(config["objectives"])  # type: ignore[arg-type]
    profiles = config.get("profiles")
    if not isinstance(profiles, Mapping) or not profiles:
        raise ValueError("SLO config must define 'objectives' or a non-empty 'profiles' mapping")
    auto = config.get("auto") or {}
    if not isinstance(auto, Mapping):
        raise ValueError("'auto' must be a mapping when present")
    default_profile = str(auto.get("default_profile", "degraded"))
    profile = infer_slo_profile(
        snapshot,
        realtime_attainment_min=float(auto.get("realtime_attainment_min", 0.75)),  # type: ignore[arg-type]
        overload_rho=float(auto.get("overload_rho", 0.95)),  # type: ignore[arg-type]
        default_profile=default_profile,
    )
    if profile not in profiles:
        profile = default_profile
    if profile not in profiles:
        raise ValueError(
            f"fallback profile {profile!r} is not configured; profiles: {sorted(profiles)}"
        )
    return profile, _as_objectives(profiles[profile])  # type: ignore[arg-type]


def auto_slo_config(
    realtime_attainment: float = 0.9,
    degraded_attainment: float = 0.5,
    overload_rho: float = 0.95,
    realtime_inference_min: float = 0.75,
) -> Dict[str, object]:
    """Build a profile-form SLO config from two attainment floors.

    The realtime profile demands ``attainment_e2e >= realtime_attainment`` and
    utilisation headroom (``estimated_rho <= overload_rho``); the degraded
    profile only demands ``attainment_e2e >= degraded_attainment``.  Profile
    inference switches to degraded once windowed attainment drops below
    ``realtime_inference_min`` or the estimator reports utilisation at or
    beyond ``overload_rho``.
    """
    if not 0 <= degraded_attainment <= realtime_attainment <= 1:
        raise ValueError("need 0 <= degraded_attainment <= realtime_attainment <= 1")
    return {
        "auto": {
            "realtime_attainment_min": realtime_inference_min,
            "overload_rho": overload_rho,
            "default_profile": "degraded",
        },
        "profiles": {
            "realtime": [
                {
                    "name": "availability",
                    "metric": "attainment_e2e",
                    "op": ">=",
                    "target": realtime_attainment,
                },
                {"name": "headroom", "metric": "estimated_rho", "op": "<=", "target": overload_rho},
            ],
            "degraded": [
                {
                    "name": "availability",
                    "metric": "attainment_e2e",
                    "op": ">=",
                    "target": degraded_attainment,
                },
            ],
        },
    }


__all__ = [
    "SLO_OPS",
    "DEFAULT_PROFILE",
    "SLOObjective",
    "ObjectiveOutcome",
    "SLOReport",
    "BreachEvent",
    "evaluate_slo_objectives",
    "infer_slo_profile",
    "resolve_slo_objectives",
    "auto_slo_config",
]

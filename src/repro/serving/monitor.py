"""Heartbeat monitoring, failure detection and SLO-breach tracking.

Cloud GPUs disappear: instances get pre-empted, nodes crash, networks partition.
ThunderServe's scheduler reacts to a "GPU heartbeat timeout" by triggering the
lightweight rescheduling path.  This module provides the heartbeat bookkeeping the
runtime uses to decide that GPUs are gone, plus :class:`SLOBreachTracker` — the
edge-triggered bookkeeping the live serving loop uses to turn per-window
:class:`~repro.serving.slo_objectives.SLOReport` evaluations into breach events
that fire exactly once per objective crossing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.serving.slo_objectives import BreachEvent, SLOReport


@dataclass(frozen=True)
class GPUFailure:
    """A detected GPU failure event."""

    gpu_ids: frozenset
    detected_at: float

    def describe(self) -> str:
        """Human-readable summary."""
        return f"{len(self.gpu_ids)} GPU(s) failed at t={self.detected_at:.1f}s: {sorted(self.gpu_ids)}"


@dataclass(frozen=True)
class GPURecovery:
    """A detected GPU recovery event: failed GPUs whose heartbeats resumed."""

    gpu_ids: frozenset
    detected_at: float

    def describe(self) -> str:
        """Human-readable summary."""
        return (
            f"{len(self.gpu_ids)} GPU(s) recovered at t={self.detected_at:.1f}s: "
            f"{sorted(self.gpu_ids)}"
        )


class HeartbeatMonitor:
    """Tracks per-GPU heartbeats and reports GPUs whose heartbeat timed out.

    Parameters
    ----------
    gpu_ids:
        GPUs to monitor.
    timeout_s:
        A GPU is considered failed when no heartbeat arrived for this long.
    """

    def __init__(self, gpu_ids: Iterable[int], timeout_s: float = 30.0) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self._last_seen: Dict[int, float] = {gpu_id: 0.0 for gpu_id in gpu_ids}
        self._failed: Set[int] = set()
        self._recovered: Set[int] = set()

    # ------------------------------------------------------------------ heartbeats
    def heartbeat(self, gpu_id: int, now: float) -> None:
        """Record a heartbeat from one GPU.

        A heartbeat from a GPU currently considered failed re-arms it as
        healthy and queues it on the pending-recovery set surfaced by
        :meth:`check_recovered`, so the comeback is an explicit signal rather
        than a silent state flip.
        """
        if gpu_id not in self._last_seen:
            raise KeyError(f"GPU {gpu_id} is not monitored")
        if gpu_id in self._failed:
            self._failed.discard(gpu_id)
            self._recovered.add(gpu_id)
        self._last_seen[gpu_id] = max(self._last_seen[gpu_id], now)

    def heartbeat_all(self, now: float, except_ids: Iterable[int] = ()) -> None:
        """Record heartbeats from every monitored GPU except ``except_ids``."""
        excluded = set(except_ids)
        for gpu_id in self._last_seen:
            if gpu_id not in excluded:
                self.heartbeat(gpu_id, now)

    # ------------------------------------------------------------------ detection
    def check(self, now: float) -> Optional[GPUFailure]:
        """Return a failure event covering newly timed-out GPUs, if any."""
        newly_failed = {
            gpu_id
            for gpu_id, last in self._last_seen.items()
            if gpu_id not in self._failed and now - last > self.timeout_s
        }
        if not newly_failed:
            return None
        self._failed.update(newly_failed)
        self._recovered -= newly_failed
        return GPUFailure(gpu_ids=frozenset(newly_failed), detected_at=now)

    def check_recovered(self, now: float) -> Optional[GPURecovery]:
        """Return-and-clear the recovery event covering GPUs that came back.

        Covers every failed GPU whose heartbeat resumed since the last call;
        draining is explicit so each comeback is observed exactly once.
        Returns ``None`` while nothing recovered.
        """
        if not self._recovered:
            return None
        recovered = frozenset(self._recovered)
        self._recovered.clear()
        return GPURecovery(gpu_ids=recovered, detected_at=now)

    def mark_failed(self, gpu_ids: Iterable[int], now: float = 0.0) -> None:
        """Register GPUs as failed from an external detection path.

        GPUs not yet monitored (e.g. removed from the serving cluster, which
        rebuilds the monitor over the survivors) are added to the watch set,
        so a later heartbeat from them surfaces through
        :meth:`check_recovered` — this is what makes fail → recover → fail
        cycles observable across cluster rebuilds.
        """
        for gpu_id in gpu_ids:
            self._last_seen[gpu_id] = max(self._last_seen.get(gpu_id, now), now)
            self._failed.add(gpu_id)
            self._recovered.discard(gpu_id)

    @property
    def failed_gpu_ids(self) -> List[int]:
        """All GPUs currently considered failed."""
        return sorted(self._failed)

    @property
    def healthy_gpu_ids(self) -> List[int]:
        """All GPUs currently considered healthy."""
        return sorted(set(self._last_seen) - self._failed)


class SLOBreachTracker:
    """Edge-triggered breach bookkeeping over per-window SLO reports.

    A breach event fires when an objective crosses from passing (or unseen) to
    failing; while the objective keeps failing in subsequent windows no further
    event is emitted.  When the objective passes again it is re-armed, so the
    next crossing fires a fresh event.  This mirrors how alerting pipelines
    de-duplicate a sustained violation into one page.
    """

    def __init__(self) -> None:
        self._breached: Set[str] = set()

    def update(
        self,
        report: SLOReport,
        time: float,
        window_index: int = 0,
        context: str = "",
    ) -> List[BreachEvent]:
        """Fold one window's report into the tracker and return new breaches.

        Parameters
        ----------
        report:
            The window's :class:`~repro.serving.slo_objectives.SLOReport`.
        time:
            Serving-clock time stamped onto emitted events (the window end).
        window_index:
            Index of the window, recorded on emitted events.
        context:
            Free-form serving context (scenario name, trace label).

        Returns
        -------
        list of BreachEvent
            One event per objective that *newly* crossed into failure this
            window, in report order.  Objectives already breached stay silent;
            objectives that passed are re-armed.
        """
        events: List[BreachEvent] = []
        for outcome in report.outcomes:
            name = outcome.objective.name
            if outcome.passed:
                self._breached.discard(name)
                continue
            if name in self._breached:
                continue
            self._breached.add(name)
            events.append(
                BreachEvent(
                    time=time,
                    window_index=window_index,
                    profile=report.profile,
                    objective=name,
                    metric=outcome.objective.metric,
                    op=outcome.objective.op,
                    target=outcome.objective.target,
                    value=outcome.value,
                    context=context,
                )
            )
        return events

    @property
    def breached_objectives(self) -> List[str]:
        """Names of the objectives currently in a breached state, sorted."""
        return sorted(self._breached)

    def reset(self) -> None:
        """Forget all breach state (every objective is re-armed)."""
        self._breached.clear()


__all__ = ["HeartbeatMonitor", "GPUFailure", "GPURecovery", "SLOBreachTracker"]

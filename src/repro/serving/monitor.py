"""Heartbeat monitoring and failure detection.

Cloud GPUs disappear: instances get pre-empted, nodes crash, networks partition.
ThunderServe's scheduler reacts to a "GPU heartbeat timeout" by triggering the
lightweight rescheduling path.  This module provides the heartbeat bookkeeping the
runtime uses to decide that GPUs are gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class GPUFailure:
    """A detected GPU failure event."""

    gpu_ids: frozenset
    detected_at: float

    def describe(self) -> str:
        """Human-readable summary."""
        return f"{len(self.gpu_ids)} GPU(s) failed at t={self.detected_at:.1f}s: {sorted(self.gpu_ids)}"


class HeartbeatMonitor:
    """Tracks per-GPU heartbeats and reports GPUs whose heartbeat timed out.

    Parameters
    ----------
    gpu_ids:
        GPUs to monitor.
    timeout_s:
        A GPU is considered failed when no heartbeat arrived for this long.
    """

    def __init__(self, gpu_ids: Iterable[int], timeout_s: float = 30.0) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self._last_seen: Dict[int, float] = {gpu_id: 0.0 for gpu_id in gpu_ids}
        self._failed: Set[int] = set()

    # ------------------------------------------------------------------ heartbeats
    def heartbeat(self, gpu_id: int, now: float) -> None:
        """Record a heartbeat from one GPU."""
        if gpu_id not in self._last_seen:
            raise KeyError(f"GPU {gpu_id} is not monitored")
        if gpu_id in self._failed:
            # A failed GPU coming back is treated as recovered.
            self._failed.discard(gpu_id)
        self._last_seen[gpu_id] = max(self._last_seen[gpu_id], now)

    def heartbeat_all(self, now: float, except_ids: Iterable[int] = ()) -> None:
        """Record heartbeats from every monitored GPU except ``except_ids``."""
        excluded = set(except_ids)
        for gpu_id in self._last_seen:
            if gpu_id not in excluded:
                self.heartbeat(gpu_id, now)

    # ------------------------------------------------------------------ detection
    def check(self, now: float) -> Optional[GPUFailure]:
        """Return a failure event covering newly timed-out GPUs, if any."""
        newly_failed = {
            gpu_id
            for gpu_id, last in self._last_seen.items()
            if gpu_id not in self._failed and now - last > self.timeout_s
        }
        if not newly_failed:
            return None
        self._failed.update(newly_failed)
        return GPUFailure(gpu_ids=frozenset(newly_failed), detected_at=now)

    @property
    def failed_gpu_ids(self) -> List[int]:
        """All GPUs currently considered failed."""
        return sorted(self._failed)

    @property
    def healthy_gpu_ids(self) -> List[int]:
        """All GPUs currently considered healthy."""
        return sorted(set(self._last_seen) - self._failed)


__all__ = ["HeartbeatMonitor", "GPUFailure"]

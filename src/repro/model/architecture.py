"""Named transformer architectures.

The paper serves LLaMA-7B/13B/30B; we also include a handful of other common
configurations (OPT-13B/30B/66B/175B, LLaMA-65B) so the library is usable beyond
the exact experiments.  Only architectural shape matters for the cost model —
weights are never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class ModelConfig:
    """Shape description of a decoder-only transformer.

    Attributes
    ----------
    name:
        Canonical model name (``"llama-30b"``).
    num_layers:
        Number of transformer blocks.
    hidden_size:
        Model (embedding) dimension.
    num_heads:
        Number of attention heads.
    num_kv_heads:
        Number of key/value heads (== ``num_heads`` without grouped-query
        attention; smaller for GQA models).
    ffn_size:
        Feed-forward inner dimension.
    vocab_size:
        Vocabulary size (affects embedding / LM-head parameters only).
    dtype_bytes:
        Bytes per parameter / activation element (2 for FP16/BF16).
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    ffn_size: int
    vocab_size: int = 32000
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ConfigurationError(f"{self.name}: num_layers must be >= 1")
        if self.hidden_size < 1 or self.ffn_size < 1:
            raise ConfigurationError(f"{self.name}: hidden/ffn sizes must be >= 1")
        if self.num_heads < 1 or self.num_kv_heads < 1:
            raise ConfigurationError(f"{self.name}: head counts must be >= 1")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"{self.name}: hidden_size ({self.hidden_size}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigurationError(
                f"{self.name}: num_heads must be a multiple of num_kv_heads"
            )
        if self.dtype_bytes not in (1, 2, 4):
            raise ConfigurationError(f"{self.name}: dtype_bytes must be 1, 2 or 4")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden_size(self) -> int:
        """Total key (or value) width per layer: ``num_kv_heads * head_dim``."""
        return self.num_kv_heads * self.head_dim


#: Catalog of ready-made model configurations.
MODEL_CATALOG: Dict[str, ModelConfig] = {
    "llama-7b": ModelConfig(
        name="llama-7b", num_layers=32, hidden_size=4096, num_heads=32,
        num_kv_heads=32, ffn_size=11008, vocab_size=32000,
    ),
    "llama-13b": ModelConfig(
        name="llama-13b", num_layers=40, hidden_size=5120, num_heads=40,
        num_kv_heads=40, ffn_size=13824, vocab_size=32000,
    ),
    "llama-30b": ModelConfig(
        name="llama-30b", num_layers=60, hidden_size=6656, num_heads=52,
        num_kv_heads=52, ffn_size=17920, vocab_size=32000,
    ),
    "llama-65b": ModelConfig(
        name="llama-65b", num_layers=80, hidden_size=8192, num_heads=64,
        num_kv_heads=64, ffn_size=22016, vocab_size=32000,
    ),
    "opt-13b": ModelConfig(
        name="opt-13b", num_layers=40, hidden_size=5120, num_heads=40,
        num_kv_heads=40, ffn_size=20480, vocab_size=50272,
    ),
    "opt-30b": ModelConfig(
        name="opt-30b", num_layers=48, hidden_size=7168, num_heads=56,
        num_kv_heads=56, ffn_size=28672, vocab_size=50272,
    ),
    "opt-66b": ModelConfig(
        name="opt-66b", num_layers=64, hidden_size=9216, num_heads=72,
        num_kv_heads=72, ffn_size=36864, vocab_size=50272,
    ),
    "opt-175b": ModelConfig(
        name="opt-175b", num_layers=96, hidden_size=12288, num_heads=96,
        num_kv_heads=96, ffn_size=49152, vocab_size=50272,
    ),
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model configuration by (case-insensitive) name."""
    key = name.strip().lower()
    if key in MODEL_CATALOG:
        return MODEL_CATALOG[key]
    raise KeyError(f"Unknown model {name!r}; known models: {sorted(MODEL_CATALOG)}")


__all__ = ["ModelConfig", "MODEL_CATALOG", "get_model_config"]

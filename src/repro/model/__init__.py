"""Transformer model architecture configurations and analytic accounting.

* :mod:`repro.model.architecture` — named model configurations (LLaMA 7B/13B/30B,
  OPT variants) with layer count, hidden size, head counts and vocabulary size.
* :mod:`repro.model.memory` — parameter and KV-cache memory accounting, used by the
  deployment-plan feasibility checks and the paged KV cache manager.
* :mod:`repro.model.flops` — per-phase FLOPs accounting feeding the roofline
  latency model.
"""

from repro.model.architecture import ModelConfig, MODEL_CATALOG, get_model_config
from repro.model.memory import (
    parameter_count,
    parameter_bytes,
    kv_cache_bytes_per_token,
    kv_cache_bytes,
    max_kv_tokens,
    weight_bytes_per_layer,
)
from repro.model.flops import (
    prefill_flops,
    decode_flops_per_token,
    attention_flops,
    mlp_flops,
    prefill_memory_bytes,
    decode_memory_bytes_per_token,
)

__all__ = [
    "ModelConfig",
    "MODEL_CATALOG",
    "get_model_config",
    "parameter_count",
    "parameter_bytes",
    "kv_cache_bytes_per_token",
    "kv_cache_bytes",
    "max_kv_tokens",
    "weight_bytes_per_layer",
    "prefill_flops",
    "decode_flops_per_token",
    "attention_flops",
    "mlp_flops",
    "prefill_memory_bytes",
    "decode_memory_bytes_per_token",
]

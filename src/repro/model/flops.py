"""Per-phase FLOPs and memory-traffic accounting.

The roofline cost model estimates phase latency as the maximum of compute time
(FLOPs / effective FLOPS) and memory time (bytes moved / bandwidth).  This module
provides the two numerators:

* prefill over ``s`` prompt tokens is dominated by dense GEMMs: roughly
  ``2 * params * s`` FLOPs plus quadratic attention ``O(s^2 * h)``;
* decode emits one token at a time, so per token it performs ``2 * params`` FLOPs
  but must stream the entire parameter set plus the growing KV cache from memory —
  which is why decode is memory-bandwidth bound.
"""

from __future__ import annotations

from repro.model.architecture import ModelConfig
from repro.model.memory import kv_cache_bytes_per_token, parameter_bytes, parameter_count


def attention_flops(model: ModelConfig, seq_len: int, context_len: int, num_layers: int | None = None) -> float:
    """FLOPs of the attention score/value computation for ``seq_len`` query tokens.

    ``context_len`` is the number of key/value positions attended to (equal to
    ``seq_len`` during prefill; the running context length during decode).
    """
    if seq_len < 0 or context_len < 0:
        raise ValueError("sequence lengths must be >= 0")
    layers = model.num_layers if num_layers is None else num_layers
    # QK^T and softmax*V each cost 2 * s * ctx * h per layer.
    return float(layers * 4.0 * seq_len * context_len * model.hidden_size)


def mlp_flops(model: ModelConfig, seq_len: int, num_layers: int | None = None) -> float:
    """FLOPs of the projection + feed-forward GEMMs for ``seq_len`` tokens."""
    if seq_len < 0:
        raise ValueError("seq_len must be >= 0")
    layers = model.num_layers if num_layers is None else num_layers
    h = model.hidden_size
    kv = model.kv_hidden_size
    f = model.ffn_size
    per_token = 2.0 * (h * h + 2 * h * kv + h * h) + 2.0 * (3 * h * f)
    return float(layers * per_token * seq_len)


def prefill_flops(model: ModelConfig, input_length: int, num_layers: int | None = None) -> float:
    """Total FLOPs of the prefill phase over a prompt of ``input_length`` tokens."""
    return mlp_flops(model, input_length, num_layers) + attention_flops(
        model, input_length, input_length, num_layers
    )


def decode_flops_per_token(model: ModelConfig, context_length: int, num_layers: int | None = None) -> float:
    """FLOPs to generate one token given ``context_length`` tokens of KV cache."""
    return mlp_flops(model, 1, num_layers) + attention_flops(model, 1, context_length, num_layers)


def prefill_memory_bytes(
    model: ModelConfig,
    input_length: int,
    batch_size: int = 1,
    num_layers: int | None = None,
) -> float:
    """Approximate bytes moved from device memory during prefill.

    Weights are read once per batch (they are reused across the many tokens of the
    prompt), plus the activations / KV cache written for the batch.
    """
    layers = model.num_layers if num_layers is None else num_layers
    frac = layers / model.num_layers
    weights = parameter_bytes(model) * frac
    kv_written = kv_cache_bytes_per_token(model, num_layers=layers) * input_length * batch_size
    activations = 2.0 * model.hidden_size * model.dtype_bytes * input_length * batch_size * layers
    return float(weights + kv_written + activations)


def decode_memory_bytes_per_token(
    model: ModelConfig,
    context_length: int,
    batch_size: int = 1,
    num_layers: int | None = None,
) -> float:
    """Bytes moved from device memory to generate one token for every sequence in a batch.

    Every decode step must stream the resident weight shard once (shared across the
    batch) and each sequence's KV cache (``context_length`` tokens).  This is the
    quantity that makes decode memory-bound and batching essential.
    """
    layers = model.num_layers if num_layers is None else num_layers
    frac = layers / model.num_layers
    weights = parameter_bytes(model) * frac
    kv_read = kv_cache_bytes_per_token(model, num_layers=layers) * context_length * batch_size
    return float(weights + kv_read)


__all__ = [
    "attention_flops",
    "mlp_flops",
    "prefill_flops",
    "decode_flops_per_token",
    "prefill_memory_bytes",
    "decode_memory_bytes_per_token",
]

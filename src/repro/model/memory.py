"""Parameter and KV-cache memory accounting.

The scheduler needs two memory quantities per model:

* the total parameter footprint (to eliminate serving groups that cannot even hold
  one model copy — the early feasibility check in §3.2), and
* the per-token KV-cache footprint (to size decode batches and to compute the
  KV-transfer volume of Equation 1).
"""

from __future__ import annotations

from repro.model.architecture import ModelConfig


def parameter_count(model: ModelConfig) -> float:
    """Approximate number of parameters of the model.

    Counts, per transformer block: QKV and output projections
    (``2*h*h + 2*h*kv_h``), the feed-forward matrices (gate/up/down for LLaMA-style
    FFNs: ``3*h*f``), and the per-layer norm weights; plus the token embedding and
    LM head.
    """
    h = model.hidden_size
    kv = model.kv_hidden_size
    f = model.ffn_size
    attn = h * h + 2 * h * kv + h * h  # Q, K, V, O projections
    ffn = 3 * h * f                    # gate, up, down
    norms = 2 * h
    per_layer = attn + ffn + norms
    embeddings = 2 * model.vocab_size * h  # token embedding + LM head
    return float(model.num_layers * per_layer + embeddings + h)


def parameter_bytes(model: ModelConfig) -> float:
    """Total parameter memory footprint in bytes (at the model dtype)."""
    return parameter_count(model) * model.dtype_bytes


def weight_bytes_per_layer(model: ModelConfig) -> float:
    """Parameter bytes of a single transformer block (excludes embeddings).

    Used by the non-uniform pipeline layer partitioner, which balances stage memory
    and compute across GPUs with different capacities.
    """
    h = model.hidden_size
    kv = model.kv_hidden_size
    f = model.ffn_size
    per_layer = (h * h + 2 * h * kv + h * h) + 3 * h * f + 2 * h
    return float(per_layer * model.dtype_bytes)


def kv_cache_bytes_per_token(model: ModelConfig, bits: int = 16, num_layers: int | None = None) -> float:
    """KV-cache bytes stored per token.

    Each layer stores a key and a value vector of width ``kv_hidden_size``;
    ``bits`` controls the storage precision (16 for serving, 4/8 for transport
    quantization).  ``num_layers`` restricts the count to a pipeline-stage subset.
    """
    if bits not in (4, 8, 16):
        raise ValueError(f"bits must be 4, 8 or 16, got {bits}")
    layers = model.num_layers if num_layers is None else num_layers
    if layers < 0:
        raise ValueError("num_layers must be >= 0")
    bytes_per_element = bits / 8.0
    return float(2 * layers * model.kv_hidden_size * bytes_per_element)


def kv_cache_bytes(
    model: ModelConfig,
    num_tokens: int,
    batch_size: int = 1,
    bits: int = 16,
) -> float:
    """Total KV-cache bytes for ``batch_size`` sequences of ``num_tokens`` tokens."""
    if num_tokens < 0 or batch_size < 0:
        raise ValueError("num_tokens and batch_size must be >= 0")
    return kv_cache_bytes_per_token(model, bits=bits) * num_tokens * batch_size


def max_kv_tokens(
    model: ModelConfig,
    available_memory_bytes: float,
    reserved_fraction: float = 0.1,
) -> int:
    """Maximum number of KV-cache tokens that fit in ``available_memory_bytes``.

    ``available_memory_bytes`` should already exclude the parameter footprint of
    the shard resident on the device group; ``reserved_fraction`` keeps headroom
    for activations and fragmentation (PagedAttention makes fragmentation small,
    but not zero).
    """
    if available_memory_bytes <= 0:
        return 0
    if not 0 <= reserved_fraction < 1:
        raise ValueError("reserved_fraction must be in [0, 1)")
    usable = available_memory_bytes * (1.0 - reserved_fraction)
    per_token = kv_cache_bytes_per_token(model)
    return max(0, int(usable // per_token))


__all__ = [
    "parameter_count",
    "parameter_bytes",
    "weight_bytes_per_layer",
    "kv_cache_bytes_per_token",
    "kv_cache_bytes",
    "max_kv_tokens",
]

"""Request traces: ordered request collections plus their struct-of-arrays form.

Two representations of the same arrival-ordered request sequence live here:

* :class:`Trace` — a list of :class:`~repro.core.types.Request` objects.  This
  is the ergonomic form every experiment and test manipulates, and it stays the
  canonical input of :meth:`~repro.simulation.engine.ServingSimulator.run`.
* :class:`RequestArrays` — the same columns (ids, arrival times, prompt and
  response lengths) as contiguous numpy arrays.  This is the form the fast
  simulation engine consumes end-to-end: a million-request trace is ~32 MB of
  arrays instead of a few GB of Python objects, and the streaming generator
  (:meth:`~repro.workload.generator.PoissonArrivalGenerator.iter_chunks`)
  yields it chunk by chunk so full materialization is never required.

``Trace.arrays()`` and ``RequestArrays.to_trace()`` convert between the two;
the conversions are exact (ids, times and lengths round-trip bitwise).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Sequence

import numpy as np

from repro.core.types import Request


@dataclass
class RequestArrays:
    """A block of requests in struct-of-arrays form, ordered by arrival time.

    The fast simulation engine's native request representation: one numpy
    column per request attribute instead of one Python object per request.
    Blocks are produced by :meth:`Trace.arrays` (whole-trace conversion) or by
    the streaming generator (fixed-size chunks), and can be concatenated,
    sliced and converted back to object form.

    Parameters
    ----------
    request_id:
        Unique integer ids, ``int64``.
    arrival_time:
        Absolute arrival times in seconds, ``float64``, non-decreasing.
    input_length:
        Prompt lengths in tokens, ``int64``, all >= 1.
    output_length:
        Response lengths in tokens, ``int64``, all >= 1.
    workload:
        Workload tag shared by every request in the block (chunks produced by
        one generator are homogeneous; whole-trace conversions of a mixed
        trace use ``"mixed"``).
    """

    request_id: np.ndarray
    arrival_time: np.ndarray
    input_length: np.ndarray
    output_length: np.ndarray
    workload: str = "generic"

    def __post_init__(self) -> None:
        self.request_id = np.ascontiguousarray(self.request_id, dtype=np.int64)
        self.arrival_time = np.ascontiguousarray(self.arrival_time, dtype=np.float64)
        self.input_length = np.ascontiguousarray(self.input_length, dtype=np.int64)
        self.output_length = np.ascontiguousarray(self.output_length, dtype=np.int64)
        n = self.request_id.size
        for name in ("arrival_time", "input_length", "output_length"):
            column = getattr(self, name)
            if column.ndim != 1 or column.size != n:
                raise ValueError(f"{name} must be a 1-d array of length {n}")
        if self.request_id.ndim != 1:
            raise ValueError("request_id must be a 1-d array")
        if n:
            if int(self.input_length.min()) < 1 or int(self.output_length.min()) < 1:
                raise ValueError("input_length and output_length must be >= 1")
            if np.any(np.diff(self.arrival_time) < 0):
                raise ValueError("arrival_time must be non-decreasing")

    # ------------------------------------------------------------------ container
    def __len__(self) -> int:
        return self.request_id.size

    @property
    def num_requests(self) -> int:
        """Number of requests in the block."""
        return self.request_id.size

    @property
    def duration(self) -> float:
        """Span between the first and last arrival (seconds)."""
        if self.request_id.size < 2:
            return 0.0
        return float(self.arrival_time[-1] - self.arrival_time[0])

    @property
    def total_tokens(self) -> int:
        """Total tokens (prompt + generated) in the block."""
        return int(self.input_length.sum() + self.output_length.sum())

    def slice(self, start: int, stop: int) -> "RequestArrays":
        """Return rows ``[start, stop)`` as a new block (columns are copies)."""
        return RequestArrays(
            request_id=self.request_id[start:stop].copy(),
            arrival_time=self.arrival_time[start:stop].copy(),
            input_length=self.input_length[start:stop].copy(),
            output_length=self.output_length[start:stop].copy(),
            workload=self.workload,
        )

    # ------------------------------------------------------------------ conversion
    @classmethod
    def from_trace(cls, trace: "Trace") -> "RequestArrays":
        """Convert a :class:`Trace` to struct-of-arrays form (exact columns)."""
        requests = trace.requests
        n = len(requests)
        workloads = {r.workload for r in requests}
        return cls(
            request_id=np.fromiter((r.request_id for r in requests), np.int64, count=n),
            arrival_time=np.fromiter((r.arrival_time for r in requests), np.float64, count=n),
            input_length=np.fromiter((r.input_length for r in requests), np.int64, count=n),
            output_length=np.fromiter((r.output_length for r in requests), np.int64, count=n),
            workload=workloads.pop() if len(workloads) == 1 else "mixed",
        )

    def to_trace(self, name: str | None = None) -> "Trace":
        """Materialize the block as a :class:`Trace` of request objects."""
        ids = self.request_id.tolist()
        arrivals = self.arrival_time.tolist()
        inputs = self.input_length.tolist()
        outputs = self.output_length.tolist()
        requests = [
            Request(
                request_id=ids[i],
                arrival_time=arrivals[i],
                input_length=inputs[i],
                output_length=outputs[i],
                workload=self.workload,
            )
            for i in range(len(ids))
        ]
        return Trace(requests=requests, name=name if name is not None else self.workload)

    @staticmethod
    def concat(blocks: Sequence["RequestArrays"]) -> "RequestArrays":
        """Concatenate arrival-ordered blocks into one block.

        The blocks must be time-ordered end to end (each block's first arrival
        at or after the previous block's last), as produced by the streaming
        generator.  The result's workload tag is the shared tag when all
        blocks agree, else ``"mixed"``.
        """
        blocks = [b for b in blocks if len(b)]
        if not blocks:
            return RequestArrays(
                request_id=np.empty(0, dtype=np.int64),
                arrival_time=np.empty(0, dtype=np.float64),
                input_length=np.empty(0, dtype=np.int64),
                output_length=np.empty(0, dtype=np.int64),
            )
        workloads = {b.workload for b in blocks}
        return RequestArrays(
            request_id=np.concatenate([b.request_id for b in blocks]),
            arrival_time=np.concatenate([b.arrival_time for b in blocks]),
            input_length=np.concatenate([b.input_length for b in blocks]),
            output_length=np.concatenate([b.output_length for b in blocks]),
            workload=workloads.pop() if len(workloads) == 1 else "mixed",
        )


@dataclass
class Trace:
    """An arrival-ordered sequence of requests plus summary statistics."""

    requests: List[Request]
    name: str = "trace"

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: r.arrival_time)
        self._arrays: RequestArrays | None = None

    # ------------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, idx: int) -> Request:
        return self.requests[idx]

    @property
    def is_empty(self) -> bool:
        """Whether the trace contains no requests."""
        return not self.requests

    def arrays(self) -> RequestArrays:
        """Struct-of-arrays view of the trace (cached after the first call).

        The conversion is exact: ids, arrival times and lengths carry over
        bitwise.  The cache assumes the request list is not mutated after the
        first call — build a new :class:`Trace` instead of editing in place.
        """
        if self._arrays is None or len(self._arrays) != len(self.requests):
            self._arrays = RequestArrays.from_trace(self)
        return self._arrays

    # ------------------------------------------------------------------ statistics
    @property
    def duration(self) -> float:
        """Span between the first and last arrival (seconds)."""
        if len(self.requests) < 2:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time

    @property
    def request_rate(self) -> float:
        """Empirical mean arrival rate (requests per second)."""
        if len(self.requests) < 2 or self.duration == 0:
            return 0.0
        return (len(self.requests) - 1) / self.duration

    @property
    def mean_input_length(self) -> float:
        """Mean prompt length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.mean([r.input_length for r in self.requests]))

    @property
    def mean_output_length(self) -> float:
        """Mean response length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.mean([r.output_length for r in self.requests]))

    @property
    def median_input_length(self) -> float:
        """Median prompt length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.median([r.input_length for r in self.requests]))

    @property
    def median_output_length(self) -> float:
        """Median response length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.median([r.output_length for r in self.requests]))

    @property
    def total_input_tokens(self) -> int:
        """Total prompt tokens in the trace."""
        return int(sum(r.input_length for r in self.requests))

    @property
    def total_output_tokens(self) -> int:
        """Total generated tokens in the trace."""
        return int(sum(r.output_length for r in self.requests))

    @property
    def total_tokens(self) -> int:
        """Total tokens (prompt + generated) in the trace."""
        return self.total_input_tokens + self.total_output_tokens

    # ------------------------------------------------------------------ transforms
    def window(self, start: float, end: float) -> "Trace":
        """Return the sub-trace of requests arriving in ``[start, end)``."""
        if end < start:
            raise ValueError("end must be >= start")
        selected = [r for r in self.requests if start <= r.arrival_time < end]
        return Trace(requests=selected, name=f"{self.name}[{start:g},{end:g})")

    def head(self, n: int) -> "Trace":
        """Return the first ``n`` requests as a new trace."""
        return Trace(requests=list(self.requests[:n]), name=f"{self.name}-head{n}")

    def renumbered(self, first_id: int = 0) -> "Trace":
        """Return a copy with request ids renumbered consecutively from ``first_id``."""
        renumbered = [
            replace(r, request_id=first_id + i) for i, r in enumerate(self.requests)
        ]
        return Trace(requests=renumbered, name=self.name)

    def shifted(self, offset: float) -> "Trace":
        """Return a copy with every arrival time shifted by ``offset`` seconds."""
        shifted = [r.with_arrival(r.arrival_time + offset) for r in self.requests]
        return Trace(requests=shifted, name=self.name)


def merge_traces(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Interleave several traces by arrival time and renumber request ids.

    Used to model workload shifts: e.g. a coding trace for the first half of the
    horizon followed by a conversation trace for the second half.
    """
    requests: List[Request] = []
    for trace in traces:
        requests.extend(trace.requests)
    merged = Trace(requests=requests, name=name)
    return merged.renumbered()


__all__ = ["RequestArrays", "Trace", "merge_traces"]

"""Request traces: ordered request collections with summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.types import Request


@dataclass
class Trace:
    """An arrival-ordered sequence of requests plus summary statistics."""

    requests: List[Request]
    name: str = "trace"

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: r.arrival_time)

    # ------------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, idx: int) -> Request:
        return self.requests[idx]

    @property
    def is_empty(self) -> bool:
        """Whether the trace contains no requests."""
        return not self.requests

    # ------------------------------------------------------------------ statistics
    @property
    def duration(self) -> float:
        """Span between the first and last arrival (seconds)."""
        if len(self.requests) < 2:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time

    @property
    def request_rate(self) -> float:
        """Empirical mean arrival rate (requests per second)."""
        if len(self.requests) < 2 or self.duration == 0:
            return 0.0
        return (len(self.requests) - 1) / self.duration

    @property
    def mean_input_length(self) -> float:
        """Mean prompt length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.mean([r.input_length for r in self.requests]))

    @property
    def mean_output_length(self) -> float:
        """Mean response length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.mean([r.output_length for r in self.requests]))

    @property
    def median_input_length(self) -> float:
        """Median prompt length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.median([r.input_length for r in self.requests]))

    @property
    def median_output_length(self) -> float:
        """Median response length across the trace."""
        if not self.requests:
            return 0.0
        return float(np.median([r.output_length for r in self.requests]))

    @property
    def total_input_tokens(self) -> int:
        """Total prompt tokens in the trace."""
        return int(sum(r.input_length for r in self.requests))

    @property
    def total_output_tokens(self) -> int:
        """Total generated tokens in the trace."""
        return int(sum(r.output_length for r in self.requests))

    @property
    def total_tokens(self) -> int:
        """Total tokens (prompt + generated) in the trace."""
        return self.total_input_tokens + self.total_output_tokens

    # ------------------------------------------------------------------ transforms
    def window(self, start: float, end: float) -> "Trace":
        """Return the sub-trace of requests arriving in ``[start, end)``."""
        if end < start:
            raise ValueError("end must be >= start")
        selected = [r for r in self.requests if start <= r.arrival_time < end]
        return Trace(requests=selected, name=f"{self.name}[{start:g},{end:g})")

    def head(self, n: int) -> "Trace":
        """Return the first ``n`` requests as a new trace."""
        return Trace(requests=list(self.requests[:n]), name=f"{self.name}-head{n}")

    def renumbered(self, first_id: int = 0) -> "Trace":
        """Return a copy with request ids renumbered consecutively from ``first_id``."""
        renumbered = [
            replace(r, request_id=first_id + i) for i, r in enumerate(self.requests)
        ]
        return Trace(requests=renumbered, name=self.name)

    def shifted(self, offset: float) -> "Trace":
        """Return a copy with every arrival time shifted by ``offset`` seconds."""
        shifted = [r.with_arrival(r.arrival_time + offset) for r in self.requests]
        return Trace(requests=shifted, name=self.name)


def merge_traces(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Interleave several traces by arrival time and renumber request ids.

    Used to model workload shifts: e.g. a coding trace for the first half of the
    horizon followed by a conversation trace for the second half.
    """
    requests: List[Request] = []
    for trace in traces:
        requests.extend(trace.requests)
    merged = Trace(requests=requests, name=name)
    return merged.renumbered()


__all__ = ["Trace", "merge_traces"]
